//! # stencil-lab
//!
//! Umbrella crate for the SC'21 reproduction of *"Reducing Redundancy in
//! Data Organization and Arithmetic Calculation for Stencil
//! Computations"* (Li et al.): transpose-layout vectorization, temporal
//! computation folding, tessellate tiling, and every baseline the paper
//! compares against — as a workspace of focused crates re-exported here.
//!
//! * [`simd`] — vector backends, in-register transpose, assembled vectors.
//! * [`grid`] — aligned grids, ping-pong pairs, layout transforms.
//! * [`runtime`] — thread pool and parallel-for.
//! * [`core`] — patterns, folding matrices, counterpart planning,
//!   executors, tiling, and the high-level [`Solver`]/[`Plan`] facade.
//! * [`tune`] — the measured autotuner behind [`Tuning::Measured`]:
//!   cost-model-seeded probe search with a persistent per-host plan
//!   cache (call [`install_tuner`] once per process to enable it).
//! * [`ooc`] — out-of-core domains: a file-backed [`SlabStore`] with a
//!   crash-detectable chunked binary format, and a streaming
//!   temporal-blocked executor ([`ooc::run_streaming`]) that marches
//!   halo-widened z-slab windows through a bounded buffer pool with
//!   background prefetch — bit-identical to the resident run at a
//!   fixed memory budget.
//! * [`obs`] — the tracing and measurement substrate: lock-free
//!   per-worker span rings with a static stage vocabulary, per-job
//!   [`Timeline`](obs::Timeline) breakdowns, Chrome trace-event export
//!   ([`obs::TraceSink`], Perfetto-loadable), and the injectable
//!   monotonic clock every subsystem timestamps against.
//! * [`faults`] — deterministic failpoint injection for chaos testing:
//!   a fixed vocabulary of named sites across the IO, queue, worker
//!   and network layers, armed with seeded-probability or nth-hit
//!   triggers (env: `STENCIL_FAULTS`), compiled to a single relaxed
//!   load when disarmed.
//! * [`serve`] — the tuning-aware job service for long-running
//!   deployments: a warm-loadable [`PlanRegistry`], bounded submission
//!   queue with backpressure, same-plan batching, bit-exact domain
//!   sharding, a JSON stats surface, and a TCP network front end
//!   ([`serve::net`]) with per-tenant admission quotas and a
//!   `/healthz` + `/metrics` scrape endpoint.
//!
//! ## Quickstart
//!
//! The facade follows the paper's own discipline — do the redundant work
//! once. A [`Solver`] is a cheap configuration; [`Solver::compile`]
//! validates it (typed [`PlanError`]s, no panics) and precomputes the
//! folding matrix Λ, the register-kernel plan and the worker pool into a
//! [`Plan`] that runs any number of sweeps:
//!
//! ```
//! use stencil_lab::{Method, Solver, Tiling};
//! use stencil_lab::core::kernels;
//! use stencil_lab::grid::Grid1D;
//!
//! // Compile the paper's folded method under tessellate tiling once...
//! let plan = Solver::new(kernels::heat1d())
//!     .method(Method::Folded { m: 2 })
//!     .tiling(Tiling::Tessellate { time_block: 16 })
//!     .threads(2)
//!     .compile()
//!     .expect("valid configuration");
//!
//! // ...then serve as many sweeps as you like from the same plan.
//! let grid = Grid1D::from_fn(4096, |i| if i == 2048 { 1.0 } else { 0.0 });
//! for _ in 0..3 {
//!     let out = plan.run_1d(&grid, 500).unwrap();
//!     let mass: f64 = out.as_slice().iter().sum();
//!     assert!((mass - 1.0).abs() < 1e-9);
//! }
//!
//! // Invalid configurations are compile-time errors, not panics:
//! use stencil_lab::PlanError;
//! let err = Solver::new(kernels::heat1d())
//!     .method(Method::Dlt)
//!     .tiling(Tiling::Tessellate { time_block: 8 })
//!     .compile()
//!     .unwrap_err();
//! assert!(matches!(err, PlanError::IncompatibleMethodTiling { .. }));
//! ```

pub use stencil_core as core;
pub use stencil_faults as faults;
pub use stencil_grid as grid;
pub use stencil_obs as obs;
pub use stencil_ooc as ooc;
pub use stencil_runtime as runtime;
pub use stencil_serve as serve;
pub use stencil_simd as simd;
pub use stencil_tune as tune;

pub use stencil_core::{
    Domain, FoldPlan, Method, Pattern, Plan, PlanError, Ring3, Shape, Solver, Tiling, Tuning, Width,
};
pub use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};
pub use stencil_ooc::{OocConfig, OocError, SlabStore, StoreStats, StreamReport};
pub use stencil_runtime::{PoolHandle, ThreadPool};
pub use stencil_serve::{
    JobDomain, JobSpec, Manifest, NetClient, NetConfig, NetServer, OocThreshold, PlanRegistry,
    ServeConfig, StencilService,
};
pub use stencil_tune::{install as install_tuner, AutoTuner};
