//! Integration: tiled execution (tessellate / split / spatial) must be
//! bit-compatible with whole-grid sweeps under any thread count — the
//! tessellation correctness argument, exercised end to end.

use stencil_lab::core::kernels;
use stencil_lab::grid::max_abs_diff;
use stencil_lab::{Grid1D, Grid2D, Grid3D, Method, Solver, Tiling};

const TOL: f64 = 1e-11;

#[test]
fn tessellation_1d_across_thread_counts() {
    let p = kernels::heat1d();
    let g = Grid1D::from_fn(2048, |i| ((i * 97) % 61) as f64);
    let t = 40;
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_1d(&g, t)
        .unwrap();
    for threads in [1usize, 2, 7, 16] {
        for tb in [1usize, 3, 8, 32] {
            let got = Solver::new(p.clone())
                .method(Method::MultipleLoads)
                .tiling(Tiling::Tessellate { time_block: tb })
                .threads(threads)
                .compile()
                .unwrap()
                .run_1d(&g, t)
                .unwrap();
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < TOL,
                "threads={threads} tb={tb}"
            );
        }
    }
}

#[test]
fn tessellation_1d_folded_register_kernel() {
    let p = kernels::heat1d();
    let g = Grid1D::from_fn(4096, |i| (i as f64 * 0.013).sin());
    let t = 48;
    // reference: block-free folded (identical m=2 semantics)
    let want = Solver::new(p.clone())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap()
        .run_1d(&g, t)
        .unwrap();
    for threads in [1usize, 4, 12] {
        let got = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 6 })
            .threads(threads)
            .compile()
            .unwrap()
            .run_1d(&g, t)
            .unwrap();
        assert!(
            max_abs_diff(want.as_slice(), got.as_slice()) < TOL,
            "threads={threads}"
        );
    }
}

#[test]
fn split_tiling_sdsl_1d() {
    for p in [kernels::heat1d(), kernels::d1p5()] {
        let g = Grid1D::from_fn(1536, |i| ((i * 41) % 83) as f64 * 0.1);
        let t = 30;
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_1d(&g, t)
            .unwrap();
        for threads in [1usize, 6] {
            let got = Solver::new(p.clone())
                .method(Method::Dlt)
                .tiling(Tiling::Split { time_block: 5 })
                .threads(threads)
                .compile()
                .unwrap()
                .run_1d(&g, t)
                .unwrap();
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < TOL,
                "threads={threads} pts={}",
                p.points()
            );
        }
    }
}

#[test]
fn tessellation_2d_all_methods() {
    let p = kernels::box2d9p();
    let g = Grid2D::from_fn(96, 88, |y, x| ((y * 3 + x * 19) % 101) as f64);
    let t = 18;
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_2d(&g, t)
        .unwrap();
    for (method, label) in [
        (Method::MultipleLoads, "tess+multiload"),
        (Method::TransposeLayout, "tess+register"),
    ] {
        let got = Solver::new(p.clone())
            .method(method)
            .tiling(Tiling::Tessellate { time_block: 4 })
            .threads(8)
            .compile()
            .unwrap()
            .run_2d(&g, t)
            .unwrap();
        assert!(
            max_abs_diff(&want.to_dense(), &got.to_dense()) < TOL,
            "{label}"
        );
    }
}

#[test]
fn tessellation_2d_folded_vs_blockfree_folded() {
    for p in [kernels::heat2d(), kernels::gb()] {
        let g = Grid2D::from_fn(72, 80, |y, x| ((y * 13 + x * 7) % 97) as f64);
        let t = 12;
        let want = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .compile()
            .unwrap()
            .run_2d(&g, t)
            .unwrap();
        let got = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 3 })
            .threads(6)
            .compile()
            .unwrap()
            .run_2d(&g, t)
            .unwrap();
        assert!(
            max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10,
            "pts={}",
            p.points()
        );
    }
}

#[test]
fn sdsl_hybrid_2d_and_3d() {
    let p2 = kernels::heat2d();
    let g2 = Grid2D::from_fn(60, 64, |y, x| ((y + 3 * x) % 43) as f64);
    let want2 = Solver::new(p2.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_2d(&g2, 12)
        .unwrap();
    let got2 = Solver::new(p2)
        .method(Method::Dlt)
        .tiling(Tiling::Split { time_block: 4 })
        .threads(4)
        .compile()
        .unwrap()
        .run_2d(&g2, 12)
        .unwrap();
    assert!(max_abs_diff(&want2.to_dense(), &got2.to_dense()) < TOL);

    let p3 = kernels::box3d27p();
    let g3 = Grid3D::from_fn(20, 18, 24, |z, y, x| ((z * 9 + y * 5 + x) % 29) as f64);
    let want3 = Solver::new(p3.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_3d(&g3, 6)
        .unwrap();
    let got3 = Solver::new(p3)
        .method(Method::Dlt)
        .tiling(Tiling::Split { time_block: 3 })
        .threads(4)
        .compile()
        .unwrap()
        .run_3d(&g3, 6)
        .unwrap();
    assert!(max_abs_diff(&want3.to_dense(), &got3.to_dense()) < TOL);
}

#[test]
fn tessellation_3d_folded() {
    let p = kernels::heat3d();
    let g = Grid3D::from_fn(24, 22, 26, |z, y, x| ((z * 3 + y * 7 + x * 11) % 53) as f64);
    let t = 8;
    let want = Solver::new(p.clone())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap()
        .run_3d(&g, t)
        .unwrap();
    let got = Solver::new(p)
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 2 })
        .threads(8)
        .compile()
        .unwrap()
        .run_3d(&g, t)
        .unwrap();
    assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10);
}

#[test]
fn spatial_blocking_matches() {
    let p = kernels::box2d9p();
    let g = Grid2D::from_fn(70, 66, |y, x| ((y * 23 + x) % 37) as f64);
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_2d(&g, 9)
        .unwrap();
    let got = Solver::new(p)
        .method(Method::MultipleLoads)
        .tiling(Tiling::Spatial { block: (16, 32) })
        .threads(5)
        .compile()
        .unwrap()
        .run_2d(&g, 9)
        .unwrap();
    assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < TOL);
}

#[test]
fn odd_step_counts_and_leftovers() {
    // t not divisible by m: leftover steps must complete correctly
    let p = kernels::heat1d();
    let g = Grid1D::from_fn(768, |i| ((i * 29) % 71) as f64);
    let t = 13; // 6 folded + 1 plain
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_1d(&g, t)
        .unwrap();
    let got = Solver::new(p)
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 4 })
        .threads(3)
        .compile()
        .unwrap()
        .run_1d(&g, t)
        .unwrap();
    // interior agreement (folded widens the frozen band)
    let n = 768;
    let band = 2 * t;
    for i in band..n - band {
        assert!((want[i] - got[i]).abs() < TOL, "i={i}");
    }
}
