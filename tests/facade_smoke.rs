//! Facade smoke test: exercise the `stencil_lab` re-export surface
//! end-to-end on a tiny grid, exactly as the README quickstart does.
//!
//! `heat1d` is a convex-combination stencil (weights sum to 1), so the
//! total mass of an impulse must be conserved by every method/tiling
//! combination until the diffusion front reaches the Dirichlet boundary.

use stencil_lab::core::kernels;
use stencil_lab::grid::Grid1D;
use stencil_lab::{Method, Solver, Tiling};

const N: usize = 512;
const STEPS: usize = 40;

fn impulse() -> Grid1D {
    Grid1D::from_fn(N, |i| if i == N / 2 { 1.0 } else { 0.0 })
}

fn mass(g: &Grid1D) -> f64 {
    g.as_slice().iter().sum()
}

#[test]
fn quickstart_path_conserves_mass() {
    // The exact configuration documented in src/lib.rs and the README.
    let out = Solver::new(kernels::heat1d())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 16 })
        .threads(2)
        .compile()
        .unwrap()
        .run_1d(&impulse(), STEPS)
        .unwrap();
    assert!((mass(&out) - 1.0).abs() < 1e-9, "mass = {}", mass(&out));
}

#[test]
fn every_reexported_method_conserves_mass() {
    for method in [
        Method::Scalar,
        Method::MultipleLoads,
        Method::DataReorg,
        Method::Dlt,
        Method::TransposeLayout,
        Method::Folded { m: 1 },
        Method::Folded { m: 2 },
    ] {
        let out = Solver::new(kernels::heat1d())
            .method(method)
            .compile()
            .unwrap()
            .run_1d(&impulse(), STEPS)
            .unwrap();
        assert!(
            (mass(&out) - 1.0).abs() < 1e-9,
            "{method:?}: mass = {}",
            mass(&out)
        );
    }
}

#[test]
fn facade_reexports_agree_with_scalar_reference() {
    let grid = Grid1D::from_fn(N, |i| ((i * 13 + 5) % 89) as f64 * 0.01);
    let want = Solver::new(kernels::heat1d())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_1d(&grid, STEPS)
        .unwrap();
    let got = Solver::new(kernels::heat1d())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 8 })
        .threads(2)
        .compile()
        .unwrap()
        .run_1d(&grid, STEPS)
        .unwrap();
    // Interior agreement; the folded Dirichlet band differs near edges.
    let band = 2 * STEPS;
    let diff = stencil_lab::grid::max_abs_diff(
        &want.as_slice()[band..N - band],
        &got.as_slice()[band..N - band],
    );
    assert!(diff < 1e-9, "interior diff = {diff}");
}

#[test]
fn runtime_reexport_is_usable() {
    let pool = stencil_lab::ThreadPool::new(3);
    assert_eq!(pool.threads(), 3);
    assert!(stencil_lab::simd::backend_summary().contains("lane"));
}
