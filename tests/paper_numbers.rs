//! The paper's quantitative claims that are checkable analytically —
//! pinned as integration tests so the reproduction can't drift.

use stencil_lab::core::plan::FoldPlan;
use stencil_lab::core::{cost, folding, kernels};
use stencil_lab::simd::cost as simd_cost;

/// §3.2, Fig. 4: naive 2-step 2D9P costs |C(E)| = 90 instructions.
#[test]
fn naive_collect_90() {
    assert_eq!(cost::collect_naive(&kernels::box2d9p(), 2), 90);
}

/// §3.2, Eq. 2: direct folded evaluation costs |C(E_Λ)| = 25.
#[test]
fn folded_collect_25() {
    assert_eq!(cost::collect_folded(&kernels::box2d9p(), 2), 25);
}

/// §3.2, Eq. 3: P(E, E_Λ) = 90/25 = 3.6 before counterpart reuse.
#[test]
fn profitability_3_6_before_reuse() {
    let p = cost::collect_naive(&kernels::box2d9p(), 2) as f64
        / cost::collect_folded(&kernels::box2d9p(), 2) as f64;
    assert_eq!(p, 3.6);
}

/// §3.3: counterpart reuse drops the collect to 9 → P = 10.
#[test]
fn planned_collect_9_profitability_10() {
    let plan = FoldPlan::new(&kernels::box2d9p(), 2);
    assert_eq!(cost::collect_planned(&plan), 9);
    assert_eq!(cost::profitability(&kernels::box2d9p(), 2), 10.0);
}

/// §3.4, Fig. 6: shifts reusing turns the 9-op update into 4 ops,
/// a 2.25x reuse profitability.
#[test]
fn shift_reuse_2_25() {
    assert_eq!(cost::collect_shift_reuse(&kernels::box2d9p()), 4);
    assert_eq!(cost::shift_reuse_profitability(&kernels::box2d9p()), 2.25);
}

/// Fig. 4(b): the six λ weights of the symmetric 9-point folding matrix.
#[test]
fn lambda_weights_fig4() {
    let (w1, w2, w3) = (0.1, 0.05, 0.4);
    let p = stencil_lab::Pattern::new_2d(1, &[w1, w2, w1, w2, w3, w2, w1, w2, w1]);
    let f = folding::fold(&p, 2);
    let close = |a: f64, b: f64| (a - b).abs() < 1e-14;
    assert!(close(f.at(0, -2, -2), w1 * w1)); // λ1
    assert!(close(f.at(0, -2, -1), 2.0 * w1 * w2)); // λ2
    assert!(close(f.at(0, -2, 0), 2.0 * w1 * w1 + w2 * w2)); // λ3
    assert!(close(f.at(0, -1, -1), 2.0 * (w1 * w3 + w2 * w2))); // λ4
    assert!(close(f.at(0, -1, 0), 2.0 * (2.0 * w1 * w2 + w2 * w3))); // λ5
    assert!(close(
        f.at(0, 0, 0),
        2.0 * (2.0 * w1 * w1 + w2 * w2) + 2.0 * w2 * w2 + w3 * w3
    )); // λ6
}

/// Fig. 5: the all-w box's counterpart weights are λ(1) = {1,2,3,2,1}
/// scaled, with c2 = 2·c1 and c3 = 3·c1 (the paper's ω2 = (2),
/// ω3 = (0, 3)).
#[test]
fn counterpart_ratios_fig5() {
    let plan = FoldPlan::new(&kernels::box2d9p(), 2);
    assert_eq!(plan.fresh_folds(), 1);
    let c: Vec<f64> = plan.h.iter().map(|t| t[0].coeff).collect();
    assert!((c[1] / c[0] - 2.0).abs() < 1e-12, "c2 = 2 c1");
    assert!((c[2] / c[0] - 3.0).abs() < 1e-12, "c3 = 3 c1");
}

/// §2.3: the AVX2 transpose is 8 instructions in 2 stages ("launched
/// continuously in 8 cycles"); AVX-512 takes 3 stages.
#[test]
fn transpose_scheme_claims() {
    assert_eq!(simd_cost::PAPER_AVX2.instructions(), 8);
    assert_eq!(simd_cost::PAPER_AVX2.stages, 2);
    assert_eq!(simd_cost::PAPER_AVX2.issue_cycles(), 8);
    assert_eq!(simd_cost::PAPER_AVX512.stages, 3);
}

/// §2.2: a radius-r stencil needs 2r assembled vectors per vector set.
#[test]
fn assembled_vector_count() {
    assert_eq!(stencil_lab::simd::assemble::assembled_ops_per_set(1), 2);
    assert_eq!(stencil_lab::simd::assemble::assembled_ops_per_set(2), 4);
}

/// Table 1 point counts, all nine benchmarks.
#[test]
fn table1_point_counts() {
    let t = kernels::table1();
    let pts: Vec<usize> = t.iter().map(|b| b.points).collect();
    assert_eq!(pts, vec![3, 5, 6, 5, 9, 8, 9, 7, 27]);
}

/// The GB stress test: folding stays profitable but trails the
/// symmetric box (the paper's "not prominent" observation).
#[test]
fn gb_profitability_ordering() {
    let gb = cost::profitability(&kernels::gb(), 2);
    let sym = cost::profitability(&kernels::box2d9p(), 2);
    assert!(gb > 1.0);
    assert!(gb < sym);
}
