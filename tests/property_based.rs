//! Property-based tests (proptest) on the core invariants:
//!
//! * folding matrices compose like repeated application;
//! * counterpart plans reconstruct Λ exactly for random patterns;
//! * layout transforms are involutions / inverses on random data;
//! * vectorized executors agree with scalar on random taps and sizes.

use proptest::prelude::*;
use stencil_lab::core::folding::fold;
use stencil_lab::core::{FoldPlan, Pattern};
use stencil_lab::grid::layout::{DltLayout, TransposeLayout};
use stencil_lab::grid::max_abs_diff;
use stencil_lab::simd::{NativeF64x4, NativeF64x8};
use stencil_lab::{Grid1D, Method, Solver};

fn taps3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, 3)
}

fn taps_matrix_3x3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, 9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fold_commutes_with_application_1d(taps in taps3(), seed in 0u64..1000) {
        let p = Pattern::new_1d(&taps);
        let f = fold(&p, 2);
        let n = 96usize;
        let g = Grid1D::from_fn(n, |i| {
            let h = (i as u64).wrapping_mul(seed.wrapping_add(1)).wrapping_mul(0x9E3779B97F4A7C15);
            (h % 1000) as f64 / 1000.0
        });
        let two = Solver::new(p).method(Method::Scalar).compile().unwrap().run_1d(&g, 2).unwrap();
        let one = Solver::new(f).method(Method::Scalar).compile().unwrap().run_1d(&g, 1).unwrap();
        // interior only: the folded Dirichlet band is wider
        for i in 4..n - 4 {
            prop_assert!((two[i] - one[i]).abs() < 1e-9, "i={}", i);
        }
    }

    #[test]
    fn plans_reconstruct_lambda_for_random_2d_patterns(w in taps_matrix_3x3(), m in 1usize..=3) {
        let p = Pattern::new_2d(1, &w);
        let plan = FoldPlan::new(&p, m);
        prop_assert!(plan.reconstruction_error() < 1e-8);
    }

    #[test]
    fn transpose_layout_is_involution(len in 1usize..512, fill in -100.0f64..100.0) {
        let lay = TransposeLayout::new(4);
        let orig: Vec<f64> = (0..len).map(|i| fill + i as f64).collect();
        let mut buf = orig.clone();
        lay.apply::<NativeF64x4>(&mut buf);
        lay.apply::<NativeF64x4>(&mut buf);
        prop_assert_eq!(buf, orig);
    }

    #[test]
    fn dlt_roundtrips(blocks in 1usize..64) {
        let n = blocks * 8;
        let lay = DltLayout::new(n, 8);
        let orig: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut dlt = vec![0.0; n];
        let mut back = vec![0.0; n];
        lay.to_dlt::<NativeF64x8>(&orig, &mut dlt);
        lay.from_dlt::<NativeF64x8>(&dlt, &mut back);
        prop_assert_eq!(back, orig);
    }

    #[test]
    fn executors_agree_on_random_taps(taps in taps3(), n in 32usize..300, t in 1usize..6) {
        let p = Pattern::new_1d(&taps);
        let g = Grid1D::from_fn(n, |i| ((i * 37 + 11) % 101) as f64 * 0.01);
        let want = Solver::new(p.clone()).method(Method::Scalar).compile().unwrap().run_1d(&g, t).unwrap();
        for method in [Method::MultipleLoads, Method::DataReorg, Method::TransposeLayout] {
            let got = Solver::new(p.clone()).method(method).compile().unwrap().run_1d(&g, t).unwrap();
            prop_assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < 1e-10,
                "{:?}", method
            );
        }
    }

    #[test]
    fn weight_sum_powers_under_folding(w in taps_matrix_3x3(), m in 1usize..=4) {
        let p = Pattern::new_2d(1, &w);
        let f = fold(&p, m);
        let want = p.weight_sum().powi(m as i32);
        prop_assert!((f.weight_sum() - want).abs() < 1e-6 * want.abs().max(1.0));
    }

    #[test]
    fn folded_profitability_at_least_one(w in taps_matrix_3x3()) {
        // folding never plans more work than the naive expansion
        let p = Pattern::new_2d(1, &w);
        if p.points() == 0 {
            return Ok(());
        }
        let prof = stencil_lab::core::cost::profitability(&p, 2);
        prop_assert!(prof >= 1.0, "profitability {}", prof);
    }
}
