//! End-to-end protocol tests for the network serving front end
//! (`stencil_serve::net`): a real server on an ephemeral port, real
//! TCP clients, and bit-level assertions against in-process references.
//!
//! Three layers:
//! * **e2e correctness** — 2D/3D jobs over the wire return grids
//!   bit-identical (raw `f64` bits) to running the same plan in
//!   process; multi-round jobs stream progress and match an
//!   identically chunked reference.
//! * **wire properties** — framing round-trips arbitrary payload bits,
//!   and arbitrary byte garbage decodes to typed errors, never panics.
//! * **fault injection** — full queues and exhausted quotas answer
//!   typed `rejected` frames with a backoff hint, disconnects mid-job
//!   release the tenant's quota, half-open connections are reaped by
//!   the idle timeout, and shutdown leaks no pool threads.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use stencil_lab::core::{kernels, Pattern};
use stencil_lab::grid::{Grid2D, Grid3D};
use stencil_lab::runtime::PoolHandle;
use stencil_lab::serve::net::{
    http_get, round_steps, wire, JobEvent, NetClient, NetConfig, NetError, NetServer, RejectReason,
    SubmitHeader,
};
use stencil_lab::serve::{JobDomain, JobSpec, ServeConfig, StatsSnapshot, StencilService};
use stencil_lab::tune::json;

fn start_server(cfg: ServeConfig, net: NetConfig) -> NetServer {
    NetServer::start(StencilService::start(cfg), net).expect("bind ephemeral port")
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        threads: 2,
        workers: 2,
        queue_capacity: 8,
        ..ServeConfig::default()
    }
}

fn submit_header(name: &str, pattern: Pattern, extents: &[usize], steps: usize) -> SubmitHeader {
    SubmitHeader {
        id: 0, // assigned by the client
        name: name.into(),
        pattern,
        extents: extents.to_vec(),
        steps,
        rounds: 1,
        tuning: None,
        deadline_ms: None,
    }
}

fn wait_until(timeout: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    ok()
}

fn bits(data: &[f64]) -> Vec<u64> {
    data.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn e2e_2d_job_is_bit_identical_to_in_process() {
    let server = start_server(small_cfg(), NetConfig::default());
    let grid = Grid2D::from_fn(64, 48, |y, x| ((y * 31 + x * 17) % 23) as f64 * 0.25);
    let steps = 10;

    let mut client = NetClient::connect(server.addr(), "acme").unwrap();
    let out = client
        .run(
            submit_header("heat2d", kernels::heat2d(), &[64, 48], steps),
            &grid.to_dense(),
        )
        .unwrap();
    assert_eq!(out.extents, vec![64, 48]);

    // reference: the same plan the service resolves, run in process
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(grid.clone()), steps);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let reference = plan.run_2d(&grid, steps).unwrap();
    assert_eq!(bits(&out.data), bits(&reference.to_dense()));

    client.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.tenants["acme"].submitted, 1);
    assert_eq!(stats.tenants["acme"].completed, 1);
}

#[test]
fn e2e_3d_job_is_bit_identical_to_in_process() {
    let server = start_server(small_cfg(), NetConfig::default());
    let grid = Grid3D::from_fn(20, 24, 16, |z, y, x| {
        ((z * 7 + y * 5 + x * 3) % 13) as f64 * 0.5 - 1.0
    });
    let steps = 6;

    let mut client = NetClient::connect(server.addr(), "acme").unwrap();
    let out = client
        .run(
            submit_header("heat3d", kernels::heat3d(), &[20, 24, 16], steps),
            &grid.to_dense(),
        )
        .unwrap();
    assert_eq!(out.extents, vec![20, 24, 16]);

    let spec = JobSpec::new(kernels::heat3d(), JobDomain::D3(grid.clone()), steps);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let reference = plan.run_3d(&grid, steps).unwrap();
    assert_eq!(bits(&out.data), bits(&reference.to_dense()));

    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn multi_round_jobs_stream_progress_and_match_chunked_reference() {
    let server = start_server(small_cfg(), NetConfig::default());
    let grid = Grid2D::from_fn(48, 40, |y, x| ((y + 2 * x) % 11) as f64);
    let (steps, rounds) = (8usize, 3usize);

    let mut client = NetClient::connect(server.addr(), "acme").unwrap();
    let mut header = submit_header("heat2d", kernels::heat2d(), &[48, 40], steps);
    header.rounds = rounds;
    let id = client.submit(header, &grid.to_dense()).unwrap();
    let mut seen_rounds = Vec::new();
    let outcome = loop {
        match client.next_event(id).unwrap() {
            JobEvent::Progress { round, rounds: n } => {
                assert_eq!(n, 3);
                seen_rounds.push(round);
            }
            JobEvent::Done(out) => break out,
        }
    };
    // every non-final round reported, in order
    assert_eq!(seen_rounds, vec![1, 2]);

    // the reference must chunk identically: folded/tessellated plans
    // are only bit-stable for a given step partition
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(grid.clone()), steps);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let mut reference = grid;
    for chunk in round_steps(steps, rounds) {
        reference = plan.run_2d(&reference, chunk).unwrap();
    }
    assert_eq!(bits(&outcome.data), bits(&reference.to_dense()));

    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn inline_patterns_serve_over_the_wire() {
    let server = start_server(small_cfg(), NetConfig::default());
    let pattern = Pattern::new_1d(&[0.25, 0.5, 0.25]);
    let data: Vec<f64> = (0..512).map(|i| ((i * 13) % 29) as f64).collect();

    let mut client = NetClient::connect(server.addr(), "t").unwrap();
    let out = client
        .run(submit_header("blur", pattern.clone(), &[512], 5), &data)
        .unwrap();

    let grid = stencil_lab::grid::Grid1D::from_fn(512, |i| data[i]);
    let spec = JobSpec::new(pattern, JobDomain::D1(grid.clone()), 5);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let reference = plan.run_1d(&grid, 5).unwrap();
    assert_eq!(bits(&out.data), bits(reference.as_slice()));

    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_jobs_multiplex_on_one_connection() {
    let server = start_server(small_cfg(), NetConfig::default());
    let mut client = NetClient::connect(server.addr(), "acme").unwrap();
    let grid = Grid2D::from_fn(32, 32, |y, x| (y * x % 7) as f64);
    let dense = grid.to_dense();
    // three jobs in flight at once; their done frames interleave and
    // the client must demultiplex by id
    let ids: Vec<u64> = (0..3)
        .map(|_| {
            client
                .submit(
                    submit_header("heat2d", kernels::heat2d(), &[32, 32], 4),
                    &dense,
                )
                .unwrap()
        })
        .collect();
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(grid.clone()), 4);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let expected = bits(&plan.run_2d(&grid, 4).unwrap().to_dense());
    // collect in reverse submission order to force buffering
    for &id in ids.iter().rev() {
        let out = loop {
            match client.next_event(id).unwrap() {
                JobEvent::Progress { .. } => continue,
                JobEvent::Done(out) => break out,
            }
        };
        assert_eq!(bits(&out.data), expected);
    }
    client.bye().unwrap();
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_payload_frames_round_trip_arbitrary_bits(
        raw in prop::collection::vec(0u64..u64::MAX, 0..48),
    ) {
        // payloads are raw f64 bits: NaN payloads, signalling bits,
        // infinities and subnormals must all survive verbatim
        let data: Vec<f64> = raw.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = Vec::new();
        wire::encode(&wire::Frame::Payload(data), &mut buf);
        let (frame, used) = wire::decode(&buf, wire::DEFAULT_MAX_FRAME).unwrap().unwrap();
        prop_assert_eq!(used, buf.len());
        let wire::Frame::Payload(back) = frame else {
            return Err("payload decoded as header".to_string());
        };
        prop_assert_eq!(bits(&back), raw);
    }

    #[test]
    fn wire_decode_of_arbitrary_garbage_never_panics(
        words in prop::collection::vec(0u32..=u32::MAX - 1, 0..16),
        max in 16usize..4096,
    ) {
        // typed error or incomplete — never a panic, never a hang
        let junk: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let _ = wire::decode(&junk, max);
        let _ = wire::decode_eof(&junk, max);
    }

    #[test]
    fn wire_truncations_of_valid_frames_are_typed(
        raw in prop::collection::vec(0u64..u64::MAX, 1..16),
        cut_seed in 0usize..10_000,
    ) {
        let data: Vec<f64> = raw.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = Vec::new();
        wire::encode(&wire::Frame::Payload(data), &mut buf);
        let cut = 1 + cut_seed % (buf.len() - 1);
        // a prefix is "incomplete", and at stream end it is a typed
        // truncation error carrying the byte counts
        prop_assert!(wire::decode(&buf[..cut], wire::DEFAULT_MAX_FRAME).unwrap().is_none());
        match wire::decode_eof(&buf[..cut], wire::DEFAULT_MAX_FRAME) {
            Err(wire::WireError::Truncated { have, need }) => {
                prop_assert_eq!(have, cut);
                // inside the length prefix the decoder only knows it
                // needs the prefix; after it, the whole frame
                let expect = if cut < wire::LEN_PREFIX { wire::LEN_PREFIX } else { buf.len() };
                prop_assert_eq!(need, expect);
            }
            other => return Err(format!("expected truncated: {other:?}")),
        }
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_server_survives() {
    use std::io::{Read, Write};
    let server = start_server(small_cfg(), NetConfig::default());

    // an unknown frame kind: the server answers a typed error frame
    // and closes — it must not hang, panic, or take the loop down
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&[0, 0, 0, 1, b'X']).unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap(); // server closes after the error
    let (frame, _) = wire::decode(&buf, wire::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("one complete error frame");
    let wire::Frame::Header(doc) = frame else {
        panic!("expected a header frame")
    };
    let msg = wire::ServerMsg::from_json(&doc).unwrap();
    let wire::ServerMsg::Error { message } = msg else {
        panic!("expected a protocol error, got {msg:?}")
    };
    assert!(
        message.contains("0x58"),
        "names the bad kind byte: {message}"
    );

    // an over-limit length prefix gets the same treatment
    let mut raw2 = std::net::TcpStream::connect(server.addr()).unwrap();
    raw2.write_all(&[0x7f, 0xff, 0xff, 0xff]).unwrap();
    let mut buf2 = Vec::new();
    raw2.read_to_end(&mut buf2).unwrap();
    assert!(!buf2.is_empty(), "typed error frame, not a silent drop");

    // the server is still fully functional
    let mut client = NetClient::connect(server.addr(), "t").unwrap();
    let (status, _) = client.health().unwrap();
    assert_eq!(status, "ok");
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_retry_hint_instead_of_blocking() {
    // one worker, one queue slot: a burst must shed load
    let server = start_server(
        ServeConfig {
            threads: 1,
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
        NetConfig {
            tenant_quota: 64,
            ..NetConfig::default()
        },
    );
    let grid = Grid2D::from_fn(96, 96, |y, x| ((y + x) % 9) as f64);
    let dense = grid.to_dense();
    let mut client = NetClient::connect(server.addr(), "burst").unwrap();
    let mut accepted = Vec::new();
    let mut queue_full = 0u32;
    for _ in 0..6 {
        match client.submit(
            submit_header("heat2d", kernels::heat2d(), &[96, 96], 40),
            &dense,
        ) {
            Ok(id) => accepted.push(id),
            Err(NetError::Rejected {
                reason: RejectReason::QueueFull,
                retry_after,
            }) => {
                assert!(retry_after >= Duration::from_millis(1));
                assert!(retry_after <= Duration::from_secs(5));
                queue_full += 1;
            }
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    assert!(
        queue_full > 0,
        "a 6-job burst into a 1-slot queue must shed"
    );
    assert!(!accepted.is_empty(), "the queue still admits work");

    // rejection is load shedding, not an outage: while the backlog
    // drains, the accept loop answers new connections
    let mut probe = NetClient::connect(server.addr(), "probe").unwrap();
    assert_eq!(probe.health().unwrap().0, "ok");
    probe.bye().unwrap();

    // every accepted job completes with the correct answer
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(grid.clone()), 40);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let expected = bits(&plan.run_2d(&grid, 40).unwrap().to_dense());
    for id in accepted {
        let out = loop {
            match client.next_event(id).unwrap() {
                JobEvent::Progress { .. } => continue,
                JobEvent::Done(out) => break out,
            }
        };
        assert_eq!(bits(&out.data), expected);
    }
    client.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.tenants["burst"].rejected, u64::from(queue_full));
}

#[test]
fn tenant_quota_rejects_a_burst_and_tracks_counters() {
    let server = start_server(
        ServeConfig {
            threads: 1,
            workers: 1,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        NetConfig {
            tenant_quota: 2,
            ..NetConfig::default()
        },
    );
    // hand-rolled burst: all four submissions land in one read batch,
    // so the gate sees them back-to-back before any job can complete
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut hello = Vec::new();
    wire::encode(
        &wire::Frame::Header(
            wire::ClientMsg::Hello {
                tenant: "noisy".into(),
            }
            .to_json(),
        ),
        &mut hello,
    );
    raw.write_all(&hello).unwrap();
    let read_msg = |stream: &mut std::net::TcpStream, buf: &mut Vec<u8>| loop {
        if let Some((frame, used)) = wire::decode(buf, wire::DEFAULT_MAX_FRAME).unwrap() {
            buf.drain(..used);
            let wire::Frame::Header(doc) = frame else {
                panic!("expected header frame")
            };
            return wire::ServerMsg::from_json(&doc).unwrap();
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed unexpectedly");
        buf.extend_from_slice(&chunk[..n]);
    };
    let mut rbuf = Vec::new();
    assert!(matches!(
        read_msg(&mut raw, &mut rbuf),
        wire::ServerMsg::HelloOk { quota: 2, .. }
    ));

    let grid = Grid2D::from_fn(96, 96, |y, x| ((2 * y + x) % 5) as f64);
    let mut burst = Vec::new();
    for id in 1..=4u64 {
        let mut h = submit_header("heat2d", kernels::heat2d(), &[96, 96], 60);
        h.id = id;
        wire::encode(
            &wire::Frame::Header(wire::ClientMsg::Submit(h).to_json()),
            &mut burst,
        );
        wire::encode(&wire::Frame::Payload(grid.to_dense()), &mut burst);
    }
    raw.write_all(&burst).unwrap();

    let mut accepted = 0;
    let mut quota_rejected = 0;
    for _ in 0..4 {
        match read_msg(&mut raw, &mut rbuf) {
            wire::ServerMsg::Accepted { .. } => accepted += 1,
            wire::ServerMsg::Rejected {
                reason: RejectReason::QuotaExceeded,
                retry_after_ms,
                ..
            } => {
                assert!(retry_after_ms >= 1);
                quota_rejected += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(accepted, 2, "exactly the quota is admitted");
    assert_eq!(quota_rejected, 2, "the rest are refused at the gate");
    drop(raw);

    // the per-tenant counters export the same story
    assert!(wait_until(Duration::from_secs(60), || {
        let s = server.service().stats();
        s.tenants.get("noisy").is_some_and(|t| t.rejected == 2)
    }));
    let stats = server.shutdown();
    assert_eq!(stats.tenants["noisy"].submitted, 2);
    assert_eq!(stats.tenants["noisy"].rejected, 2);
}

#[test]
fn disconnect_mid_job_releases_the_tenant_quota() {
    let server = start_server(
        ServeConfig {
            threads: 1,
            workers: 1,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
        NetConfig {
            tenant_quota: 1,
            ..NetConfig::default()
        },
    );
    let grid = Grid2D::from_fn(96, 96, |y, x| ((y ^ x) % 7) as f64);

    // client A occupies the tenant's whole quota, then vanishes
    // without reading its result
    let mut a = NetClient::connect(server.addr(), "flaky").unwrap();
    a.submit(
        submit_header("heat2d", kernels::heat2d(), &[96, 96], 80),
        &grid.to_dense(),
    )
    .unwrap();
    drop(a); // no bye: a mid-job disconnect

    // client B (same tenant) must eventually be admitted: the reap
    // released A's quota slot whether or not A's round had finished
    let mut b = NetClient::connect(server.addr(), "flaky").unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let id = loop {
        match b.submit(
            submit_header("heat2d", kernels::heat2d(), &[96, 96], 4),
            &grid.to_dense(),
        ) {
            Ok(id) => break id,
            Err(NetError::Rejected { retry_after, .. }) => {
                assert!(
                    Instant::now() < deadline,
                    "quota never released after disconnect"
                );
                std::thread::sleep(retry_after.min(Duration::from_millis(20)));
            }
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    };
    while let JobEvent::Progress { .. } = b.next_event(id).unwrap() {}
    b.bye().unwrap();
    server.shutdown();
}

#[test]
fn cancel_releases_the_quota_and_acknowledges() {
    let server = start_server(
        small_cfg(),
        NetConfig {
            tenant_quota: 1,
            ..NetConfig::default()
        },
    );
    let grid = Grid2D::from_fn(96, 96, |y, x| ((y + 3 * x) % 8) as f64);
    let mut client = NetClient::connect(server.addr(), "t").unwrap();
    // a long multi-round job: cancelling right after acceptance lands
    // while rounds are still pending
    let mut h = submit_header("heat2d", kernels::heat2d(), &[96, 96], 400);
    h.rounds = 8;
    let id = client.submit(h, &grid.to_dense()).unwrap();
    client.cancel(id).unwrap();
    // the quota slot is free again immediately
    let id2 = client
        .submit(
            submit_header("heat2d", kernels::heat2d(), &[96, 96], 2),
            &grid.to_dense(),
        )
        .unwrap();
    while let JobEvent::Progress { .. } = client.next_event(id2).unwrap() {}
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn half_open_connections_are_reaped_by_the_idle_timeout() {
    let server = start_server(
        small_cfg(),
        NetConfig {
            idle_timeout: Duration::from_millis(150),
            ..NetConfig::default()
        },
    );
    // connect and say nothing — a half-open peer
    let zombie = std::net::TcpStream::connect(server.addr()).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || server.connections() == 1),
        "zombie accepted"
    );
    assert!(
        wait_until(Duration::from_secs(10), || server.connections() == 0),
        "zombie reaped by idle timeout"
    );
    drop(zombie);

    // active connections are not reaped while a job is in flight or
    // traffic flows: a client completing work within the window works
    let mut client = NetClient::connect(server.addr(), "t").unwrap();
    let grid = Grid2D::from_fn(32, 32, |y, x| (y + x) as f64);
    client
        .run(
            submit_header("heat2d", kernels::heat2d(), &[32, 32], 2),
            &grid.to_dense(),
        )
        .unwrap();
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn http_scrape_surface_serves_healthz_and_metrics() {
    let server = start_server(small_cfg(), NetConfig::default());
    // run one job so the counters are non-trivial
    let mut client = NetClient::connect(server.addr(), "scrape").unwrap();
    let grid = Grid2D::from_fn(32, 32, |y, x| (y * x % 5) as f64);
    client
        .run(
            submit_header("heat2d", kernels::heat2d(), &[32, 32], 3),
            &grid.to_dense(),
        )
        .unwrap();

    let (code, body) = http_get(server.addr(), "/healthz").unwrap();
    assert_eq!(code, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("status").and_then(json::Value::as_str), Some("ok"));
    // host identity and uptime anchor ride the liveness document
    assert!(doc
        .get("hostname")
        .and_then(json::Value::as_str)
        .is_some_and(|h| !h.is_empty()));
    assert!(doc
        .get("isa")
        .and_then(json::Value::as_str)
        .is_some_and(|i| i.contains("-w")));
    assert!(doc.get("threads").and_then(json::Value::as_num).unwrap() >= 1.0);
    assert!(
        doc.get("started_unix")
            .and_then(json::Value::as_num)
            .unwrap()
            > 0.0
    );

    // /metrics is the full stats document, parseable by the pinned
    // schema, with the tenant counters inside
    let (code, body) = http_get(server.addr(), "/metrics").unwrap();
    assert_eq!(code, 200);
    let snap = StatsSnapshot::from_json(&json::parse(&body).unwrap())
        .expect("metrics document matches the StatsSnapshot schema");
    assert!(snap.jobs_completed >= 1);
    assert_eq!(snap.tenants["scrape"].completed, 1);

    // ?format=prometheus switches the same endpoint to the text
    // exposition, without disturbing the pinned JSON above
    let (code, text) = http_get(server.addr(), "/metrics?format=prometheus").unwrap();
    assert_eq!(code, 200);
    assert!(text.contains("# TYPE stencil_jobs_completed_total counter"));
    assert!(text.contains("stencil_job_latency_microseconds_bucket"));
    assert!(text.contains("tenant=\"scrape\""));

    // /trace serves a Chrome trace-event document (empty but
    // well-formed while tracing is disabled)
    let (code, trace) = http_get(server.addr(), "/trace?ms=60000").unwrap();
    assert_eq!(code, 200);
    let doc = json::parse(&trace).unwrap();
    assert!(doc.get("traceEvents").is_some());

    let (code, _) = http_get(server.addr(), "/nope").unwrap();
    assert_eq!(code, 404);

    // the in-band stats message returns the same document shape
    let doc = client.stats().unwrap();
    assert!(StatsSnapshot::from_json(&doc).is_some());
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_releases_pool_threads() {
    // hold a pool handle: after shutdown only this handle and the
    // shared registry's own clone may remain — anything more is a leak
    let pool = PoolHandle::shared(2);
    let server = start_server(small_cfg(), NetConfig::default());
    let mut client = NetClient::connect(server.addr(), "t").unwrap();
    let grid = Grid2D::from_fn(48, 48, |y, x| ((y + x) % 3) as f64);
    client
        .run(
            submit_header("heat2d", kernels::heat2d(), &[48, 48], 4),
            &grid.to_dense(),
        )
        .unwrap();
    client.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.jobs_completed, 1);
    assert!(
        wait_until(Duration::from_secs(10), || pool.strong_count() == 2),
        "server shutdown must release every plan's pool handle (count={})",
        pool.strong_count()
    );
}
