//! Integration: the compile-once/run-many `Plan` API.
//!
//! Three claims are pinned here:
//!
//! 1. **Typed error surface** — every invalid method × tiling ×
//!    dimension combination returns the right [`PlanError`] variant from
//!    `compile()`; no configuration reachable through the public API
//!    panics.
//! 2. **Plan reuse** — a single compiled plan produces identical results
//!    across repeated runs while reusing its thread pool and its folded
//!    kernel (no per-run re-planning).
//! 3. **Leftover steps** — the `t % m` tessellate tail goes through the
//!    same range-step kernels as the tiled body, in all three
//!    dimensions.

use stencil_lab::core::kernels;
use stencil_lab::grid::max_abs_diff;
use stencil_lab::{
    Domain, Grid1D, Grid2D, Grid3D, Method, Pattern, PlanError, PoolHandle, Ring3, Solver, Tiling,
    Tuning, Width,
};

// ---------------------------------------------------------------------
// 1. error surface
// ---------------------------------------------------------------------

fn compile_err(s: Solver) -> PlanError {
    s.compile().expect_err("configuration must be rejected")
}

#[test]
fn dlt_rejects_tessellate_in_every_dimension() {
    for p in [kernels::heat1d(), kernels::heat2d(), kernels::heat3d()] {
        let err = compile_err(
            Solver::new(p)
                .method(Method::Dlt)
                .tiling(Tiling::Tessellate { time_block: 4 }),
        );
        assert!(
            matches!(
                err,
                PlanError::IncompatibleMethodTiling {
                    method: Method::Dlt,
                    tiling: Tiling::Tessellate { .. },
                }
            ),
            "{err}"
        );
    }
}

#[test]
fn split_rejects_everything_but_dlt() {
    for p in [kernels::heat1d(), kernels::heat2d(), kernels::heat3d()] {
        for m in [
            Method::Scalar,
            Method::MultipleLoads,
            Method::DataReorg,
            Method::TransposeLayout,
            Method::Folded { m: 2 },
        ] {
            let err = compile_err(
                Solver::new(p.clone())
                    .method(m)
                    .tiling(Tiling::Split { time_block: 4 }),
            );
            assert!(
                matches!(
                    err,
                    PlanError::IncompatibleMethodTiling {
                        tiling: Tiling::Split { .. },
                        ..
                    }
                ),
                "{m:?}: {err}"
            );
        }
    }
}

#[test]
fn spatial_rejects_register_methods_and_dlt() {
    for m in [
        Method::Dlt,
        Method::TransposeLayout,
        Method::Folded { m: 2 },
    ] {
        let err = compile_err(
            Solver::new(kernels::heat2d())
                .method(m)
                .tiling(Tiling::Spatial { block: (8, 8) }),
        );
        assert!(
            matches!(err, PlanError::IncompatibleMethodTiling { .. }),
            "{m:?}: {err}"
        );
    }
}

#[test]
fn spatial_is_not_available_in_1d() {
    let err = compile_err(Solver::new(kernels::heat1d()).tiling(Tiling::Spatial { block: (8, 8) }));
    assert!(
        matches!(
            err,
            PlanError::UnsupportedDimension {
                pattern_dims: 1,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn block_free_dlt_is_1d_only() {
    for p in [kernels::heat2d(), kernels::heat3d()] {
        let dims = p.dims();
        let err = compile_err(Solver::new(p).method(Method::Dlt));
        assert!(
            matches!(
                err,
                PlanError::UnsupportedDimension { pattern_dims, .. } if pattern_dims == dims
            ),
            "{err}"
        );
    }
}

#[test]
fn zero_fold_factor_is_invalid() {
    let err = compile_err(Solver::new(kernels::heat1d()).method(Method::Folded { m: 0 }));
    assert!(matches!(err, PlanError::InvalidFold { m: 0, .. }), "{err}");
}

#[test]
fn invalid_ring_is_rejected_before_any_tuner_involvement() {
    let bad = Ring3 { depth: 0, slab: 4 };
    // static path: typed error, not a panic
    let err = compile_err(
        Solver::new(kernels::heat3d())
            .method(Method::Folded { m: 2 })
            .ring3(bad),
    );
    assert!(matches!(err, PlanError::InvalidRing { .. }), "{err}");
    // measured path: the pinned ring is validated before the tuner is
    // even looked up — no tuner is installed in this test binary, yet
    // the error is still InvalidRing, never TunerUnavailable or a
    // TuningFailed after a wasted probe pass
    let err = compile_err(
        Solver::new(kernels::heat3d())
            .method(Method::Auto)
            .tiling(Tiling::Auto)
            .tuning(Tuning::Measured)
            .ring3(bad),
    );
    assert!(matches!(err, PlanError::InvalidRing { .. }), "{err}");
    // a valid ring sticks on the compiled plan
    let good = Ring3 { depth: 6, slab: 3 };
    let plan = Solver::new(kernels::heat3d())
        .method(Method::Folded { m: 2 })
        .ring3(good)
        .compile()
        .unwrap();
    assert_eq!(plan.ring3(), Some(good));
}

#[test]
fn oversized_fold_radius_is_invalid() {
    // 1D: d1p5 has radius 2; m = 3 folds to radius 6 > 4 lanes
    let err = compile_err(
        Solver::new(kernels::d1p5())
            .method(Method::Folded { m: 3 })
            .width(Width::W4),
    );
    assert!(
        matches!(
            err,
            PlanError::InvalidFold {
                m: 3,
                folded_radius: 6,
                max_radius: 4,
            }
        ),
        "{err}"
    );
    // 3D: the z-ring window is bounded to folded radius 4 — a radius-2
    // pattern folded three times (radius 6) exceeds it at any width
    let err = compile_err(Solver::new(kernels::box3d125p()).method(Method::Folded { m: 3 }));
    assert!(
        matches!(
            err,
            PlanError::InvalidFold {
                m: 3,
                folded_radius: 6,
                max_radius: 4,
            }
        ),
        "{err}"
    );
    // ...and scalar lanes keep the narrow cap (the fallback sweep has
    // no register window to spend)
    let err = compile_err(
        Solver::new(kernels::heat3d())
            .method(Method::Folded { m: 3 })
            .width(Width::W1),
    );
    assert!(
        matches!(
            err,
            PlanError::InvalidFold {
                m: 3,
                folded_radius: 3,
                max_radius: 2,
            }
        ),
        "{err}"
    );
}

#[test]
fn degenerate_tiling_parameters_are_invalid() {
    let err =
        compile_err(Solver::new(kernels::heat1d()).tiling(Tiling::Tessellate { time_block: 0 }));
    assert!(matches!(err, PlanError::InvalidTiling { .. }), "{err}");
    let err = compile_err(
        Solver::new(kernels::heat1d())
            .method(Method::Dlt)
            .tiling(Tiling::Split { time_block: 0 }),
    );
    assert!(matches!(err, PlanError::InvalidTiling { .. }), "{err}");
    let err = compile_err(Solver::new(kernels::heat2d()).tiling(Tiling::Spatial { block: (0, 8) }));
    assert!(matches!(err, PlanError::InvalidTiling { .. }), "{err}");
}

#[test]
fn dlt_rejects_ragged_grids_with_a_typed_error() {
    let plan = Solver::new(kernels::heat1d())
        .method(Method::Dlt)
        .width(Width::W4)
        .compile()
        .unwrap();
    let ragged = Grid1D::from_fn(1023, |i| i as f64);
    assert!(matches!(
        plan.run_1d(&ragged, 2),
        Err(PlanError::MisalignedDomain {
            extent: 1023,
            lanes: 4,
        })
    ));
    // aligned grids run fine on the very same plan
    let aligned = Grid1D::from_fn(1024, |i| (i % 13) as f64);
    assert!(plan.run_1d(&aligned, 2).is_ok());
}

#[test]
fn dlt_rejects_grids_shorter_than_the_lifted_radius() {
    // aligned (4 % 4 == 0) but the lifted row has 1 point < radius 2
    let plan = Solver::new(kernels::d1p5())
        .method(Method::Dlt)
        .width(Width::W4)
        .compile()
        .unwrap();
    let tiny = Grid1D::from_fn(4, |i| i as f64);
    assert!(matches!(
        plan.run_1d(&tiny, 1),
        Err(PlanError::DomainTooSmall { extent: 4, min: 8 })
    ));
}

#[test]
fn run_rejects_wrong_dimensionality() {
    let plan = Solver::new(kernels::heat1d()).compile().unwrap();
    let g2 = Grid2D::from_fn(16, 16, |_, _| 0.0);
    let g3 = Grid3D::from_fn(8, 8, 8, |_, _, _| 0.0);
    assert!(matches!(
        plan.run_2d(&g2, 1),
        Err(PlanError::DimensionMismatch {
            pattern_dims: 1,
            domain_dims: 2,
        })
    ));
    assert!(matches!(
        plan.run_3d(&g3, 1),
        Err(PlanError::DimensionMismatch {
            pattern_dims: 1,
            domain_dims: 3,
        })
    ));
    let plan2 = Solver::new(kernels::heat2d()).compile().unwrap();
    let g1 = Grid1D::from_fn(64, |_| 0.0);
    assert!(matches!(
        plan2.run_1d(&g1, 1),
        Err(PlanError::DimensionMismatch { .. })
    ));
}

#[test]
fn no_configuration_panics_through_the_public_api() {
    // sweep the whole configuration space: compile() either returns a
    // plan that runs, or a typed error — never a panic
    let patterns: [Pattern; 3] = [kernels::heat1d(), kernels::heat2d(), kernels::heat3d()];
    let methods = [
        Method::Scalar,
        Method::MultipleLoads,
        Method::DataReorg,
        Method::Dlt,
        Method::TransposeLayout,
        Method::Folded { m: 1 },
        Method::Folded { m: 2 },
        Method::Folded { m: 9 },
        Method::Auto,
    ];
    let tilings = [
        Tiling::None,
        Tiling::Tessellate { time_block: 3 },
        Tiling::Split { time_block: 2 },
        Tiling::Spatial { block: (8, 8) },
    ];
    let g1 = Grid1D::from_fn(128, |i| (i % 7) as f64);
    let g2 = Grid2D::from_fn(32, 36, |y, x| ((y + x) % 5) as f64);
    let g3 = Grid3D::from_fn(16, 14, 18, |z, y, x| ((z + y + x) % 3) as f64);
    let (mut ok, mut rejected) = (0usize, 0usize);
    for p in &patterns {
        for &m in &methods {
            for &tl in &tilings {
                let cfg = Solver::new(p.clone()).method(m).tiling(tl).threads(2);
                match cfg.compile() {
                    Ok(plan) => {
                        ok += 1;
                        let run_result = match p.dims() {
                            1 => plan.run_1d(&g1, 4).map(drop),
                            2 => plan.run_2d(&g2, 4).map(drop),
                            _ => plan.run_3d(&g3, 4).map(drop),
                        };
                        // a compiled plan may still reject a ragged grid
                        // (DLT alignment) — but only with a typed error
                        match run_result {
                            Ok(()) => {}
                            Err(PlanError::MisalignedDomain { .. }) => {}
                            Err(e) => panic!("unexpected run error for {m:?}/{tl:?}: {e}"),
                        }
                    }
                    Err(_) => rejected += 1,
                }
            }
        }
    }
    assert_eq!(
        ok + rejected,
        patterns.len() * methods.len() * tilings.len()
    );
    assert!(ok > 0 && rejected > 0);
}

// ---------------------------------------------------------------------
// 2. plan reuse
// ---------------------------------------------------------------------

#[test]
fn compiled_plan_is_reused_across_runs() {
    let plan = Solver::new(kernels::box2d9p())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 3 })
        .threads(4)
        .compile()
        .unwrap();

    // the derived artifacts exist before any run and are owned by the plan
    assert_eq!(plan.method(), Method::Folded { m: 2 });
    assert_eq!(plan.m(), 2);
    assert_eq!(plan.effective_radius(), 2);
    let folded_before: *const Pattern = plan.folded();
    let pool_before = plan.pool().clone();

    let g = Grid2D::from_fn(64, 72, |y, x| ((y * 13 + x * 7) % 97) as f64);
    let first = plan.run_2d(&g, 10).unwrap();
    for _ in 0..2 {
        let again = plan.run_2d(&g, 10).unwrap();
        // bit-identical: same kernel plan, same schedule, no re-planning
        assert_eq!(first.to_dense(), again.to_dense());
    }

    // the folded pattern Λ and the thread pool are the same objects the
    // plan was compiled with — nothing was rebuilt per run
    assert!(std::ptr::eq(folded_before, plan.folded() as *const Pattern));
    assert!(PoolHandle::ptr_eq(&pool_before, plan.pool()));
    assert_eq!(plan.pool().threads(), 4);

    // and the result matches the one-shot reference semantics
    let want = Solver::new(kernels::box2d9p())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap()
        .run_2d(&g, 10)
        .unwrap();
    assert!(max_abs_diff(&want.to_dense(), &first.to_dense()) < 1e-10);
}

#[test]
fn plans_can_share_one_pool() {
    let pool = PoolHandle::new(3);
    let a = Solver::new(kernels::heat1d())
        .tiling(Tiling::Tessellate { time_block: 4 })
        .pool(pool.clone())
        .compile()
        .unwrap();
    let b = Solver::new(kernels::heat2d())
        .tiling(Tiling::Tessellate { time_block: 2 })
        .pool(pool.clone())
        .compile()
        .unwrap();
    assert!(PoolHandle::ptr_eq(a.pool(), b.pool()));
    assert!(PoolHandle::ptr_eq(a.pool(), &pool));
    // both plans run fine on the shared workers, repeatedly
    let g1 = Grid1D::from_fn(512, |i| (i % 11) as f64);
    let g2 = Grid2D::from_fn(40, 44, |y, x| ((y + x) % 7) as f64);
    for _ in 0..3 {
        a.run_1d(&g1, 6).unwrap();
        b.run_2d(&g2, 4).unwrap();
    }
}

#[test]
fn dimension_generic_run() {
    fn advance<D: Domain>(plan: &stencil_lab::Plan, state: &D, t: usize) -> D {
        plan.run(state, t).expect("matching dimensionality")
    }
    let p1 = Solver::new(kernels::heat1d()).compile().unwrap();
    let p2 = Solver::new(kernels::heat2d()).compile().unwrap();
    let p3 = Solver::new(kernels::heat3d()).compile().unwrap();
    let g1 = advance(&p1, &Grid1D::from_fn(64, |i| i as f64), 2);
    let g2 = advance(&p2, &Grid2D::from_fn(16, 16, |y, x| (y + x) as f64), 2);
    let g3 = advance(
        &p3,
        &Grid3D::from_fn(8, 8, 8, |z, y, x| (z + y + x) as f64),
        2,
    );
    assert_eq!(g1.len(), 64);
    assert_eq!(g2.to_dense().len(), 256);
    assert_eq!(g3.to_dense().len(), 512);
}

// ---------------------------------------------------------------------
// 3. leftover (t % m) steps through the tiled range kernels
// ---------------------------------------------------------------------

fn scalar_ref_1d(p: &Pattern, g: &Grid1D, t: usize) -> Grid1D {
    Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_1d(g, t)
        .unwrap()
}

#[test]
fn tessellate_leftover_steps_1d() {
    let p = kernels::heat1d();
    let g = Grid1D::from_fn(1024, |i| ((i * 29) % 71) as f64);
    let plan = Solver::new(p.clone())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 4 })
        .threads(3)
        .compile()
        .unwrap();
    for t in [13usize, 15] {
        // odd: one unfolded tail step
        let want = scalar_ref_1d(&p, &g, t);
        let got = plan.run_1d(&g, t).unwrap();
        let band = 2 * t;
        assert!(
            max_abs_diff(
                &want.as_slice()[band..1024 - band],
                &got.as_slice()[band..1024 - band]
            ) < 1e-11,
            "t={t}"
        );
    }
}

#[test]
fn tessellate_leftover_steps_2d() {
    let p = kernels::box2d9p();
    let g = Grid2D::from_fn(72, 80, |y, x| ((y * 3 + x * 19) % 101) as f64);
    let t = 9; // m = 2 -> 4 folded rounds + 1 tail step
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_2d(&g, t)
        .unwrap();
    let got = Solver::new(p)
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 2 })
        .threads(4)
        .compile()
        .unwrap()
        .run_2d(&g, t)
        .unwrap();
    let (wd, gd) = (want.to_dense(), got.to_dense());
    let (ny, nx) = (72, 80);
    let band = 2 * t;
    let mut err = 0.0f64;
    for y in band..ny - band {
        for x in band..nx - band {
            err = err.max((wd[y * nx + x] - gd[y * nx + x]).abs());
        }
    }
    assert!(err < 1e-10, "interior err = {err}");
}

#[test]
fn tessellate_leftover_steps_3d() {
    let p = kernels::heat3d();
    let g = Grid3D::from_fn(28, 26, 30, |z, y, x| ((z * 3 + y * 7 + x * 11) % 53) as f64);
    let t = 5; // m = 2 -> 2 folded rounds + 1 tail step
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_3d(&g, t)
        .unwrap();
    let got = Solver::new(p)
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 2 })
        .threads(4)
        .compile()
        .unwrap()
        .run_3d(&g, t)
        .unwrap();
    let (wd, gd) = (want.to_dense(), got.to_dense());
    let (nz, ny, nx) = (28, 26, 30);
    let band = 2 * t;
    let mut err = 0.0f64;
    for z in band..nz - band {
        for y in band..ny - band {
            for x in band..nx - band {
                err = err.max((wd[(z * ny + y) * nx + x] - gd[(z * ny + y) * nx + x]).abs());
            }
        }
    }
    assert!(err < 1e-10, "interior err = {err}");
}
