//! Integration: the measured autotuning subsystem end-to-end through
//! the facade — probe, persist, reuse, and the determinism contract of
//! `Tuning::CacheOnly`.
//!
//! The probe-count assertions share one installed process-wide tuner,
//! so everything counter-sensitive lives in a single sequential test
//! (`measured_tuning_end_to_end`); the other tests use private
//! `AutoTuner` instances with their own cache files and counters.

use std::path::PathBuf;
use std::sync::OnceLock;
use stencil_lab::core::kernels;
use stencil_lab::core::tune::{TuneFailure, TuneRequest};
use stencil_lab::grid::max_abs_diff;
use stencil_lab::tune::cache::TuneCache;
use stencil_lab::tune::probe::Budget;
use stencil_lab::{AutoTuner, Grid1D, Method, PlanError, Solver, Tiling, Tuning, Width};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "stencil-tuning-itest-{tag}-{}.json",
        std::process::id()
    ))
}

/// The process-wide tuner every `Solver::compile` in this binary
/// resolves through (fresh cache file per run, small probe budget).
fn global_tuner() -> &'static AutoTuner {
    static T: OnceLock<&'static AutoTuner> = OnceLock::new();
    T.get_or_init(|| {
        let path = temp_path("global");
        let _ = std::fs::remove_file(&path);
        let t: &'static AutoTuner = Box::leak(Box::new(
            AutoTuner::with_cache_path(path).budget(Budget::from_millis(150)),
        ));
        assert!(
            stencil_lab::core::tune::install_tuner(t),
            "this binary owns the first installation"
        );
        t
    })
}

/// The acceptance path: `Solver::tuning(Tuning::Measured).compile()`
/// probes once, persists the winner to the per-host cache, and every
/// later compile — Measured or CacheOnly — reuses the cached choice
/// without running a single probe.
#[test]
fn measured_tuning_end_to_end() {
    let tuner = global_tuner();
    let p = kernels::heat1d();
    let solve = |mode: Tuning| {
        Solver::new(p.clone())
            .method(Method::Auto)
            .tiling(Tiling::Auto)
            .threads(2)
            .tuning(mode)
            .compile()
    };

    // 1. cold: the compile probes and persists
    let plan1 = solve(Tuning::Measured).expect("measured compile");
    assert_ne!(plan1.method(), Method::Auto);
    assert_ne!(plan1.tiling(), Tiling::Auto);
    let probes_cold = tuner.probe_count();
    assert!(probes_cold > 0, "a cold measured compile must probe");
    let cache = TuneCache::load(tuner.cache_path())
        .expect("cache parses")
        .expect("cache file exists after a measured compile");
    assert_eq!(cache.len(), 1, "one decision persisted");

    // 2. warm: same problem, identical decision, zero new probes
    let plan2 = solve(Tuning::Measured).expect("warm measured compile");
    assert_eq!(plan2.method(), plan1.method());
    assert_eq!(plan2.tiling(), plan1.tiling());
    assert_eq!(plan2.width(), plan1.width());
    assert_eq!(
        tuner.probe_count(),
        probes_cold,
        "warm compiles never probe"
    );

    // 3. CacheOnly with a warmed cache is deterministic and probe-free
    for _ in 0..3 {
        let plan3 = solve(Tuning::CacheOnly).expect("cache-only compile");
        assert_eq!(plan3.method(), plan1.method());
        assert_eq!(plan3.tiling(), plan1.tiling());
    }
    assert_eq!(
        tuner.probe_count(),
        probes_cold,
        "Tuning::CacheOnly must never run probes"
    );

    // 4. the tuned plan computes the same field as the scalar reference
    //    (away from the Dirichlet band a folded choice may widen)
    let g = Grid1D::from_fn(512, |i| ((i * 13 + 5) % 97) as f64 / 97.0);
    let t = 8;
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_1d(&g, t)
        .unwrap();
    let got = plan1.run_1d(&g, t).unwrap();
    let band = plan1.m() * p.radius() * t;
    assert!(
        max_abs_diff(
            &want.as_slice()[band..512 - band],
            &got.as_slice()[band..512 - band]
        ) < 1e-12
    );
}

#[test]
fn cache_only_cold_is_a_typed_miss() {
    // gb() is tuned by no other test in this binary, so its class is
    // guaranteed cold; no probes are run on the miss path
    global_tuner();
    let err = Solver::new(kernels::gb())
        .method(Method::Auto)
        .tiling(Tiling::Auto)
        .threads(2)
        .tuning(Tuning::CacheOnly)
        .compile()
        .unwrap_err();
    match err {
        PlanError::TuneCacheMiss { key } => {
            assert!(key.contains('|'), "key is the structured cache key: {key}")
        }
        other => panic!("expected TuneCacheMiss, got {other}"),
    }
}

#[test]
fn static_mode_never_consults_the_tuner() {
    // even with a tuner installed, Tuning::Static resolves analytically
    // (and is the documented degradation target for corrupt caches)
    global_tuner();
    let plan = Solver::new(kernels::heat2d())
        .method(Method::Auto)
        .tiling(Tiling::Auto)
        .threads(4)
        .tuning(Tuning::Static)
        .compile()
        .unwrap();
    assert_ne!(plan.method(), Method::Auto);
    assert!(matches!(plan.tiling(), Tiling::Tessellate { .. }));
}

#[test]
fn cache_round_trips_and_foreign_hosts_reprobe() {
    // private tuner instances: cache persisted by one is readable by a
    // second (round-trip through disk), but a different host/ISA
    // fingerprint must miss and re-probe
    let path = temp_path("private");
    let _ = std::fs::remove_file(&path);
    let p = kernels::d1p5();
    let req = |mode: Tuning| TuneRequest {
        pattern: &p,
        width: Width::W4,
        threads: 2,
        method: None,
        tiling: None,
        domain_hint: None,
        ring3: None,
        mode,
    };

    let warm = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(100));
    let d1 = stencil_lab::core::tune::MeasuredTuner::tune(&warm, &req(Tuning::Measured)).unwrap();
    assert!(!d1.from_cache);

    // round-trip: a fresh instance resolves from disk without probing
    let cold = AutoTuner::with_cache_path(&path);
    let d2 = stencil_lab::core::tune::MeasuredTuner::tune(&cold, &req(Tuning::CacheOnly)).unwrap();
    assert!(d2.from_cache);
    assert_eq!(
        (d2.method, d2.tiling, d2.width),
        (d1.method, d1.tiling, d1.width)
    );
    assert_eq!(cold.probe_count(), 0);

    // foreign fingerprint: same file, different host → miss
    let foreign =
        AutoTuner::with_cache_path(&path).with_host(stencil_lab::tune::host::HostFingerprint {
            hostname: "elsewhere".into(),
            isa: "avx512f-w8".into(),
            threads: 96,
        });
    match stencil_lab::core::tune::MeasuredTuner::tune(&foreign, &req(Tuning::CacheOnly)) {
        Err(TuneFailure::CacheMiss { .. }) => {}
        other => panic!("foreign host must miss: {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_cache_degrades_gracefully() {
    // a corrupt cache file must not fail compilation: the measured path
    // silently re-probes (and rewrites the file), and Tuning::Static
    // stays available untouched
    let path = temp_path("corrupt");
    std::fs::write(&path, "not json at all {{{").unwrap();
    let p = kernels::heat2d();
    let tuner = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(100));
    let req = TuneRequest {
        pattern: &p,
        width: Width::W4,
        threads: 2,
        method: None,
        tiling: None,
        domain_hint: None,
        ring3: None,
        mode: Tuning::Measured,
    };
    let d = stencil_lab::core::tune::MeasuredTuner::tune(&tuner, &req).unwrap();
    assert!(!d.from_cache, "corrupt cache must re-probe, not error");
    // the rewritten file is valid again
    assert_eq!(TuneCache::load(&path).unwrap().unwrap().len(), 1);
    // ...and the static path never touched the file in the first place
    let plan = Solver::new(p)
        .method(Method::Auto)
        .tuning(Tuning::Static)
        .compile()
        .unwrap();
    assert_ne!(plan.method(), Method::Auto);
    let _ = std::fs::remove_file(&path);
}
