//! Property-based well-formedness tests for the Chrome trace-event
//! exporter (`stencil_obs::TraceSink`): arbitrary span batches —
//! any vocabulary id, any timestamps, any job tag — must render to a
//! document the project's own JSON parser accepts, with every
//! Perfetto-required field present on every event.

use proptest::prelude::*;
use stencil_lab::obs::{self, SpanId, TraceSink};
use stencil_lab::tune::json::{parse, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chrome_export_is_well_formed_json(
        spans in prop::collection::vec(
            (0usize..SpanId::ALL.len(), 0u64..1_000_000, 0u64..10_000, 0u64..64),
            1..40,
        ),
    ) {
        obs::set_enabled(true);
        for &(idx, t0, dur, job) in &spans {
            obs::record_for_job(SpanId::ALL[idx], 900_000 + job, t0, t0 + dur);
        }
        obs::set_enabled(false);

        let text = TraceSink::chrome_json(None);
        let doc = parse(&text).expect("trace document parses");
        prop_assert_eq!(
            doc.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents is an array");
        let mut complete = 0usize;
        for ev in events {
            match ev.get("ph").and_then(Value::as_str) {
                Some("X") => {
                    complete += 1;
                    // the Perfetto-required surface of a complete event
                    prop_assert!(ev.get("name").and_then(Value::as_str).is_some());
                    prop_assert!(ev.get("cat").and_then(Value::as_str).is_some());
                    prop_assert!(ev.get("ts").and_then(Value::as_num).is_some());
                    prop_assert!(ev.get("dur").and_then(Value::as_num).is_some());
                    prop_assert!(ev.get("pid").and_then(Value::as_num).is_some());
                    prop_assert!(ev.get("tid").and_then(Value::as_num).is_some());
                }
                Some("M") => {
                    prop_assert_eq!(
                        ev.get("name").and_then(Value::as_str),
                        Some("thread_name")
                    );
                }
                other => prop_assert!(false, "unexpected phase {other:?}"),
            }
        }
        // the rings are process-global and this binary's earlier
        // iterations leave their spans behind, so the document holds at
        // least this iteration's batch
        prop_assert!(complete >= spans.len());
    }
}
