//! Integration: physical/numerical invariants of the solvers —
//! mass conservation, maximum principle, symmetry preservation, and
//! stability over long runs for every execution path.

use stencil_lab::core::kernels;
use stencil_lab::{Grid1D, Grid2D, Method, Solver, Tiling};

#[test]
fn diffusion_conserves_mass_1d() {
    let n = 4096;
    let g = Grid1D::from_fn(n, |i| if (2000..2100).contains(&i) { 1.0 } else { 0.0 });
    let mass0: f64 = g.as_slice().iter().sum();
    for method in [
        Method::MultipleLoads,
        Method::Dlt,
        Method::TransposeLayout,
        Method::Folded { m: 2 },
    ] {
        let out = Solver::new(kernels::heat1d())
            .method(method)
            .compile()
            .unwrap()
            .run_1d(&g, 200)
            .unwrap();
        let mass: f64 = out.as_slice().iter().sum();
        assert!(
            (mass - mass0).abs() < 1e-9,
            "{method:?}: mass {mass} vs {mass0}"
        );
    }
}

#[test]
fn maximum_principle_2d() {
    // averaging stencils cannot create new extrema
    let g = Grid2D::from_fn(128, 128, |y, x| ((y * 7 + x * 13) % 100) as f64 / 100.0);
    for method in [Method::MultipleLoads, Method::Folded { m: 2 }] {
        let out = Solver::new(kernels::box2d9p())
            .method(method)
            .tiling(Tiling::Tessellate { time_block: 4 })
            .threads(4)
            .compile()
            .unwrap()
            .run_2d(&g, 60)
            .unwrap();
        for v in out.to_dense() {
            assert!(
                (-1e-12..=1.0 + 1e-12).contains(&v),
                "{method:?}: value {v} escapes [0,1]"
            );
        }
    }
}

#[test]
fn symmetry_preserved_1d() {
    // symmetric initial data + symmetric stencil => symmetric evolution
    let n = 1001;
    let g = Grid1D::from_fn(n, |i| {
        let d = (i as isize - 500).unsigned_abs();
        (-(d as f64) * 0.01).exp()
    });
    let out = Solver::new(kernels::heat1d())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap()
        .run_1d(&g, 100)
        .unwrap();
    for i in 0..n {
        assert!((out[i] - out[n - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
    }
}

#[test]
fn long_run_stability() {
    // 2000 steps through the tiled folded path stays bounded and finite
    let g = Grid1D::from_fn(2048, |i| ((i * 31) % 17) as f64);
    let max0 = g.as_slice().iter().cloned().fold(f64::MIN, f64::max);
    let out = Solver::new(kernels::heat1d())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 25 })
        .threads(8)
        .compile()
        .unwrap()
        .run_1d(&g, 2000)
        .unwrap();
    for &v in out.as_slice() {
        assert!(v.is_finite());
        assert!(v <= max0 + 1e-9);
        assert!(v >= -1e-9);
    }
}

#[test]
fn impulse_response_is_binomial_1d() {
    // heat1d = [1/4, 1/2, 1/4]: t steps of an impulse produce the
    // binomial distribution B(2t, 1/2) / 4^t — an exact analytic check.
    let n = 257;
    let t = 8;
    let g = Grid1D::from_fn(n, |i| if i == n / 2 { 1.0 } else { 0.0 });
    let out = Solver::new(kernels::heat1d())
        .method(Method::TransposeLayout)
        .compile()
        .unwrap()
        .run_1d(&g, t)
        .unwrap();
    // binomial coefficients C(2t, k)
    let mut c = vec![0.0f64; 2 * t + 1];
    c[0] = 1.0;
    for row in 1..=2 * t {
        for k in (1..=row).rev() {
            c[k] += c[k - 1];
        }
    }
    let scale = 0.25f64.powi(t as i32);
    for (k, &coeff) in c.iter().enumerate() {
        let idx = n / 2 - t + k;
        let want = coeff * scale;
        assert!(
            (out[idx] - want).abs() < 1e-12,
            "k={k}: {} vs {want}",
            out[idx]
        );
    }
}

#[test]
fn life_population_is_integer_valued() {
    use stencil_lab::core::exec::life;
    use stencil_lab::simd::NativeF64x4;
    let g = life::random_soup(64, 64, 11);
    let out = life::sweep::<NativeF64x4>(&g, 30);
    for v in out.to_dense() {
        assert!(v == 0.0 || v == 1.0, "non-binary state {v}");
    }
}
