//! Integration tests for the serving subsystem through the facade:
//! the acceptance contracts of `stencil-serve`.
//!
//! * Sharded `run_2d`/`run_3d` through the service is **bit-identical**
//!   to a single unsharded `Plan::run_*` on the same domain.
//! * Manifest warm-start under `Tuning::CacheOnly` reaches serving
//!   state with **zero probe runs** once the per-host tune cache is
//!   warm, and surfaces corrupt-cache/cold-start conditions as
//!   one-line warnings on the stats surface instead of silent
//!   re-probes.
//! * Backpressure is a typed, observable signal, and the stats dump
//!   round-trips through the shared hand-rolled JSON.

use stencil_lab::core::kernels;
use stencil_lab::serve::{
    JobDomain, JobSpec, Manifest, ServeConfig, ServeError, ShardPolicy, StatsSnapshot,
    StencilService,
};
use stencil_lab::{Grid2D, Grid3D, Tuning};

fn sharded_cfg() -> ServeConfig {
    ServeConfig {
        threads: 2,
        workers: 2,
        queue_capacity: 16,
        batch_max: 4,
        tuning: Tuning::Static,
        shard: ShardPolicy {
            min_points: 1,
            max_shards: 3,
            min_slab: 8,
        },
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn service_sharded_2d_bit_identical_to_unsharded_plan_run() {
    let svc = StencilService::start(sharded_cfg());
    // awkward extent: 101 rows, so slab alignment and the top scalar
    // remainder of the register pipeline are both exercised
    let g = Grid2D::from_fn(101, 72, |y, x| ((y * 31 + x * 7) % 23) as f64 * 0.25);
    let steps = 4;
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(g.clone()), steps);
    let (plan, shards) = svc.plan_for(&spec).unwrap();
    assert!(shards > 1, "policy must shard this job (got {shards})");
    let ticket = svc.submit(spec).unwrap();
    let result = ticket.wait().unwrap();
    assert_eq!(result.shards, shards);
    let served = match result.output {
        JobDomain::D2(out) => out,
        _ => panic!("wrong dimensionality"),
    };
    let want = plan.run_2d(&g, steps).unwrap();
    assert_eq!(
        bits(&want.to_dense()),
        bits(&served.to_dense()),
        "sharded service output must be bit-identical to the unsharded plan run"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.sharded_jobs, 1);
    assert_eq!(stats.shards_executed, shards as u64);
}

#[test]
fn service_sharded_3d_bit_identical_to_unsharded_plan_run() {
    let svc = StencilService::start(sharded_cfg());
    let g = Grid3D::from_fn(29, 14, 18, |z, y, x| ((z * 5 + y * 3 + x) % 11) as f64);
    let steps = 3;
    let spec = JobSpec::new(kernels::box3d27p(), JobDomain::D3(g.clone()), steps);
    let (plan, shards) = svc.plan_for(&spec).unwrap();
    assert!(shards > 1, "policy must shard this job (got {shards})");
    let result = svc.submit(spec).unwrap().wait().unwrap();
    let served = match result.output {
        JobDomain::D3(out) => out,
        _ => panic!("wrong dimensionality"),
    };
    let want = plan.run_3d(&g, steps).unwrap();
    assert_eq!(
        bits(&want.to_dense()),
        bits(&served.to_dense()),
        "sharded 3D service output must be bit-identical to the unsharded plan run"
    );
    svc.shutdown();
}

#[test]
fn sharded_3d_zring_pipeline_bit_identical_to_unsharded() {
    // acceptance pin: sharded 3D runs over the z-ring register pipeline
    // (block-free and tessellate-tiled, folded m = 2) stitch to exactly
    // the bits of the unsharded run — including a radius-2 pattern at
    // folded radius 4, which only the deeper MAX_R3 window admits
    use stencil_lab::serve::shard::{lane_plans, run_sharded_3d, shardable};
    use stencil_lab::{Method, Solver, Tiling};
    let g = Grid3D::from_fn(88, 18, 22, |z, y, x| {
        ((z * 17 + y * 5 + x * 3) % 29) as f64 * 0.125
    });
    for (p, tiling, t) in [
        (kernels::heat3d(), Tiling::None, 4usize),
        (kernels::box3d27p(), Tiling::None, 4),
        (kernels::box3d125p(), Tiling::None, 2),
        (kernels::heat3d(), Tiling::Tessellate { time_block: 2 }, 4),
        (kernels::box3d27p(), Tiling::Tessellate { time_block: 2 }, 4),
    ] {
        let plan = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .tiling(tiling)
            .compile()
            .unwrap();
        assert!(plan.ring3().is_some(), "3D register plans carry a ring");
        assert!(shardable(&plan), "{tiling:?}");
        let want = plan.run_3d(&g, t).unwrap();
        let lanes = lane_plans(&plan, 3).unwrap();
        for shards in [2usize, 3] {
            let got = run_sharded_3d(&lanes, &g, t, shards).unwrap();
            assert_eq!(
                bits(&want.to_dense()),
                bits(&got.to_dense()),
                "pts={} {tiling:?} shards={shards}",
                p.points()
            );
        }
    }
}

/// The full warm-start story, one test so the process-global tuner and
/// its cache path are controlled end to end:
///
/// 1. a corrupt cache file surfaces as a stats warning (not a silent
///    re-probe), and a `CacheOnly` service over it serves cold-start
///    fallback plans,
/// 2. a `Measured` warm-up probes once and persists — after which the
///    still-running cold service *recovers* its keys at runtime,
/// 3. a fresh `CacheOnly` service warm-starts and serves with **zero**
///    further probe runs and zero cold fallbacks.
#[test]
fn manifest_warm_start_cache_only_serves_with_zero_probe_runs() {
    let cache = std::env::temp_dir().join(format!(
        "stencil-serve-warmstart-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    std::fs::write(&cache, "{{{ not json").unwrap();
    // install_with, not env vars: sibling tests in this binary run in
    // parallel and setenv racing getenv is a crash hazard
    let tuner = stencil_lab::tune::install_with(
        stencil_lab::AutoTuner::with_cache_path(&cache)
            .budget(stencil_lab::tune::probe::Budget::from_millis(120)),
    );
    assert_eq!(tuner.cache_path(), cache.as_path());

    let mut manifest = Manifest::new(Tuning::Measured);
    manifest
        .push_kernel("heat2d", Some(&[96, 96]))
        .push_kernel("heat1d", Some(&[4096]));

    // phase 1: a CacheOnly service over the cold (corrupt) cache —
    // every warm-up entry falls back to the static model, and both the
    // corrupt file and the cold starts surface as warnings
    let mut cache_only = manifest.clone();
    cache_only.default_tuning = Tuning::CacheOnly;
    for e in &mut cache_only.entries {
        e.tuning = Some(Tuning::CacheOnly);
    }
    let cold = StencilService::start(ServeConfig {
        tuning: Tuning::CacheOnly,
        ..sharded_cfg()
    });
    let report = cold.warm(&cache_only);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert!(report.fallbacks > 0, "a cold cache must fall back");
    let stats = cold.stats();
    assert!(
        stats
            .warnings
            .iter()
            .any(|w| w.contains("corrupt") || w.contains("empty cache")),
        "corrupt cache must surface as an operator warning: {:?}",
        stats.warnings
    );
    assert!(stats.warnings.iter().any(|w| w.contains("cold start")));
    assert_eq!(stats.tuner_probes, 0, "CacheOnly must never probe");

    // phase 2: measured warm-up probes and persists
    let probing = StencilService::start(ServeConfig {
        tuning: Tuning::Measured,
        ..sharded_cfg()
    });
    let report = probing.warm(&manifest);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(
        report.fallbacks, 0,
        "Measured mode probes, never falls back"
    );
    let probes_after_warm = probing.stats().tuner_probes;
    assert!(probes_after_warm > 0, "measured warm-up must probe");
    probing.shutdown();

    // ...and the still-running cold service upgrades its fallback keys
    // from the re-warmed cache without a restart
    let g0 = Grid2D::from_fn(96, 96, |y, x| ((y + x) % 5) as f64);
    let mut spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(g0), 2);
    spec.tuning = Some(Tuning::CacheOnly);
    cold.submit(spec).unwrap().wait().unwrap();
    let stats = cold.shutdown();
    assert!(
        stats.cold_recoveries > 0,
        "re-warming the tune cache must upgrade cold keys at runtime: {stats:?}"
    );
    assert_eq!(
        stats.tuner_probes, probes_after_warm,
        "the recovery is a cache lookup, not a probe"
    );

    // phase 3: a fresh service warm-starts CacheOnly — every manifest
    // plan resolves from the persisted cache without one probe sweep
    manifest.default_tuning = Tuning::CacheOnly;
    for e in &mut manifest.entries {
        e.tuning = Some(Tuning::CacheOnly);
    }
    let warm = StencilService::start(ServeConfig {
        tuning: Tuning::CacheOnly,
        ..sharded_cfg()
    });
    let report = warm.warm(&manifest);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(
        report.fallbacks, 0,
        "a warmed cache must resolve CacheOnly without fallbacks"
    );
    // serve real traffic against the warmed plans
    let g = Grid2D::from_fn(96, 96, |y, x| ((y + 2 * x) % 9) as f64);
    for _ in 0..3 {
        let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(g.clone()), 4);
        let mut spec = spec;
        spec.tuning = Some(Tuning::CacheOnly);
        warm.submit(spec).unwrap().wait().unwrap();
    }
    let stats = warm.shutdown();
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.cold_fallbacks, 0);
    assert_eq!(
        stats.tuner_probes, probes_after_warm,
        "warm-start (CacheOnly) must serve with zero probe runs"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn backpressure_is_typed_and_counted() {
    let svc = StencilService::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        shard: ShardPolicy {
            min_points: usize::MAX,
            ..ShardPolicy::default()
        },
        ..sharded_cfg()
    });
    let spec = || {
        JobSpec::new(
            kernels::box2d9p(),
            JobDomain::D2(Grid2D::from_fn(128, 128, |y, x| ((y + x) % 7) as f64)),
            100,
        )
    };
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for _ in 0..16 {
        match svc.try_submit(spec()) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Backpressure { capacity }) => {
                assert_eq!(capacity, 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "a one-slot queue must reject under a burst");
    for t in accepted {
        t.wait().unwrap();
    }
    let stats = svc.shutdown();
    assert!(stats.jobs_rejected >= rejected as u64 - 1);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn manifest_file_drives_warm_start_and_stats_round_trip() {
    let path = std::env::temp_dir().join(format!(
        "stencil-serve-it-manifest-{}.json",
        std::process::id()
    ));
    let mut m = Manifest::new(Tuning::Static);
    m.push_kernel("box2d9p", Some(&[64, 64]))
        .push_kernel("star3d", Some(&[24, 24, 24]));
    m.save(&path).unwrap();
    let loaded = Manifest::load(&path).unwrap();
    assert_eq!(loaded, m);

    let svc = StencilService::start(sharded_cfg());
    let report = svc.warm(&loaded);
    assert!(report.failed.is_empty());
    assert!(report.loaded >= 2);
    let spec = JobSpec::new(
        kernels::box2d9p(),
        JobDomain::D2(Grid2D::from_fn(64, 64, |y, x| ((y * x) % 5) as f64)),
        3,
    );
    svc.submit(spec).unwrap().wait().unwrap();
    let stats = svc.shutdown();
    assert!(stats.plan_hits >= 1, "the job must hit the warmed plan");

    // the stats surface round-trips through the shared JSON
    // implementation (the same writer/parser as the tune cache and the
    // bench dumps)
    let text = stats.to_json().pretty();
    let back = StatsSnapshot::from_json(&stencil_lab::tune::json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, stats);
    let _ = std::fs::remove_file(&path);
}
