//! Integration tests for the serving subsystem through the facade:
//! the acceptance contracts of `stencil-serve`.
//!
//! * Sharded `run_2d`/`run_3d` through the service is **bit-identical**
//!   to a single unsharded `Plan::run_*` on the same domain.
//! * Manifest warm-start under `Tuning::CacheOnly` reaches serving
//!   state with **zero probe runs** once the per-host tune cache is
//!   warm, and surfaces corrupt-cache/cold-start conditions as
//!   one-line warnings on the stats surface instead of silent
//!   re-probes.
//! * Backpressure is a typed, observable signal, and the stats dump
//!   round-trips through the shared hand-rolled JSON.

use std::sync::Arc;
use std::time::Duration;
use stencil_lab::core::api::Width;
use stencil_lab::core::kernels;
use stencil_lab::serve::adapt::unconstrained_request;
use stencil_lab::serve::registry::PlanShape;
use stencil_lab::serve::{
    AdaptConfig, ChallengeVerdict, Decider, JobDomain, JobSpec, LatencyHistogram, Manifest,
    PlanChoice, ScriptedLane, ServeConfig, ServeError, ShardPolicy, SharedClock, StatsSnapshot,
    StencilService, VirtualClock,
};
use stencil_lab::{Grid2D, Grid3D, Method, Tiling, Tuning};

fn sharded_cfg() -> ServeConfig {
    ServeConfig {
        threads: 2,
        workers: 2,
        queue_capacity: 16,
        batch_max: 4,
        tuning: Tuning::Static,
        shard: ShardPolicy {
            min_points: 1,
            max_shards: 3,
            min_slab: 8,
        },
        ..ServeConfig::default()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn service_sharded_2d_bit_identical_to_unsharded_plan_run() {
    let svc = StencilService::start(sharded_cfg());
    // awkward extent: 101 rows, so slab alignment and the top scalar
    // remainder of the register pipeline are both exercised
    let g = Grid2D::from_fn(101, 72, |y, x| ((y * 31 + x * 7) % 23) as f64 * 0.25);
    let steps = 4;
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(g.clone()), steps);
    let (plan, shards) = svc.plan_for(&spec).unwrap();
    assert!(shards > 1, "policy must shard this job (got {shards})");
    let ticket = svc.submit(spec).unwrap();
    let result = ticket.wait().unwrap();
    assert_eq!(result.shards, shards);
    let served = match result.output {
        JobDomain::D2(out) => out,
        _ => panic!("wrong dimensionality"),
    };
    let want = plan.run_2d(&g, steps).unwrap();
    assert_eq!(
        bits(&want.to_dense()),
        bits(&served.to_dense()),
        "sharded service output must be bit-identical to the unsharded plan run"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.sharded_jobs, 1);
    assert_eq!(stats.shards_executed, shards as u64);
}

#[test]
fn service_sharded_3d_bit_identical_to_unsharded_plan_run() {
    let svc = StencilService::start(sharded_cfg());
    let g = Grid3D::from_fn(29, 14, 18, |z, y, x| ((z * 5 + y * 3 + x) % 11) as f64);
    let steps = 3;
    let spec = JobSpec::new(kernels::box3d27p(), JobDomain::D3(g.clone()), steps);
    let (plan, shards) = svc.plan_for(&spec).unwrap();
    assert!(shards > 1, "policy must shard this job (got {shards})");
    let result = svc.submit(spec).unwrap().wait().unwrap();
    let served = match result.output {
        JobDomain::D3(out) => out,
        _ => panic!("wrong dimensionality"),
    };
    let want = plan.run_3d(&g, steps).unwrap();
    assert_eq!(
        bits(&want.to_dense()),
        bits(&served.to_dense()),
        "sharded 3D service output must be bit-identical to the unsharded plan run"
    );
    svc.shutdown();
}

#[test]
fn sharded_3d_zring_pipeline_bit_identical_to_unsharded() {
    // acceptance pin: sharded 3D runs over the z-ring register pipeline
    // (block-free and tessellate-tiled, folded m = 2) stitch to exactly
    // the bits of the unsharded run — including a radius-2 pattern at
    // folded radius 4, which only the deeper MAX_R3 window admits
    use stencil_lab::serve::shard::{lane_plans, run_sharded_3d, shardable};
    use stencil_lab::{Method, Solver, Tiling};
    let g = Grid3D::from_fn(88, 18, 22, |z, y, x| {
        ((z * 17 + y * 5 + x * 3) % 29) as f64 * 0.125
    });
    for (p, tiling, t) in [
        (kernels::heat3d(), Tiling::None, 4usize),
        (kernels::box3d27p(), Tiling::None, 4),
        (kernels::box3d125p(), Tiling::None, 2),
        (kernels::heat3d(), Tiling::Tessellate { time_block: 2 }, 4),
        (kernels::box3d27p(), Tiling::Tessellate { time_block: 2 }, 4),
    ] {
        let plan = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .tiling(tiling)
            .compile()
            .unwrap();
        assert!(plan.ring3().is_some(), "3D register plans carry a ring");
        assert!(shardable(&plan), "{tiling:?}");
        let want = plan.run_3d(&g, t).unwrap();
        let lanes = lane_plans(&plan, 3).unwrap();
        for shards in [2usize, 3] {
            let got = run_sharded_3d(&lanes, &g, t, shards).unwrap();
            assert_eq!(
                bits(&want.to_dense()),
                bits(&got.to_dense()),
                "pts={} {tiling:?} shards={shards}",
                p.points()
            );
        }
    }
}

/// The full warm-start story, one test so the process-global tuner and
/// its cache path are controlled end to end:
///
/// 1. a corrupt cache file surfaces as a stats warning (not a silent
///    re-probe), and a `CacheOnly` service over it serves cold-start
///    fallback plans,
/// 2. a `Measured` warm-up probes once and persists — after which the
///    still-running cold service *recovers* its keys at runtime,
/// 3. a fresh `CacheOnly` service warm-starts and serves with **zero**
///    further probe runs and zero cold fallbacks.
#[test]
fn manifest_warm_start_cache_only_serves_with_zero_probe_runs() {
    let cache = std::env::temp_dir().join(format!(
        "stencil-serve-warmstart-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    std::fs::write(&cache, "{{{ not json").unwrap();
    // install_with, not env vars: sibling tests in this binary run in
    // parallel and setenv racing getenv is a crash hazard
    let tuner = stencil_lab::tune::install_with(
        stencil_lab::AutoTuner::with_cache_path(&cache)
            .budget(stencil_lab::tune::probe::Budget::from_millis(120)),
    );
    assert_eq!(tuner.cache_path(), cache.as_path());

    let mut manifest = Manifest::new(Tuning::Measured);
    manifest
        .push_kernel("heat2d", Some(&[96, 96]))
        .push_kernel("heat1d", Some(&[4096]));

    // phase 1: a CacheOnly service over the cold (corrupt) cache —
    // every warm-up entry falls back to the static model, and both the
    // corrupt file and the cold starts surface as warnings
    let mut cache_only = manifest.clone();
    cache_only.default_tuning = Tuning::CacheOnly;
    for e in &mut cache_only.entries {
        e.tuning = Some(Tuning::CacheOnly);
    }
    let cold = StencilService::start(ServeConfig {
        tuning: Tuning::CacheOnly,
        ..sharded_cfg()
    });
    let report = cold.warm(&cache_only);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert!(report.fallbacks > 0, "a cold cache must fall back");
    let stats = cold.stats();
    assert!(
        stats
            .warnings
            .iter()
            .any(|w| w.contains("corrupt") || w.contains("empty cache")),
        "corrupt cache must surface as an operator warning: {:?}",
        stats.warnings
    );
    assert!(stats.warnings.iter().any(|w| w.contains("cold start")));
    assert_eq!(stats.tuner_probes, 0, "CacheOnly must never probe");

    // phase 2: measured warm-up probes and persists
    let probing = StencilService::start(ServeConfig {
        tuning: Tuning::Measured,
        ..sharded_cfg()
    });
    let report = probing.warm(&manifest);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(
        report.fallbacks, 0,
        "Measured mode probes, never falls back"
    );
    let probes_after_warm = probing.stats().tuner_probes;
    assert!(probes_after_warm > 0, "measured warm-up must probe");
    probing.shutdown();

    // ...and the still-running cold service upgrades its fallback keys
    // from the re-warmed cache without a restart
    let g0 = Grid2D::from_fn(96, 96, |y, x| ((y + x) % 5) as f64);
    let mut spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(g0), 2);
    spec.tuning = Some(Tuning::CacheOnly);
    cold.submit(spec).unwrap().wait().unwrap();
    let stats = cold.shutdown();
    assert!(
        stats.cold_recoveries > 0,
        "re-warming the tune cache must upgrade cold keys at runtime: {stats:?}"
    );
    assert_eq!(
        stats.tuner_probes, probes_after_warm,
        "the recovery is a cache lookup, not a probe"
    );

    // phase 3: a fresh service warm-starts CacheOnly — every manifest
    // plan resolves from the persisted cache without one probe sweep
    manifest.default_tuning = Tuning::CacheOnly;
    for e in &mut manifest.entries {
        e.tuning = Some(Tuning::CacheOnly);
    }
    let warm = StencilService::start(ServeConfig {
        tuning: Tuning::CacheOnly,
        ..sharded_cfg()
    });
    let report = warm.warm(&manifest);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(
        report.fallbacks, 0,
        "a warmed cache must resolve CacheOnly without fallbacks"
    );
    // serve real traffic against the warmed plans
    let g = Grid2D::from_fn(96, 96, |y, x| ((y + 2 * x) % 9) as f64);
    for _ in 0..3 {
        let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(g.clone()), 4);
        let mut spec = spec;
        spec.tuning = Some(Tuning::CacheOnly);
        warm.submit(spec).unwrap().wait().unwrap();
    }
    let stats = warm.shutdown();
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.cold_fallbacks, 0);
    assert_eq!(
        stats.tuner_probes, probes_after_warm,
        "warm-start (CacheOnly) must serve with zero probe runs"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn backpressure_is_typed_and_counted() {
    let svc = StencilService::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        shard: ShardPolicy {
            min_points: usize::MAX,
            ..ShardPolicy::default()
        },
        ..sharded_cfg()
    });
    let spec = || {
        JobSpec::new(
            kernels::box2d9p(),
            JobDomain::D2(Grid2D::from_fn(128, 128, |y, x| ((y + x) % 7) as f64)),
            100,
        )
    };
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for _ in 0..16 {
        match svc.try_submit(spec()) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Backpressure { capacity }) => {
                assert_eq!(capacity, 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "a one-slot queue must reject under a burst");
    for t in accepted {
        t.wait().unwrap();
    }
    let stats = svc.shutdown();
    assert!(stats.jobs_rejected >= rejected as u64 - 1);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn manifest_file_drives_warm_start_and_stats_round_trip() {
    let path = std::env::temp_dir().join(format!(
        "stencil-serve-it-manifest-{}.json",
        std::process::id()
    ));
    let mut m = Manifest::new(Tuning::Static);
    m.push_kernel("box2d9p", Some(&[64, 64]))
        .push_kernel("star3d", Some(&[24, 24, 24]));
    m.save(&path).unwrap();
    let loaded = Manifest::load(&path).unwrap();
    assert_eq!(loaded, m);

    let svc = StencilService::start(sharded_cfg());
    let report = svc.warm(&loaded);
    assert!(report.failed.is_empty());
    assert!(report.loaded >= 2);
    let spec = JobSpec::new(
        kernels::box2d9p(),
        JobDomain::D2(Grid2D::from_fn(64, 64, |y, x| ((y * x) % 5) as f64)),
        3,
    );
    svc.submit(spec).unwrap().wait().unwrap();
    let stats = svc.shutdown();
    assert!(stats.plan_hits >= 1, "the job must hit the warmed plan");

    // the stats surface round-trips through the shared JSON
    // implementation (the same writer/parser as the tune cache and the
    // bench dumps)
    let text = stats.to_json().pretty();
    let back = StatsSnapshot::from_json(&stencil_lab::tune::json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, stats);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Adaptive retuning (the `serve::adapt` family)
// ---------------------------------------------------------------------------

/// The log-bucketed histogram against a sorted-reference oracle: for
/// every quantile, the reported value must be the upper bound of the
/// bucket holding the exact rank-order statistic of the sample set.
#[test]
fn histogram_quantiles_match_a_sorted_reference_oracle() {
    let h = LatencyHistogram::default();
    // deterministic LCG: spans ~6 decades of microseconds
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut samples = Vec::new();
    for _ in 0..997 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let us = (x >> 33) % 900_000 + 1;
        samples.push(us);
        h.record(Duration::from_micros(us));
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let v = sorted[rank - 1];
        // oracle: the bucket of value v is floor(log2 v); the histogram
        // reports that bucket's upper bound
        let floor_log2 = 63 - u64::from(v.leading_zeros());
        let expect = 1u64 << (floor_log2 + 1).min(63);
        assert_eq!(h.quantile_us(q), expect, "q={q} rank={rank} v={v}");
    }
}

fn flip_width(w: Width) -> Width {
    match w {
        Width::W4 => Width::W8,
        _ => Width::W4,
    }
}

/// A scripted verdict whose challenger differs from the incumbent (the
/// width flips) — always compilable for the 2D kernels used here.
fn scripted_verdict(incumbent_width: Width, rate: f64, incumbent_rate: f64) -> ChallengeVerdict {
    ChallengeVerdict {
        choice: PlanChoice {
            method: Method::MultipleLoads,
            tiling: Tiling::None,
            width: flip_width(incumbent_width),
            ring: None,
        },
        rate,
        incumbent_rate,
        probes: 3,
        spent_ms: 1.0,
        method_rates: vec![(Method::MultipleLoads, rate)],
    }
}

fn unsharded_cfg() -> ServeConfig {
    ServeConfig {
        threads: 2,
        workers: 1,
        queue_capacity: 8,
        batch_max: 1,
        tuning: Tuning::Static,
        shard: ShardPolicy {
            min_points: usize::MAX,
            ..ShardPolicy::default()
        },
        ..ServeConfig::default()
    }
}

/// Decider hysteresis against live service traffic: a margin-edge
/// challenger does not swap (and resets the hot window, so there is no
/// immediate re-trial), a clear winner swaps exactly once, and a
/// post-swap losing challenge never flaps the registry back.
#[test]
fn decider_hysteresis_prevents_swap_flapping_at_the_margin_boundary() {
    const HOT: u64 = 6;
    let svc = StencilService::start(unsharded_cfg());
    let g = Grid2D::from_fn(56, 48, |y, x| ((y * 7 + x * 3) % 11) as f64);
    let spec = || JobSpec::new(kernels::heat2d(), JobDomain::D2(g.clone()), 2);
    let serve_hot = |n: u64| {
        for _ in 0..n {
            svc.submit(spec()).unwrap().wait().unwrap();
        }
    };
    serve_hot(HOT);
    let (incumbent, _) = svc.plan_for(&spec()).unwrap();
    let w = incumbent.width();
    // script: margin-edge loser (1.10 == 1.0 * (1 + margin), strict
    // comparison -> not a win), then a clear winner, then a loser
    let lane = ScriptedLane::new(vec![
        scripted_verdict(w, 1.10, 1.0),
        scripted_verdict(w, 2.0, 1.0),
        scripted_verdict(w, 0.5, 1.0),
    ]);
    let decider = Decider::new(
        AdaptConfig {
            enabled: true,
            margin: 0.10,
            min_samples: HOT,
            interval: Duration::ZERO,
            ..AdaptConfig::default()
        },
        svc.registry_handle(),
        svc.stats_handle(),
        Box::new(lane),
    );
    // margin edge: challenged, not swapped...
    assert_eq!(decider.tick(), 0);
    // ...and the losing challenge reset the window — an immediate
    // second tick finds no hot key (the anti-flapping hysteresis)
    assert_eq!(decider.tick(), 0);
    let stats = svc.stats();
    assert_eq!((stats.challenges, stats.swaps), (1, 0));

    // a clear winner after a fresh hot window swaps exactly once
    serve_hot(HOT);
    assert_eq!(decider.tick(), 1);
    let key = svc.stats().plans.keys().next().unwrap().clone();
    let swapped = svc.registry_handle().plan_for_key(&key).unwrap();
    assert_eq!(swapped.epoch(), incumbent.epoch() + 1);
    assert_eq!(swapped.width(), flip_width(w));

    // a post-swap loser leaves the new incumbent untouched
    serve_hot(HOT);
    assert_eq!(decider.tick(), 0);
    assert!(Arc::ptr_eq(
        &svc.registry_handle().plan_for_key(&key).unwrap(),
        &swapped
    ));
    let stats = svc.shutdown();
    assert_eq!(stats.challenges, 3);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.challenges_rejected, 2);
}

/// A hot-swap must never change the bits of jobs already resolved:
/// plan resolution happens at submit, so queued/in-flight jobs hold
/// their `Arc<Plan>` across the swap, finish on the old generation
/// (observable through `JobResult::epoch`) and produce exactly the old
/// plan's bits; jobs submitted after the swap run the new generation.
#[test]
fn hot_swap_mid_stream_never_changes_in_flight_result_bits() {
    use stencil_lab::Solver;
    let svc = StencilService::start(unsharded_cfg());
    let g = Grid2D::from_fn(72, 64, |y, x| ((y * 31 + x * 7) % 23) as f64 * 0.25);
    let steps = 3;
    let spec = || JobSpec::new(kernels::heat2d(), JobDomain::D2(g.clone()), steps);
    let (old_plan, _) = svc.plan_for(&spec()).unwrap();
    assert_eq!(old_plan.epoch(), 0);

    // two jobs resolved against the incumbent; the swap lands while
    // they are queued or in flight
    let a = svc.submit(spec()).unwrap();
    let b = svc.submit(spec()).unwrap();

    let registry = svc.registry_handle();
    let (key, same) = registry
        .entry_for(
            &kernels::heat2d(),
            Some(&[72, 64]),
            Tuning::Static,
            PlanShape::Pooled,
        )
        .unwrap();
    assert!(Arc::ptr_eq(&same, &old_plan), "key derivation drifted");
    let new_plan = Arc::new(
        Solver::new(kernels::heat2d())
            .method(Method::MultipleLoads)
            .tiling(Tiling::None)
            .width(flip_width(old_plan.width()))
            .tuning(Tuning::Static)
            .pool(registry.pool().clone())
            .domain_hint(&[72, 64])
            .epoch(old_plan.epoch() + 1)
            .compile()
            .unwrap(),
    );
    registry.swap_plan(&key, Arc::clone(&new_plan));

    let want_old = old_plan.run_2d(&g, steps).unwrap().to_dense();
    for ticket in [a, b] {
        let r = ticket.wait().unwrap();
        assert_eq!(r.epoch, 0, "in-flight jobs finish on the old generation");
        let out = match r.output {
            JobDomain::D2(out) => out,
            _ => panic!("wrong dimensionality"),
        };
        assert_eq!(
            bits(&want_old),
            bits(&out.to_dense()),
            "a swap mid-stream must not change in-flight result bits"
        );
    }

    // a job submitted after the swap runs the new generation
    let r = svc.submit(spec()).unwrap().wait().unwrap();
    assert_eq!(r.epoch, 1);
    let out = match r.output {
        JobDomain::D2(out) => out,
        _ => panic!("wrong dimensionality"),
    };
    let want_new = new_plan.run_2d(&g, steps).unwrap().to_dense();
    assert_eq!(bits(&want_new), bits(&out.to_dense()));
    assert_eq!(svc.shutdown().swaps, 1);
}

/// The seeded end-to-end scenario the CI `retune-smoke` lane pins:
/// under a virtual clock and a scripted challenger, the decider
/// produces exactly one deterministic hot-swap, the swapped plan
/// serves bit-exactly, and the verdict lands in the per-host tune
/// cache under the unconstrained key a warm-start would resolve.
#[test]
fn seeded_virtual_clock_retune_swaps_once_and_persists_the_verdict() {
    use stencil_lab::AutoTuner;
    const HOT: u64 = 12;
    let cache =
        std::env::temp_dir().join(format!("stencil-retune-e2e-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cache);

    let vclock = Arc::new(VirtualClock::new());
    let svc = StencilService::start(ServeConfig {
        clock: SharedClock::new(Arc::clone(&vclock) as Arc<_>),
        ..unsharded_cfg()
    });
    let g = Grid2D::from_fn(64, 64, |y, x| ((y * 13 + x * 5) % 17) as f64);
    let spec = || JobSpec::new(kernels::box2d9p(), JobDomain::D2(g.clone()), 2);
    let (old_plan, _) = svc.plan_for(&spec()).unwrap();

    // the clock only advances between completed jobs, so every latency
    // sample is exactly zero -> the telemetry is bit-reproducible
    for _ in 0..HOT {
        svc.submit(spec()).unwrap().wait().unwrap();
        vclock.advance(Duration::from_millis(1));
    }
    let stats = svc.stats();
    assert_eq!(stats.plans.len(), 1, "one kernel, one traffic key");
    let (key, telemetry) = stats.plans.iter().next().unwrap();
    assert_eq!(telemetry.samples, HOT);
    assert_eq!(telemetry.epoch, 0);
    assert_eq!(
        telemetry.p50_us, 2,
        "zero-latency samples pin the first bucket"
    );

    let verdict = scripted_verdict(old_plan.width(), 3.0, 1.0);
    let lane =
        ScriptedLane::new(vec![verdict.clone()]).with_tuner(AutoTuner::with_cache_path(&cache));
    let decider = Decider::new(
        AdaptConfig {
            enabled: true,
            margin: 0.10,
            min_samples: HOT,
            interval: Duration::ZERO,
            ..AdaptConfig::default()
        },
        svc.registry_handle(),
        svc.stats_handle(),
        Box::new(lane),
    );
    assert_eq!(decider.tick(), 1, "the scripted challenger must swap");
    // the swap consumed the hot window: an immediate re-tick is a no-op
    assert_eq!(decider.tick(), 0);

    let new_plan = svc.registry_handle().plan_for_key(key).unwrap();
    assert_eq!(new_plan.epoch(), 1);
    assert_eq!(new_plan.width(), verdict.choice.width);
    let r = svc.submit(spec()).unwrap().wait().unwrap();
    assert_eq!(r.epoch, 1, "post-swap traffic runs the new generation");
    let out = match r.output {
        JobDomain::D2(out) => out,
        _ => panic!("wrong dimensionality"),
    };
    let want = new_plan.run_2d(&g, 2).unwrap().to_dense();
    assert_eq!(bits(&want), bits(&out.to_dense()));

    let stats = svc.stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.challenges, 1);
    assert_eq!(stats.challenges_rejected, 0);
    assert_eq!(stats.plans[key].epoch, 1, "telemetry tracks the new epoch");
    // the swap counters ride the JSON stats surface (what `/metrics`
    // serves)
    let dump = stats.to_json().pretty();
    assert!(dump.contains("\"swaps\"") && dump.contains("\"challenges\""));

    // the verdict was persisted under the unconstrained request — the
    // exact key a fresh warm-start resolves
    let fresh = AutoTuner::with_cache_path(&cache);
    let p = kernels::box2d9p();
    let entry = fresh
        .lookup(&unconstrained_request(&p, &[64, 64], 2))
        .expect("the winning verdict must persist to the tune cache");
    assert_eq!(entry.method, verdict.choice.method);
    assert_eq!(entry.width, verdict.choice.width);
    svc.shutdown();
    let _ = std::fs::remove_file(&cache);
}
