//! Seeded chaos suite for the fault-tolerance layer: every failpoint in
//! the `stencil-faults` vocabulary is armed against the subsystem that
//! carries it, and the system must either absorb the fault (retry,
//! fall back, recover, resume — with **bit-exact** results) or fail
//! with a *typed* error. Never a hang, never a process exit, never a
//! silently wrong answer.
//!
//! Every trigger is seeded or scripted, so a failing run replays
//! exactly — the point of deterministic failpoints over `kill -9`
//! chaos.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use stencil_lab::core::kernels;
use stencil_lab::faults::{self, Failpoint};
use stencil_lab::grid::{Grid2D, Grid3D};
use stencil_lab::ooc::{self, OocConfig, SlabStore};
use stencil_lab::serve::net::{JobEvent, NetClient, NetConfig, NetError, NetServer, SubmitHeader};
use stencil_lab::serve::{JobDomain, JobSpec, ServeConfig, ServeError, StencilService};
use stencil_lab::{Method, Solver};

/// Failpoint state is process-global; tests that arm it must not
/// interleave with each other.
static GLOBALS: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Panic-safe teardown: whatever a test armed is disarmed on exit.
struct Reset;
impl Drop for Reset {
    fn drop(&mut self) {
        faults::disarm_all();
        faults::set_enabled(false);
    }
}

fn bits3(g: &Grid3D) -> Vec<u64> {
    g.to_dense().iter().map(|v| v.to_bits()).collect()
}

fn workload(nz: usize, ny: usize, nx: usize) -> Grid3D {
    Grid3D::from_fn(nz, ny, nx, |z, y, x| {
        ((z * 37 + y * 11 + x * 5) % 23) as f64 * 0.25 - 2.0
    })
}

/// Budget capping windows at roughly `planes` resident planes.
fn budget_for(ny: usize, nx: usize, planes: usize, prefetch: bool) -> usize {
    let plane = Grid3D::zeros(1, ny, nx).stride_z() * 8;
    let residency = if prefetch {
        ooc::RESIDENT_WINDOWS_PREFETCH
    } else {
        ooc::RESIDENT_WINDOWS_SYNC
    };
    planes * plane * residency
}

fn streamable_plan() -> stencil_lab::Plan {
    Solver::new(kernels::heat3d())
        .method(Method::Folded { m: 2 })
        .compile()
        .expect("streamable plan compiles")
}

#[test]
fn transient_store_io_faults_are_retried_to_a_bit_exact_result() {
    let _g = serial();
    let _r = Reset;
    let plan = streamable_plan();
    let grid = workload(48, 14, 16);
    let steps = 6;
    let want = bits3(&plan.run_3d(&grid, steps).unwrap());
    // synchronous mode: all store IO happens on the sweep thread, so
    // the seeded fault schedule is hit in one deterministic order
    let cfg = OocConfig {
        budget_bytes: budget_for(14, 16, 24, false),
        steps_per_pass: 0,
        prefetch: false,
    };
    for (fp, seed) in [
        (Failpoint::OocRead, 0xC0FF_EE01),
        (Failpoint::OocWrite, 0xC0FF_EE02),
        (Failpoint::OocFsync, 0xC0FF_EE03),
    ] {
        faults::disarm_all();
        faults::arm_probability(fp, 0.25, seed);
        faults::set_enabled(true);
        let (got, report) =
            ooc::run_streaming_grid(&plan, &grid, steps, &cfg).unwrap_or_else(|e| {
                panic!("{}: streamed run must absorb p=0.25 faults: {e}", fp.name())
            });
        assert_eq!(want, bits3(&got), "{}: result diverged", fp.name());
        assert!(
            faults::fired(fp) > 0,
            "{}: the armed failpoint must actually fire",
            fp.name()
        );
        assert!(
            report.stats.io_retries > 0,
            "{}: every injected fault crosses the retry path",
            fp.name()
        );
    }
}

#[test]
fn prefetch_faults_degrade_to_synchronous_reads_bit_exactly() {
    let _g = serial();
    let _r = Reset;
    let plan = streamable_plan();
    let grid = workload(56, 14, 16);
    let steps = 7;
    let want = bits3(&plan.run_3d(&grid, steps).unwrap());
    let cfg = OocConfig {
        budget_bytes: budget_for(14, 16, 24, true),
        steps_per_pass: 0,
        prefetch: true,
    };
    // every background load fails: the sweep thread must fall back to
    // synchronous re-reads for the whole run and still match bits
    faults::arm_probability(Failpoint::OocPrefetch, 1.0, 7);
    faults::set_enabled(true);
    let (got, _) = ooc::run_streaming_grid(&plan, &grid, steps, &cfg)
        .expect("prefetch faults must degrade, not fail the job");
    assert_eq!(want, bits3(&got), "sync fallback diverged");
    assert!(faults::fired(Failpoint::OocPrefetch) > 0);
}

#[test]
fn a_hard_io_failure_leaves_a_resumable_store_and_the_resume_is_bit_exact() {
    let _g = serial();
    let _r = Reset;
    let plan = streamable_plan();
    let grid = workload(48, 12, 14);
    let total = 6;
    let want = bits3(&plan.run_3d(&grid, total).unwrap());
    // fixed pass depth, so the interrupted and resumed schedules are
    // prefixes/suffixes of the same pass sequence
    let cfg = OocConfig {
        budget_bytes: budget_for(12, 14, 24, false),
        steps_per_pass: 2,
        prefetch: false,
    };
    let mut path = std::env::temp_dir();
    path.push(format!("stencil-chaos-resume-{}.slab", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // first attempt: one pass commits cleanly, then every fsync fails
    // hard (probability 1.0 outlives the retry budget) — the attempt
    // dies mid-job with a typed transient error, file left in place
    let store = SlabStore::create(&path, &grid, plan.pattern().radius()).unwrap();
    ooc::run_streaming(&plan, &store, 2, &cfg).expect("clean first pass");
    assert_eq!(store.round(), 2);
    faults::arm_probability(Failpoint::OocFsync, 1.0, 11);
    faults::set_enabled(true);
    let err = ooc::run_streaming(&plan, &store, total - 2, &cfg)
        .expect_err("a fault outliving the retry budget must fail the attempt");
    assert!(
        err.is_transient(),
        "exhausted retries surface the transient error, typed: {err}"
    );
    drop(store);
    faults::disarm_all();
    faults::set_enabled(false);
    assert!(
        path.exists(),
        "the interrupted store must survive for resume"
    );

    // resubmission: the serve layer's route recovers the leftover store
    // (rolling the dirty mid-pass state back to committed round 2),
    // streams only the remaining steps, and matches the uninterrupted
    // run bit for bit
    let (got, _) = ooc::run_streaming_grid_resumable(&plan, &grid, total, &cfg, &path)
        .expect("resume after recovery");
    assert_eq!(want, bits3(&got), "resumed run diverged from uninterrupted");
    assert!(!path.exists(), "a successful resume removes the store");
}

#[test]
fn queue_aged_jobs_are_shed_with_a_typed_deadline_error() {
    let _g = serial();
    let _r = Reset;
    // every dequeue stalls a bounded 20 ms before taking the lock, so
    // the doomed job deterministically outlives its 1 ms deadline in
    // the queue no matter how fast the blocker executes
    faults::arm_probability(Failpoint::QueueStall, 1.0, 3);
    faults::set_enabled(true);
    let service = StencilService::start(ServeConfig {
        threads: 1,
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let blocker_grid = Grid2D::from_fn(96, 96, |y, x| ((y + x) % 9) as f64);
    // a different size class resolves to a different registry key, so
    // the doomed job can never ride the blocker's batch
    let doomed_grid = Grid2D::from_fn(160, 160, |y, x| ((y * 3 + x) % 7) as f64);
    let blocker = service
        .submit(JobSpec::new(
            kernels::heat2d(),
            JobDomain::D2(blocker_grid),
            120,
        ))
        .unwrap();
    let doomed = service
        .submit(JobSpec::new(kernels::heat2d(), JobDomain::D2(doomed_grid), 2).with_deadline_ms(1))
        .unwrap();
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded {
            deadline_ms,
            waited_ms,
        }) => {
            assert_eq!(deadline_ms, 1);
            assert!(waited_ms >= 1, "shed records the actual wait: {waited_ms}");
        }
        other => panic!("expected a typed deadline shed, got {other:?}"),
    }
    blocker.wait().expect("the blocker itself completes");
    assert!(faults::fired(Failpoint::QueueStall) > 0);
    let stats = service.shutdown();
    assert_eq!(stats.jobs_shed, 1);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn repeated_worker_panics_quarantine_the_plan_key_with_a_typed_rejection() {
    let _g = serial();
    let _r = Reset;
    faults::arm_probability(Failpoint::WorkerPanic, 1.0, 5);
    faults::set_enabled(true);
    let service = StencilService::start(ServeConfig {
        threads: 1,
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let spec = || {
        JobSpec::new(
            kernels::heat2d(),
            JobDomain::D2(Grid2D::from_fn(32, 32, |y, x| (y * x % 5) as f64)),
            2,
        )
    };
    // consecutive panics on one key: each waiter gets the typed
    // WorkerLost (the executor survives every one of them) until the
    // quarantine gate engages and refuses the key, typed. The waiter is
    // resolved during the panic's unwind, *before* the worker records
    // the panic, so the gate may lag a submission or two behind the
    // threshold — loop until it closes rather than counting to three.
    let mut lost = 0u32;
    let quarantine_panics = loop {
        match service.submit(spec()) {
            Err(ServeError::Quarantined { panics, .. }) => break panics,
            Ok(ticket) => match ticket.wait() {
                Err(ServeError::WorkerLost) => {
                    lost += 1;
                    assert!(lost <= 50, "quarantine never engaged");
                }
                other => panic!("expected WorkerLost, got {other:?}"),
            },
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    };
    assert!(quarantine_panics >= 3, "gate closes at the threshold");
    assert!(lost >= 3, "at least the threshold count of panics ran");
    // quarantine outlives the fault itself: disarming does not lift it
    faults::disarm_all();
    faults::set_enabled(false);
    assert!(matches!(
        service.submit(spec()),
        Err(ServeError::Quarantined { .. })
    ));
    // an unrelated key (a different size class) is unaffected
    service
        .submit(JobSpec::new(
            kernels::heat2d(),
            JobDomain::D2(Grid2D::from_fn(160, 160, |y, x| (y + x) as f64)),
            2,
        ))
        .unwrap()
        .wait()
        .expect("other keys keep serving");
    let stats = service.shutdown();
    assert_eq!(stats.jobs_failed, u64::from(lost));
    assert_eq!(stats.jobs_quarantined, 2);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn one_byte_socket_reads_fragment_every_frame_but_jobs_stay_bit_exact() {
    let _g = serial();
    let _r = Reset;
    // the server reads at most one byte per syscall: every frame
    // arrives maximally fragmented and reassembly runs on each boundary
    faults::arm_probability(Failpoint::NetShortRead, 1.0, 13);
    faults::set_enabled(true);
    let service = StencilService::start(ServeConfig {
        threads: 2,
        workers: 2,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let server = NetServer::start(service, NetConfig::default()).expect("bind");
    let grid = Grid2D::from_fn(32, 32, |y, x| ((y * 13 + x * 7) % 29) as f64);
    let mut client = NetClient::connect(server.addr(), "chaos").unwrap();
    let out = client
        .run(
            SubmitHeader {
                id: 0,
                name: "heat2d".into(),
                pattern: kernels::heat2d(),
                extents: vec![32, 32],
                steps: 4,
                rounds: 1,
                tuning: None,
                deadline_ms: None,
            },
            &grid.to_dense(),
        )
        .expect("fragmented frames must still serve");
    let spec = JobSpec::new(kernels::heat2d(), JobDomain::D2(grid.clone()), 4);
    let (plan, _) = server.service().plan_for(&spec).unwrap();
    let want: Vec<u64> = plan
        .run_2d(&grid, 4)
        .unwrap()
        .to_dense()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let got: Vec<u64> = out.data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(want, got, "fragmentation corrupted a frame");
    assert!(faults::fired(Failpoint::NetShortRead) > 0);
    client.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn a_dropped_connection_fails_typed_and_the_server_keeps_serving() {
    let _g = serial();
    let _r = Reset;
    let service = StencilService::start(ServeConfig {
        threads: 1,
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let server = NetServer::start(service, NetConfig::default()).expect("bind");
    let mut victim = NetClient::connect(server.addr(), "victim").unwrap();
    // script the cable pull: the next per-session server tick severs
    // the (only) established connection
    faults::arm_nth(Failpoint::NetDrop, 1);
    faults::set_enabled(true);
    // bound the wait so even a wedged server would fail typed, not hang
    victim
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let err = victim
        .health()
        .expect_err("a severed connection must surface an error");
    assert!(
        matches!(err, NetError::Protocol(_) | NetError::Io(_)),
        "expected a typed disconnect, got {err:?}"
    );
    assert_eq!(faults::fired(Failpoint::NetDrop), 1);
    faults::disarm_all();
    faults::set_enabled(false);
    // the server survived the drop: a fresh client serves a job
    let grid = Grid2D::from_fn(24, 24, |y, x| ((y + 2 * x) % 5) as f64);
    let mut fresh = NetClient::connect(server.addr(), "fresh").unwrap();
    let out = fresh
        .run(
            SubmitHeader {
                id: 0,
                name: "heat2d".into(),
                pattern: kernels::heat2d(),
                extents: vec![24, 24],
                steps: 2,
                rounds: 1,
                tuning: None,
                deadline_ms: None,
            },
            &grid.to_dense(),
        )
        .expect("the server keeps serving after a drop");
    assert_eq!(out.data.len(), 24 * 24);
    fresh.bye().unwrap();
    server.shutdown();
}

#[test]
fn deadline_shed_surfaces_as_a_typed_frame_over_the_wire() {
    let _g = serial();
    let _r = Reset;
    let service = StencilService::start(ServeConfig {
        threads: 1,
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let server = NetServer::start(service, NetConfig::default()).expect("bind");
    let mut client = NetClient::connect(server.addr(), "t").unwrap();
    // a long blocker on one key occupies the single worker while the
    // doomed job (a different size class, hence a different registry
    // key — never batched with the blocker) ages out in the queue
    let blocker = Grid2D::from_fn(96, 96, |y, x| ((y ^ x) % 7) as f64);
    let doomed = Grid2D::from_fn(160, 160, |y, x| ((y + x) % 3) as f64);
    let blocker_id = client
        .submit(
            SubmitHeader {
                id: 0,
                name: "blocker".into(),
                pattern: kernels::heat2d(),
                extents: vec![96, 96],
                steps: 400,
                rounds: 1,
                tuning: None,
                deadline_ms: None,
            },
            &blocker.to_dense(),
        )
        .unwrap();
    let doomed_id = client
        .submit(
            SubmitHeader {
                id: 0,
                name: "doomed".into(),
                pattern: kernels::heat2d(),
                extents: vec![160, 160],
                steps: 2,
                rounds: 1,
                tuning: None,
                deadline_ms: Some(1),
            },
            &doomed.to_dense(),
        )
        .unwrap();
    let err = loop {
        match client.next_event(doomed_id) {
            Ok(JobEvent::Progress { .. }) => {}
            Ok(JobEvent::Done(_)) => panic!("the doomed job must be shed, not served"),
            Err(e) => break e,
        }
    };
    match err {
        NetError::Deadline {
            deadline_ms,
            waited_ms,
        } => {
            assert_eq!(deadline_ms, 1);
            assert!(waited_ms >= 1);
        }
        other => panic!("expected the typed deadline frame, got {other:?}"),
    }
    // the blocker is unaffected by its neighbor's shed
    loop {
        match client.next_event(blocker_id).unwrap() {
            JobEvent::Progress { .. } => {}
            JobEvent::Done(out) => {
                assert_eq!(out.data.len(), 96 * 96);
                break;
            }
        }
    }
    client.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.jobs_shed, 1);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn enabled_but_idle_failpoints_stay_within_noise_of_disabled() {
    let _g = serial();
    let _r = Reset;
    let plan = streamable_plan();
    let grid = workload(40, 12, 14);
    let cfg = OocConfig {
        budget_bytes: budget_for(12, 14, 28, false),
        steps_per_pass: 0,
        prefetch: false,
    };
    // best-of floors compare each configuration against its own noise
    // floor, the stable way to bound a wall-clock ratio in CI
    let best_of = |reps: usize| -> Duration {
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let (out, _) = ooc::run_streaming_grid(&plan, &grid, 4, &cfg).unwrap();
                assert_eq!(out.nz(), 40);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    faults::disarm_all();
    faults::set_enabled(false);
    let disabled = best_of(5);
    // gate open, nothing armed: every site pays the slow-path mode
    // check on each hit — the worst "idle" configuration
    faults::set_enabled(true);
    let enabled = best_of(5);
    let bound = disabled.mul_f64(1.5) + Duration::from_millis(2);
    assert!(
        enabled <= bound,
        "enabled-but-idle failpoints too slow: disabled {disabled:?}, enabled {enabled:?} (bound {bound:?})"
    );
}
