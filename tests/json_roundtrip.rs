//! Property-based round-trip tests for the hand-rolled JSON
//! implementation (`stencil_tune::json`) — the single writer/parser
//! behind the tuning cache, the benchmark dumps, the serve manifest
//! and the serve metrics surface. One implementation, so one property
//! suite covers every artifact: escapes, unicode, nested structures,
//! number edge cases, and the serve stats document itself.

use proptest::prelude::*;
use std::collections::BTreeMap;
use stencil_lab::serve::{PlanTelemetry, StatsSnapshot, TenantCounters};
use stencil_lab::tune::json::{parse, Value};

/// Map sampled code points onto `char`s, biasing toward the cases the
/// writer must escape: quotes, backslashes, control characters, and
/// multi-byte unicode.
fn chars_from(codes: &[u32]) -> String {
    codes
        .iter()
        .map(|&c| match c % 8 {
            0 => '"',
            1 => '\\',
            2 => char::from_u32(c % 0x20).unwrap_or('\u{1}'), // control
            3 => '\n',
            4 => '\t',
            _ => char::from_u32(0x20 + c % 0x2ff0).unwrap_or('\u{fffd}'),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strings_with_escapes_round_trip(codes in prop::collection::vec(0u32..0x3000, 0..24)) {
        let v = Value::Str(chars_from(&codes));
        prop_assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn finite_numbers_round_trip_exactly(
        frac in -1.0e15f64..1.0e15,
        scale in 0u32..8,
        int in -9_007_199_254_740_992i64..9_007_199_254_740_992,
    ) {
        // fractional values across magnitudes (the shortest-float
        // writer must re-parse to the identical bits)...
        let scaled = frac * (10f64).powi(scale as i32 * 4 - 16);
        for n in [scaled, frac, int as f64, -0.0, 0.0] {
            let v = Value::Num(n);
            let back = parse(&v.pretty()).unwrap();
            prop_assert_eq!(back.as_num().unwrap().to_bits(), n.to_bits(), "{}", n);
        }
    }

    #[test]
    fn nested_arrays_and_objects_round_trip(
        nums in prop::collection::vec(-1.0e9f64..1.0e9, 0..6),
        key_codes in prop::collection::vec(0u32..0x3000, 1..10),
        depth in 1usize..5,
    ) {
        // depth-nested object/array alternation with awkward keys
        let mut v = Value::Arr(nums.iter().map(|&n| Value::Num(n)).collect());
        for level in 0..depth {
            let mut m = BTreeMap::new();
            m.insert(chars_from(&key_codes), v.clone());
            m.insert(format!("level{level}"), Value::Bool(level % 2 == 0));
            m.insert("null".into(), Value::Null);
            v = if level % 2 == 0 {
                Value::Obj(m)
            } else {
                Value::Arr(vec![Value::Obj(m), v])
            };
        }
        let text = v.pretty();
        prop_assert_eq!(parse(&text).unwrap(), v);
        // and the writer is deterministic: re-serialize == serialize
        prop_assert_eq!(parse(&text).unwrap().pretty(), text);
    }

    #[test]
    fn serve_stats_dumps_round_trip(
        counters in prop::collection::vec(0u64..1_000_000_000, 20),
        mean in 0.0f64..1.0e9,
        warn_codes in prop::collection::vec(0u32..0x3000, 0..12),
        tenant_codes in prop::collection::vec(0u32..0x3000, 1..10),
        tenant_counters in prop::collection::vec(0u64..1_000_000_000, 3),
        plan_counters in prop::collection::vec(0u64..1_000_000_000, 4),
    ) {
        // the serve metrics document uses the same writer; any counter
        // values and any warning text must survive the trip
        let snap = StatsSnapshot {
            jobs_submitted: counters[0],
            jobs_rejected: counters[1],
            jobs_completed: counters[2],
            jobs_failed: counters[3],
            jobs_shed: counters[5] ^ counters[6],
            jobs_quarantined: counters[7] ^ counters[8],
            queue_depth: counters[4],
            plan_hits: counters[5],
            plan_misses: counters[6],
            warm_loaded: counters[7],
            cold_fallbacks: counters[8],
            cold_recoveries: counters[16],
            batches: counters[9],
            batched_jobs: counters[10],
            max_batch: counters[11],
            sharded_jobs: counters[12],
            shards_executed: counters[13],
            ooc_jobs: counters[12] ^ counters[13],
            ooc_bytes_read: counters[14] ^ counters[0],
            ooc_bytes_written: counters[15] ^ counters[1],
            ooc_prefetch_hits: counters[16] ^ counters[2],
            ooc_prefetch_misses: counters[17] ^ counters[3],
            ooc_stall_us: counters[18] ^ counters[4],
            ooc_io_retries: counters[19] ^ counters[5],
            p50_us: counters[14],
            p99_us: counters[15],
            mean_us: mean,
            tuner_probes: counters[0] ^ counters[1],
            swaps: counters[17],
            challenges: counters[18],
            challenges_rejected: counters[19],
            warnings: vec![chars_from(&warn_codes)],
            // awkward tenant names (quotes, control chars, unicode)
            // must survive as object keys too
            tenants: BTreeMap::from([(
                chars_from(&tenant_codes),
                TenantCounters {
                    submitted: tenant_counters[0],
                    rejected: tenant_counters[1],
                    completed: tenant_counters[2],
                },
            )]),
            // registry keys contain '|' and arbitrary shape tokens —
            // the per-plan telemetry rows must survive them as keys
            plans: BTreeMap::from([(
                chars_from(&tenant_codes) + "|small|static|pooled",
                PlanTelemetry {
                    samples: plan_counters[0],
                    p50_us: plan_counters[1],
                    p99_us: plan_counters[2],
                    epoch: plan_counters[3],
                    queue_us: plan_counters[0] ^ plan_counters[1],
                    compute_us: plan_counters[1] ^ plan_counters[2],
                    io_us: plan_counters[2] ^ plan_counters[3],
                    overlap_us: plan_counters[3] ^ plan_counters[0],
                },
            )]),
        };
        let text = snap.to_json().pretty();
        let back = StatsSnapshot::from_json(&parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, snap);
    }
}

/// Pin the stats document's key set: dashboards and scrapers parse this
/// schema, so adding or renaming a key must be a conscious, test-visible
/// change here.
#[test]
fn serve_stats_json_schema_is_pinned() {
    let snap = StatsSnapshot {
        tenants: BTreeMap::from([("acme".to_string(), TenantCounters::default())]),
        plans: BTreeMap::from([(
            "sig|small|static|pooled".to_string(),
            PlanTelemetry::default(),
        )]),
        ..StatsSnapshot::from_json(
            &parse(
                &stencil_lab::serve::ServeStats::new()
                    .snapshot()
                    .to_json()
                    .pretty(),
            )
            .unwrap(),
        )
        .unwrap()
    };
    let doc = snap.to_json();
    let Value::Obj(m) = &doc else {
        panic!("stats document must be an object")
    };
    let keys: Vec<&str> = m.keys().map(String::as_str).collect();
    assert_eq!(
        keys,
        [
            "batched_jobs",
            "batches",
            "challenges",
            "challenges_rejected",
            "cold_fallbacks",
            "cold_recoveries",
            "jobs_completed",
            "jobs_failed",
            "jobs_quarantined",
            "jobs_rejected",
            "jobs_shed",
            "jobs_submitted",
            "max_batch",
            "mean_us",
            "ooc_bytes_read",
            "ooc_bytes_written",
            "ooc_io_retries",
            "ooc_jobs",
            "ooc_prefetch_hits",
            "ooc_prefetch_misses",
            "ooc_stall_us",
            "p50_us",
            "p99_us",
            "plan_hit_ratio",
            "plan_hits",
            "plan_misses",
            "plans",
            "queue_depth",
            "sharded_jobs",
            "shards_executed",
            "swaps",
            "tenants",
            "tuner_probes",
            "warm_loaded",
            "warnings",
        ]
    );
    let Some(Value::Obj(rows)) = m.get("tenants") else {
        panic!("tenants must be an object keyed by tenant name")
    };
    let Some(Value::Obj(row)) = rows.get("acme") else {
        panic!("tenant rows must be objects")
    };
    let row_keys: Vec<&str> = row.keys().map(String::as_str).collect();
    assert_eq!(row_keys, ["completed", "rejected", "submitted"]);
    let Some(Value::Obj(rows)) = m.get("plans") else {
        panic!("plans must be an object keyed by registry key")
    };
    let Some(Value::Obj(row)) = rows.get("sig|small|static|pooled") else {
        panic!("plan telemetry rows must be objects")
    };
    let row_keys: Vec<&str> = row.keys().map(String::as_str).collect();
    assert_eq!(
        row_keys,
        [
            "compute_us",
            "epoch",
            "io_us",
            "overlap_us",
            "p50_us",
            "p99_us",
            "queue_us",
            "samples",
        ]
    );
}
