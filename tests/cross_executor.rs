//! Integration: every vectorization method must produce the same fields
//! as the scalar reference, for every linear benchmark kernel, across
//! widths — the core correctness claim behind the performance numbers.

use std::sync::OnceLock;
use stencil_lab::core::api::Width;
use stencil_lab::core::kernels;
use stencil_lab::grid::max_abs_diff;
use stencil_lab::tune::probe::Budget;
use stencil_lab::{AutoTuner, Grid1D, Grid2D, Grid3D, Method, Pattern, Solver, Tiling, Tuning};

const TOL: f64 = 1e-11;

fn grid1(n: usize) -> Grid1D {
    Grid1D::from_fn(n, |i| ((i * 2654435761) % 1024) as f64 / 1024.0)
}

fn grid2(ny: usize, nx: usize) -> Grid2D {
    Grid2D::from_fn(ny, nx, |y, x| ((y * 31 + x * 17) % 257) as f64 / 257.0)
}

fn grid3(nz: usize, ny: usize, nx: usize) -> Grid3D {
    Grid3D::from_fn(nz, ny, nx, |z, y, x| {
        ((z * 7 + y * 11 + x * 13) % 127) as f64
    })
}

#[test]
fn one_dimensional_methods_agree() {
    for p in [kernels::heat1d(), kernels::d1p5()] {
        let g = grid1(1024);
        let t = 20;
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_1d(&g, t)
            .unwrap();
        for method in [
            Method::MultipleLoads,
            Method::DataReorg,
            Method::Dlt,
            Method::TransposeLayout,
        ] {
            for width in [Width::W4, Width::W8] {
                let got = Solver::new(p.clone())
                    .method(method)
                    .width(width)
                    .compile()
                    .unwrap()
                    .run_1d(&g, t)
                    .unwrap();
                assert!(
                    max_abs_diff(want.as_slice(), got.as_slice()) < TOL,
                    "{method:?} {width:?} pts={}",
                    p.points()
                );
            }
        }
    }
}

#[test]
fn folded_1d_matches_scalar_folded() {
    for p in [kernels::heat1d(), kernels::d1p5()] {
        for m in [2usize, 3] {
            let folded = stencil_lab::core::folding::fold(&p, m);
            if folded.radius() > 8 {
                continue; // beyond the 8-lane assembled-vector reach
            }
            // the assembled vectors reach at most `vl` lanes: use the
            // 8-lane width when the folded radius exceeds 4
            let width = if folded.radius() > 4 {
                Width::W8
            } else {
                Width::W4
            };
            let g = grid1(640);
            let steps = 4 * m;
            let want = Solver::new(folded)
                .method(Method::Scalar)
                .compile()
                .unwrap()
                .run_1d(&g, steps / m)
                .unwrap();
            let got = Solver::new(p.clone())
                .method(Method::Folded { m })
                .width(width)
                .compile()
                .unwrap()
                .run_1d(&g, steps)
                .unwrap();
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < TOL,
                "m={m} pts={}",
                p.points()
            );
        }
    }
}

#[test]
fn two_dimensional_methods_agree() {
    // life_count has weight sum 8, so the field grows as 8^t and only a
    // relative comparison is meaningful; the others are averaging.
    for p in [
        kernels::heat2d(),
        kernels::box2d9p(),
        kernels::gb(),
        kernels::life_count(),
    ] {
        let g = grid2(64, 72);
        let t = 10;
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_2d(&g, t)
            .unwrap();
        for method in [Method::MultipleLoads, Method::TransposeLayout] {
            let got = Solver::new(p.clone())
                .method(method)
                .compile()
                .unwrap()
                .run_2d(&g, t)
                .unwrap();
            assert!(
                stencil_lab::grid::rel_l2_error(&got.to_dense(), &want.to_dense()) < 1e-13,
                "{method:?} pts={}",
                p.points()
            );
        }
    }
}

#[test]
fn folded_2d_matches_scalar_folded_all_kernels() {
    for p in [kernels::heat2d(), kernels::box2d9p(), kernels::gb()] {
        let g = grid2(57, 63);
        let folded = stencil_lab::core::folding::fold(&p, 2);
        let want = Solver::new(folded)
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_2d(&g, 4)
            .unwrap();
        for width in [Width::W4, Width::W8] {
            let got = Solver::new(p.clone())
                .method(Method::Folded { m: 2 })
                .width(width)
                .compile()
                .unwrap()
                .run_2d(&g, 8)
                .unwrap();
            assert!(
                max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10,
                "{width:?} pts={}",
                p.points()
            );
        }
    }
}

#[test]
fn three_dimensional_methods_agree() {
    for p in [kernels::heat3d(), kernels::box3d27p()] {
        let g = grid3(18, 20, 24);
        let t = 5;
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_3d(&g, t)
            .unwrap();
        for method in [Method::MultipleLoads, Method::TransposeLayout] {
            let got = Solver::new(p.clone())
                .method(method)
                .compile()
                .unwrap()
                .run_3d(&g, t)
                .unwrap();
            assert!(
                max_abs_diff(&want.to_dense(), &got.to_dense()) < TOL,
                "{method:?} pts={}",
                p.points()
            );
        }
        // folded m=2
        let folded = stencil_lab::core::folding::fold(&p, 2);
        let want2 = Solver::new(folded)
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_3d(&g, 2)
            .unwrap();
        let got2 = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .compile()
            .unwrap()
            .run_3d(&g, 4)
            .unwrap();
        assert!(
            max_abs_diff(&want2.to_dense(), &got2.to_dense()) < 1e-10,
            "folded pts={}",
            p.points()
        );
    }
}

/// Install a private-cache tuner once for this test binary.
fn tuner_ready() {
    static T: OnceLock<()> = OnceLock::new();
    T.get_or_init(|| {
        let path = std::env::temp_dir().join(format!(
            "stencil-cross-exec-tune-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let t: &'static AutoTuner = Box::leak(Box::new(
            AutoTuner::with_cache_path(path).budget(Budget::from_millis(120)),
        ));
        stencil_lab::core::tune::install_tuner(t);
    });
}

#[test]
fn three_dimensional_tuned_and_static_selection_agree() {
    // heat3d / box3d27p end-to-end through Plan::run_3d with the full
    // auto pipeline, under both the cost model (Static) and the
    // measured tuner — whatever either selects must reproduce the
    // scalar reference field away from the Dirichlet band a folded
    // choice widens
    tuner_ready();
    for p in [kernels::heat3d(), kernels::box3d27p()] {
        // the deeper 3D fold window lets the tuner pick m = 3 (band up
        // to 12 at t = 4): the grid must keep an interior even then
        let (nz, ny, nx) = (30, 30, 32);
        let g = grid3(nz, ny, nx);
        let t = 4;
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_3d(&g, t)
            .unwrap();
        for tuning in [Tuning::Static, Tuning::Measured] {
            let plan = Solver::new(p.clone())
                .method(Method::Auto)
                .tiling(Tiling::Auto)
                .threads(2)
                .tuning(tuning)
                .domain_hint(&[nz, ny, nx])
                .compile()
                .unwrap();
            assert_ne!(plan.method(), Method::Auto, "{tuning:?}");
            assert_ne!(plan.tiling(), Tiling::Auto, "{tuning:?}");
            assert_eq!(plan.dims(), 3);
            let got = plan.run_3d(&g, t).unwrap();
            let band = plan.m() * p.radius() * t;
            assert!(band * 2 < nz, "interior must be nonempty");
            let mut worst = 0.0f64;
            for z in band..nz - band {
                for y in band..ny - band {
                    let (a, b) = (want.row(z, y), got.row(z, y));
                    for x in band..nx - band {
                        worst = worst.max((a[x] - b[x]).abs());
                    }
                }
            }
            assert!(
                worst < 1e-10,
                "{tuning:?} {:?} pts={} worst={worst:e}",
                plan.method(),
                p.points()
            );
        }
        // the measured decision is now cached: CacheOnly must resolve
        // it deterministically for the same shape class
        let cached = Solver::new(p.clone())
            .method(Method::Auto)
            .tiling(Tiling::Auto)
            .threads(2)
            .tuning(Tuning::CacheOnly)
            .domain_hint(&[nz, ny, nx])
            .compile()
            .unwrap();
        assert_ne!(cached.method(), Method::Auto);
    }
}

#[test]
fn arbitrary_asymmetric_patterns_1d() {
    // beyond the named benchmarks: random asymmetric taps
    let taps = [0.11, -0.2, 0.37, 0.4, 0.05];
    let p = Pattern::new_1d(&taps);
    let g = grid1(512);
    let want = Solver::new(p.clone())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_1d(&g, 8)
        .unwrap();
    for method in [
        Method::MultipleLoads,
        Method::DataReorg,
        Method::Dlt,
        Method::TransposeLayout,
    ] {
        let got = Solver::new(p.clone())
            .method(method)
            .compile()
            .unwrap()
            .run_1d(&g, 8)
            .unwrap();
        assert!(
            max_abs_diff(want.as_slice(), got.as_slice()) < TOL,
            "{method:?}"
        );
    }
}
