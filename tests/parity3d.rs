//! Cross-backend 3D parity suite for the z-ring register pipeline.
//!
//! The pipeline's correctness contract, pinned across every lane width
//! this build carries (scalar lanes / 4-lane / 8-lane — the intrinsic
//! AVX2/AVX-512 backends are selected at compile time and the AVX-512
//! CI lane gates execution on the runner's CPUID):
//!
//! * every width agrees with the `exec/scalar.rs` folded reference to
//!   tight tolerance for `heat3d` and `box3d27p` (radius 1) and the
//!   radius-2 `box3d125p`, at m ∈ {1, 2}, block-free and tessellated,
//! * scalar-lane plans agree with `exec/scalar.rs` **bit for bit**
//!   (they execute through it),
//! * tessellate thread counts never change a single bit (tile geometry
//!   is thread-count-independent; threads only change who runs a tile),
//! * Static and Measured tuning agree on the field, and a Measured →
//!   CacheOnly replay is bit-identical (decision determinism).

use std::sync::OnceLock;
use stencil_lab::core::api::Width;
use stencil_lab::core::exec::scalar;
use stencil_lab::core::folding::fold;
use stencil_lab::core::kernels;
use stencil_lab::grid::max_abs_diff;
use stencil_lab::tune::probe::Budget;
use stencil_lab::{AutoTuner, Grid3D, Method, Pattern, PingPong, Solver, Tiling, Tuning};

fn grid3(nz: usize, ny: usize, nx: usize) -> Grid3D {
    Grid3D::from_fn(nz, ny, nx, |z, y, x| {
        ((z * 131 + y * 31 + x * 17) % 251) as f64 / 251.0
    })
}

/// The `exec/scalar.rs` reference with the folded plans' exact macro
/// semantics: `t / m` sweeps of Λ (`t` must be a multiple of `m`).
fn scalar_folded_ref(p: &Pattern, m: usize, g: &Grid3D, t: usize) -> Grid3D {
    assert_eq!(t % m, 0, "reference avoids the unfolded tail");
    let f = fold(p, m);
    let mut pp = PingPong::new(g.clone());
    scalar::sweep_3d(&mut pp, &f, t / m);
    pp.into_current()
}

fn cases() -> Vec<(&'static str, Pattern)> {
    vec![
        ("heat3d", kernels::heat3d()),
        ("box3d27p", kernels::box3d27p()),
        ("box3d125p", kernels::box3d125p()),
        ("star3d_r2", kernels::star3d_r2()),
    ]
}

#[test]
fn zring_agrees_with_scalar_reference_across_widths_and_tilings() {
    for (name, p) in cases() {
        for m in [1usize, 2] {
            let g = grid3(26, 22, 30);
            let t = 2 * m;
            let want = scalar_folded_ref(&p, m, &g, t);
            for width in [Width::W4, Width::W8] {
                for (tiling, threads) in [
                    (Tiling::None, 1usize),
                    (Tiling::Tessellate { time_block: 2 }, 3),
                ] {
                    let plan = Solver::new(p.clone())
                        .method(Method::Folded { m })
                        .tiling(tiling)
                        .width(width)
                        .threads(threads)
                        .compile()
                        .unwrap();
                    let got = plan.run_3d(&g, t).unwrap();
                    assert!(
                        max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-11,
                        "{name} m={m} {width:?} {tiling:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn scalar_lane_plans_agree_bitwise_with_scalar_executor() {
    // W1 register plans execute through exec/scalar.rs itself — the
    // agreement is exact, not approximate
    for (name, p) in cases() {
        for m in [1usize, 2] {
            // scalar lanes keep the narrower radius cap (no register
            // window to spend): deeper folds are a typed compile error
            if m * p.radius() > stencil_lab::core::tune::fold_radius_cap(3, Width::W1) {
                assert!(Solver::new(p.clone())
                    .method(Method::Folded { m })
                    .width(Width::W1)
                    .compile()
                    .is_err());
                continue;
            }
            let g = grid3(20, 18, 24);
            let t = 2 * m;
            let want = scalar_folded_ref(&p, m, &g, t);
            let plan = Solver::new(p.clone())
                .method(Method::Folded { m })
                .width(Width::W1)
                .compile()
                .unwrap();
            let got = plan.run_3d(&g, t).unwrap();
            let wb: Vec<u64> = want.to_dense().iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.to_dense().iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, gb, "{name} m={m}");
        }
    }
}

#[test]
fn tessellate_thread_count_never_changes_bits() {
    for (name, p) in [
        ("heat3d", kernels::heat3d()),
        ("box3d125p", kernels::box3d125p()),
    ] {
        let g = grid3(40, 24, 28);
        let t = 6;
        let run = |threads: usize| {
            Solver::new(p.clone())
                .method(Method::Folded { m: 2 })
                .tiling(Tiling::Tessellate { time_block: 2 })
                .threads(threads)
                .compile()
                .unwrap()
                .run_3d(&g, t)
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        let ob: Vec<u64> = one.to_dense().iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u64> = four.to_dense().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ob, fb, "{name}");
    }
}

fn tuner_ready() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let path =
            std::env::temp_dir().join(format!("stencil-parity3d-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let t: &'static AutoTuner = Box::leak(Box::new(
            AutoTuner::with_cache_path(path).budget(Budget::from_millis(150)),
        ));
        stencil_lab::core::tune::install_tuner(t);
    });
}

#[test]
fn static_and_measured_tuning_agree_and_cache_only_replays_bitwise() {
    tuner_ready();
    for (name, p) in [
        ("heat3d", kernels::heat3d()),
        ("box3d27p", kernels::box3d27p()),
    ] {
        let g = grid3(24, 24, 28);
        let t = 4;
        let want = scalar_folded_ref(&p, 2, &g, t);
        let compile = |tuning: Tuning| {
            Solver::new(p.clone())
                .method(Method::Folded { m: 2 })
                .tiling(Tiling::Auto)
                .threads(2)
                .tuning(tuning)
                .domain_hint(&[24, 24, 28])
                .compile()
                .unwrap()
        };
        let st = compile(Tuning::Static).run_3d(&g, t).unwrap();
        let measured_plan = compile(Tuning::Measured);
        let me = measured_plan.run_3d(&g, t).unwrap();
        for (tag, out) in [("static", &st), ("measured", &me)] {
            assert!(
                max_abs_diff(&want.to_dense(), &out.to_dense()) < 1e-11,
                "{name} {tag}"
            );
        }
        // the measured decision is persisted: CacheOnly resolves the
        // same plan, and its run replays the measured bits exactly
        let co = compile(Tuning::CacheOnly).run_3d(&g, t).unwrap();
        let mb: Vec<u64> = me.to_dense().iter().map(|v| v.to_bits()).collect();
        let cb: Vec<u64> = co.to_dense().iter().map(|v| v.to_bits()).collect();
        assert_eq!(mb, cb, "{name}");
    }
}
