//! Result tables: fixed-width console rendering + JSON dump.
//!
//! JSON is emitted by a small hand-rolled writer instead of
//! `serde`/`serde_json` so the harness stays dependency-free (the build
//! environment is offline).

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row label (e.g. benchmark name).
    pub row: String,
    /// Column label (e.g. method name).
    pub col: String,
    /// Measured value (GFLOP/s, speedup, ...), `None` = unsupported.
    pub value: Option<f64>,
}

/// A named table of cells addressed by (row, col).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed as a header).
    pub title: String,
    /// Unit of the values (printed next to the title).
    pub unit: String,
    /// Cells in insertion order.
    pub cells: Vec<Cell>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            unit: unit.into(),
            cells: Vec::new(),
        }
    }

    /// Record a measurement.
    pub fn put(&mut self, row: impl Into<String>, col: impl Into<String>, value: Option<f64>) {
        self.cells.push(Cell {
            row: row.into(),
            col: col.into(),
            value,
        });
    }

    /// Distinct row labels in insertion order.
    pub fn rows(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.row.as_str()) {
                out.push(&c.row);
            }
        }
        out
    }

    /// Distinct column labels in insertion order.
    pub fn cols(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.col.as_str()) {
                out.push(&c.col);
            }
        }
        out
    }

    /// Look up a value.
    pub fn get(&self, row: &str, col: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.row == row && c.col == col)
            .and_then(|c| c.value)
    }

    /// Render as a fixed-width console table.
    pub fn render(&self) -> String {
        let rows = self.rows();
        let cols = self.cols();
        let rw = rows
            .iter()
            .map(|r| r.len())
            .chain([4])
            .max()
            .unwrap()
            .max(self.title.len().min(24));
        let cw = cols.iter().map(|c| c.len().max(9)).collect::<Vec<_>>();
        let mut out = String::new();
        out.push_str(&format!("# {} [{}]\n", self.title, self.unit));
        out.push_str(&format!("{:<rw$}", ""));
        for (c, w) in cols.iter().zip(&cw) {
            out.push_str(&format!(" | {c:>w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(rw + cw.iter().map(|w| w + 3).sum::<usize>()));
        out.push('\n');
        for r in &rows {
            out.push_str(&format!("{r:<rw$}"));
            for (c, w) in cols.iter().zip(&cw) {
                match self.get(r, c) {
                    Some(v) => out.push_str(&format!(" | {v:>w$.2}")),
                    None => out.push_str(&format!(" | {:>w$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serialize (possibly several tables) to a pretty-printed JSON
    /// file, stamped with the measuring host's fingerprint (hostname,
    /// ISA build, hardware threads) so committed baselines stay
    /// attributable to the machine that produced them.
    ///
    /// Writer and reader are the same implementation
    /// (`stencil_tune::json`), so the dumps the tuner subsystem parses
    /// can never drift from what the harness emits.
    pub fn dump_json(tables: &[&Table], path: &str) -> std::io::Result<()> {
        use stencil_tune::json::Value;
        let host = stencil_tune::host::HostFingerprint::detect();
        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let doc = obj(vec![
            (
                "host",
                obj(vec![
                    ("hostname", Value::Str(host.hostname)),
                    ("isa", Value::Str(host.isa)),
                    ("backend", Value::Str(stencil_simd::backend_summary())),
                    ("threads", Value::Num(host.threads as f64)),
                ]),
            ),
            (
                "tables",
                Value::Arr(
                    tables
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("title", Value::Str(t.title.clone())),
                                ("unit", Value::Str(t.unit.clone())),
                                (
                                    "cells",
                                    Value::Arr(
                                        t.cells
                                            .iter()
                                            .map(|c| {
                                                obj(vec![
                                                    ("row", Value::Str(c.row.clone())),
                                                    ("col", Value::Str(c.col.clone())),
                                                    (
                                                        "value",
                                                        match c.value {
                                                            Some(v) if v.is_finite() => {
                                                                Value::Num(v)
                                                            }
                                                            _ => Value::Null,
                                                        },
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(path, doc.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_values_and_dashes() {
        let mut t = Table::new("demo", "GFLOP/s");
        t.put("1D-Heat", "Our", Some(12.345));
        t.put("1D-Heat", "SDSL", None);
        t.put("2D9P", "Our", Some(3.0));
        let s = t.render();
        assert!(s.contains("12.35"));
        assert!(s.contains('-'));
        assert!(s.contains("2D9P"));
        assert_eq!(t.rows(), vec!["1D-Heat", "2D9P"]);
        assert_eq!(t.cols(), vec!["Our", "SDSL"]);
        assert_eq!(t.get("2D9P", "Our"), Some(3.0));
        assert_eq!(t.get("2D9P", "SDSL"), None);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("j", "x");
        t.put("a", "b", Some(1.0));
        let path = std::env::temp_dir().join("stencil_bench_test.json");
        Table::dump_json(&[&t], path.to_str().unwrap()).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"title\": \"j\""));
        let _ = std::fs::remove_file(path);
        // the dump is valid JSON and attributable: host metadata rides
        // along with every table dump (checked with the tune crate's
        // parser so writer and reader stay in agreement)
        let doc = stencil_tune::json::parse(&s).unwrap();
        let host = doc.get("host").expect("host stanza");
        assert!(host.get("hostname").unwrap().as_str().is_some());
        assert!(host.get("isa").unwrap().as_str().is_some());
        assert!(host.get("threads").unwrap().as_num().unwrap() >= 1.0);
        let tables = doc.get("tables").unwrap().as_arr().unwrap();
        assert_eq!(tables[0].get("title").unwrap().as_str(), Some("j"));
    }
}
