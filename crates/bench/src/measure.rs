//! Timing and GFLOP/s accounting.

use std::time::{Duration, Instant};

/// Wall-clock one run.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Best (minimum) wall time of `reps` runs — the standard way to report
/// kernel throughput (noise is one-sided).
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let (mut out, mut best) = time_once(&mut f);
    for _ in 1..reps {
        let (o, d) = time_once(&mut f);
        if d < best {
            best = d;
            out = o;
        }
    }
    (out, best)
}

/// GFLOP/s for `points` grid points updated `steps` times at
/// `flops_per_point` flops each.
pub fn gflops(points: usize, steps: usize, flops_per_point: usize, elapsed: Duration) -> f64 {
    let flops = points as f64 * steps as f64 * flops_per_point as f64;
    flops / elapsed.as_secs_f64() / 1e9
}

/// Millions of lattice-site updates per second (alternative metric).
pub fn mlups(points: usize, steps: usize, elapsed: Duration) -> f64 {
    points as f64 * steps as f64 / elapsed.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_arithmetic() {
        let d = Duration::from_secs(1);
        assert!((gflops(1_000_000, 100, 10, d) - 1.0).abs() < 1e-12);
        assert!((mlups(2_000_000, 50, d) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn best_of_returns_min() {
        let mut calls = 0;
        let (_, d) = best_of(3, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(calls, 3);
        assert!(d >= Duration::from_millis(1));
    }
}
