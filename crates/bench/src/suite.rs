//! The shared benchmark suite behind `fig9`, `fig10` and `table3`:
//! the nine Table-1 benchmarks x the five methods of Fig. 9/10.
//!
//! The harness follows the library's compile-once/run-many discipline:
//! each (benchmark, method) cell compiles a [`Plan`] once and reuses it
//! across `sizes.reps` repetitions (reporting the best time), and every
//! cell of a sweep shares one [`PoolHandle`] so worker threads are
//! spawned once per thread-count, not once per cell.

use crate::measure;
use crate::workload;
use std::time::Duration;
use stencil_core::exec::{apop, life};
use stencil_core::tile::tessellate;
use stencil_core::{kernels, Method, Pattern, Plan, Solver, Tiling, Tuning, Width};
use stencil_grid::{Grid2D, PingPong};
use stencil_runtime::PoolHandle;
use stencil_simd::{NativeF64x4, NativeF64x8, SimdF64};

/// The nine benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchId {
    /// 1D 3-point heat.
    Heat1D,
    /// 1D 5-point.
    D1P5,
    /// American put option pricing (1D3P, two arrays, max).
    Apop,
    /// 2D 5-point heat.
    Heat2D,
    /// 2D 9-point box.
    Box2D9P,
    /// Game of Life.
    Life,
    /// General (asymmetric) 2D box.
    Gb,
    /// 3D 7-point heat.
    Heat3D,
    /// 3D 27-point box.
    Box3D27P,
}

impl BenchId {
    /// All nine, in Table-1 order.
    pub const ALL: [BenchId; 9] = [
        BenchId::Heat1D,
        BenchId::D1P5,
        BenchId::Apop,
        BenchId::Heat2D,
        BenchId::Box2D9P,
        BenchId::Life,
        BenchId::Gb,
        BenchId::Heat3D,
        BenchId::Box3D27P,
    ];

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            BenchId::Heat1D => "1D-Heat",
            BenchId::D1P5 => "1D5P",
            BenchId::Apop => "APOP",
            BenchId::Heat2D => "2D-Heat",
            BenchId::Box2D9P => "2D9P",
            BenchId::Life => "Game of Life",
            BenchId::Gb => "GB",
            BenchId::Heat3D => "3D-Heat",
            BenchId::Box3D27P => "3D27P",
        }
    }

    /// Spatial dimensionality.
    pub fn dims(self) -> usize {
        match self {
            BenchId::Heat1D | BenchId::D1P5 | BenchId::Apop => 1,
            BenchId::Heat3D | BenchId::Box3D27P => 3,
            _ => 2,
        }
    }

    /// Linear pattern, when the kernel is linear.
    pub fn pattern(self) -> Option<Pattern> {
        match self {
            BenchId::Heat1D => Some(kernels::heat1d()),
            BenchId::D1P5 => Some(kernels::d1p5()),
            BenchId::Heat2D => Some(kernels::heat2d()),
            BenchId::Box2D9P => Some(kernels::box2d9p()),
            BenchId::Gb => Some(kernels::gb()),
            BenchId::Heat3D => Some(kernels::heat3d()),
            BenchId::Box3D27P => Some(kernels::box3d27p()),
            BenchId::Apop | BenchId::Life => None,
        }
    }

    /// Flops per point per time step (multiply-accumulate counting).
    pub fn flops_per_point(self) -> usize {
        match self {
            BenchId::Apop => 7,  // 3 madds + max
            BenchId::Life => 16, // 8 neighbour adds + rule
            other => 2 * other.pattern().unwrap().points(),
        }
    }
}

/// The methods compared in Fig. 9/10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodId {
    /// Split tiling over DLT layout (SDSL).
    Sdsl,
    /// Tessellate tiling + straightforward vectorization (Yuan).
    Tess,
    /// Ours: register transpose pipeline, single step.
    Our,
    /// Ours with temporal folding m = 2.
    Our2,
    /// Ours m = 2 on 8-lane vectors (AVX-512).
    Our2W8,
}

impl MethodId {
    /// All five, in figure order.
    pub const ALL: [MethodId; 5] = [
        MethodId::Sdsl,
        MethodId::Tess,
        MethodId::Our,
        MethodId::Our2,
        MethodId::Our2W8,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodId::Sdsl => "SDSL",
            MethodId::Tess => "Tessellation",
            MethodId::Our => "Our",
            MethodId::Our2 => "Our (2 steps)",
            MethodId::Our2W8 => "Our (2, AVX-512)",
        }
    }
}

/// Problem sizes for one suite run.
#[derive(Debug, Clone)]
pub struct Sizes {
    /// 1D grid points.
    pub n1: usize,
    /// 2D grid (ny, nx).
    pub n2: (usize, usize),
    /// 3D grid (nz, ny, nx).
    pub n3: (usize, usize, usize),
    /// Time steps per dimensionality.
    pub t1: usize,
    /// 2D time steps.
    pub t2: usize,
    /// 3D time steps.
    pub t3: usize,
    /// Tessellation/split time blocks per dimensionality.
    pub tb1: usize,
    /// 2D time block.
    pub tb2: usize,
    /// 3D time block.
    pub tb3: usize,
    /// Timed repetitions per cell, sharing one compiled plan; the best
    /// time is reported.
    pub reps: usize,
    /// Resolve the tiling of linear cells through the measured tuner
    /// (`Tiling::Auto` + [`Tuning::Measured`], method and width still
    /// pinned per cell) instead of the hand-set `tb*` fields. Requires
    /// an installed tuner (`stencil_tune::install()`); the `--tuned`
    /// flag on `fig9`/`table3` sets both up.
    pub tuned: bool,
}

impl Sizes {
    /// Laptop-scale defaults (minutes for the whole suite).
    pub fn default_scaled() -> Self {
        Self {
            n1: 2_097_152,
            n2: (1024, 1024),
            n3: (96, 96, 96),
            t1: 200,
            t2: 100,
            t3: 50,
            tb1: 50,
            tb2: 12,
            tb3: 6,
            reps: 2,
            tuned: false,
        }
    }

    /// CI smoke sizes (seconds). Two repetitions so plan reuse stays
    /// exercised even in smoke runs.
    pub fn quick() -> Self {
        Self {
            n1: 131_072,
            n2: (128, 128),
            n3: (32, 32, 32),
            t1: 24,
            t2: 12,
            t3: 8,
            tb1: 8,
            tb2: 4,
            tb3: 3,
            reps: 2,
            tuned: false,
        }
    }

    /// The paper's Table-1 sizes (hours on a laptop).
    pub fn paper() -> Self {
        Self {
            n1: 10_240_000,
            n2: (5000, 5000),
            n3: (400, 400, 400),
            t1: 1000,
            t2: 1000,
            t3: 1000,
            tb1: 500,
            tb2: 50,
            tb3: 10,
            reps: 1,
            tuned: false,
        }
    }

    /// Pick by flags.
    pub fn from_flags(paper: bool, quick: bool) -> Self {
        if paper {
            Self::paper()
        } else if quick {
            Self::quick()
        } else {
            Self::default_scaled()
        }
    }
}

/// Run one (benchmark, method) cell on the shared `pool`; `None` when
/// the method does not support the benchmark (mirroring the paper's
/// "-"). The cell's configuration is compiled once and run
/// `sizes.reps` times; the best time is reported.
pub fn run_one(
    bench: BenchId,
    method: MethodId,
    pool: &PoolHandle,
    sizes: &Sizes,
) -> Option<(f64, Duration)> {
    if method == MethodId::Our2W8 && !stencil_simd::HAS_AVX512 {
        return None;
    }
    let flops = bench.flops_per_point();
    match bench {
        BenchId::Apop => run_apop(method, pool, sizes)
            .map(|d| (measure::gflops(sizes.n1, sizes.t1, flops, d), d)),
        BenchId::Life => run_life(method, pool, sizes).map(|d| {
            let (ny, nx) = sizes.n2;
            (measure::gflops(ny * nx, sizes.t2, flops, d), d)
        }),
        linear => {
            let p = linear.pattern().unwrap();
            let (sm, st) = method_config(method, sizes, linear.dims())?;
            // under --tuned, the hand-set time block gives way to the
            // measured tuner (method and width stay pinned — the figure
            // compares methods, the tuner only picks their tiling); the
            // domain hint keys the cache by this run's shape class
            let hint: Vec<usize> = match linear.dims() {
                1 => vec![sizes.n1],
                2 => vec![sizes.n2.0, sizes.n2.1],
                _ => vec![sizes.n3.0, sizes.n3.1, sizes.n3.2],
            };
            let (tiling, tuning) = if sizes.tuned {
                (Tiling::Auto, Tuning::Measured)
            } else {
                (st, Tuning::Static)
            };
            // compile once; every repetition reuses the folded kernel
            // and the shared pool
            let plan = Solver::new(p)
                .method(sm)
                .tiling(tiling)
                .tuning(tuning)
                .domain_hint(&hint)
                .width(if method == MethodId::Our2W8 {
                    Width::W8
                } else {
                    Width::W4
                })
                .pool(pool.clone())
                .compile()
                .expect("suite configurations are valid");
            let d = match linear.dims() {
                1 => {
                    let g = workload::random_1d(sizes.n1, 42);
                    measure::best_of(sizes.reps, || plan.run_1d(&g, sizes.t1).unwrap()).1
                }
                2 => {
                    let (ny, nx) = sizes.n2;
                    let g = workload::random_2d(ny, nx, 42);
                    measure::best_of(sizes.reps, || plan.run_2d(&g, sizes.t2).unwrap()).1
                }
                _ => {
                    let (nz, ny, nx) = sizes.n3;
                    let g = workload::random_3d(nz, ny, nx, 42);
                    measure::best_of(sizes.reps, || plan.run_3d(&g, sizes.t3).unwrap()).1
                }
            };
            let (points, steps) = match linear.dims() {
                1 => (sizes.n1, sizes.t1),
                2 => (sizes.n2.0 * sizes.n2.1, sizes.t2),
                _ => (sizes.n3.0 * sizes.n3.1 * sizes.n3.2, sizes.t3),
            };
            Some((measure::gflops(points, steps, flops, d), d))
        }
    }
}

fn method_config(method: MethodId, sizes: &Sizes, dims: usize) -> Option<(Method, Tiling)> {
    let tb = match dims {
        1 => sizes.tb1,
        2 => sizes.tb2,
        _ => sizes.tb3,
    };
    Some(match method {
        MethodId::Sdsl => (Method::Dlt, Tiling::Split { time_block: tb }),
        MethodId::Tess => (Method::MultipleLoads, Tiling::Tessellate { time_block: tb }),
        MethodId::Our => (
            Method::TransposeLayout,
            Tiling::Tessellate { time_block: tb },
        ),
        MethodId::Our2 | MethodId::Our2W8 => (
            Method::Folded { m: 2 },
            Tiling::Tessellate { time_block: tb },
        ),
    })
}

fn run_apop(method: MethodId, pool: &PoolHandle, sizes: &Sizes) -> Option<Duration> {
    let ap = apop::Apop::new(sizes.n1, 50.0, 100.0 / sizes.n1 as f64);
    let pay = ap.payoff.as_slice().to_vec();
    let taps = ap.taps.to_vec();
    let t = sizes.t1;
    let tb = sizes.tb1;
    match method {
        MethodId::Sdsl => None, // not expressible in SDSL (paper: "-")
        MethodId::Tess => Some(
            measure::best_of(sizes.reps, || {
                let mut pp = PingPong::new(ap.initial_values());
                tessellate::run_1d(
                    pool,
                    &mut pp,
                    1,
                    1,
                    tb,
                    t,
                    &|s: &[f64], d: &mut [f64], lo, hi| {
                        apop::step_range_scalar(s, d, &taps, &pay, lo, hi)
                    },
                );
                pp.into_current()
            })
            .1,
        ),
        MethodId::Our => Some(apop_tess::<NativeF64x4>(pool, &ap, tb, t, sizes.reps)),
        MethodId::Our2 => Some(apop_tess_folded::<NativeF64x4>(
            pool, &ap, 2, tb, t, sizes.reps,
        )),
        MethodId::Our2W8 => Some(apop_tess_folded::<NativeF64x8>(
            pool, &ap, 2, tb, t, sizes.reps,
        )),
    }
}

fn apop_tess<V: SimdF64>(
    pool: &PoolHandle,
    ap: &apop::Apop,
    tb: usize,
    t: usize,
    reps: usize,
) -> Duration {
    let pay = ap.payoff.as_slice().to_vec();
    let taps = ap.taps.to_vec();
    measure::best_of(reps, || {
        let mut pp = PingPong::new(ap.initial_values());
        tessellate::run_1d(
            pool,
            &mut pp,
            1,
            1,
            tb,
            t,
            &|s: &[f64], d: &mut [f64], lo, hi| apop::step_range::<V>(s, d, &taps, &pay, lo, hi),
        );
        pp.into_current()
    })
    .1
}

fn apop_tess_folded<V: SimdF64>(
    pool: &PoolHandle,
    ap: &apop::Apop,
    m: usize,
    tb: usize,
    t: usize,
    reps: usize,
) -> Duration {
    // the folded taps are planned once, outside the timed repetitions
    let pay = ap.payoff.as_slice().to_vec();
    let folded = stencil_core::folding::fold(&ap.linear_pattern(), m);
    let taps = folded.weights().to_vec();
    let rr = folded.radius();
    measure::best_of(reps, || {
        let mut pp = PingPong::new(ap.initial_values());
        tessellate::run_1d(
            pool,
            &mut pp,
            rr,
            rr,
            tb,
            t / m,
            &|s: &[f64], d: &mut [f64], lo, hi| {
                apop::step_folded_range::<V>(s, d, &taps, &pay, lo, hi)
            },
        );
        pp.into_current()
    })
    .1
}

fn run_life(method: MethodId, pool: &PoolHandle, sizes: &Sizes) -> Option<Duration> {
    let (ny, nx) = sizes.n2;
    let g = life::random_soup(ny, nx, 42);
    let t = sizes.t2;
    let tb = sizes.tb2;
    match method {
        MethodId::Sdsl => None, // nonlinear rule not expressible in SDSL
        MethodId::Tess => Some(
            measure::best_of(sizes.reps, || {
                let mut pp = PingPong::new(g.clone());
                tessellate::run_2d(
                    pool,
                    &mut pp,
                    1,
                    1,
                    tb,
                    t,
                    &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step_range_scalar(s, d, ys, xs),
                );
                pp.into_current()
            })
            .1,
        ),
        MethodId::Our => Some(life_tess::<NativeF64x4>(pool, &g, tb, t, sizes.reps)),
        MethodId::Our2 => Some(life_tess2::<NativeF64x4>(pool, &g, tb, t, sizes.reps)),
        MethodId::Our2W8 => Some(life_tess2::<NativeF64x8>(pool, &g, tb, t, sizes.reps)),
    }
}

fn life_tess<V: SimdF64>(
    pool: &PoolHandle,
    g: &Grid2D,
    tb: usize,
    t: usize,
    reps: usize,
) -> Duration {
    measure::best_of(reps, || {
        let mut pp = PingPong::new(g.clone());
        tessellate::run_2d(
            pool,
            &mut pp,
            1,
            1,
            tb,
            t,
            &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step_range::<V>(s, d, ys, xs),
        );
        pp.into_current()
    })
    .1
}

fn life_tess2<V: SimdF64>(
    pool: &PoolHandle,
    g: &Grid2D,
    tb: usize,
    t: usize,
    reps: usize,
) -> Duration {
    measure::best_of(reps, || {
        let mut pp = PingPong::new(g.clone());
        // fused double generation: reff = 2 per inner step
        tessellate::run_2d(
            pool,
            &mut pp,
            2,
            2,
            tb,
            t / 2,
            &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step2_range::<V>(s, d, ys, xs),
        );
        pp.into_current()
    })
    .1
}

/// Block-free single-thread methods of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFreeMethod {
    /// One unaligned load per tap.
    MultipleLoads,
    /// Aligned loads + shuffles.
    DataReorg,
    /// Global dimension-lifted transpose.
    Dlt,
    /// Local transpose layout (ours).
    Our,
    /// Ours + temporal folding m = 2.
    Our2,
}

impl BlockFreeMethod {
    /// All five, in figure order.
    pub const ALL: [BlockFreeMethod; 5] = [
        BlockFreeMethod::MultipleLoads,
        BlockFreeMethod::DataReorg,
        BlockFreeMethod::Dlt,
        BlockFreeMethod::Our,
        BlockFreeMethod::Our2,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BlockFreeMethod::MultipleLoads => "Multiple Loads",
            BlockFreeMethod::DataReorg => "Data Reorganization",
            BlockFreeMethod::Dlt => "DLT",
            BlockFreeMethod::Our => "Our",
            BlockFreeMethod::Our2 => "Our (2 steps)",
        }
    }

    /// Solver configuration.
    pub fn method(self) -> Method {
        match self {
            BlockFreeMethod::MultipleLoads => Method::MultipleLoads,
            BlockFreeMethod::DataReorg => Method::DataReorg,
            BlockFreeMethod::Dlt => Method::Dlt,
            BlockFreeMethod::Our => Method::TransposeLayout,
            BlockFreeMethod::Our2 => Method::Folded { m: 2 },
        }
    }

    /// Compile the single-thread block-free 1D-Heat plan for this
    /// method once; `fig8`/`table2` reuse it across every problem size
    /// and step count.
    pub fn plan_1d_heat(self) -> Plan {
        Solver::new(kernels::heat1d())
            .method(self.method())
            .width(Width::W4)
            .threads(1)
            .compile()
            .expect("block-free 1D-Heat configurations are valid")
    }
}

/// One Fig.-8 cell on a pre-compiled plan (see
/// [`BlockFreeMethod::plan_1d_heat`]): block-free single-thread 1D-Heat
/// at size `n` for `t` steps; returns GFLOP/s.
pub fn run_blockfree_1d_with(plan: &Plan, n: usize, t: usize) -> f64 {
    let p = plan.pattern();
    let flops = 2 * p.points();
    let g = workload::random_1d(n, 7);
    let (_, d) = measure::time_once(|| plan.run_1d(&g, t).unwrap());
    measure::gflops(n, t, flops, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_flops() {
        for b in BenchId::ALL {
            assert!(b.flops_per_point() >= 6, "{}", b.name());
        }
    }

    #[test]
    fn quick_suite_smoke() {
        // every supported (bench, method) cell runs and yields a finite
        // positive throughput at quick sizes, all cells sharing one pool
        let sizes = Sizes::quick();
        let pool = PoolHandle::new(2);
        for b in BenchId::ALL {
            for m in [MethodId::Tess, MethodId::Our, MethodId::Our2] {
                let out = run_one(b, m, &pool, &sizes);
                let (gf, _) = out.expect("supported combo");
                assert!(gf > 0.0 && gf.is_finite(), "{} {}", b.name(), m.name());
            }
        }
    }

    #[test]
    fn sdsl_support_matrix_matches_paper() {
        let sizes = Sizes::quick();
        let pool = PoolHandle::new(1);
        // SDSL: linear kernels only
        assert!(run_one(BenchId::Apop, MethodId::Sdsl, &pool, &sizes).is_none());
        assert!(run_one(BenchId::Life, MethodId::Sdsl, &pool, &sizes).is_none());
        assert!(run_one(BenchId::Heat1D, MethodId::Sdsl, &pool, &sizes).is_some());
        assert!(run_one(BenchId::Heat3D, MethodId::Sdsl, &pool, &sizes).is_some());
    }

    #[test]
    fn blockfree_methods_run() {
        for m in BlockFreeMethod::ALL {
            let plan = m.plan_1d_heat();
            // same plan, two sizes — no recompilation between cells
            for n in [2048usize, 4096] {
                let gf = run_blockfree_1d_with(&plan, n, 10);
                assert!(gf > 0.0, "{} n={n}", m.name());
            }
        }
    }
}
