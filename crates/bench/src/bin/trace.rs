//! `stencil-bench trace`: exercise the observability subsystem end to
//! end — span rings, job timelines, the Chrome trace exporter and the
//! Prometheus exposition — against a live network server.
//!
//! The driver enables tracing, routes a mixed workload through a real
//! `NetServer` (including one 3D job big enough to stream through the
//! out-of-core executor), then: asserts the out-of-core job's timeline
//! decomposition accounts for its measured latency (±5%), scrapes
//! `/healthz`, `/metrics?format=prometheus` and `/trace` over HTTP,
//! re-parses the Chrome trace document with the project's own JSON
//! parser, writes it to `BENCH_trace.json` (Perfetto-loadable), and
//! prints a per-span-id event count table.
//!
//! `--smoke` shrinks the workload for CI; `--json` additionally dumps
//! the count tables as a host-stamped baseline.

use stencil_bench::{Args, Table};
use stencil_core::{kernels, Solver, Tiling};
use stencil_grid::{Grid2D, Grid3D};
use stencil_obs::SpanId;
use stencil_serve::net::{http_get, NetClient, NetConfig, NetServer, SubmitHeader};
use stencil_serve::service::OocThreshold;
use stencil_serve::{JobDomain, JobSpec, ServeConfig, StencilService};

fn main() {
    let args = Args::parse();
    let threads = args.threads();
    let (d3, wire_jobs, steps) = if args.quick {
        (48, 2, 4)
    } else if args.paper {
        (128, 8, 8)
    } else {
        (64, 4, 6)
    };

    stencil_obs::set_enabled(true);
    stencil_obs::clear();

    println!(
        "stencil-bench trace — tracing a live server, {threads} pool threads ({})",
        stencil_simd::backend_summary()
    );

    let big = Grid3D::from_fn(d3, 16, 16, |z, y, x| ((z * 5 + y * 3 + x) % 17) as f64);
    let service = StencilService::start(ServeConfig {
        threads,
        workers: 2,
        queue_capacity: 16,
        ooc: Some(OocThreshold {
            // half the big job's points: it must stream
            max_resident_points: d3 * 16 * 16 / 2,
            // ~32 window planes force several windows per pass
            budget_bytes: 32 * Grid3D::zeros(1, 16, 16).stride_z() * 8 * 5,
            ..OocThreshold::default()
        }),
        ..ServeConfig::default()
    });
    let server = NetServer::start(service, NetConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();

    // a 2D mix over the wire: exercises net encode/decode, queue wait,
    // batching and the worker spans
    let grid2d = Grid2D::from_fn(96, 96, |y, x| ((y * 13 + x * 7) % 29) as f64);
    let mut client = NetClient::connect(addr, "tracer").expect("connect");
    for i in 0..wire_jobs {
        let out = client
            .run(
                SubmitHeader {
                    id: 0,
                    name: format!("heat2d-{i}"),
                    pattern: kernels::heat2d(),
                    extents: vec![96, 96],
                    steps,
                    rounds: 1,
                    tuning: None,
                    deadline_ms: None,
                },
                &grid2d.to_dense(),
            )
            .expect("wire job");
        assert_eq!(out.data.len(), 96 * 96);
    }

    // a tessellate-tiled run drives the worker pool directly — the
    // untiled sweeps are single-thread, so this is what guarantees
    // worker-job spans land in the rings regardless of the host's
    // core count
    let tiled = Solver::new(kernels::heat2d())
        .tiling(Tiling::Tessellate { time_block: 2 })
        .threads(threads)
        .compile()
        .expect("tiled plan compiles");
    tiled.run_2d(&grid2d, 4).expect("tiled run");

    // the out-of-core job goes through the same service in process so
    // the JobResult timeline is observable directly
    let result = server
        .service()
        .submit(JobSpec::new(
            kernels::heat3d(),
            JobDomain::D3(big.clone()),
            4,
        ))
        .expect("submit ooc job")
        .wait()
        .expect("ooc job completes");
    let latency_us = result.latency.as_micros() as u64;
    let total_us = result.timeline.total_us();
    assert!(
        total_us.abs_diff(latency_us) <= latency_us / 20 + 1,
        "timeline {:?} must account for the measured latency {latency_us} µs (±5%)",
        result.timeline
    );
    assert!(
        result.timeline.io_us > 0,
        "a streamed job pays blocked IO: {:?}",
        result.timeline
    );
    println!(
        "ooc job: latency {latency_us} µs = queue {} + compute {} + io {} (overlap {})",
        result.timeline.queue_us,
        result.timeline.compute_us,
        result.timeline.io_us,
        result.timeline.overlap_us
    );

    // scrape the whole HTTP surface while the server is live
    let (code, health) = http_get(addr, "/healthz").expect("healthz");
    assert_eq!(code, 200);
    let doc = stencil_tune::json::parse(&health).expect("healthz json");
    assert!(doc.get("hostname").is_some() && doc.get("isa").is_some());

    let (code, prom) = http_get(addr, "/metrics?format=prometheus").expect("prometheus");
    assert_eq!(code, 200);
    for series in [
        "stencil_jobs_completed_total",
        "stencil_ooc_jobs_total",
        "stencil_job_latency_microseconds_bucket",
        "stencil_plan_samples_total",
    ] {
        assert!(prom.contains(series), "exposition must carry {series}");
    }

    let (code, trace) = http_get(addr, "/trace?ms=600000").expect("trace scrape");
    assert_eq!(code, 200);
    let doc = stencil_tune::json::parse(&trace).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(stencil_tune::json::Value::as_arr)
        .expect("traceEvents array")
        .len();
    assert!(events > 0, "a traced run must emit span events");
    std::fs::write("BENCH_trace.json", &trace).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json ({events} events; load in Perfetto / chrome://tracing)");

    let stats = server.shutdown();
    assert_eq!(stats.jobs_failed, 0, "no job may fail");
    assert_eq!(stats.ooc_jobs, 1, "the big job streamed");
    assert!(stats.ooc_bytes_read > 0 && stats.ooc_bytes_written > 0);

    // per-span-id event counts out of the rings themselves
    let snapshot = stencil_obs::snapshot();
    let mut counts = Table::new("trace span counts", "events");
    for id in SpanId::ALL {
        let n = snapshot.iter().filter(|e| e.id == id).count();
        counts.put(id.name(), "events", Some(n as f64));
    }
    counts.print();
    for required in [SpanId::WorkerJob, SpanId::QueueWait, SpanId::OocCompute] {
        assert!(
            snapshot.iter().any(|e| e.id == required),
            "span {} must appear in a traced serve run",
            required.name()
        );
    }

    stencil_obs::set_enabled(false);
    if let Some(path) = &args.json {
        Table::dump_json(&[&counts], path).expect("write json");
        eprintln!("wrote {path}");
    }
    println!("trace surface OK");
}
