//! `stencil-bench compare`: the perf regression gate. Re-run a harness
//! binary with `--json`, then compare the fresh dump against the
//! committed host-stamped baseline cell by cell:
//!
//! ```sh
//! stencil-bench compare BENCH_fig8.json=fig8-smoke.json \
//!                       BENCH_table2.json=table2-smoke.json \
//!                       [--threshold 0.35] [--foreign-threshold 0.90]
//! ```
//!
//! Each positional argument is a `baseline=current` pair. A comparison
//! fails (exit code 1) when a baseline cell is missing from the
//! current dump, is no longer finite/positive, or regressed by more
//! than the noise threshold.
//!
//! Baselines are host-stamped, and absolute rates do not transfer
//! between machines (or between `--paper` and `--smoke` problem
//! sizes). When the current dump's host fingerprint differs from the
//! baseline's, the gate therefore relaxes to the `--foreign-threshold`
//! (default: fail only on a >90% collapse — shape, coverage and
//! sanity still enforced); on the same host/ISA the strict
//! `--threshold` applies (default: fail on a >35% drop, comfortably
//! above run-to-run noise for the smoke sizes).

use stencil_tune::json::{self, Value};

struct Gate {
    threshold: f64,
    foreign_threshold: f64,
    pairs: Vec<(String, String)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: compare BASELINE=CURRENT [BASELINE=CURRENT ...] \
         [--threshold F] [--foreign-threshold F]"
    );
    std::process::exit(2);
}

fn parse_args() -> Gate {
    let mut gate = Gate {
        threshold: 0.35,
        foreign_threshold: 0.90,
        pairs: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                gate.threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--foreign-threshold" => {
                gate.foreign_threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            pair => match pair.split_once('=') {
                Some((b, c)) if !b.is_empty() && !c.is_empty() => {
                    gate.pairs.push((b.to_string(), c.to_string()));
                }
                _ => usage(),
            },
        }
    }
    if gate.pairs.is_empty() {
        usage();
    }
    gate
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    json::parse(&text).unwrap_or_else(|e| {
        eprintln!("compare: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn host_stamp(doc: &Value) -> (String, String) {
    let host = doc.get("host");
    let get = |k: &str| {
        host.and_then(|h| h.get(k))
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    (get("hostname"), get("isa"))
}

/// Flatten a dump into ((table, row, col), value) cells.
fn cells(doc: &Value) -> Vec<((String, String, String), Option<f64>)> {
    let mut out = Vec::new();
    let Some(tables) = doc.get("tables").and_then(Value::as_arr) else {
        return out;
    };
    for t in tables {
        let title = t
            .get("title")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let Some(cs) = t.get("cells").and_then(Value::as_arr) else {
            continue;
        };
        for c in cs {
            let row = c.get("row").and_then(Value::as_str).unwrap_or("?").into();
            let col = c.get("col").and_then(Value::as_str).unwrap_or("?").into();
            out.push((
                (title.clone(), row, col),
                c.get("value").and_then(Value::as_num),
            ));
        }
    }
    out
}

/// Cells whose values are throughputs where "lower = worse". Counter
/// columns (job counts, hit ratios, latency) are coverage-checked but
/// not thresholded — a latency *increase* would need the inverse test
/// and a far larger noise bar than a one-shot smoke run supports.
fn is_rate_cell(table: &str, col: &str) -> bool {
    let t = table.to_lowercase();
    let c = col.to_lowercase();
    if t.contains("serve") {
        return c.contains("mpts") || c.contains("jobs_per_s");
    }
    // the ooc store-stats table mixes deterministic IO volumes with
    // timing-variable prefetch counters: only the former are regression
    // signals, and they are byte counts, not rates — coverage-check only
    if t.contains("ooc") && t.contains("stats") {
        return false;
    }
    // the fig/table dumps are GFLOP/s or speedup grids: every cell is a
    // rate
    !c.contains("latency") && !c.contains("_ms")
}

fn main() {
    let gate = parse_args();
    let mut failures = 0usize;
    let mut compared = 0usize;
    for (bpath, cpath) in &gate.pairs {
        let baseline = load(bpath);
        let current = load(cpath);
        let (bh, bisa) = host_stamp(&baseline);
        let (ch, cisa) = host_stamp(&current);
        let same_host = (&bh, &bisa) == (&ch, &cisa);
        let threshold = if same_host {
            gate.threshold
        } else {
            gate.foreign_threshold
        };
        println!(
            "comparing {cpath} against {bpath}: baseline host {bh}/{bisa}, current {ch}/{cisa} \
             -> {} gate (fail below {:.0}% of baseline)",
            if same_host { "strict" } else { "foreign-host" },
            (1.0 - threshold) * 100.0
        );
        let cur: std::collections::BTreeMap<_, _> = cells(&current).into_iter().collect();
        let mut pair_compared = 0usize;
        for (key, bval) in cells(&baseline) {
            let (t, r, c) = &key;
            let label = format!("{t} / {r} / {c}");
            let Some(bval) = bval else { continue }; // unsupported in baseline
            compared += 1;
            pair_compared += 1;
            let Some(&Some(cval)) = cur.get(&key) else {
                println!("  FAIL {label}: cell missing from current dump");
                failures += 1;
                continue;
            };
            if !cval.is_finite() {
                println!("  FAIL {label}: current value is not finite");
                failures += 1;
                continue;
            }
            if !is_rate_cell(t, c) {
                continue;
            }
            if bval > 0.0 && cval < bval * (1.0 - threshold) {
                println!(
                    "  FAIL {label}: {cval:.3} is {:.0}% below baseline {bval:.3}",
                    (1.0 - cval / bval) * 100.0
                );
                failures += 1;
            }
        }
        // an empty comparison is a broken baseline (filtered run,
        // missing tables), not a pass — a gate that checks nothing
        // must not stay green
        if pair_compared == 0 {
            println!("  FAIL {bpath}: baseline contributed no comparable cells");
            failures += 1;
        }
    }
    println!("compare: {compared} cell(s) checked, {failures} failure(s)");
    if failures > 0 {
        std::process::exit(1);
    }
}
