//! Table 2: performance improvements on different storage levels in the
//! single-thread blocking-free experiments, relative to Multiple Loads
//! (paper means: 1.00 / 1.11 / 1.35 / 1.98 / 2.79).

use stencil_bench::suite::{run_blockfree_1d_with, BlockFreeMethod};
use stencil_bench::{Args, Table};

/// (storage level, representative sizes) — two sizes per level, averaged.
const LEVELS: [(&str, [usize; 2]); 4] = [
    ("L1 Cache", [1_000, 2_000]),
    ("L2 Cache", [16_000, 48_000]),
    ("L3 Cache", [512_000, 1_500_000]),
    ("Memory", [4_000_000, 10_240_000]),
];

fn main() {
    let args = Args::parse();
    let t = if args.paper {
        1000
    } else if args.quick {
        20
    } else {
        100
    };
    let levels: &[(&str, [usize; 2])] = if args.quick { &LEVELS[..2] } else { &LEVELS };

    println!("Table 2 — relative improvement per storage level (base: Multiple Loads)");
    // compile each method's plan once for the whole table
    let plans: Vec<_> = BlockFreeMethod::ALL
        .iter()
        .map(|m| m.plan_1d_heat())
        .collect();
    let mut tab = Table::new("Table 2", "x over Multiple Loads");
    let mut means = vec![0.0f64; BlockFreeMethod::ALL.len()];
    for (level, ns) in levels {
        let mut base = 0.0;
        let mut vals = vec![0.0f64; BlockFreeMethod::ALL.len()];
        for &n in ns {
            let steps = (t * 2_000_000 / n).clamp(t, 200 * t);
            for (i, plan) in plans.iter().enumerate() {
                let gf = run_blockfree_1d_with(plan, n, steps);
                vals[i] += gf;
                if i == 0 {
                    base += gf;
                }
            }
        }
        for (i, m) in BlockFreeMethod::ALL.iter().enumerate() {
            let rel = vals[i] / base;
            tab.put(*level, m.name(), Some(rel));
            means[i] += rel;
        }
        eprint!(".");
    }
    eprintln!();
    for (i, m) in BlockFreeMethod::ALL.iter().enumerate() {
        tab.put("Mean", m.name(), Some(means[i] / levels.len() as f64));
    }
    tab.print();
    println!("paper means: 1.00x / 1.11x / 1.35x / 1.98x / 2.79x");
    if let Some(path) = &args.json {
        Table::dump_json(&[&tab], path).expect("write json");
    }
}
