//! Fig. 10: scalability for stencils of various orders and dimensions in
//! a multicore environment (GFLOP/s vs core count, per benchmark, per
//! method).

use stencil_bench::suite::{run_one, BenchId, MethodId, Sizes};
use stencil_bench::{Args, Table};
use stencil_runtime::PoolHandle;

fn core_ladder(max: usize) -> Vec<usize> {
    let mut v = vec![1usize];
    let mut c = 2;
    while c < max {
        v.push(c);
        c *= 2;
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

fn main() {
    let args = Args::parse();
    let sizes = Sizes::from_flags(args.paper, args.quick);
    let max_threads = args.threads();
    let ladder = core_ladder(max_threads);
    println!(
        "Fig. 10 — scalability, cores {:?} ({})",
        ladder,
        stencil_simd::backend_summary()
    );

    // one pool per rung of the core ladder, shared by all benchmarks
    let pools: Vec<_> = ladder.iter().map(|&c| PoolHandle::new(c)).collect();
    let mut tables = Vec::new();
    for b in BenchId::ALL {
        if !args.wants(b.name()) {
            continue;
        }
        let mut tab = Table::new(format!("Fig 10 ({})", b.name()), "GFLOP/s");
        for (&cores, pool) in ladder.iter().zip(&pools) {
            for m in MethodId::ALL {
                let cell = run_one(b, m, pool, &sizes).map(|(gf, _)| gf);
                tab.put(format!("{cores} cores"), m.name(), cell);
            }
            eprint!(".");
        }
        eprintln!(" {}", b.name());
        tab.print();
        tables.push(tab);
    }
    if let Some(path) = &args.json {
        Table::dump_json(&tables.iter().collect::<Vec<_>>(), path).expect("write json");
    }
}
