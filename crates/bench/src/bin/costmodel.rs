//! §3.2 / §2.3 analytical numbers: op-collects, profitability indices,
//! data-organization operation counts, and transpose-scheme latencies —
//! the paper's qualitative analysis as a reproducible printout.

use stencil_core::plan::FoldPlan;
use stencil_core::{cost, kernels};
use stencil_simd::cost as simd_cost;

fn main() {
    println!("== Scalar profitability analysis (paper §3.2, 2D9P m=2) ==");
    let p9 = kernels::box2d9p();
    println!(
        "|C(E)|  naive 2-step        = {}",
        cost::collect_naive(&p9, 2)
    );
    println!(
        "|C(E_L)| folded             = {}",
        cost::collect_folded(&p9, 2)
    );
    let plan = FoldPlan::new(&p9, 2);
    println!(
        "|C(E_L)| counterpart reuse  = {}",
        cost::collect_planned(&plan)
    );
    println!(
        "P(E, E_L) = {:.1} (before reuse {:.1}); shifts reuse: {} -> {} ops, P = {:.2}",
        cost::profitability(&p9, 2),
        cost::collect_naive(&p9, 2) as f64 / cost::collect_folded(&p9, 2) as f64,
        cost::collect_naive(&p9, 1),
        cost::collect_shift_reuse(&p9),
        cost::shift_reuse_profitability(&p9),
    );

    println!("\n== Profitability per benchmark (m = 2) ==");
    for (name, p) in [
        ("1D-Heat", kernels::heat1d()),
        ("1D5P", kernels::d1p5()),
        ("2D-Heat", kernels::heat2d()),
        ("2D9P", kernels::box2d9p()),
        ("GB", kernels::gb()),
        ("3D-Heat", kernels::heat3d()),
        ("3D27P", kernels::box3d27p()),
    ] {
        let plan = FoldPlan::new(&p, 2);
        println!(
            "{name:<9} naive {:>4}  folded {:>3}  planned {:>3}  fresh folds {}  P = {:>5.2}",
            cost::collect_naive(&p, 2),
            cost::collect_folded(&p, 2),
            cost::collect_planned(&plan),
            plan.fresh_folds(),
            cost::profitability(&p, 2),
        );
    }

    println!("\n== Data-organization ops per vector set (1D, radius r) ==");
    for (vl, r) in [(4usize, 1usize), (4, 2), (8, 1), (8, 2)] {
        println!(
            "vl={vl} r={r}: multiple-loads {:>2}  data-reorg {:>2}  DLT {:>2}  transpose-layout {:>2}",
            simd_cost::ops_multiple_loads(vl, r).total(),
            simd_cost::ops_data_reorg(vl, r).total(),
            simd_cost::ops_dlt(vl, r).total(),
            simd_cost::ops_transpose_layout(vl, r).total(),
        );
    }

    println!("\n== In-register transpose schemes (paper §2.3) ==");
    for s in [
        simd_cost::PAPER_AVX2,
        simd_cost::SPRINGER_AVX2,
        simd_cost::INLANE_4STAGE,
        simd_cost::LANE_SPLIT,
        simd_cost::PAPER_AVX512,
    ] {
        println!(
            "{:<16} vl={} instructions={:>2} stages={} critical-path={} cycles issue={} cycles",
            s.name,
            s.vl,
            s.instructions(),
            s.stages,
            s.critical_path(),
            s.issue_cycles(),
        );
    }
}
