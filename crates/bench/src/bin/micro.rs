//! 1D step-kernel microbenchmark across working-set sizes (L1 to memory):
//! the per-method cost model behind Fig. 8, one step call per rep.
use std::time::Instant;
use stencil_core::exec::{dlt, folded, multiload, reorg, scalar, xlayout};
use stencil_core::kernels;
use stencil_grid::Grid1D;
use stencil_simd::NativeF64x4;

fn bench(name: &str, n: usize, reps: usize, mut f: impl FnMut()) {
    // warmup
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "{name:<22} n={n:>9}  {:>8.2} GFLOP/s  {:>6.3} cyc/pt@3GHz",
        n as f64 * 6.0 / dt / 1e9,
        dt * 3e9 / n as f64
    );
}

fn main() {
    let p = kernels::heat1d();
    let taps = p.weights().to_vec();
    for n in [4000usize, 64_000, 1_048_576, 8_388_608] {
        let reps = (64_000_000 / n).max(3);
        let g = Grid1D::from_fn(n, |i| (i % 101) as f64);
        let mut a = g.clone();
        let mut b = g.clone();
        bench("scalar", n, reps, || {
            scalar::step_1d(a.as_slice(), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        });
        bench("multiload", n, reps, || {
            multiload::step_1d::<NativeF64x4>(a.as_slice(), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        });
        bench("reorg", n, reps, || {
            reorg::step_1d::<NativeF64x4>(a.as_slice(), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        });
        bench("xlayout(step only)", n, reps, || {
            xlayout::step_x::<NativeF64x4>(a.as_slice(), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        });
        bench("folded-squares m=1", n, reps, || {
            folded::step_1d::<NativeF64x4>(a.as_slice(), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        });
        let f2 = stencil_core::folding::fold(&p, 2).weights().to_vec();
        bench("folded-squares m=2", n, reps, || {
            folded::step_1d::<NativeF64x4>(a.as_slice(), b.as_mut_slice(), &f2);
            std::mem::swap(&mut a, &mut b);
        });
        // dlt steady state (transform outside)
        let mut dd = dlt::DltSweep1D::<NativeF64x4>::new(&g, &p);
        bench("dlt(step only)", n, reps, || {
            dd.steps(1);
        });
        println!();
    }
}
