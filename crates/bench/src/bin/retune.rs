//! `stencil-bench retune`: drive the adaptive retuning loop with a
//! seeded workload whose mix shifts mid-run, and report how fast the
//! decider adapts — jobs and wall milliseconds from the shift to the
//! first registry hot-swap — plus per-plan p50 latency at the shift
//! point and at the end of the run.
//!
//! The service starts under `Tuning::Static` (cost-model plans), with
//! the adapt loop enabled but its background thread disabled
//! (`interval == 0`): the driver calls `retune_tick()` itself between
//! jobs, so the decision points are deterministic even though the
//! probe *verdicts* are measured live through an isolated scratch
//! tune cache. Phase A serves a heat2d-heavy mix; phase B flips the
//! mix to box2d9p, heating a different registry key. The driver exits
//! 0 whether or not a swap fires (on a loaded CI host the static
//! choice can genuinely be the winner); the deterministic swap
//! assertion lives in the seeded virtual-clock test suite, not here.

use std::time::{Duration, Instant};
use stencil_bench::workload::SplitMix64;
use stencil_bench::{Args, Table};
use stencil_core::{kernels, Pattern, Tuning};
use stencil_grid::Grid2D;
use stencil_serve::{AdaptConfig, JobDomain, JobSpec, Manifest, ServeConfig, StencilService};
use stencil_tune::probe::Budget;
use stencil_tune::AutoTuner;

struct Mix {
    name: &'static str,
    pattern: Pattern,
    steps: usize,
}

fn main() {
    let args = Args::parse();
    let threads = args.threads();
    // smoke: tiny CI sizes; paper: enough traffic for stable quantiles
    let (d2, steps, jobs_per_phase, min_samples) = if args.quick {
        (96, 4, 24, 8)
    } else if args.paper {
        (512, 12, 160, 32)
    } else {
        (256, 8, 80, 16)
    };

    // Probes go through an isolated scratch cache so a bench run never
    // pollutes (or is steered by) the real per-host tune cache.
    let cache = std::env::temp_dir().join(format!("stencil-retune-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    stencil_tune::install_with(AutoTuner::with_cache_path(&cache).budget(Budget::from_millis(25)));

    let mixes = [
        Mix {
            name: "heat2d",
            pattern: kernels::heat2d(),
            steps,
        },
        Mix {
            name: "box2d9p",
            pattern: kernels::box2d9p(),
            steps,
        },
    ];

    println!(
        "stencil-bench retune — {jobs}+{jobs} jobs @ {d2}x{d2}, mix shift at midpoint, \
         {threads} pool threads ({backend})",
        jobs = jobs_per_phase,
        backend = stencil_simd::backend_summary()
    );

    let service = StencilService::start(ServeConfig {
        threads,
        workers: 1,
        tuning: Tuning::Static,
        adapt: AdaptConfig {
            enabled: true,
            margin: 0.05,
            min_samples,
            lane_budget_ms: if args.quick { 10 } else { 25 },
            // no background thread: the driver ticks the decider
            // itself, so decision points are reproducible
            interval: Duration::ZERO,
        },
        ..ServeConfig::default()
    });
    let mut manifest = Manifest::new(Tuning::Static);
    for m in &mixes {
        manifest.push_kernel(m.name, Some(&[d2, d2]));
    }
    let warm = service.warm(&manifest);
    println!("warm start: {} plan(s)", warm.loaded);

    let mut rng = SplitMix64::new(0x5eed_2e7e);
    let wall = Instant::now();
    let mut shift_at: Option<(Instant, StatsSnapshotAt)> = None;
    let mut adapt: Option<(usize, f64)> = None; // (jobs since shift, ms since shift)
    struct StatsSnapshotAt {
        swaps: u64,
        snapshot: stencil_serve::StatsSnapshot,
    }

    let total = 2 * jobs_per_phase;
    for job in 0..total {
        let phase_b = job >= jobs_per_phase;
        if phase_b && shift_at.is_none() {
            let snapshot = service.stats();
            println!(
                "mix shift after {job} jobs: heat2d-heavy -> box2d9p-heavy \
                 (swaps so far: {})",
                snapshot.swaps
            );
            shift_at = Some((
                Instant::now(),
                StatsSnapshotAt {
                    swaps: snapshot.swaps,
                    snapshot,
                },
            ));
        }
        // 90/10 mix, flipped at the shift: the hot key changes mid-run
        let heavy = rng.next_f64() < 0.9;
        let m = &mixes[usize::from(heavy == phase_b)];
        let fill = rng.next_u64();
        let domain = JobDomain::D2(Grid2D::from_fn(d2, d2, |y, x| {
            ((y * 13 + x * 5) as f64 + (fill % 17) as f64) % 17.0
        }));
        service
            .submit(JobSpec::new(m.pattern.clone(), domain, m.steps))
            .expect("in-manifest jobs are accepted")
            .wait()
            .expect("jobs execute");
        let swapped = service.retune_tick();
        if swapped > 0 {
            println!("tick after job {job}: {swapped} hot-swap(s)");
        }
        if let (Some((t0, at)), None) = (&shift_at, &adapt) {
            if service.stats().swaps > at.swaps {
                adapt = Some((job + 1 - jobs_per_phase, t0.elapsed().as_secs_f64() * 1e3));
            }
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let stats = service.shutdown();
    let (_, at_shift) = shift_at.expect("the run crossed the midpoint");

    let mut table = Table::new("retune adaptation", "mixed");
    table.put("run", "jobs", Some(total as f64));
    table.put("run", "jobs_per_s", Some(total as f64 / wall_s));
    table.put("run", "swaps", Some(stats.swaps as f64));
    table.put("run", "challenges", Some(stats.challenges as f64));
    table.put(
        "run",
        "challenges_rejected",
        Some(stats.challenges_rejected as f64),
    );
    table.put("run", "adapt_jobs", adapt.map(|(jobs, _)| jobs as f64));
    table.put("run", "adapt_ms", adapt.map(|(_, ms)| ms));
    table.put("run", "p50_ms", Some(stats.p50_us as f64 / 1e3));
    table.put("run", "p99_ms", Some(stats.p99_us as f64 / 1e3));

    // Per-plan p50 at the shift point vs the end of the run. The
    // histograms are cumulative, so the delta understates a win — but
    // a swap that helps still drags the final quantile down.
    let mut plans = Table::new("retune per-plan p50", "µs");
    for (key, end) in &stats.plans {
        let short: String = key.chars().take(40).collect();
        let before = at_shift.snapshot.plans.get(key);
        plans.put(&short, "p50_at_shift_us", before.map(|t| t.p50_us as f64));
        plans.put(&short, "p50_final_us", Some(end.p50_us as f64));
        plans.put(&short, "epoch", Some(end.epoch as f64));
        plans.put(&short, "samples", Some(end.samples as f64));
    }
    table.print();
    plans.print();

    match adapt {
        Some((jobs, ms)) => {
            println!("time-to-adapt: {jobs} job(s), {ms:.1} ms after the mix shift")
        }
        None => println!(
            "no post-shift hot-swap fired ({} challenge(s), {} rejected) — \
             the incumbent held; not an error",
            stats.challenges, stats.challenges_rejected
        ),
    }

    assert_eq!(
        stats.jobs_completed as usize, total,
        "every submitted job must complete"
    );
    assert_eq!(stats.jobs_failed, 0, "no job may fail");

    if let Some(path) = &args.json {
        Table::dump_json(&[&table, &plans], path).expect("write json");
        eprintln!("wrote {path}");
    }
    let _ = std::fs::remove_file(&cache);
}
