//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. folding factor m in {1, 2, 3} (block-free 1D + 2D);
//! 2. tessellation time-block sweep;
//! 3. vector width (scalar / 4 / 8 lanes) for the folded 2D kernel;
//! 4. shifts reuse: planned folded kernel vs per-column recompute
//!    (approximated by the scalar folded sweep, which recomputes
//!    every vertical fold).

use stencil_bench::workload;
use stencil_bench::{measure, Args, Table};
use stencil_core::{kernels, Method, Solver, Tiling, Width};
use stencil_runtime::PoolHandle;

fn main() {
    let args = Args::parse();
    let (n1, t1, n2, t2) = if args.quick {
        (262_144, 40, 192, 24)
    } else {
        (2_097_152, 120, 768, 60)
    };
    let reps = 2;
    let mut tables = Vec::new();

    // 1. folding factor — each m compiled once, timed best-of-reps
    let mut tab = Table::new("Ablation: folding factor m (block-free)", "GFLOP/s");
    let g1 = workload::random_1d(n1, 1);
    let g2 = workload::random_2d(n2, n2, 1);
    for m in 1..=3usize {
        let plan = Solver::new(kernels::heat1d())
            .method(Method::Folded { m })
            .compile()
            .unwrap();
        let (_, d) = measure::best_of(reps, || plan.run_1d(&g1, t1).unwrap());
        tab.put(
            "1D-Heat",
            format!("m={m}"),
            Some(measure::gflops(n1, t1, 6, d)),
        );
        let plan = Solver::new(kernels::box2d9p())
            .method(Method::Folded { m })
            .compile()
            .unwrap();
        let (_, d) = measure::best_of(reps, || plan.run_2d(&g2, t2).unwrap());
        tab.put(
            "2D9P",
            format!("m={m}"),
            Some(measure::gflops(n2 * n2, t2, 18, d)),
        );
    }
    tab.print();
    tables.push(tab);

    // 2. time-block sweep for tessellation (folded m=2 kernel, 2D9P);
    //    one shared pool across the whole sweep
    let pool = PoolHandle::new(args.threads());
    let mut tab = Table::new("Ablation: tessellation time block (2D9P, m=2)", "GFLOP/s");
    for tb in [1usize, 2, 4, 8, 16] {
        let plan = Solver::new(kernels::box2d9p())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: tb })
            .pool(pool.clone())
            .compile()
            .unwrap();
        let (_, d) = measure::best_of(reps, || plan.run_2d(&g2, t2).unwrap());
        tab.put(
            format!("tb={tb}"),
            "GFLOP/s",
            Some(measure::gflops(n2 * n2, t2, 18, d)),
        );
    }
    tab.print();
    tables.push(tab);

    // 3. vector width
    let mut tab = Table::new("Ablation: vector width (2D9P folded m=2)", "GFLOP/s");
    for (name, w) in [
        ("scalar", Width::W1),
        ("4 lanes", Width::W4),
        ("8 lanes", Width::W8),
    ] {
        let plan = Solver::new(kernels::box2d9p())
            .method(Method::Folded { m: 2 })
            .width(w)
            .compile()
            .unwrap();
        let (_, d) = measure::best_of(reps, || plan.run_2d(&g2, t2).unwrap());
        tab.put(name, "GFLOP/s", Some(measure::gflops(n2 * n2, t2, 18, d)));
    }
    tab.print();
    tables.push(tab);

    // 4. planned counterparts (shifts reuse) vs full recompute (scalar)
    let mut tab = Table::new(
        "Ablation: planned folding vs per-point recompute (2D9P m=2)",
        "GFLOP/s",
    );
    let plan = Solver::new(kernels::box2d9p())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap();
    let (_, d) = measure::best_of(reps, || plan.run_2d(&g2, t2).unwrap());
    tab.put(
        "register pipeline (shifts reuse)",
        "GFLOP/s",
        Some(measure::gflops(n2 * n2, t2, 18, d)),
    );
    let folded = stencil_core::folding::fold(&kernels::box2d9p(), 2);
    let plan = Solver::new(folded)
        .method(Method::Scalar)
        .compile()
        .unwrap();
    let (_, d) = measure::best_of(reps, || plan.run_2d(&g2, t2 / 2).unwrap());
    tab.put(
        "scalar folded (recompute)",
        "GFLOP/s",
        Some(measure::gflops(n2 * n2, t2, 18, d)),
    );
    tab.print();
    tables.push(tab);

    if let Some(path) = &args.json {
        Table::dump_json(&tables.iter().collect::<Vec<_>>(), path).expect("write json");
    }
}
