//! 2D kernel microbenchmark: multiload vs the folded register pipeline
//! (per-pass nominal GFLOP/s; the m=2 rows count both fused steps).
use std::time::Instant;
use stencil_core::exec::{folded, multiload};
use stencil_core::kernels;
use stencil_grid::Grid2D;
use stencil_simd::NativeF64x4;

fn bench(name: &str, n: usize, flops_per_call: f64, reps: usize, mut f: impl FnMut()) {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "{name:<26} n={n:>5}^2  {:>8.2} GFLOP/s(nominal)",
        flops_per_call / dt / 1e9
    );
}

fn main() {
    for n in [256usize, 1024] {
        let reps = (1024 * 1024 * 24 / (n * n)).max(2);
        for p in [
            ("2D9P", kernels::box2d9p()),
            ("2D-Heat", kernels::heat2d()),
            ("GB", kernels::gb()),
        ] {
            let (name, p) = p;
            let g = Grid2D::from_fn(n, n, |y, x| ((y * 31 + x) % 101) as f64);
            let mut a = g.clone();
            let mut b = g.clone();
            let flops1 = (2 * p.points() * n * n) as f64;
            bench(&format!("{name} multiload"), n, flops1, reps, || {
                multiload::step_2d::<NativeF64x4>(&a, &mut b, &p);
                std::mem::swap(&mut a, &mut b);
            });
            let k1 = folded::FoldedKernel::new(&p, 1);
            bench(&format!("{name} folded m=1"), n, flops1, reps, || {
                folded::step_2d::<NativeF64x4>(&k1, &a, &mut b);
                std::mem::swap(&mut a, &mut b);
            });
            let k2 = folded::FoldedKernel::new(&p, 2);
            bench(&format!("{name} folded m=2"), n, flops1 * 2.0, reps, || {
                folded::step_2d::<NativeF64x4>(&k2, &a, &mut b);
                std::mem::swap(&mut a, &mut b);
            });
        }
        println!();
    }
}
