//! `stencil-bench serve_net`: drive the network serving front end with
//! closed-loop TCP clients — real sockets, real frames — and report
//! end-to-end throughput, the latency distribution, per-tenant
//! admission counters, and the scrape surface.
//!
//! Each client is its own tenant on its own connection, submitting a
//! heat2d / box2d9p / star3d mix through the wire protocol and blocking
//! on each result (closed loop). Backpressure rejections are honored by
//! waiting the server's `retry_after_ms` hint. After the run the bench
//! scrapes `/healthz` and `/metrics` over plain HTTP on the same port
//! and asserts a clean shutdown: no leaked pool threads.
//!
//! `--smoke` shrinks domains and job counts for CI; `--json` dumps the
//! host-stamped `BENCH_serve_net.json` baseline.

use std::sync::Mutex;
use std::time::{Duration, Instant};
use stencil_bench::{Args, Table};
use stencil_core::{kernels, Pattern, Tuning};
use stencil_runtime::PoolHandle;
use stencil_serve::net::{http_get, NetClient, NetConfig, NetError, NetServer, SubmitHeader};
use stencil_serve::{Manifest, ServeConfig, StatsSnapshot, StencilService};

struct Mix {
    name: &'static str,
    pattern: Pattern,
    extents: Vec<usize>,
    steps: usize,
    rounds: usize,
}

fn mixes(args: &Args) -> Vec<Mix> {
    let (d2, d3, s2, s3) = if args.quick {
        (192, 24, 8, 4)
    } else if args.paper {
        (1536, 96, 24, 8)
    } else {
        (640, 48, 16, 6)
    };
    vec![
        Mix {
            name: "heat2d",
            pattern: kernels::heat2d(),
            extents: vec![d2, d2],
            steps: s2,
            rounds: 1,
        },
        Mix {
            name: "box2d9p",
            pattern: kernels::box2d9p(),
            extents: vec![d2, d2],
            steps: s2 / 2,
            // multi-round: exercises the progress-streaming path
            rounds: 2,
        },
        Mix {
            name: "star3d",
            pattern: kernels::heat3d(),
            extents: vec![d3, d3, d3],
            steps: s3,
            rounds: 1,
        },
    ]
}

fn grid_data(extents: &[usize], seed: f64) -> Vec<f64> {
    let points: usize = extents.iter().product();
    (0..points)
        .map(|i| ((i * 13 % 4096) as f64 + seed) % 17.0)
        .collect()
}

fn main() {
    let args = Args::parse();
    let threads = args.threads();
    let clients = if args.quick { 2 } else { 4 };
    let jobs_per_client = if args.quick { 6 } else { 16 };
    let mixes: Vec<Mix> = mixes(&args)
        .into_iter()
        .filter(|m| args.wants(m.name))
        .collect();
    if mixes.is_empty() {
        eprintln!("--filter matched no workload");
        std::process::exit(2);
    }
    let tuning = if args.tuned {
        stencil_tune::install();
        Tuning::CacheOnly
    } else {
        Tuning::Static
    };

    println!(
        "stencil-bench serve_net — {clients} closed-loop TCP clients x {jobs_per_client} jobs, \
         {threads} pool threads ({})",
        stencil_simd::backend_summary()
    );

    // held across the run: the shutdown leak check below counts
    // against this handle
    let pool = PoolHandle::shared(threads);

    let service = StencilService::start(ServeConfig {
        threads,
        workers: 2,
        queue_capacity: 4 * clients,
        batch_max: 8,
        tuning,
        ..ServeConfig::default()
    });
    let mut manifest = Manifest::new(tuning);
    for m in &mixes {
        manifest.push_kernel(m.name, Some(&m.extents));
    }
    let warm = service.warm(&manifest);
    println!(
        "warm start: {} plan(s), {} cold fallback(s)",
        warm.loaded, warm.fallbacks
    );
    let server = NetServer::start(
        service,
        NetConfig {
            tenant_quota: 4,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    println!("serving on {addr}");

    // (name, jobs, point-steps, latency µs) rows filled by the clients
    let per_kernel: Mutex<Vec<(String, u64, f64, f64)>> =
        Mutex::new(mixes.iter().map(|m| (m.name.into(), 0, 0.0, 0.0)).collect());
    let rejected = Mutex::new(0u64);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let (mixes, per_kernel, rejected) = (&mixes, &per_kernel, &rejected);
            scope.spawn(move || {
                let tenant = format!("client{client}");
                let mut conn = NetClient::connect(addr, &tenant).expect("connect");
                for round in 0..jobs_per_client {
                    let m = &mixes[(client + round) % mixes.len()];
                    let data = grid_data(&m.extents, (client * 31 + round * 7) as f64);
                    let header = SubmitHeader {
                        id: 0,
                        name: m.name.into(),
                        pattern: m.pattern.clone(),
                        extents: m.extents.clone(),
                        steps: m.steps,
                        rounds: m.rounds,
                        tuning: None,
                        deadline_ms: None,
                    };
                    // closed loop with honored backoff hints
                    let outcome = loop {
                        match conn.run(header.clone(), &data) {
                            Ok(out) => break out,
                            Err(NetError::Rejected { retry_after, .. }) => {
                                *rejected.lock().unwrap() += 1;
                                std::thread::sleep(retry_after.min(Duration::from_millis(50)));
                            }
                            Err(e) => panic!("job failed: {e}"),
                        }
                    };
                    let points: usize = m.extents.iter().product();
                    assert_eq!(outcome.data.len(), points, "result grid is whole");
                    let mut agg = per_kernel.lock().unwrap();
                    let row = agg
                        .iter_mut()
                        .find(|(n, ..)| n == m.name)
                        .expect("row pre-seeded");
                    row.1 += 1;
                    row.2 += (points * m.steps) as f64;
                    row.3 += outcome.latency_us as f64;
                }
                conn.bye().expect("orderly goodbye");
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    // scrape the HTTP surface while the server still runs
    let (code, health) = http_get(addr, "/healthz").expect("healthz scrape");
    assert_eq!(code, 200, "healthz must answer 200: {health}");
    let (code, metrics) = http_get(addr, "/metrics").expect("metrics scrape");
    assert_eq!(code, 200);
    let scraped = StatsSnapshot::from_json(&stencil_tune::json::parse(&metrics).expect("json"))
        .expect("metrics document matches the snapshot schema");

    let stats = server.shutdown();

    let mut through = Table::new("serve-net throughput", "per kernel");
    for (name, jobs, ptsteps, lat_us) in per_kernel.into_inner().unwrap() {
        through.put(&name, "jobs", Some(jobs as f64));
        through.put(&name, "Mpts-steps/s", Some(ptsteps / wall_s / 1e6));
        through.put(
            &name,
            "mean_latency_ms",
            (jobs > 0).then(|| lat_us / jobs as f64 / 1e3),
        );
    }
    let mut svc = Table::new("serve-net service counters", "mixed");
    svc.put(
        "service",
        "jobs_per_s",
        Some(stats.jobs_completed as f64 / wall_s),
    );
    svc.put("service", "p50_ms", Some(stats.p50_us as f64 / 1e3));
    svc.put("service", "p99_ms", Some(stats.p99_us as f64 / 1e3));
    svc.put("service", "plan_hit_ratio", Some(stats.hit_ratio()));
    svc.put(
        "service",
        "client_retries",
        Some(*rejected.lock().unwrap() as f64),
    );
    svc.put("service", "jobs_failed", Some(stats.jobs_failed as f64));
    for (tenant, t) in &stats.tenants {
        svc.put(tenant, "submitted", Some(t.submitted as f64));
        svc.put(tenant, "rejected", Some(t.rejected as f64));
        svc.put(tenant, "completed", Some(t.completed as f64));
    }
    through.print();
    svc.print();

    // every client's every job completed, counted per tenant
    let total_rounds: u64 = stats.tenants.values().map(|t| t.completed).sum();
    assert_eq!(
        total_rounds as usize,
        clients * jobs_per_client,
        "every job must complete (scrape saw {} completed)",
        scraped.jobs_completed
    );
    assert_eq!(stats.jobs_failed, 0, "no job may fail");
    // clean shutdown: only this bench's handle and the shared
    // registry's clone remain — no leaked worker threads
    assert_eq!(
        pool.strong_count(),
        2,
        "shutdown must release every plan's pool handle"
    );
    println!("clean shutdown: pool handles released");

    if let Some(path) = &args.json {
        Table::dump_json(&[&through, &svc], path).expect("write json");
        eprintln!("wrote {path}");
    }
}
