//! Table 1: parameter description for the stencils used in experiments.

use stencil_core::kernels;

fn main() {
    println!("# Table 1: Parameter description for stencils used in experiments\n");
    println!(
        "{:<14} {:>4} {:>24} {:>12} {:>18}",
        "Type", "Pts", "Problem Size", "Time Steps", "Blocking Size"
    );
    println!("{}", "-".repeat(78));
    for b in kernels::table1() {
        let size = b
            .problem_size
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        let blocking = b
            .blocking
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        println!(
            "{:<14} {:>4} {:>24} {:>12} {:>18}",
            b.name, b.points, size, b.time_steps, blocking
        );
    }
    println!("\n(paper fixes T = 1000; harness binaries scale sizes unless --paper is passed)");
}
