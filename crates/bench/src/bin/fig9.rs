//! Fig. 9: performance comparison and speedups for the methods in
//! multicore cache-blocking experiments (all nine benchmarks; the
//! AVX-512 column is the paper's "Gains with AVX-512" series).

use stencil_bench::suite::{run_one, BenchId, MethodId, Sizes};
use stencil_bench::{Args, Table};
use stencil_runtime::PoolHandle;

fn main() {
    let args = Args::parse();
    let mut sizes = Sizes::from_flags(args.paper, args.quick);
    sizes.tuned = args.tuned;
    if args.tuned {
        // route every cell's tiling through the per-host plan cache
        stencil_tune::install();
    }
    let threads = args.threads();
    println!(
        "Fig. 9 — multicore cache-blocking, {} threads ({}{})",
        threads,
        stencil_simd::backend_summary(),
        if args.tuned { ", tuned tiling" } else { "" }
    );

    // one worker pool for the whole figure; every cell's plan shares it
    let pool = PoolHandle::new(threads);
    let mut perf = Table::new("Fig 9 (absolute)", "GFLOP/s");
    let mut speedup = Table::new("Fig 9 (speedup)", "x over group base");
    for b in BenchId::ALL {
        if !args.wants(b.name()) {
            continue;
        }
        let mut base: Option<f64> = None;
        for m in MethodId::ALL {
            let cell = run_one(b, m, &pool, &sizes).map(|(gf, _)| gf);
            perf.put(b.name(), m.name(), cell);
            if let Some(gf) = cell {
                // speedups are relative to the first supported method in
                // the group (the paper annotates the base with 1)
                let base_v = *base.get_or_insert(gf);
                speedup.put(b.name(), m.name(), Some(gf / base_v));
            } else {
                speedup.put(b.name(), m.name(), None);
            }
            eprint!(".");
        }
        eprintln!(" {}", b.name());
    }
    perf.print();
    speedup.print();
    if let Some(path) = &args.json {
        Table::dump_json(&[&perf, &speedup], path).expect("write json");
    }
}
