//! Fig. 3D: the dedicated 3D register pipeline. Compares the legacy
//! reload-per-block folded executor against the z-ring pipeline (plane
//! rotation + separable two-stage fold) on the 3D kernels, block-free
//! at one thread and tessellate-tiled at the configured thread count —
//! both pipelines at the same width, thread count and fold factor, so
//! the delta is exactly the redundancy the ring removes.
//!
//! Also runs one measured-tuner probe for the radius-2 box (3D125P):
//! the deeper fold window (`MAX_R3 = 4`) keeps `Folded { m: 2 }`
//! selectable there, and the probe report shows what the tuner picked.

use stencil_bench::{gflops, measure, workload, Args, Table};
use stencil_core::exec::folded::{self, FoldedKernel};
use stencil_core::exec::folded3d::{self, Ring3};
use stencil_core::tile::tessellate;
use stencil_core::{kernels, Method, Pattern, Solver, Tiling, Tuning};
use stencil_grid::{Grid3D, PingPong};
use stencil_runtime::PoolHandle;
use stencil_simd::NativeF64x4;

fn cases() -> Vec<(&'static str, Pattern)> {
    vec![
        ("3D-Heat", kernels::heat3d()),
        ("3D27P", kernels::box3d27p()),
        ("3D125P", kernels::box3d125p()),
        ("3DStar-R2", kernels::star3d_r2()),
    ]
}

/// Block-free sweep through the legacy reload-per-block pipeline.
fn legacy_blockfree(k: &FoldedKernel, g: &Grid3D, p: &Pattern, t: usize, reps: usize) -> f64 {
    let (_, d) = measure::best_of(reps, || folded::sweep_3d_with::<NativeF64x4>(k, g, p, t));
    rate(g, p, t, d)
}

/// Block-free sweep through the z-ring pipeline.
fn ring_blockfree(
    k: &FoldedKernel,
    ring: Ring3,
    g: &Grid3D,
    p: &Pattern,
    t: usize,
    reps: usize,
) -> f64 {
    let (_, d) = measure::best_of(reps, || {
        folded3d::sweep_3d_ring_with::<NativeF64x4>(k, ring, g, p, t)
    });
    rate(g, p, t, d)
}

/// Tessellate-tiled sweep, generic over the inner range kernel: both
/// pipelines run under the same pool, tiling and fold factor.
fn tess_sweep<K>(pool: &PoolHandle, g: &Grid3D, reff: usize, tb: usize, steps: usize, kernel: &K)
where
    K: Fn(
            &Grid3D,
            &mut Grid3D,
            std::ops::Range<usize>,
            std::ops::Range<usize>,
            std::ops::Range<usize>,
        ) + Sync,
{
    let mut pp = PingPong::new(g.clone());
    tessellate::run_3d(pool, &mut pp, reff, reff, tb, steps, kernel);
    let _ = pp.into_current();
}

fn rate(g: &Grid3D, p: &Pattern, t: usize, d: std::time::Duration) -> f64 {
    gflops(g.nz() * g.ny() * g.nx(), t, 2 * p.points(), d)
}

fn main() {
    let args = Args::parse();
    let ((nz, ny, nx), t, tb, reps) = if args.paper {
        ((320, 320, 320), 40, 4, 1)
    } else if args.quick {
        ((40, 40, 40), 8, 2, 2)
    } else {
        ((128, 128, 128), 32, 4, 2)
    };
    let threads = args.threads();
    println!(
        "Fig. 3D — legacy reload-per-block vs z-ring 3D register pipeline \
         ({}, {nz}x{ny}x{nx}, t = {t})",
        stencil_simd::backend_summary()
    );

    let mut bf = Table::new("Fig 3D (block-free, 1 thread)", "GFLOP/s");
    let mut tess = Table::new("Fig 3D (tessellate)", "GFLOP/s");
    let pool = PoolHandle::new(threads);
    for (name, p) in cases() {
        if !args.wants(name) {
            continue;
        }
        let g = workload::random_3d(nz, ny, nx, 42);
        let lanes = 4usize;
        for m in [1usize, 2] {
            // the deeper window admits every case here: radius-2 at
            // m = 2 reaches folded radius 4 = MAX_R3
            let k = FoldedKernel::new(&p, m);
            let ring = Ring3::auto(lanes, k.radius());
            let legacy = legacy_blockfree(&k, &g, &p, t, reps);
            let zring = ring_blockfree(&k, ring, &g, &p, t, reps);
            bf.put(name, format!("Legacy (m={m})"), Some(legacy));
            bf.put(name, format!("Z-ring (m={m})"), Some(zring));
            if m == 2 {
                // tiled comparison at equal thread count; t is even, so
                // the folded body covers every step
                let reff = k.radius();
                let (_, dl) = measure::best_of(reps, || {
                    tess_sweep(
                        &pool,
                        &g,
                        reff,
                        tb,
                        t / m,
                        &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                            folded::step_range_3d::<NativeF64x4>(&k, s, d, zs, ys, xs)
                        },
                    )
                });
                let (_, dr) = measure::best_of(reps, || {
                    tess_sweep(
                        &pool,
                        &g,
                        reff,
                        tb,
                        t / m,
                        &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                            folded3d::step_range_3d_ring::<NativeF64x4>(&k, ring, s, d, zs, ys, xs)
                        },
                    )
                });
                tess.put(name, "Legacy tess (m=2)", Some(rate(&g, &p, t, dl)));
                tess.put(name, "Z-ring tess (m=2)", Some(rate(&g, &p, t, dr)));
            }
        }
        // one-line speedup summary for the acceptance read-off
        if let (Some(l), Some(r)) = (bf.get(name, "Legacy (m=2)"), bf.get(name, "Z-ring (m=2)")) {
            eprintln!("  {name}: z-ring/legacy (m=2, block-free) = {:.2}x", r / l);
        }
    }
    bf.print();
    tess.print();

    // Measured tuner over the radius-2 box: Folded { m: 2 } must be in
    // the candidate pool (folded radius 4 fits the deeper window), and
    // the probe report shows the pick and its z-ring geometry.
    stencil_tune::install();
    match Solver::new(kernels::box3d125p())
        .method(Method::Auto)
        .tiling(Tiling::Auto)
        .threads(threads)
        .tuning(Tuning::Measured)
        .domain_hint(&[nz, ny, nx])
        .compile()
    {
        Ok(plan) => println!(
            "tuner pick for 3D125P ({threads} threads): {:?} + {:?}, ring = {:?}",
            plan.method(),
            plan.tiling(),
            plan.ring3()
        ),
        Err(e) => eprintln!("tuner probe for 3D125P failed: {e}"),
    }

    if let Some(path) = &args.json {
        Table::dump_json(&[&bf, &tess], path).expect("write json");
        eprintln!("wrote {path}");
    }
}
