//! `stencil-bench chaos`: seeded fault-injection smoke for the
//! fault-tolerance layer, plus the production-cost guard.
//!
//! Three phases, all with **fixed seeds** so a CI failure replays
//! exactly:
//!
//! 1. **Storage chaos** — an out-of-core streaming job runs with every
//!    store failpoint (`ooc_read`, `ooc_write`, `ooc_fsync`,
//!    `ooc_prefetch`) armed at seeded probabilities; the result must be
//!    bit-identical to the resident run and every injected fault must
//!    cross the retry (or sync-fallback) path.
//! 2. **Wire chaos** — a live `NetServer` serves jobs while the server
//!    reads one byte per syscall (`net_short_read`) and dequeues stall
//!    (`queue_stall`); results stay bit-exact, and a deadline-carrying
//!    job is shed with the typed frame instead of hanging its client.
//! 3. **Overhead guard** — with every failpoint disarmed, the recovery
//!    machinery (failpoint checks, retry wrappers, deadline checks)
//!    must cost **< 5%** wall-clock against a build-identical run with
//!    the fault gate closed, measured as best-of floors.
//!
//! `--smoke` shrinks sizes for CI; `--json` dumps the measured floors.

use std::time::Duration;

use stencil_bench::measure::best_of;
use stencil_bench::{Args, Table};
use stencil_core::{kernels, Method, Solver};
use stencil_faults::{self as faults, Failpoint};
use stencil_grid::{Grid2D, Grid3D};
use stencil_ooc::{run_streaming_grid, OocConfig};
use stencil_serve::net::{NetClient, NetConfig, NetError, NetServer, SubmitHeader};
use stencil_serve::{ServeConfig, StencilService};

fn bits3(g: &Grid3D) -> Vec<u64> {
    g.to_dense().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let args = Args::parse();
    let (nz, steps, wire_jobs, reps) = if args.quick {
        (48, 4, 3, 5)
    } else {
        (96, 8, 6, 9)
    };

    println!(
        "stencil-bench chaos — seeded failpoints against storage + wire ({})",
        stencil_simd::backend_summary()
    );
    faults::disarm_all();
    faults::set_enabled(false);

    // ---- phase 1: storage chaos, bit-exact under injected faults ----
    let plan = Solver::new(kernels::heat3d())
        .method(Method::Folded { m: 2 })
        .compile()
        .expect("streamable plan");
    let grid = Grid3D::from_fn(nz, 16, 16, |z, y, x| {
        ((z * 37 + y * 11 + x * 5) % 23) as f64 * 0.25 - 2.0
    });
    let plane = Grid3D::zeros(1, 16, 16).stride_z() * 8;
    let want = bits3(&plan.run_3d(&grid, steps).expect("resident reference"));
    for (fp, p, seed, prefetch) in [
        (Failpoint::OocRead, 0.2, 0xBEEF_0001_u64, false),
        (Failpoint::OocWrite, 0.2, 0xBEEF_0002, false),
        // sync points are rare (a few per pass), so the fsync site
        // needs a higher probability to fire in the smoke sizes —
        // still far below the 4-retry budget's failure threshold
        (Failpoint::OocFsync, 0.45, 0xBEEF_0003, false),
        (Failpoint::OocPrefetch, 1.0, 0xBEEF_0004, true),
    ] {
        let residency = if prefetch {
            stencil_ooc::RESIDENT_WINDOWS_PREFETCH
        } else {
            stencil_ooc::RESIDENT_WINDOWS_SYNC
        };
        let cfg = OocConfig {
            budget_bytes: 28 * plane * residency,
            steps_per_pass: 0,
            prefetch,
        };
        faults::disarm_all();
        faults::arm_probability(fp, p, seed);
        faults::set_enabled(true);
        let (got, report) = run_streaming_grid(&plan, &grid, steps, &cfg)
            .unwrap_or_else(|e| panic!("{}: chaos run must be absorbed: {e}", fp.name()));
        assert_eq!(want, bits3(&got), "{}: bits diverged", fp.name());
        let fired = faults::fired(fp);
        assert!(fired > 0, "{}: failpoint never fired", fp.name());
        println!(
            "  {:<13} p={p:<4} seed={seed:#x}: {} faults absorbed, {} retries, bits exact",
            fp.name(),
            fired,
            report.stats.io_retries
        );
        faults::disarm_all();
        faults::set_enabled(false);
    }

    // ---- phase 2: wire chaos — fragmentation, stalls, deadlines ----
    faults::arm_probability(Failpoint::NetShortRead, 1.0, 0xBEEF_0005);
    faults::arm_probability(Failpoint::QueueStall, 0.5, 0xBEEF_0006);
    faults::set_enabled(true);
    // one worker, so the deadline phase below can queue a doomed job
    // behind a long blocker deterministically
    let service = StencilService::start(ServeConfig {
        threads: 2,
        workers: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let server = NetServer::start(service, NetConfig::default()).expect("bind ephemeral port");
    let g2 = Grid2D::from_fn(48, 48, |y, x| ((y * 13 + x * 7) % 29) as f64);
    let spec2 = stencil_serve::JobSpec::new(
        kernels::heat2d(),
        stencil_serve::JobDomain::D2(g2.clone()),
        6,
    );
    let (ref_plan, _) = server.service().plan_for(&spec2).expect("reference plan");
    let want2: Vec<u64> = ref_plan
        .run_2d(&g2, 6)
        .expect("reference run")
        .to_dense()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mut client = NetClient::connect(server.addr(), "chaos").expect("connect");
    for i in 0..wire_jobs {
        let out = client
            .run(
                SubmitHeader {
                    id: 0,
                    name: format!("job{i}"),
                    pattern: kernels::heat2d(),
                    extents: vec![48, 48],
                    steps: 6,
                    rounds: 1,
                    tuning: None,
                    deadline_ms: None,
                },
                &g2.to_dense(),
            )
            .expect("fragmented job serves");
        let got: Vec<u64> = out.data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want2, got, "job {i}: bits diverged over a fragmented wire");
    }
    assert!(faults::fired(Failpoint::NetShortRead) > 0);
    println!(
        "  net_short_read/queue_stall: {wire_jobs} jobs bit-exact over 1-byte reads ({} stalls)",
        faults::fired(Failpoint::QueueStall)
    );
    // a doomed job behind a blocker: the shed must arrive as the typed
    // deadline frame, never a hang (a different size class, so the two
    // jobs resolve to different keys and cannot batch together).
    // Stall every dequeue so the doomed job's queue wait provably
    // exceeds its 1 ms deadline; drop the short reads so the payloads
    // upload at full speed and the ordering stays deterministic.
    faults::disarm_all();
    faults::arm_probability(Failpoint::QueueStall, 1.0, 0xBEEF_0007);
    let blocker = Grid2D::from_fn(96, 96, |y, x| ((y ^ x) % 7) as f64);
    let doomed = Grid2D::from_fn(160, 160, |y, x| ((y + x) % 3) as f64);
    let blocker_id = client
        .submit(
            SubmitHeader {
                id: 0,
                name: "blocker".into(),
                pattern: kernels::heat2d(),
                extents: vec![96, 96],
                steps: 400,
                rounds: 1,
                tuning: None,
                deadline_ms: None,
            },
            &blocker.to_dense(),
        )
        .expect("blocker accepted");
    let doomed_id = client
        .submit(
            SubmitHeader {
                id: 0,
                name: "doomed".into(),
                pattern: kernels::heat2d(),
                extents: vec![160, 160],
                steps: 2,
                rounds: 1,
                tuning: None,
                deadline_ms: Some(1),
            },
            &doomed.to_dense(),
        )
        .expect("doomed accepted");
    loop {
        match client.next_event(doomed_id) {
            Ok(stencil_serve::net::JobEvent::Progress { .. }) => {}
            Ok(stencil_serve::net::JobEvent::Done(_)) => panic!("doomed job must be shed"),
            Err(NetError::Deadline {
                deadline_ms,
                waited_ms,
            }) => {
                assert_eq!(deadline_ms, 1);
                println!("  deadline shed: typed frame after {waited_ms} ms in queue");
                break;
            }
            Err(other) => panic!("expected the typed deadline frame, got {other:?}"),
        }
    }
    loop {
        if let stencil_serve::net::JobEvent::Done(_) =
            client.next_event(blocker_id).expect("blocker completes")
        {
            break;
        }
    }
    client.bye().expect("goodbye");
    faults::disarm_all();
    faults::set_enabled(false);
    let stats = server.shutdown();
    assert_eq!(stats.jobs_shed, 1, "exactly the doomed job was shed");
    assert_eq!(stats.jobs_failed, 0, "chaos must not fail a job");

    // ---- phase 3: overhead guard — recovery machinery when no faults
    // fire. The streaming run crosses every store failpoint site plus
    // the retry wrappers, so it is the densest real workload for the
    // check. Best-of floors, ratio < 5% (plus a 2 ms absolute epsilon
    // for timer noise on very fast smoke sizes).
    let cfg = OocConfig {
        budget_bytes: 28 * plane * stencil_ooc::RESIDENT_WINDOWS_SYNC,
        steps_per_pass: 0,
        prefetch: false,
    };
    faults::set_enabled(false);
    let (_, closed) = best_of(reps, || {
        run_streaming_grid(&plan, &grid, steps, &cfg).expect("baseline run")
    });
    // gate open, nothing armed: every site pays its full idle cost
    faults::set_enabled(true);
    let (_, open) = best_of(reps, || {
        run_streaming_grid(&plan, &grid, steps, &cfg).expect("gated run")
    });
    faults::set_enabled(false);
    let bound = closed.mul_f64(1.05) + Duration::from_millis(2);
    println!("  overhead: gate closed {closed:?}, open-but-idle {open:?} (bound {bound:?})");
    assert!(
        open <= bound,
        "idle failpoints cost more than 5%: closed {closed:?}, open {open:?}"
    );

    let mut table = Table::new("chaos overhead floors", "us");
    table.put("gate_closed", "us", Some(closed.as_micros() as f64));
    table.put("gate_open_idle", "us", Some(open.as_micros() as f64));
    table.print();
    if let Some(path) = &args.json {
        Table::dump_json(&[&table], path).expect("write json");
        eprintln!("wrote {path}");
    }
    println!("chaos surface OK");
}
