//! `stencil-bench tune`: pre-warm the per-host tuning cache for the
//! paper's Table-1 kernels and print the chosen-vs-model comparison —
//! where the probes agree with the §3.2 cost model, and where the real
//! machine overrules it.
//!
//! Run once per machine (or per ISA build); afterwards every
//! `Tuning::Measured`/`Tuning::CacheOnly` compile of these kernels is a
//! warm cache lookup. `--smoke` shrinks the probe budget for CI, which
//! still exercises the full probe→persist→reuse path end-to-end.

use stencil_bench::{Args, Table};
use stencil_core::tune::{auto_method, auto_tiling, TuneRequest};
use stencil_core::{Method, Solver, Tiling, Tuning, Width};
use stencil_tune::cache::{method_str, tiling_str};

fn main() {
    let args = Args::parse();
    // --smoke: tiny probe budget unless the caller pinned one; set
    // before install() so the tuner picks it up from the environment
    if args.quick && std::env::var("STENCIL_TUNE_BUDGET_MS").is_err() {
        std::env::set_var("STENCIL_TUNE_BUDGET_MS", "120");
    }
    let tuner = stencil_tune::install();
    let threads = args.threads();
    let width = Width::native_max();
    println!(
        "stencil-bench tune — measured autotuning, {threads} threads ({})",
        stencil_simd::backend_summary()
    );
    println!("cache: {}", tuner.cache_path().display());

    let mut tab = Table::new("tune (chosen vs model)", "mixed: tb / Mpts-s / flags");
    println!(
        "{:<8} | {:>18} | {:>18} | {:>5} | {:>9} | source",
        "kernel", "model", "tuned", "width", "Mpts/s"
    );
    println!("{}", "-".repeat(84));
    let mut disagreements = 0usize;
    for (name, p) in stencil_tune::candidates::table1_patterns() {
        if !args.wants(name) {
            continue;
        }
        let model_m = auto_method(&p, width, Tiling::Auto);
        let model_t = auto_tiling(p.dims(), model_m, threads);
        let before = tuner.probe_count();
        let plan = match Solver::new(p.clone())
            .method(Method::Auto)
            .tiling(Tiling::Auto)
            .threads(threads)
            .tuning(Tuning::Measured)
            .compile()
        {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("{name}: tuning failed: {e}");
                continue;
            }
        };
        let probes_run = tuner.probe_count() - before;
        let entry = tuner.lookup(&TuneRequest {
            pattern: &p,
            width,
            threads,
            method: None,
            tiling: None,
            domain_hint: None,
            ring3: None,
            mode: Tuning::CacheOnly,
        });
        let rate_m = entry.as_ref().map(|e| e.rate / 1e6).unwrap_or(f64::NAN);
        let agree = plan.method() == model_m;
        if !agree {
            disagreements += 1;
        }
        println!(
            "{:<8} | {:>18} | {:>18} | {:>5} | {:>9.1} | {}",
            name,
            format!("{}+{}", method_str(model_m), tiling_str(model_t)),
            format!(
                "{}+{}",
                method_str(plan.method()),
                tiling_str(plan.tiling())
            ),
            plan.width().lanes(),
            rate_m,
            if probes_run > 0 {
                format!("probed ({probes_run} sweeps)")
            } else {
                "cache".to_string()
            },
        );
        let tb = |t: Tiling| match t {
            Tiling::Tessellate { time_block } | Tiling::Split { time_block } => {
                Some(time_block as f64)
            }
            _ => None,
        };
        tab.put(name, "model_tb", tb(model_t));
        tab.put(name, "tuned_tb", tb(plan.tiling()));
        tab.put(name, "tuned_width", Some(plan.width().lanes() as f64));
        tab.put(name, "probe_Mpts_s", entry.as_ref().map(|e| e.rate / 1e6));
        tab.put(
            name,
            "agrees_with_model",
            Some(if agree { 1.0 } else { 0.0 }),
        );
        tab.put(name, "probe_sweeps", Some(probes_run as f64));
    }
    println!(
        "\n{} of the linear Table-1 kernels overrule the cost model on this host \
         (APOP / Game of Life are nonlinear — no linear pattern to tune).",
        disagreements
    );
    if let Some(path) = &args.json {
        Table::dump_json(&[&tab], path).expect("write json");
        eprintln!("wrote {path}");
    }
}
