//! Table 3: speedup over single core for the different stencils at full
//! core count (paper: 36 cores; here: all available, or --threads N).

use stencil_bench::suite::{run_one, BenchId, MethodId, Sizes};
use stencil_bench::{Args, Table};
use stencil_runtime::PoolHandle;

fn main() {
    let args = Args::parse();
    let mut sizes = Sizes::from_flags(args.paper, args.quick);
    sizes.tuned = args.tuned;
    if args.tuned {
        // both the 1-core baseline and the full-core cells resolve
        // their tiling from the per-host plan cache
        stencil_tune::install();
    }
    let threads = args.threads();
    println!("Table 3 — speedup over single core at {threads} cores");

    // two pools — single-core baseline and full-core — shared by all cells
    let pool_one = PoolHandle::new(1);
    let pool_many = PoolHandle::new(threads);
    let mut tab = Table::new("Table 3", format!("x (speedup at {threads} cores)"));
    for m in MethodId::ALL {
        for b in BenchId::ALL {
            if !args.wants(b.name()) {
                continue;
            }
            let one = run_one(b, m, &pool_one, &sizes).map(|(gf, _)| gf);
            let many = run_one(b, m, &pool_many, &sizes).map(|(gf, _)| gf);
            let cell = match (one, many) {
                (Some(a), Some(z)) if a > 0.0 => Some(z / a),
                _ => None,
            };
            tab.put(m.name(), b.name(), cell);
            eprint!(".");
        }
        eprintln!(" {}", m.name());
    }
    tab.print();
    println!("paper (36 cores): our (2 steps) reaches 24.9x on 3D27P vs SDSL 18.7x");
    if let Some(path) = &args.json {
        Table::dump_json(&[&tab], path).expect("write json");
    }
}
