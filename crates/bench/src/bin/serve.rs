//! `stencil-bench serve`: drive the stencil job service with a
//! synthetic mixed-pattern workload — closed-loop clients submitting a
//! heat2d / box2d9p / star3d mix — and report serving throughput, the
//! latency distribution and the registry/batching/sharding counters.
//!
//! The service is warmed from a manifest before the clock starts, so
//! the measured window contains zero plan compiles (and, when a warmed
//! tune cache backs `--tuned`, zero probe runs — the warm-start
//! contract). `--smoke` shrinks domains and job counts for CI;
//! `--json` dumps the host-stamped `BENCH_serve.json` baseline.

use std::sync::Mutex;
use std::time::Instant;
use stencil_bench::{Args, Table};
use stencil_core::{kernels, Pattern, Tuning};
use stencil_grid::{Grid2D, Grid3D};
use stencil_serve::{JobDomain, JobSpec, Manifest, ServeConfig, ShardPolicy, StencilService};

struct Mix {
    name: &'static str,
    pattern: Pattern,
    extents: Vec<usize>,
    steps: usize,
}

fn mixes(args: &Args) -> Vec<Mix> {
    // smoke: tiny CI sizes; default: laptop-scale; paper: large domains
    let (d2, d3, s2, s3) = if args.quick {
        (192, 24, 8, 4)
    } else if args.paper {
        (2048, 128, 24, 8)
    } else {
        (768, 64, 16, 6)
    };
    vec![
        Mix {
            name: "heat2d",
            pattern: kernels::heat2d(),
            extents: vec![d2, d2],
            steps: s2,
        },
        Mix {
            name: "box2d9p",
            pattern: kernels::box2d9p(),
            extents: vec![d2, d2],
            steps: s2 / 2,
        },
        Mix {
            name: "star3d",
            pattern: kernels::heat3d(),
            extents: vec![d3, d3, d3],
            steps: s3,
        },
    ]
}

fn main() {
    let args = Args::parse();
    let threads = args.threads();
    let clients = if args.quick { 2 } else { 4 };
    let jobs_per_client = if args.quick { 6 } else { 16 };
    let mixes: Vec<Mix> = mixes(&args)
        .into_iter()
        .filter(|m| args.wants(m.name))
        .collect();
    if mixes.is_empty() {
        eprintln!("--filter matched no workload");
        std::process::exit(2);
    }
    let tuning = if args.tuned {
        // measured plans from the per-host cache; cold keys degrade to
        // the static model with a warning on the stats surface
        stencil_tune::install();
        Tuning::CacheOnly
    } else {
        Tuning::Static
    };

    println!(
        "stencil-bench serve — {clients} closed-loop clients x {jobs_per_client} jobs, \
         {threads} pool threads ({})",
        stencil_simd::backend_summary()
    );

    let service = StencilService::start(ServeConfig {
        threads,
        workers: 2,
        queue_capacity: 4 * clients,
        batch_max: 8,
        tuning,
        // low shard floor so even the smoke sizes exercise the
        // slab path end to end
        shard: ShardPolicy {
            min_points: 1 << 15,
            max_shards: threads.max(2),
            min_slab: 16,
        },
        ..ServeConfig::default()
    });
    let mut manifest = Manifest::new(tuning);
    for m in &mixes {
        manifest.push_kernel(m.name, Some(&m.extents));
    }
    let warm = service.warm(&manifest);
    let warm_stats = service.stats();
    println!(
        "warm start: {} plan(s), {} cold fallback(s), {} failure(s), {} probe sweep(s) so far",
        warm.loaded,
        warm.fallbacks,
        warm.failed.len(),
        warm_stats.tuner_probes,
    );
    for w in &warm_stats.warnings {
        println!("  warning: {w}");
    }

    // (name, jobs, point-steps, latency µs) per kernel — collected by
    // the clients as tickets resolve
    let per_kernel: Mutex<Vec<(String, u64, f64, f64)>> =
        Mutex::new(mixes.iter().map(|m| (m.name.into(), 0, 0.0, 0.0)).collect());
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let (service, mixes, per_kernel) = (&service, &mixes, &per_kernel);
            scope.spawn(move || {
                for round in 0..jobs_per_client {
                    let m = &mixes[(client + round) % mixes.len()];
                    let seed = (client * 31 + round * 7) as f64;
                    let domain = match m.extents.len() {
                        2 => JobDomain::D2(Grid2D::from_fn(m.extents[0], m.extents[1], |y, x| {
                            ((y * 13 + x * 5) as f64 + seed) % 17.0
                        })),
                        _ => JobDomain::D3(Grid3D::from_fn(
                            m.extents[0],
                            m.extents[1],
                            m.extents[2],
                            |z, y, x| ((z * 11 + y * 5 + x * 3) as f64 + seed) % 13.0,
                        )),
                    };
                    let spec = JobSpec::new(m.pattern.clone(), domain, m.steps);
                    let points = spec.domain.points();
                    // closed loop: submit (blocking on backpressure),
                    // wait, repeat
                    let result = service
                        .submit(spec)
                        .expect("in-manifest jobs are accepted")
                        .wait()
                        .expect("jobs execute");
                    let mut agg = per_kernel.lock().unwrap();
                    let row = agg
                        .iter_mut()
                        .find(|(n, ..)| n == m.name)
                        .expect("row pre-seeded");
                    row.1 += 1;
                    row.2 += (points * m.steps) as f64;
                    row.3 += result.latency.as_micros() as f64;
                }
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();
    let stats = service.shutdown();

    let mut through = Table::new("serve throughput", "per kernel");
    for (name, jobs, ptsteps, lat_us) in per_kernel.into_inner().unwrap() {
        through.put(&name, "jobs", Some(jobs as f64));
        through.put(&name, "Mpts-steps/s", Some(ptsteps / wall_s / 1e6));
        through.put(
            &name,
            "mean_latency_ms",
            (jobs > 0).then(|| lat_us / jobs as f64 / 1e3),
        );
    }
    let total_jobs = stats.jobs_completed;
    let mut svc = Table::new("serve service counters", "mixed");
    svc.put("service", "jobs_per_s", Some(total_jobs as f64 / wall_s));
    svc.put("service", "p50_ms", Some(stats.p50_us as f64 / 1e3));
    svc.put("service", "p99_ms", Some(stats.p99_us as f64 / 1e3));
    svc.put("service", "plan_hit_ratio", Some(stats.hit_ratio()));
    svc.put("service", "warm_loaded", Some(stats.warm_loaded as f64));
    svc.put(
        "service",
        "cold_fallbacks",
        Some(stats.cold_fallbacks as f64),
    );
    svc.put("service", "batches", Some(stats.batches as f64));
    svc.put("service", "batched_jobs", Some(stats.batched_jobs as f64));
    svc.put("service", "max_batch", Some(stats.max_batch as f64));
    svc.put("service", "sharded_jobs", Some(stats.sharded_jobs as f64));
    svc.put(
        "service",
        "shards_executed",
        Some(stats.shards_executed as f64),
    );
    svc.put("service", "jobs_rejected", Some(stats.jobs_rejected as f64));
    svc.put("service", "jobs_failed", Some(stats.jobs_failed as f64));
    svc.put("service", "tuner_probes", Some(stats.tuner_probes as f64));
    through.print();
    svc.print();
    assert_eq!(
        total_jobs as usize,
        clients * jobs_per_client,
        "every submitted job must complete"
    );
    assert_eq!(stats.jobs_failed, 0, "no job may fail");

    if let Some(path) = &args.json {
        Table::dump_json(&[&through, &svc], path).expect("write json");
        eprintln!("wrote {path}");
    }
}
