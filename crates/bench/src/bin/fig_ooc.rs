//! Fig. OOC: out-of-core streaming vs the resident executor. Runs each
//! 3D kernel on a domain several times larger than the streaming
//! memory budget, three ways — fully resident (the reference),
//! streaming through the file-backed slab store synchronously, and
//! streaming with the background prefetch thread overlapping IO with
//! compute — and asserts in-driver that both streamed results are
//! **bit-identical** to the resident run and that the executor's
//! accounted residency stays within the budget.
//!
//! A second table dumps the store's IO telemetry (bytes moved,
//! prefetch hit/miss, stall time). The byte counters are deterministic
//! for a given geometry; the prefetch counters are timing-dependent,
//! so the compare gate coverage-checks but does not threshold this
//! table.
//!
//! The driver doubles as the `ooc-smoke` CI lane's leak check: after
//! the runs it asserts every plan's shared pool handle was released
//! and that no transient `.slab` store file is left in the temp
//! directory.

use stencil_bench::{gflops, measure, workload, Args, Table};
use stencil_core::{kernels, Method, Pattern, Plan, Solver, Tiling};
use stencil_grid::Grid3D;
use stencil_ooc::{run_streaming_grid, OocConfig, StreamReport};
use stencil_runtime::PoolHandle;

fn cases() -> Vec<(&'static str, Pattern)> {
    vec![
        ("3D-Heat", kernels::heat3d()),
        ("3D27P", kernels::box3d27p()),
    ]
}

fn bits(g: &Grid3D) -> Vec<u64> {
    g.to_dense().iter().map(|v| v.to_bits()).collect()
}

/// Count this process's transient slab-store files in the temp dir.
fn transient_stores() -> usize {
    let prefix = format!("stencil-ooc-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
                .count()
        })
        .unwrap_or(0)
}

fn stream_rate(
    plan: &Plan,
    g: &Grid3D,
    p: &Pattern,
    t: usize,
    reps: usize,
    cfg: &OocConfig,
    want: &[u64],
) -> (f64, StreamReport) {
    let (out, d) = measure::best_of(reps, || run_streaming_grid(plan, g, t, cfg).unwrap());
    let (streamed, report) = out;
    assert_eq!(
        want,
        bits(&streamed),
        "streamed run diverged from the resident reference"
    );
    assert!(
        report.resident_bytes <= cfg.budget_bytes,
        "accounted residency {} exceeds the budget {}",
        report.resident_bytes,
        cfg.budget_bytes
    );
    let rate = gflops(g.nz() * g.ny() * g.nx(), t, 2 * p.points(), d);
    (rate, report)
}

fn main() {
    let args = Args::parse();
    // tall-thin domains: enough z-extent for many slab windows at a
    // small per-plane cost, so even the smoke run streams a domain 4x
    // its budget through dozens of windows per pass
    let ((nz, ny, nx), t, reps, budget_div) = if args.paper {
        ((8192, 128, 128), 16, 2, 8)
    } else if args.quick {
        ((2048, 32, 32), 8, 2, 4)
    } else {
        ((2048, 64, 64), 12, 2, 4)
    };
    let threads = args.threads();
    let domain_bytes = Grid3D::zeros(1, ny, nx).stride_z() * 8 * nz;
    let budget = domain_bytes / budget_div;
    println!(
        "Fig. OOC — file-backed streaming vs resident ({}, {nz}x{ny}x{nx}, t = {t}, \
         budget = domain/{budget_div} = {:.1} MiB)",
        stencil_simd::backend_summary(),
        budget as f64 / (1 << 20) as f64
    );

    let mut rates = Table::new("Fig OOC (streaming vs resident)", "GFLOP/s");
    let mut stats = Table::new("Fig OOC store stats (prefetch run)", "count");
    let pool = PoolHandle::shared(threads);
    let stores_before = transient_stores();
    for (name, p) in cases() {
        if !args.wants(name) {
            continue;
        }
        let plan = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::None)
            .threads(threads)
            .compile()
            .expect("folded block-free compiles for every 3D kernel");
        let g = workload::random_3d(nz, ny, nx, 42);
        let (resident_out, d) = measure::best_of(reps, || plan.run_3d(&g, t).unwrap());
        let resident = gflops(nz * ny * nx, t, 2 * p.points(), d);
        let want = bits(&resident_out);
        drop(resident_out);

        let sync_cfg = OocConfig {
            budget_bytes: budget,
            prefetch: false,
            ..OocConfig::default()
        };
        let (sync, _) = stream_rate(&plan, &g, &p, t, reps, &sync_cfg, &want);
        let pf_cfg = OocConfig {
            budget_bytes: budget,
            prefetch: true,
            ..OocConfig::default()
        };
        let (pf, report) = stream_rate(&plan, &g, &p, t, reps, &pf_cfg, &want);

        rates.put(name, "Resident", Some(resident));
        rates.put(name, "Streaming", Some(sync));
        rates.put(name, "Streaming+prefetch", Some(pf));
        let s = &report.stats;
        stats.put(name, "bytes_read", Some(s.bytes_read as f64));
        stats.put(name, "bytes_written", Some(s.bytes_written as f64));
        stats.put(name, "prefetch_hit", Some(s.prefetch_hit as f64));
        stats.put(name, "prefetch_miss", Some(s.prefetch_miss as f64));
        stats.put(name, "stall_us", Some(s.stall_us as f64));
        eprintln!(
            "  {name}: streaming+prefetch/resident = {:.2} (sync {:.2}), \
             {} windows/pass x {} passes, window = {} planes",
            pf / resident,
            sync / resident,
            report.windows_per_pass,
            report.passes,
            report.window_planes
        );
    }
    rates.print();
    stats.print();

    // leak checks for the CI lane: every plan dropped its shared-pool
    // handle (ours + the registry's clone remain), and the streaming
    // runs cleaned up their transient store files
    assert_eq!(
        pool.strong_count(),
        2,
        "plans must release their pool handles"
    );
    assert_eq!(
        transient_stores(),
        stores_before,
        "transient slab stores leaked in {}",
        std::env::temp_dir().display()
    );
    println!("clean shutdown: pool handles released, no transient stores left");

    if let Some(path) = &args.json {
        Table::dump_json(&[&rates, &stats], path).expect("write json");
        eprintln!("wrote {path}");
    }
}
