//! Fig. 8: absolute performance of the vectorization methods in
//! single-thread blocking-free experiments, across problem sizes spanning
//! L1 cache to main memory, for T and 10T total time steps.

use stencil_bench::suite::{run_blockfree_1d_with, BlockFreeMethod};
use stencil_bench::{Args, Table};

/// (label, problem size in doubles) spanning the storage hierarchy of a
/// Skylake-class core: 32 KB L1, 1 MB L2, ~24 MB shared L3.
pub const SIZE_LADDER: [(&str, usize); 8] = [
    ("L1/1000", 1_000),
    ("L1/2000", 2_000),
    ("L2/16k", 16_000),
    ("L2/48k", 48_000),
    ("L3/512k", 512_000),
    ("L3/1.5M", 1_500_000),
    ("Mem/4M", 4_000_000),
    ("Mem/10.24M", 10_240_000),
];

fn main() {
    let args = Args::parse();
    let (t_small, t_big) = if args.paper {
        (1000, 10_000)
    } else if args.quick {
        (20, 200)
    } else {
        (100, 1000)
    };
    let sizes: Vec<(&str, usize)> = if args.quick {
        SIZE_LADDER[..5].to_vec()
    } else {
        SIZE_LADDER.to_vec()
    };

    println!(
        "Fig. 8 — single-thread blocking-free 1D-Heat ({})",
        stencil_simd::backend_summary()
    );
    // one compiled plan per method, reused across every size and both
    // step counts — the harness never re-plans between cells
    let plans: Vec<_> = BlockFreeMethod::ALL
        .iter()
        .map(|&m| (m, m.plan_1d_heat()))
        .collect();
    let mut tables = Vec::new();
    for (label, t) in [("T", t_small), ("10T", t_big)] {
        let mut tab = Table::new(format!("Fig 8 ({label} = {t} steps)"), "GFLOP/s");
        for &(size_label, n) in &sizes {
            // keep total work roughly constant across sizes so small
            // sizes don't finish in microseconds
            let steps = (t * 2_000_000 / n).clamp(t, 200 * t);
            for (m, plan) in &plans {
                let gf = run_blockfree_1d_with(plan, n, steps);
                tab.put(size_label, m.name(), Some(gf));
            }
            eprint!(".");
        }
        eprintln!();
        tab.print();
        tables.push(tab);
    }
    if let Some(path) = &args.json {
        Table::dump_json(&tables.iter().collect::<Vec<_>>(), path).expect("write json");
        eprintln!("wrote {path}");
    }
}
