//! # stencil-bench
//!
//! Harness regenerating every table and figure of the paper's evaluation
//! (§4). Each binary prints the same rows/series the paper reports:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — benchmark parameters |
//! | `fig8` | Fig. 8 — single-thread block-free GFLOP/s across storage levels, T and 10T |
//! | `table2` | Table 2 — relative improvement per storage level |
//! | `fig9` | Fig. 9 — multicore cache-blocking GFLOP/s + speedups (AVX2 & AVX-512) |
//! | `fig10` | Fig. 10 — scalability vs cores |
//! | `fig3d` | dedicated 3D pipeline — legacy reload-per-block vs z-ring, block-free + tessellate, with a radius-2 fold and a tuner probe |
//! | `table3` | Table 3 — speedup over single core |
//! | `costmodel` | §3.2 collects & profitability indices (90/25/9, 3.6/10, 2.25) |
//! | `ablation` | folding factor, time-block, scheduling and transpose-scheme ablations |
//! | `tune` | pre-warm the per-host tuning cache (Table-1 kernels), chosen-vs-model report |
//! | `serve` | drive the `stencil-serve` job service with a mixed closed-loop workload |
//! | `compare` | perf regression gate: fresh `--json` dumps vs committed baselines |
//!
//! Default problem sizes are scaled to finish on a laptop; pass `--paper`
//! for the Table-1 sizes and `--quick` for CI smoke runs. All binaries
//! accept `--json <path>` to dump machine-readable results.
//!
//! ```
//! use stencil_bench::{gflops, Table};
//! use std::time::Duration;
//!
//! let mut t = Table::new("demo", "GFLOP/s");
//! // 1M points x 10 steps x 5 flops in 25 ms = 2 GFLOP/s.
//! let rate = gflops(1_000_000, 10, 5, Duration::from_millis(25));
//! t.put("1D-Heat", "scalar", Some(rate));
//! assert_eq!(t.get("1D-Heat", "scalar"), Some(2.0));
//! ```

// Offset-indexed loops are the domain idiom here (windows, tiles, taps);
// iterators would hide the math.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod measure;
pub mod report;
pub mod suite;
pub mod workload;

pub use config::Args;
pub use measure::gflops;
pub use report::Table;
