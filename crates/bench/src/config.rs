//! Command-line handling shared by the harness binaries.

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Use the paper's full Table-1 problem sizes.
    pub paper: bool,
    /// CI smoke mode: tiny sizes, one repetition.
    pub quick: bool,
    /// Dump results as JSON to this path.
    pub json: Option<String>,
    /// Override thread count (default: all hardware threads).
    pub threads: Option<usize>,
    /// Restrict to benchmarks whose name contains this substring.
    pub filter: Option<String>,
    /// Resolve tiling parameters through the measured tuner (per-host
    /// cache) instead of the hand-set `Sizes` time blocks.
    pub tuned: bool,
}

impl Args {
    /// Parse from `std::env::args`, exiting with usage on error.
    pub fn parse() -> Self {
        let mut out = Self {
            paper: false,
            quick: false,
            json: None,
            threads: None,
            filter: None,
            tuned: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--paper" => out.paper = true,
                // --smoke is the CI-facing alias for --quick
                "--quick" | "--smoke" => out.quick = true,
                "--json" => out.json = it.next(),
                "--threads" => {
                    out.threads = it.next().and_then(|v| v.parse().ok());
                }
                "--filter" => out.filter = it.next(),
                "--tuned" => out.tuned = true,
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--paper] [--quick|--smoke] [--json PATH] [--threads N] \
                         [--filter NAME] [--tuned]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Scale factor applied to time-step counts: quick 0.1x, paper 1x of
    /// the paper's value, default an intermediate value.
    pub fn wants(&self, name: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| name.to_lowercase().contains(&f.to_lowercase()))
            .unwrap_or(true)
    }

    /// Worker threads to use.
    pub fn threads(&self) -> usize {
        self.threads
            .unwrap_or_else(stencil_runtime::available_parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matching() {
        let a = Args {
            paper: false,
            quick: false,
            json: None,
            threads: None,
            filter: Some("heat".into()),
            tuned: false,
        };
        assert!(a.wants("1D-Heat"));
        assert!(a.wants("3D-Heat"));
        assert!(!a.wants("2D9P"));
        let none = Args { filter: None, ..a };
        assert!(none.wants("anything"));
    }
}
