//! Workload generators: reproducible random grids.
//!
//! Uses an in-crate splitmix64 generator instead of the `rand` crate so
//! the harness stays dependency-free (the build environment is offline).

use stencil_grid::{Grid1D, Grid2D, Grid3D};

/// Minimal seeded uniform generator (splitmix64 → `f64` in `[0, 1)`).
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 significant bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeded uniform random 1D grid in `[0, 1)`.
pub fn random_1d(n: usize, seed: u64) -> Grid1D {
    let mut rng = SplitMix64::new(seed);
    Grid1D::from_fn(n, |_| rng.next_f64())
}

/// Seeded uniform random 2D grid in `[0, 1)`.
pub fn random_2d(ny: usize, nx: usize, seed: u64) -> Grid2D {
    let mut rng = SplitMix64::new(seed);
    Grid2D::from_fn(ny, nx, |_, _| rng.next_f64())
}

/// Seeded uniform random 3D grid in `[0, 1)`.
pub fn random_3d(nz: usize, ny: usize, nx: usize, seed: u64) -> Grid3D {
    let mut rng = SplitMix64::new(seed);
    Grid3D::from_fn(nz, ny, nx, |_, _, _| rng.next_f64())
}

/// Gaussian bump initial condition (smooth, physical-looking heat
/// profile) for examples and demos.
pub fn gaussian_1d(n: usize, center: f64, sigma: f64) -> Grid1D {
    Grid1D::from_fn(n, |i| {
        let x = i as f64 / n as f64 - center;
        (-x * x / (2.0 * sigma * sigma)).exp()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = random_1d(100, 7);
        let b = random_1d(100, 7);
        let c = random_1d(100, 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn values_in_unit_interval() {
        let g = random_2d(10, 10, 3);
        assert!(g.to_dense().iter().all(|&v| (0.0..1.0).contains(&v)));
        let h = random_3d(4, 5, 6, 9);
        assert!(h.to_dense().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn gaussian_peaks_at_center() {
        let g = gaussian_1d(101, 0.5, 0.1);
        let peak = g
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((48..=52).contains(&peak));
    }
}
