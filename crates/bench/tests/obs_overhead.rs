//! Overhead guard for the tracing subsystem: recording spans into the
//! per-worker rings must be cheap enough that leaving tracing enabled
//! on an otherwise idle exporter (nothing scraping `/trace`) does not
//! measurably slow a tiled plan run down.
//!
//! `best_of` takes the minimum over several runs, so the comparison is
//! against each configuration's noise floor rather than its mean — the
//! standard way to make a wall-clock guard stable in CI.

use std::time::Duration;
use stencil_bench::measure::best_of;
use stencil_core::{kernels, Solver, Tiling};
use stencil_grid::Grid2D;

fn timed_tiled_run(reps: usize) -> Duration {
    let grid = Grid2D::from_fn(160, 160, |y, x| ((y * 7 + x * 3) % 23) as f64);
    // the tessellate tiling drives the worker pool, so every step
    // crosses the instrumented `WorkerJob` span sites
    let plan = Solver::new(kernels::heat2d())
        .tiling(Tiling::Tessellate { time_block: 2 })
        .threads(1)
        .compile()
        .expect("tiled plan compiles");
    let (out, elapsed) = best_of(reps, || plan.run_2d(&grid, 8).expect("run"));
    assert_eq!(out.ny(), 160);
    elapsed
}

#[test]
fn enabled_but_idle_tracing_stays_within_noise_of_disabled() {
    const REPS: usize = 7;

    stencil_obs::set_enabled(false);
    let disabled = timed_tiled_run(REPS);

    stencil_obs::set_enabled(true);
    stencil_obs::clear();
    let enabled = timed_tiled_run(REPS);
    let recorded = stencil_obs::snapshot().len();
    stencil_obs::set_enabled(false);

    // the enabled run must actually have exercised the recording path,
    // otherwise this guard measures nothing
    assert!(
        recorded > 0,
        "the tiled run must record spans while tracing is enabled"
    );

    // generous bound: ring writes are a few atomics per span, so even on
    // a noisy single-core CI host the best-of floor stays well inside
    // 1.5x + 2 ms of the disabled floor
    let bound = disabled.mul_f64(1.5) + Duration::from_millis(2);
    assert!(
        enabled <= bound,
        "enabled-but-idle tracing too slow: disabled {disabled:?}, enabled {enabled:?} \
         (bound {bound:?}, {recorded} spans recorded)"
    );
}
