//! Criterion: in-register transpose schemes (paper §2.3) and the two
//! memory-layout transforms (§2.2 local vs DLT global).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use stencil_grid::layout::{DltLayout, TransposeLayout};
use stencil_simd::{NativeF64x4, NativeF64x8, SimdF64};

fn register_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_transpose");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);

    g.throughput(Throughput::Elements(16));
    g.bench_function("4x4_avx2_2stage", |b| {
        let mut set = [NativeF64x4::splat(1.0); 4];
        for (i, v) in set.iter_mut().enumerate() {
            *v = NativeF64x4::splat(i as f64);
        }
        b.iter(|| {
            NativeF64x4::transpose(black_box(&mut set));
            black_box(set[0]);
        })
    });

    g.throughput(Throughput::Elements(64));
    g.bench_function("8x8_avx512_3stage", |b| {
        let mut set = [NativeF64x8::splat(1.0); 8];
        for (i, v) in set.iter_mut().enumerate() {
            *v = NativeF64x8::splat(i as f64);
        }
        b.iter(|| {
            NativeF64x8::transpose(black_box(&mut set));
            black_box(set[0]);
        })
    });
    g.finish();
}

fn layout_transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout_transforms");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    let n = 1 << 20;
    g.throughput(Throughput::Elements(n as u64));

    // the paper's local transpose layout: in-place, cache-friendly
    g.bench_function("local_transpose_1M", |b| {
        let lay = TransposeLayout::new(4);
        let buf: Vec<f64> = (0..n).map(|i| i as f64).collect();
        b.iter_batched_ref(
            || buf.clone(),
            |buf| lay.apply::<NativeF64x4>(black_box(buf)),
            BatchSize::LargeInput,
        )
    });

    // DLT's global dimension-lifted transpose: strided, out of place
    g.bench_function("dlt_global_transpose_1M", |b| {
        let lay = DltLayout::new(n, 4);
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut dst = vec![0.0; n];
        b.iter(|| lay.to_dlt::<NativeF64x4>(black_box(&src), black_box(&mut dst)))
    });
    g.finish();
}

criterion_group!(benches, register_transpose, layout_transforms);
criterion_main!(benches);
