//! Criterion: one 1D time step per method (the per-method cost behind
//! Fig. 8) at an L2-resident working set.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use stencil_core::exec::{dlt, folded, multiload, reorg, scalar, xlayout};
use stencil_core::folding::fold;
use stencil_core::kernels;
use stencil_grid::Grid1D;
use stencil_simd::NativeF64x4;

const N: usize = 64_000;

fn kernels_1d(c: &mut Criterion) {
    let p = kernels::heat1d();
    let taps = p.weights().to_vec();
    let folded2 = fold(&p, 2);
    let ftaps = folded2.weights().to_vec();
    let g = Grid1D::from_fn(N, |i| (i % 101) as f64);
    let mut a = g.clone();
    let mut b = g.clone();

    let mut grp = c.benchmark_group("step_1d_heat_64k");
    grp.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30)
        .throughput(Throughput::Elements(N as u64));

    grp.bench_function("scalar", |bch| {
        bch.iter(|| {
            scalar::step_1d(black_box(a.as_slice()), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.bench_function("multiple_loads", |bch| {
        bch.iter(|| {
            multiload::step_1d::<NativeF64x4>(black_box(a.as_slice()), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.bench_function("data_reorg", |bch| {
        bch.iter(|| {
            reorg::step_1d::<NativeF64x4>(black_box(a.as_slice()), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.bench_function("transpose_layout", |bch| {
        bch.iter(|| {
            xlayout::step_x::<NativeF64x4>(black_box(a.as_slice()), b.as_mut_slice(), &taps);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.bench_function("folded_squares_m2", |bch| {
        bch.iter(|| {
            folded::step_1d::<NativeF64x4>(black_box(a.as_slice()), b.as_mut_slice(), &ftaps);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.bench_function("dlt_steady_state", |bch| {
        let mut d = dlt::DltSweep1D::<NativeF64x4>::new(&g, &p);
        bch.iter(|| d.steps(1))
    });
    grp.finish();
}

criterion_group!(benches, kernels_1d);
criterion_main!(benches);
