//! Criterion: one 2D time step per method and kernel (box, star,
//! asymmetric) — the per-pass costs behind Fig. 9's 2D rows. The folded
//! m=2 rows advance two time levels per iteration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use stencil_core::exec::{folded, life, multiload};
use stencil_core::kernels;
use stencil_grid::Grid2D;
use stencil_simd::NativeF64x4;

const N: usize = 256;

fn kernels_2d(c: &mut Criterion) {
    let mut grp = c.benchmark_group("step_2d_256");
    grp.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(25)
        .throughput(Throughput::Elements((N * N) as u64));

    for (name, p) in [
        ("2d9p", kernels::box2d9p()),
        ("heat2d", kernels::heat2d()),
        ("gb", kernels::gb()),
    ] {
        let g = Grid2D::from_fn(N, N, |y, x| ((y * 31 + x) % 101) as f64);
        let mut a = g.clone();
        let mut b = g.clone();
        let pc = p.clone();
        grp.bench_function(format!("{name}/multiload"), |bch| {
            bch.iter(|| {
                multiload::step_2d::<NativeF64x4>(black_box(&a), &mut b, &pc);
                std::mem::swap(&mut a, &mut b);
            })
        });
        let k1 = folded::FoldedKernel::new(&p, 1);
        grp.bench_function(format!("{name}/folded_m1"), |bch| {
            bch.iter(|| {
                folded::step_2d::<NativeF64x4>(&k1, black_box(&a), &mut b);
                std::mem::swap(&mut a, &mut b);
            })
        });
        let k2 = folded::FoldedKernel::new(&p, 2);
        grp.bench_function(format!("{name}/folded_m2(two_levels)"), |bch| {
            bch.iter(|| {
                folded::step_2d::<NativeF64x4>(&k2, black_box(&a), &mut b);
                std::mem::swap(&mut a, &mut b);
            })
        });
    }

    // Game of Life: scalar rule vs branchless SIMD vs fused double step
    let soup = life::random_soup(N, N, 5);
    let mut a = soup.clone();
    let mut b = soup.clone();
    grp.bench_function("life/simd", |bch| {
        bch.iter(|| {
            life::step::<NativeF64x4>(black_box(&a), &mut b);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.bench_function("life/fused2(two_levels)", |bch| {
        bch.iter(|| {
            life::step2_range::<NativeF64x4>(black_box(&a), &mut b, 2..N - 2, 2..N - 2);
            std::mem::swap(&mut a, &mut b);
        })
    });
    grp.finish();
}

criterion_group!(benches, kernels_2d);
criterion_main!(benches);
