//! Criterion: tiling schemes at fixed total work — block-free vs spatial
//! vs tessellate vs split (SDSL), single- and multi-threaded.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use stencil_core::{kernels, Method, Plan, Solver, Tiling};
use stencil_grid::Grid2D;
use stencil_runtime::PoolHandle;

const N: usize = 512;
const T: usize = 32;

fn tiling(c: &mut Criterion) {
    let p = kernels::box2d9p();
    let g = Grid2D::from_fn(N, N, |y, x| ((y * 7 + x * 3) % 101) as f64);
    let pool = PoolHandle::new(stencil_runtime::available_parallelism().min(8));

    let mut grp = c.benchmark_group("tiling_2d9p_512x512x32");
    grp.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
        .throughput(Throughput::Elements((N * N * T) as u64));

    // plans are compiled once, outside the measured iterations; the
    // multithreaded cases share one pool
    let cases: Vec<(&str, Plan)> = vec![
        (
            "blockfree_1t",
            Solver::new(p.clone())
                .method(Method::Folded { m: 2 })
                .compile()
                .unwrap(),
        ),
        (
            "spatial_mt",
            Solver::new(p.clone())
                .method(Method::MultipleLoads)
                .tiling(Tiling::Spatial { block: (64, 128) })
                .pool(pool.clone())
                .compile()
                .unwrap(),
        ),
        (
            "tessellate_mt",
            Solver::new(p.clone())
                .method(Method::Folded { m: 2 })
                .tiling(Tiling::Tessellate { time_block: 8 })
                .pool(pool.clone())
                .compile()
                .unwrap(),
        ),
        (
            "sdsl_split_mt",
            Solver::new(p.clone())
                .method(Method::Dlt)
                .tiling(Tiling::Split { time_block: 8 })
                .pool(pool.clone())
                .compile()
                .unwrap(),
        ),
    ];
    for (name, plan) in &cases {
        grp.bench_function(*name, |b| {
            b.iter(|| black_box(plan.run_2d(black_box(&g), T).unwrap()))
        });
    }
    grp.finish();
}

criterion_group!(benches, tiling);
criterion_main!(benches);
