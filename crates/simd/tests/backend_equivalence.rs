#![allow(clippy::needless_range_loop)]

//! Property tests: the intrinsic backends must agree bit-for-bit with
//! the portable reference on every operation, for arbitrary lane values.

use proptest::prelude::*;
use stencil_simd::portable::{PF64x4, PF64x8};
use stencil_simd::{NativeF64x4, NativeF64x8, SimdF64};

fn arr4() -> impl Strategy<Value = [f64; 4]> {
    prop::array::uniform4(-1e6f64..1e6)
}

fn arr8() -> impl Strategy<Value = [f64; 8]> {
    prop::array::uniform8(-1e6f64..1e6)
}

fn n4(a: [f64; 4]) -> NativeF64x4 {
    NativeF64x4::from_slice(&a)
}

fn p4(a: [f64; 4]) -> PF64x4 {
    PF64x4::new(a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arithmetic_matches_portable_x4(a in arr4(), b in arr4(), c in arr4()) {
        prop_assert_eq!(n4(a).add(n4(b)).to_vec(), p4(a).add(p4(b)).to_vec());
        prop_assert_eq!(n4(a).sub(n4(b)).to_vec(), p4(a).sub(p4(b)).to_vec());
        prop_assert_eq!(n4(a).mul(n4(b)).to_vec(), p4(a).mul(p4(b)).to_vec());
        prop_assert_eq!(n4(a).max(n4(b)).to_vec(), p4(a).max(p4(b)).to_vec());
        prop_assert_eq!(n4(a).min(n4(b)).to_vec(), p4(a).min(p4(b)).to_vec());
        prop_assert_eq!(n4(a).ge01(n4(b)).to_vec(), p4(a).ge01(p4(b)).to_vec());
        prop_assert_eq!(n4(a).eq01(n4(b)).to_vec(), p4(a).eq01(p4(b)).to_vec());
        // FMA: the portable backend uses f64::mul_add, so exact equality
        // holds only when the native backend fuses too (it does on
        // x86-64 with FMA); compare exactly.
        prop_assert_eq!(
            n4(a).mul_add(n4(b), n4(c)).to_vec(),
            p4(a).mul_add(p4(b), p4(c)).to_vec()
        );
    }

    #[test]
    fn shifts_match_portable_x4(a in arr4(), b in arr4()) {
        prop_assert_eq!(
            n4(a).shift_in_right(n4(b)).to_vec(),
            p4(a).shift_in_right(p4(b)).to_vec()
        );
        prop_assert_eq!(
            n4(a).shift_in_left(n4(b)).to_vec(),
            p4(a).shift_in_left(p4(b)).to_vec()
        );
        prop_assert_eq!(
            n4(a).rotate_lanes_left().to_vec(),
            p4(a).rotate_lanes_left().to_vec()
        );
        prop_assert_eq!(
            n4(a).rotate_lanes_right().to_vec(),
            p4(a).rotate_lanes_right().to_vec()
        );
    }

    #[test]
    fn transpose_matches_portable_x4(rows in prop::array::uniform4(arr4())) {
        let mut native: Vec<NativeF64x4> = rows.iter().map(|r| n4(*r)).collect();
        let mut portable: Vec<PF64x4> = rows.iter().map(|r| p4(*r)).collect();
        NativeF64x4::transpose(&mut native);
        PF64x4::transpose(&mut portable);
        for (nv, pv) in native.iter().zip(&portable) {
            prop_assert_eq!(nv.to_vec(), pv.to_vec());
        }
    }

    #[test]
    fn transpose_matches_portable_x8(rows in prop::array::uniform8(arr8())) {
        let mut native: Vec<NativeF64x8> = rows.iter().map(|r| NativeF64x8::from_slice(r)).collect();
        let mut portable: Vec<PF64x8> = rows.iter().map(|r| PF64x8::new(*r)).collect();
        NativeF64x8::transpose(&mut native);
        PF64x8::transpose(&mut portable);
        for (nv, pv) in native.iter().zip(&portable) {
            prop_assert_eq!(nv.to_vec(), pv.to_vec());
        }
    }

    #[test]
    fn shifts_match_portable_x8(a in arr8(), b in arr8()) {
        let (na, nb) = (NativeF64x8::from_slice(&a), NativeF64x8::from_slice(&b));
        let (pa, pb) = (PF64x8::new(a), PF64x8::new(b));
        prop_assert_eq!(na.shift_in_right(nb).to_vec(), pa.shift_in_right(pb).to_vec());
        prop_assert_eq!(na.shift_in_left(nb).to_vec(), pa.shift_in_left(pb).to_vec());
    }

    #[test]
    fn load_store_roundtrip(a in arr8(), off in 0usize..8) {
        let mut buf = [0.0f64; 24];
        buf[off..off + 8].copy_from_slice(&a);
        // SAFETY: in-bounds by construction.
        let v = unsafe { NativeF64x8::load(buf.as_ptr().add(off)) };
        let mut out = [0.0f64; 24];
        unsafe { v.store(out.as_mut_ptr().add(off)) };
        prop_assert_eq!(&out[off..off + 8], &a);
    }

    #[test]
    fn insert_extract_consistency(a in arr4(), i in 0usize..4, v in -1e6f64..1e6) {
        let w = n4(a).insert(i, v);
        prop_assert_eq!(w.extract(i), v);
        for j in 0..4 {
            if j != i {
                prop_assert_eq!(w.extract(j), a[j]);
            }
        }
    }

    #[test]
    fn horizontal_sum_matches(a in arr4()) {
        let want: f64 = a.iter().sum();
        let got = n4(a).horizontal_sum();
        prop_assert!((want - got).abs() <= 1e-9 * want.abs().max(1.0));
    }
}
