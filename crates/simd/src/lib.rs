//! # stencil-simd
//!
//! SIMD substrate for the stencil library: a lane-generic `f64` vector
//! trait ([`SimdF64`]), three backends (portable, AVX2, AVX-512F), the
//! paper's two-stage in-register `vl x vl` matrix transpose
//! ([`transpose`]), and the blend-plus-circular-shift *assembled vector*
//! operations used by the transpose layout ([`assemble`]).
//!
//! ## Backends
//!
//! * [`portable::PF64x4`] / [`portable::PF64x8`] — `[f64; N]` wrappers with
//!   `#[inline(always)]` per-lane operations. With `-C target-cpu=native`
//!   LLVM lowers these to the same vector instructions as the intrinsic
//!   backends in almost all cases; they are also the fallback on
//!   non-x86_64 targets.
//! * `avx2::F64x4` — `__m256d` wrappers, compiled only when the build
//!   statically enables `avx2` (this workspace sets `target-cpu=native`).
//!   Implements the paper's `permute2f128` + `unpackhi/lo` transpose
//!   (Fig. 3) and the `blend` + lane-rotate assembled vectors (Fig. 2).
//! * `avx512::F64x8` — `__m512d` wrappers for the AVX-512 experiments,
//!   compiled only when `avx512f` is statically enabled.
//!
//! Width selection for kernels happens through the type aliases
//! [`NativeF64x4`] and [`NativeF64x8`]: the widest *statically available*
//! implementation of the requested lane count.
//!
//! ## Relation to the paper
//!
//! Section 2.3 argues that a `vl x vl` register transpose of `f64` via
//! single-cycle non-parameter unpack instructions (2 stages on AVX2, 3 on
//! AVX-512) beats both in-lane 4-stage schemes and shuffle-immediate
//! schemes. [`cost`] encodes that instruction/latency accounting so the
//! claim is checkable as a unit test rather than folklore.
//!
//! ```
//! use stencil_simd::{NativeF64x4, SimdF64};
//!
//! // A 4x4 in-register transpose: row i, lane j  ->  row j, lane i.
//! let mut rows: Vec<NativeF64x4> = (0..4)
//!     .map(|i| NativeF64x4::from_slice(&[0.0, 1.0, 2.0, 3.0].map(|x| x + 10.0 * i as f64)))
//!     .collect();
//! NativeF64x4::transpose(&mut rows);
//! assert_eq!(rows[1].to_vec(), vec![1.0, 11.0, 21.0, 31.0]);
//! ```

// Offset-indexed loops are the domain idiom here (windows, tiles, taps);
// iterators would hide the math.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod assemble;
pub mod cost;
pub mod portable;
pub mod transpose;
pub mod vector;

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
pub mod avx2;

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
pub mod avx512;

pub use vector::SimdF64;

/// Widest statically-available 4-lane `f64` vector type.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
pub type NativeF64x4 = avx2::F64x4;
/// Widest statically-available 4-lane `f64` vector type.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
pub type NativeF64x4 = portable::PF64x4;

/// Widest statically-available 8-lane `f64` vector type.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
pub type NativeF64x8 = avx512::F64x8;
/// Widest statically-available 8-lane `f64` vector type.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
pub type NativeF64x8 = portable::PF64x8;

/// True when the AVX2 backend was compiled in (static feature detection).
pub const HAS_AVX2: bool = cfg!(all(target_arch = "x86_64", target_feature = "avx2"));

/// True when the AVX-512F backend was compiled in.
pub const HAS_AVX512: bool = cfg!(all(target_arch = "x86_64", target_feature = "avx512f"));

/// Human-readable description of the active backends, for bench banners.
pub fn backend_summary() -> String {
    format!(
        "4-lane: {}, 8-lane: {}",
        if HAS_AVX2 { "AVX2" } else { "portable" },
        if HAS_AVX512 { "AVX-512F" } else { "portable" }
    )
}
