//! Portable `[f64; N]` vector backend.
//!
//! Every operation is a fixed-trip-count lane loop marked
//! `#[inline(always)]`; with optimizations (and especially with
//! `target-cpu=native`) LLVM turns these into the same packed instructions
//! the intrinsic backends emit. This backend is the correctness oracle for
//! the intrinsic backends in the property tests, and the fallback on
//! targets without AVX.

use crate::vector::SimdF64;

macro_rules! portable_vec {
    ($(#[$doc:meta])* $name:ident, $lanes:expr, $align:expr) => {
        $(#[$doc])*
        #[derive(Copy, Clone, Debug, PartialEq)]
        #[repr(C, align($align))]
        pub struct $name(pub [f64; $lanes]);

        impl $name {
            /// Construct from an array of lane values.
            #[inline(always)]
            pub const fn new(lanes: [f64; $lanes]) -> Self {
                Self(lanes)
            }

            /// Borrow the lanes as an array.
            #[inline(always)]
            pub const fn as_array(&self) -> &[f64; $lanes] {
                &self.0
            }
        }

        impl SimdF64 for $name {
            const LANES: usize = $lanes;

            #[inline(always)]
            fn splat(x: f64) -> Self {
                Self([x; $lanes])
            }

            #[inline(always)]
            unsafe fn load(ptr: *const f64) -> Self {
                let mut out = [0.0f64; $lanes];
                core::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), $lanes);
                Self(out)
            }

            #[inline(always)]
            unsafe fn store(self, ptr: *mut f64) {
                core::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, $lanes);
            }

            #[inline(always)]
            fn add(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] += o.0[i];
                }
                Self(r)
            }

            #[inline(always)]
            fn sub(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] -= o.0[i];
                }
                Self(r)
            }

            #[inline(always)]
            fn mul(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] *= o.0[i];
                }
                Self(r)
            }

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                let mut r = [0.0f64; $lanes];
                for i in 0..$lanes {
                    r[i] = f64::mul_add(self.0[i], a.0[i], b.0[i]);
                }
                Self(r)
            }

            #[inline(always)]
            fn max(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] = r[i].max(o.0[i]);
                }
                Self(r)
            }

            #[inline(always)]
            fn min(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] = r[i].min(o.0[i]);
                }
                Self(r)
            }

            #[inline(always)]
            fn ge01(self, o: Self) -> Self {
                let mut r = [0.0f64; $lanes];
                for i in 0..$lanes {
                    r[i] = if self.0[i] >= o.0[i] { 1.0 } else { 0.0 };
                }
                Self(r)
            }

            #[inline(always)]
            fn extract(self, i: usize) -> f64 {
                self.0[i]
            }

            #[inline(always)]
            fn insert(self, i: usize, v: f64) -> Self {
                let mut r = self.0;
                r[i] = v;
                Self(r)
            }

            #[inline(always)]
            fn shift_in_right(self, next: Self) -> Self {
                let mut r = [0.0f64; $lanes];
                for i in 0..$lanes - 1 {
                    r[i] = self.0[i + 1];
                }
                r[$lanes - 1] = next.0[0];
                Self(r)
            }

            #[inline(always)]
            fn shift_in_left(self, prev: Self) -> Self {
                let mut r = [0.0f64; $lanes];
                r[0] = prev.0[$lanes - 1];
                for i in 1..$lanes {
                    r[i] = self.0[i - 1];
                }
                Self(r)
            }

            #[inline(always)]
            fn transpose(set: &mut [Self]) {
                assert_eq!(set.len(), $lanes, "transpose needs a full vector set");
                for r in 0..$lanes {
                    for c in (r + 1)..$lanes {
                        let tmp = set[r].0[c];
                        set[r].0[c] = set[c].0[r];
                        set[c].0[r] = tmp;
                    }
                }
            }
        }
    };
}

portable_vec!(
    /// Portable 4-lane `f64` vector (AVX2-width fallback).
    PF64x4,
    4,
    32
);

portable_vec!(
    /// Portable 8-lane `f64` vector (AVX-512-width fallback).
    PF64x8,
    8,
    64
);

portable_vec!(
    /// Portable 2-lane `f64` vector (SSE2-width; used in width ablations).
    PF64x2,
    2,
    16
);

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn v4(a: f64, b: f64, c: f64, d: f64) -> PF64x4 {
        PF64x4::new([a, b, c, d])
    }

    #[test]
    fn arithmetic() {
        let a = v4(1.0, 2.0, 3.0, 4.0);
        let b = v4(10.0, 20.0, 30.0, 40.0);
        assert_eq!(a.add(b), v4(11.0, 22.0, 33.0, 44.0));
        assert_eq!(b.sub(a), v4(9.0, 18.0, 27.0, 36.0));
        assert_eq!(a.mul(b), v4(10.0, 40.0, 90.0, 160.0));
        assert_eq!(a.mul_add(b, a), v4(11.0, 42.0, 93.0, 164.0));
        assert_eq!(a.max(v4(2.0, 1.0, 5.0, 0.0)), v4(2.0, 2.0, 5.0, 4.0));
        assert_eq!(a.min(v4(2.0, 1.0, 5.0, 0.0)), v4(1.0, 1.0, 3.0, 0.0));
    }

    #[test]
    fn shifts_match_paper_fig2() {
        // Current last vector (D,H,L,P), previous block last vector (*,*,*,Z):
        // the left dependent of first vector (A,E,I,M) must be (Z,D,H,L).
        let cur_last = v4(4.0, 8.0, 12.0, 16.0); // D H L P
        let prev_last = v4(-1.0, -2.0, -3.0, 0.0); // * * * Z
        let left_dep = cur_last.shift_in_left(prev_last);
        assert_eq!(left_dep, v4(0.0, 4.0, 8.0, 12.0)); // Z D H L

        // Current first vector (A,E,I,M), next block first (A',..):
        // right dependent of last vector (D,H,L,P) must be (E,I,M,A').
        let cur_first = v4(1.0, 5.0, 9.0, 13.0); // A E I M
        let next_first = v4(17.0, 99.0, 99.0, 99.0); // A' ...
        let right_dep = cur_first.shift_in_right(next_first);
        assert_eq!(right_dep, v4(5.0, 9.0, 13.0, 17.0)); // E I M A'
    }

    #[test]
    fn rotates() {
        let a = v4(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.rotate_lanes_left(), v4(2.0, 3.0, 4.0, 1.0));
        assert_eq!(a.rotate_lanes_right(), v4(4.0, 1.0, 2.0, 3.0));
    }

    #[test]
    fn transpose_4x4() {
        let mut set = [
            v4(1.0, 2.0, 3.0, 4.0),
            v4(5.0, 6.0, 7.0, 8.0),
            v4(9.0, 10.0, 11.0, 12.0),
            v4(13.0, 14.0, 15.0, 16.0),
        ];
        PF64x4::transpose(&mut set);
        assert_eq!(set[0], v4(1.0, 5.0, 9.0, 13.0));
        assert_eq!(set[1], v4(2.0, 6.0, 10.0, 14.0));
        assert_eq!(set[2], v4(3.0, 7.0, 11.0, 15.0));
        assert_eq!(set[3], v4(4.0, 8.0, 12.0, 16.0));
    }

    #[test]
    fn transpose_8x8_involution() {
        let mut set = [PF64x8::zero(); 8];
        for (r, row) in set.iter_mut().enumerate() {
            for c in 0..8 {
                *row = row.insert(c, (r * 8 + c) as f64);
            }
        }
        let orig = set;
        PF64x8::transpose(&mut set);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(set[r].extract(c), orig[c].extract(r));
            }
        }
        PF64x8::transpose(&mut set);
        assert_eq!(set.map(|v| v.to_vec()), orig.map(|v| v.to_vec()));
    }

    #[test]
    fn alignment_is_width() {
        assert_eq!(core::mem::align_of::<PF64x4>(), 32);
        assert_eq!(core::mem::align_of::<PF64x8>(), 64);
        assert_eq!(core::mem::align_of::<PF64x2>(), 16);
    }

    #[test]
    fn horizontal_sum() {
        assert_eq!(v4(1.0, 2.0, 3.0, 4.0).horizontal_sum(), 10.0);
    }

    #[test]
    #[should_panic]
    fn transpose_wrong_len_panics() {
        let mut set = [PF64x4::zero(); 3];
        PF64x4::transpose(&mut set);
    }
}
