//! Instruction-count / latency accounting for data-organization schemes
//! (paper §2.1–2.3).
//!
//! The paper's argument for the transpose layout is quantitative: count
//! the data-organization operations each vectorization scheme performs per
//! vector of useful output, and the cycles the in-register transpose
//! costs. This module encodes that arithmetic so the claims are unit
//! tests, and so the ablation benchmark can print the model next to
//! measured numbers.

/// Latency (cycles) of a lane-crossing shuffle (`vperm2f128`,
/// `vpermpd`, `vshuff64x2`) on Skylake-class cores.
pub const LANE_CROSSING_LATENCY: u32 = 3;
/// Latency (cycles) of an in-lane shuffle (`vunpcklpd`, `vblendpd`).
pub const IN_LANE_LATENCY: u32 = 1;
/// Throughput assumption: one shuffle port (port 5), one shuffle per cycle.
pub const SHUFFLE_PORTS: u32 = 1;

/// An in-register transpose scheme for a `vl x vl` f64 tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransposeScheme {
    /// Human-readable name.
    pub name: &'static str,
    /// Vector length in f64 lanes.
    pub vl: usize,
    /// Number of lane-crossing shuffle instructions.
    pub lane_crossing: u32,
    /// Number of in-lane shuffle instructions.
    pub in_lane: u32,
    /// Number of pipeline stages (dependency depth in shuffles).
    pub stages: u32,
}

impl TransposeScheme {
    /// Total shuffle instruction count.
    pub fn instructions(&self) -> u32 {
        self.lane_crossing + self.in_lane
    }

    /// Dependency-chain latency: stages weighted by the slowest
    /// instruction class used in each stage (conservative: a stage built
    /// of lane-crossing shuffles costs [`LANE_CROSSING_LATENCY`]).
    pub fn critical_path(&self) -> u32 {
        // Each scheme below documents which stages are lane-crossing.
        match self.name {
            // paper scheme: stage 1 lane-crossing, stage 2 in-lane
            "paper-avx2" => LANE_CROSSING_LATENCY + IN_LANE_LATENCY,
            // in-lane pairs first, then lane-crossing (same total)
            "springer-avx2" => IN_LANE_LATENCY + LANE_CROSSING_LATENCY,
            // four stages of in-lane ops (float-oriented, Zekri)
            "inlane-4stage" => 4 * IN_LANE_LATENCY,
            // 128-bit lane splitting (Hormati): two lane-crossing stages
            "lane-split" => 2 * LANE_CROSSING_LATENCY,
            // avx-512 paper scheme: unpack, shuffle, shuffle
            "paper-avx512" => IN_LANE_LATENCY + 2 * LANE_CROSSING_LATENCY,
            _ => self.stages * LANE_CROSSING_LATENCY,
        }
    }

    /// Cycles to *issue* all shuffles assuming [`SHUFFLE_PORTS`] per cycle.
    /// The paper: "these 8 instructions on 4 vectors can be launched
    /// continuously in 8 cycles".
    pub fn issue_cycles(&self) -> u32 {
        self.instructions() / SHUFFLE_PORTS
    }
}

/// The paper's AVX2 scheme (Fig. 3): 4 `vperm2f128` + 4 unpack, 2 stages.
pub const PAPER_AVX2: TransposeScheme = TransposeScheme {
    name: "paper-avx2",
    vl: 4,
    lane_crossing: 4,
    in_lane: 4,
    stages: 2,
};

/// Springer et al. (TTC): shuffle + permute2f128 with immediate operands,
/// 2 stages, 8 instructions — but requires 8 immediate parameters.
pub const SPRINGER_AVX2: TransposeScheme = TransposeScheme {
    name: "springer-avx2",
    vl: 4,
    lane_crossing: 4,
    in_lane: 4,
    stages: 2,
};

/// Four-stage in-lane-only scheme (Zekri, float-oriented analogue).
pub const INLANE_4STAGE: TransposeScheme = TransposeScheme {
    name: "inlane-4stage",
    vl: 4,
    lane_crossing: 0,
    in_lane: 16,
    stages: 4,
};

/// Lane-splitting scheme (Hormati / MacroSS): all lane-crossing.
pub const LANE_SPLIT: TransposeScheme = TransposeScheme {
    name: "lane-split",
    vl: 4,
    lane_crossing: 8,
    in_lane: 0,
    stages: 2,
};

/// The paper's AVX-512 scheme: 8 unpack + 16 `vshuff64x2`, 3 stages.
pub const PAPER_AVX512: TransposeScheme = TransposeScheme {
    name: "paper-avx512",
    vl: 8,
    lane_crossing: 16,
    in_lane: 8,
    stages: 3,
};

/// Data-organization operation counts per *vector set* (vl output vectors)
/// for a radius-`r` 1D stencil, per vectorization method (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrgOps {
    /// Vector loads from memory/cache.
    pub loads: u32,
    /// Shuffle/blend/permute instructions.
    pub shuffles: u32,
    /// Stores of results.
    pub stores: u32,
}

impl OrgOps {
    /// Total data-movement instructions.
    pub fn total(&self) -> u32 {
        self.loads + self.shuffles + self.stores
    }
}

/// Multiple-loads method: every one of the `2r+1` taps is a separate
/// (mostly unaligned) vector load, for each of the `vl` vectors in a set.
pub fn ops_multiple_loads(vl: usize, r: usize) -> OrgOps {
    OrgOps {
        loads: (vl * (2 * r + 1)) as u32,
        shuffles: 0,
        stores: vl as u32,
    }
}

/// Data-reorganization method: `vl (+2 halo)` aligned loads, then each of
/// the `2r` off-center taps of each vector is built with one
/// concat-shift shuffle (`vpalignr`-style = 2 ops on AVX2).
pub fn ops_data_reorg(vl: usize, r: usize) -> OrgOps {
    OrgOps {
        loads: (vl + 2) as u32,
        shuffles: (vl * 2 * r * 2) as u32,
        stores: vl as u32,
    }
}

/// DLT: aligned loads only, no shuffles in the steady state, but the
/// global transpose is amortized over the sweep (not counted here) and
/// boundary columns need fixups (not counted: interior model).
pub fn ops_dlt(vl: usize, r: usize) -> OrgOps {
    let _ = r;
    OrgOps {
        loads: (vl + 2) as u32,
        shuffles: 0,
        stores: vl as u32,
    }
}

/// Transpose layout (ours): `vl` aligned loads (+neighbour-block vectors
/// already resident via shifts reuse), `2r` assembled vectors at 2 ops
/// each (blend + permute).
pub fn ops_transpose_layout(vl: usize, r: usize) -> OrgOps {
    OrgOps {
        loads: vl as u32,
        shuffles: (2 * r * 2) as u32,
        stores: vl as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_avx2_is_8_instructions_2_stages() {
        assert_eq!(PAPER_AVX2.instructions(), 8);
        assert_eq!(PAPER_AVX2.stages, 2);
        // "launched continuously in 8 cycles"
        assert_eq!(PAPER_AVX2.issue_cycles(), 8);
    }

    #[test]
    fn paper_avx512_is_24_instructions_3_stages() {
        assert_eq!(PAPER_AVX512.instructions(), 24);
        assert_eq!(PAPER_AVX512.stages, 3);
    }

    #[test]
    fn paper_scheme_has_lowest_critical_path_among_avx2_schemes() {
        let paper = PAPER_AVX2.critical_path();
        assert!(paper <= SPRINGER_AVX2.critical_path());
        assert!(paper <= INLANE_4STAGE.critical_path());
        assert!(paper < LANE_SPLIT.critical_path());
    }

    #[test]
    fn transpose_layout_beats_reorg_and_multiple_loads_on_org_ops() {
        for r in 1..=2 {
            for vl in [4usize, 8] {
                let ours = ops_transpose_layout(vl, r).total();
                assert!(ours < ops_data_reorg(vl, r).total(), "vl={vl} r={r}");
                assert!(ours < ops_multiple_loads(vl, r).total(), "vl={vl} r={r}");
            }
        }
    }

    #[test]
    fn dlt_interior_is_cheapest_but_needs_global_transpose() {
        // The model shows *why* DLT wins block-free in L1 (no shuffles at
        // all) — the paper's Fig. 8 anomaly — while ours wins once the
        // transpose cost and locality loss bite.
        assert!(ops_dlt(4, 1).total() <= ops_transpose_layout(4, 1).total());
    }
}
