//! Lane-generic `f64` SIMD vector trait.
//!
//! Stencil kernels in `stencil-core` are written once against [`SimdF64`]
//! and monomorphized per backend. The trait deliberately exposes only the
//! operations the paper's schemes need: arithmetic (+ FMA), the lane
//! shuffles used to build *assembled vectors* (Fig. 2), and element access
//! for the scalar edges of a sweep.

/// A fixed-width vector of `f64` lanes.
///
/// # Safety contract of `load`/`store`
///
/// The raw-pointer loads/stores are `unsafe` with the usual validity
/// requirements; slice-based helpers assert length and are safe.
pub trait SimdF64: Copy + Clone + Send + Sync + core::fmt::Debug + 'static {
    /// Number of `f64` lanes.
    const LANES: usize;

    /// Vector with all lanes set to `x`.
    fn splat(x: f64) -> Self;

    /// All-zero vector.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Unaligned load of `LANES` elements.
    ///
    /// # Safety
    /// `ptr` must be valid for reads of `LANES * 8` bytes.
    unsafe fn load(ptr: *const f64) -> Self;

    /// Unaligned store of `LANES` elements.
    ///
    /// # Safety
    /// `ptr` must be valid for writes of `LANES * 8` bytes.
    unsafe fn store(self, ptr: *mut f64);

    /// Load from the front of a slice (asserts `s.len() >= LANES`).
    #[inline(always)]
    fn from_slice(s: &[f64]) -> Self {
        assert!(s.len() >= Self::LANES, "slice shorter than vector width");
        // SAFETY: length checked above.
        unsafe { Self::load(s.as_ptr()) }
    }

    /// Store to the front of a mutable slice (asserts length).
    #[inline(always)]
    fn write_to_slice(self, s: &mut [f64]) {
        assert!(s.len() >= Self::LANES, "slice shorter than vector width");
        // SAFETY: length checked above.
        unsafe { self.store(s.as_mut_ptr()) }
    }

    /// Lane-wise addition.
    fn add(self, o: Self) -> Self;
    /// Lane-wise subtraction.
    fn sub(self, o: Self) -> Self;
    /// Lane-wise multiplication.
    fn mul(self, o: Self) -> Self;
    /// Fused multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Lane-wise maximum.
    fn max(self, o: Self) -> Self;
    /// Lane-wise minimum.
    fn min(self, o: Self) -> Self;

    /// Lane-wise compare: 1.0 where `self >= o`, else 0.0. Used by
    /// nonlinear update rules (Game of Life) to stay branchless.
    fn ge01(self, o: Self) -> Self;

    /// Lane-wise equality as 0/1 doubles. Exact comparison — callers use
    /// it on small-integer-valued lanes (neighbour counts).
    #[inline(always)]
    fn eq01(self, o: Self) -> Self {
        self.ge01(o).mul(o.ge01(self))
    }

    /// Extract lane `i` (asserts `i < LANES`).
    fn extract(self, i: usize) -> f64;
    /// Return a copy with lane `i` replaced by `v`.
    fn insert(self, i: usize, v: f64) -> Self;

    /// Sum of all lanes (used only at sweep edges and in tests).
    #[inline(always)]
    fn horizontal_sum(self) -> f64 {
        let mut acc = 0.0;
        for i in 0..Self::LANES {
            acc += self.extract(i);
        }
        acc
    }

    /// `[a1, a2, .., a(N-1), b0]`: shift self left one lane, pulling the
    /// lowest lane of `next` into the top. This is the paper's *right
    /// dependent* assembly: blend + circular shift (Fig. 2).
    fn shift_in_right(self, next: Self) -> Self;

    /// `[p(N-1), a0, a1, .., a(N-2)]`: shift self right one lane, pulling
    /// the highest lane of `prev` into the bottom — the *left dependent*.
    fn shift_in_left(self, prev: Self) -> Self;

    /// Rotate lanes down: `[a1, .., a(N-1), a0]`.
    #[inline(always)]
    fn rotate_lanes_left(self) -> Self {
        self.shift_in_right(self)
    }

    /// Rotate lanes up: `[a(N-1), a0, .., a(N-2)]`.
    #[inline(always)]
    fn rotate_lanes_right(self) -> Self {
        self.shift_in_left(self)
    }

    /// In-register transpose of a `LANES x LANES` tile held in `set`
    /// (row-major: `set[r]` holds row `r`). Panics if `set.len() != LANES`.
    ///
    /// AVX2: the 2-stage `permute2f128`+`unpack` scheme of Fig. 3.
    /// AVX-512: the 3-stage scheme sketched in §2.3.
    fn transpose(set: &mut [Self]);

    /// Convert to a `Vec` of lane values (test/diagnostic helper).
    #[inline]
    fn to_vec(self) -> Vec<f64> {
        (0..Self::LANES).map(|i| self.extract(i)).collect()
    }
}

/// Scalar "1-lane vector": lets the generic kernels double as scalar
/// reference implementations, which the tests diff against.
impl SimdF64 for f64 {
    const LANES: usize = 1;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        x
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        *ptr
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        *ptr = self;
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        self * o
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        f64::max(self, o)
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        f64::min(self, o)
    }
    #[inline(always)]
    fn ge01(self, o: Self) -> Self {
        if self >= o {
            1.0
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn extract(self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self
    }

    #[inline(always)]
    fn insert(self, i: usize, v: f64) -> Self {
        assert_eq!(i, 0);
        v
    }

    #[inline(always)]
    fn shift_in_right(self, next: Self) -> Self {
        next
    }

    #[inline(always)]
    fn shift_in_left(self, prev: Self) -> Self {
        prev
    }

    #[inline(always)]
    fn transpose(set: &mut [Self]) {
        assert_eq!(set.len(), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_lane_behaves_like_f64() {
        let a = <f64 as SimdF64>::splat(2.0);
        let b = <f64 as SimdF64>::splat(3.0);
        assert_eq!(a.add(b), 5.0);
        assert_eq!(a.mul(b), 6.0);
        assert_eq!(a.mul_add(b, b), 9.0);
        assert_eq!(a.shift_in_right(b), 3.0);
        assert_eq!(a.shift_in_left(b), 3.0);
        assert_eq!(a.horizontal_sum(), 2.0);
    }

    #[test]
    fn scalar_slice_roundtrip() {
        let s = [7.5];
        let v = <f64 as SimdF64>::from_slice(&s);
        let mut out = [0.0];
        v.write_to_slice(&mut out);
        assert_eq!(out, s);
    }
}
