//! AVX-512F backend: `__m512d` (8 x f64).
//!
//! Compiled only when `avx512f` is statically enabled. The 8x8 transpose
//! is the paper's three-stage scheme (§2.3): one stage of in-lane
//! `vunpcklpd`/`vunpckhpd`, then two stages of 128-bit-block shuffles
//! (`vshuff64x2`) — 24 single-uop shuffle instructions total, versus 8*8
//! scalar moves. Assembled dependents use one `valignq` each.

#![allow(clippy::missing_safety_doc)]

use crate::vector::SimdF64;
use core::arch::x86_64::*;

/// 8-lane `f64` vector backed by `__m512d`.
#[derive(Copy, Clone, Debug)]
#[repr(transparent)]
pub struct F64x8(pub __m512d);

impl F64x8 {
    /// Construct from lane values (lane 0 first).
    #[inline(always)]
    pub fn new(lanes: [f64; 8]) -> Self {
        // SAFETY: avx512f statically enabled for this module.
        unsafe { Self(_mm512_loadu_pd(lanes.as_ptr())) }
    }

    /// Copy lanes out to an array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 8] {
        let mut out = [0.0; 8];
        // SAFETY: out has 8 elements.
        unsafe { _mm512_storeu_pd(out.as_mut_ptr(), self.0) };
        out
    }
}

impl SimdF64 for F64x8 {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        unsafe { Self(_mm512_set1_pd(x)) }
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        Self(_mm512_loadu_pd(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        _mm512_storeu_pd(ptr, self.0)
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        unsafe { Self(_mm512_add_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        unsafe { Self(_mm512_sub_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        unsafe { Self(_mm512_mul_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        unsafe { Self(_mm512_fmadd_pd(self.0, a.0, b.0)) }
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self(_mm512_max_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self(_mm512_min_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn ge01(self, o: Self) -> Self {
        unsafe {
            let mask = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(self.0, o.0);
            Self(_mm512_maskz_mov_pd(mask, _mm512_set1_pd(1.0)))
        }
    }

    #[inline(always)]
    fn extract(self, i: usize) -> f64 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn insert(self, i: usize, v: f64) -> Self {
        let mut a = self.to_array();
        a[i] = v;
        Self::new(a)
    }

    /// `[a1..a7, b0]` — a single `valignq` (concat-shift by one element).
    #[inline(always)]
    fn shift_in_right(self, next: Self) -> Self {
        unsafe {
            let a = _mm512_castpd_si512(self.0);
            let n = _mm512_castpd_si512(next.0);
            Self(_mm512_castsi512_pd(_mm512_alignr_epi64::<1>(n, a)))
        }
    }

    /// `[p7, a0..a6]` — a single `valignq` by seven elements.
    #[inline(always)]
    fn shift_in_left(self, prev: Self) -> Self {
        unsafe {
            let a = _mm512_castpd_si512(self.0);
            let p = _mm512_castpd_si512(prev.0);
            Self(_mm512_castsi512_pd(_mm512_alignr_epi64::<7>(a, p)))
        }
    }

    /// Three-stage 8x8 transpose: unpack, then two rounds of
    /// `vshuff64x2` 128-bit block shuffles (imm 0x88 / 0xDD).
    #[inline(always)]
    fn transpose(set: &mut [Self]) {
        assert_eq!(set.len(), 8, "transpose needs a full vector set");
        unsafe {
            let r: [__m512d; 8] = [
                set[0].0, set[1].0, set[2].0, set[3].0, set[4].0, set[5].0, set[6].0, set[7].0,
            ];
            // Stage 1: interleave adjacent rows within 128-bit lanes.
            let t0 = _mm512_unpacklo_pd(r[0], r[1]); // a0 b0 a2 b2 a4 b4 a6 b6
            let t1 = _mm512_unpackhi_pd(r[0], r[1]); // a1 b1 a3 b3 ...
            let t2 = _mm512_unpacklo_pd(r[2], r[3]);
            let t3 = _mm512_unpackhi_pd(r[2], r[3]);
            let t4 = _mm512_unpacklo_pd(r[4], r[5]);
            let t5 = _mm512_unpackhi_pd(r[4], r[5]);
            let t6 = _mm512_unpacklo_pd(r[6], r[7]);
            let t7 = _mm512_unpackhi_pd(r[6], r[7]);
            // Stage 2: gather even/odd 128-bit blocks across row pairs.
            let u0 = _mm512_shuffle_f64x2::<0x88>(t0, t2); // a0b0 a4b4 c0d0 c4d4
            let u1 = _mm512_shuffle_f64x2::<0x88>(t1, t3);
            let u2 = _mm512_shuffle_f64x2::<0xDD>(t0, t2); // a2b2 a6b6 c2d2 c6d6
            let u3 = _mm512_shuffle_f64x2::<0xDD>(t1, t3);
            let u4 = _mm512_shuffle_f64x2::<0x88>(t4, t6); // e0f0 e4f4 g0h0 g4h4
            let u5 = _mm512_shuffle_f64x2::<0x88>(t5, t7);
            let u6 = _mm512_shuffle_f64x2::<0xDD>(t4, t6);
            let u7 = _mm512_shuffle_f64x2::<0xDD>(t5, t7);
            // Stage 3: final block interleave.
            set[0] = Self(_mm512_shuffle_f64x2::<0x88>(u0, u4)); // a0 b0 c0 d0 e0 f0 g0 h0
            set[1] = Self(_mm512_shuffle_f64x2::<0x88>(u1, u5));
            set[2] = Self(_mm512_shuffle_f64x2::<0x88>(u2, u6));
            set[3] = Self(_mm512_shuffle_f64x2::<0x88>(u3, u7));
            set[4] = Self(_mm512_shuffle_f64x2::<0xDD>(u0, u4));
            set[5] = Self(_mm512_shuffle_f64x2::<0xDD>(u1, u5));
            set[6] = Self(_mm512_shuffle_f64x2::<0xDD>(u2, u6));
            set[7] = Self(_mm512_shuffle_f64x2::<0xDD>(u3, u7));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_8x8() {
        let mut set = [F64x8::splat(0.0); 8];
        for (r, row) in set.iter_mut().enumerate() {
            let mut lanes = [0.0; 8];
            for (c, l) in lanes.iter_mut().enumerate() {
                *l = (r * 8 + c) as f64;
            }
            *row = F64x8::new(lanes);
        }
        F64x8::transpose(&mut set);
        for (r, row) in set.iter().enumerate() {
            for c in 0..8 {
                assert_eq!(row.extract(c), (c * 8 + r) as f64, "({r},{c})");
            }
        }
    }

    #[test]
    fn shifts() {
        let a = F64x8::new([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F64x8::new([9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0]);
        assert_eq!(
            a.shift_in_right(b).to_array(),
            [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
        );
        assert_eq!(
            a.shift_in_left(b).to_array(),
            [16.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn fma() {
        let a = F64x8::splat(2.0);
        let b = F64x8::splat(3.0);
        let c = F64x8::splat(1.0);
        assert_eq!(a.mul_add(b, c).extract(0), 7.0);
    }
}
