//! Assembled-vector construction for the transpose layout (paper §2.2).
//!
//! In the transpose layout, the vector set of block `b` holds the block's
//! `vl x vl` elements column-major: vector `j` contains original elements
//! `b*vl*vl + j + k*vl` for lane `k`. A radius-`r` 1D stencil then needs,
//! per vector set, the `r` *left dependents* of its first vectors and the
//! `r` *right dependents* of its last vectors — each built from one vector
//! of the neighbouring block with a single blend + circular shift
//! (`shift_in_left` / `shift_in_right`).

use crate::vector::SimdF64;

/// Left dependent #k (k = 1..=r) of a vector set: the vector holding the
/// elements `k` positions to the left of vector `0`'s elements.
///
/// Needs the current set's vector `vl - k` and the previous block's vector
/// `vl - k`.
#[inline(always)]
pub fn left_dependent<V: SimdF64>(cur_set: &[V], prev_set: &[V], k: usize) -> V {
    debug_assert!(k >= 1 && k <= V::LANES);
    let j = V::LANES - k;
    cur_set[j].shift_in_left(prev_set[j])
}

/// Right dependent #k (k = 1..=r): the vector holding the elements `k`
/// positions to the right of vector `vl-1`'s elements.
///
/// Needs the current set's vector `k - 1` and the next block's vector
/// `k - 1`.
#[inline(always)]
pub fn right_dependent<V: SimdF64>(cur_set: &[V], next_set: &[V], k: usize) -> V {
    debug_assert!(k >= 1 && k <= V::LANES);
    let j = k - 1;
    cur_set[j].shift_in_right(next_set[j])
}

/// The vector holding elements at offset `off` (can be negative) from the
/// elements of vector `j` of the current set, given the neighbouring sets.
///
/// For `-(vl) <= off + j <= 2*vl - 1`. Interior offsets are free (another
/// vector of the same set); crossing offsets cost one shuffle.
#[inline(always)]
pub fn neighbor_vector<V: SimdF64>(cur: &[V], prev: &[V], next: &[V], j: usize, off: isize) -> V {
    let vl = V::LANES as isize;
    let pos = j as isize + off;
    if pos >= 0 && pos < vl {
        cur[pos as usize]
    } else if pos < 0 {
        // pos in [-vl, -1]: left dependent #(-pos)
        left_dependent(cur, prev, (-pos) as usize)
    } else {
        // pos in [vl, 2vl-1]: right dependent #(pos - vl + 1)
        right_dependent(cur, next, (pos - vl + 1) as usize)
    }
}

/// Number of shuffle (assembly) operations a radius-`r` stencil performs
/// per vector set in the transpose layout: `2r` (paper §2.2) — versus
/// `vl * 2r` single-element-shift shuffles for the data-reorganization
/// scheme and `2r` *redundant full loads per vector* for multiple-loads.
#[inline]
pub fn assembled_ops_per_set(r: usize) -> usize {
    2 * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::PF64x4;

    /// Build the vector sets of three consecutive blocks of a 1D sequence
    /// 0..48 in transpose layout.
    fn blocks() -> [[PF64x4; 4]; 3] {
        let mut out = [[PF64x4::zero(); 4]; 3];
        for (b, set) in out.iter_mut().enumerate() {
            for (j, v) in set.iter_mut().enumerate() {
                for k in 0..4 {
                    *v = v.insert(k, (b * 16 + j + k * 4) as f64);
                }
            }
        }
        out
    }

    #[test]
    fn left_dependent_is_shifted_column() {
        let [prev, cur, _] = blocks();
        // Vector 0 of `cur` holds original indices {16,20,24,28}; its left
        // dependent must hold {15,19,23,27}.
        let ld = left_dependent(&cur, &prev, 1);
        assert_eq!(ld.to_vec(), vec![15.0, 19.0, 23.0, 27.0]);
        // Left dependent #2 holds {14,18,22,26}.
        let ld2 = left_dependent(&cur, &prev, 2);
        assert_eq!(ld2.to_vec(), vec![14.0, 18.0, 22.0, 26.0]);
    }

    #[test]
    fn right_dependent_is_shifted_column() {
        let [_, cur, next] = blocks();
        // Vector 3 of `cur` holds {19,23,27,31}; right dependent #1 holds
        // {20,24,28,32}.
        let rd = right_dependent(&cur, &next, 1);
        assert_eq!(rd.to_vec(), vec![20.0, 24.0, 28.0, 32.0]);
        let rd2 = right_dependent(&cur, &next, 2);
        assert_eq!(rd2.to_vec(), vec![21.0, 25.0, 29.0, 33.0]);
    }

    #[test]
    fn neighbor_vector_all_offsets() {
        let [prev, cur, next] = blocks();
        // For every vector j and offset within +-4, the neighbor vector's
        // lanes must equal original_index + offset.
        for j in 0..4usize {
            for off in -4isize..=4 {
                let pos = j as isize + off;
                if !(-4..8).contains(&pos) {
                    continue;
                }
                let v = neighbor_vector(&cur, &prev, &next, j, off);
                for k in 0..4 {
                    let expect = (16 + j + k * 4) as isize + off;
                    assert_eq!(v.extract(k), expect as f64, "j={j} off={off} lane={k}");
                }
            }
        }
    }

    #[test]
    fn op_counts() {
        assert_eq!(assembled_ops_per_set(1), 2);
        assert_eq!(assembled_ops_per_set(2), 4);
    }
}
