//! Slice-level transpose helpers built on the in-register tile transpose.
//!
//! Two users:
//!
//! 1. The *local transpose layout* (paper §2.2): every aligned
//!    `vl*vl`-element sub-sequence of a 1D buffer is viewed as a `vl x vl`
//!    row-major matrix and transposed in place — performed once before and
//!    once after a sweep ([`transpose_blocks_in_place`]).
//! 2. The *DLT baseline* (global dimension-lifting) uses the same register
//!    tile as the inner kernel of a blocked out-of-place matrix transpose
//!    ([`transpose_rect`]).

use crate::vector::SimdF64;

/// Transpose one `vl x vl` tile held contiguously (row-major) at `buf`.
///
/// `buf.len()` must be exactly `V::LANES * V::LANES`.
#[inline]
pub fn transpose_tile_in_place<V: SimdF64>(buf: &mut [f64]) {
    let vl = V::LANES;
    assert_eq!(buf.len(), vl * vl, "tile must be vl*vl elements");
    // Small stack set: LANES is 1, 2, 4 or 8.
    let mut set = [V::zero(); 8];
    let set = &mut set[..vl];
    for (r, v) in set.iter_mut().enumerate() {
        *v = V::from_slice(&buf[r * vl..]);
    }
    V::transpose(set);
    for (r, v) in set.iter().enumerate() {
        v.write_to_slice(&mut buf[r * vl..]);
    }
}

/// Apply the local transpose layout to a whole buffer: each consecutive
/// `vl*vl` block is transposed in place. `buf.len()` must be a multiple of
/// `vl*vl`. The transform is an involution: applying it twice restores the
/// original layout.
pub fn transpose_blocks_in_place<V: SimdF64>(buf: &mut [f64]) {
    let tile = V::LANES * V::LANES;
    assert_eq!(
        buf.len() % tile,
        0,
        "buffer length {} not a multiple of vl*vl = {}",
        buf.len(),
        tile
    );
    for chunk in buf.chunks_exact_mut(tile) {
        transpose_tile_in_place::<V>(chunk);
    }
}

/// Out-of-place rectangular transpose: `dst[c*rows + r] = src[r*cols + c]`.
///
/// Blocked over `vl x vl` register tiles for the aligned interior, with a
/// scalar cleanup loop for ragged edges. This is the global transform the
/// DLT baseline performs before and after its sweeps.
pub fn transpose_rect<V: SimdF64>(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    let vl = V::LANES;
    let rb = rows - rows % vl;
    let cb = cols - cols % vl;
    let mut set = [V::zero(); 8];
    for r0 in (0..rb).step_by(vl) {
        for c0 in (0..cb).step_by(vl) {
            let set = &mut set[..vl];
            for (i, v) in set.iter_mut().enumerate() {
                *v = V::from_slice(&src[(r0 + i) * cols + c0..]);
            }
            V::transpose(set);
            for (i, v) in set.iter().enumerate() {
                v.write_to_slice(&mut dst[(c0 + i) * rows + r0..]);
            }
        }
        // ragged columns
        for c in cb..cols {
            for i in 0..vl {
                dst[c * rows + r0 + i] = src[(r0 + i) * cols + c];
            }
        }
    }
    // ragged rows
    for r in rb..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Scalar reference transpose for testing.
pub fn transpose_rect_scalar(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Index mapping of the local transpose layout: where element `i` of the
/// original buffer lives after [`transpose_blocks_in_place`] with `vl` lanes.
#[inline]
pub fn transpose_layout_index(i: usize, vl: usize) -> usize {
    let tile = vl * vl;
    let base = i / tile * tile;
    let off = i % tile;
    let (r, c) = (off / vl, off % vl);
    base + c * vl + r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::{PF64x4, PF64x8};

    #[test]
    fn tile_4x4() {
        let mut buf: Vec<f64> = (0..16).map(|x| x as f64).collect();
        transpose_tile_in_place::<PF64x4>(&mut buf);
        let expect: Vec<f64> = vec![
            0.0, 4.0, 8.0, 12.0, 1.0, 5.0, 9.0, 13.0, 2.0, 6.0, 10.0, 14.0, 3.0, 7.0, 11.0, 15.0,
        ];
        assert_eq!(buf, expect);
    }

    #[test]
    fn blocks_involution() {
        let orig: Vec<f64> = (0..160).map(|x| x as f64 * 0.5).collect();
        let mut buf = orig.clone();
        transpose_blocks_in_place::<PF64x4>(&mut buf);
        assert_ne!(buf, orig);
        transpose_blocks_in_place::<PF64x4>(&mut buf);
        assert_eq!(buf, orig);
    }

    #[test]
    fn blocks_match_index_map() {
        let n = 64;
        let orig: Vec<f64> = (0..n).map(|x| x as f64).collect();
        let mut buf = orig.clone();
        transpose_blocks_in_place::<PF64x8>(&mut buf);
        for i in 0..n {
            assert_eq!(buf[transpose_layout_index(i, 8)], orig[i]);
        }
    }

    #[test]
    fn rect_matches_scalar() {
        for (rows, cols) in [(8, 8), (12, 20), (7, 9), (16, 5), (1, 13)] {
            let src: Vec<f64> = (0..rows * cols).map(|x| x as f64).collect();
            let mut a = vec![0.0; rows * cols];
            let mut b = vec![0.0; rows * cols];
            transpose_rect::<PF64x4>(&src, &mut a, rows, cols);
            transpose_rect_scalar(&src, &mut b, rows, cols);
            assert_eq!(a, b, "rows={rows} cols={cols}");
        }
    }

    #[test]
    fn index_map_is_involution() {
        for vl in [2usize, 4, 8] {
            for i in 0..4 * vl * vl {
                assert_eq!(transpose_layout_index(transpose_layout_index(i, vl), vl), i);
            }
        }
    }
}
