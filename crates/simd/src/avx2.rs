//! AVX2 backend: `__m256d` (4 x f64).
//!
//! Compiled only when `avx2` is statically enabled (the workspace builds
//! with `target-cpu=native`), so every intrinsic here is statically
//! guaranteed to exist — no runtime dispatch inside the hot loops.
//!
//! The lane shuffles map 1:1 onto the instructions named in the paper:
//!
//! * `shift_in_left` / `shift_in_right` (assembled dependents, Fig. 2):
//!   one `vblendpd` + one `vpermpd` (blend, then circular lane shift).
//! * `transpose` (Fig. 3): stage 1 `vperm2f128` x4, stage 2
//!   `vunpcklpd`/`vunpckhpd` x4 — 8 single-uop instructions for a full
//!   4x4 `f64` tile.

#![allow(clippy::missing_safety_doc)]

use crate::vector::SimdF64;
use core::arch::x86_64::*;

/// 4-lane `f64` vector backed by `__m256d`.
#[derive(Copy, Clone, Debug)]
#[repr(transparent)]
pub struct F64x4(pub __m256d);

impl F64x4 {
    /// Construct from lane values (lane 0 first).
    #[inline(always)]
    pub fn new(lanes: [f64; 4]) -> Self {
        // SAFETY: avx2 statically enabled for this module.
        unsafe { Self(_mm256_loadu_pd(lanes.as_ptr())) }
    }

    /// Copy lanes out to an array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        let mut out = [0.0; 4];
        // SAFETY: out has 4 elements.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) };
        out
    }
}

impl SimdF64 for F64x4 {
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        unsafe { Self(_mm256_set1_pd(x)) }
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        Self(_mm256_loadu_pd(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        _mm256_storeu_pd(ptr, self.0)
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        unsafe { Self(_mm256_add_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        unsafe { Self(_mm256_sub_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        unsafe { Self(_mm256_mul_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        #[cfg(target_feature = "fma")]
        unsafe {
            Self(_mm256_fmadd_pd(self.0, a.0, b.0))
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self.mul(a).add(b)
        }
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self(_mm256_max_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self(_mm256_min_pd(self.0, o.0)) }
    }

    #[inline(always)]
    fn ge01(self, o: Self) -> Self {
        unsafe {
            let mask = _mm256_cmp_pd::<_CMP_GE_OQ>(self.0, o.0);
            Self(_mm256_and_pd(mask, _mm256_set1_pd(1.0)))
        }
    }

    #[inline(always)]
    fn extract(self, i: usize) -> f64 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn insert(self, i: usize, v: f64) -> Self {
        let mut a = self.to_array();
        a[i] = v;
        Self::new(a)
    }

    /// `[a1, a2, a3, b0]` — blend lane 3 of `next`'s rotation, then one
    /// `vpermpd` circular shift. Matches the paper's "blend instruction
    /// followed by a permute operation".
    #[inline(always)]
    fn shift_in_right(self, next: Self) -> Self {
        unsafe {
            // blended = [a0, a1, a2, b0] wrong lane order; instead rotate
            // then blend: rot(self) = [a1,a2,a3,a0]; take b0 into lane 3.
            let rot = _mm256_permute4x64_pd::<0b00_11_10_01>(self.0); // [a1,a2,a3,a0]
            let nrot = _mm256_permute4x64_pd::<0b00_11_10_01>(next.0); // [b1,b2,b3,b0]
            Self(_mm256_blend_pd::<0b1000>(rot, nrot)) // [a1,a2,a3,b0]
        }
    }

    /// `[p3, a0, a1, a2]` — the left-dependent assembly.
    #[inline(always)]
    fn shift_in_left(self, prev: Self) -> Self {
        unsafe {
            let rot = _mm256_permute4x64_pd::<0b10_01_00_11>(self.0); // [a3,a0,a1,a2]
            let prot = _mm256_permute4x64_pd::<0b10_01_00_11>(prev.0); // [p3,p0,p1,p2]
            Self(_mm256_blend_pd::<0b0001>(rot, prot)) // [p3,a0,a1,a2]
        }
    }

    /// Two-stage 8-instruction transpose (paper Fig. 3):
    /// stage 1: `vperm2f128` pairs vectors at distance 2;
    /// stage 2: `vunpcklpd`/`vunpckhpd` pairs adjacent vectors.
    #[inline(always)]
    fn transpose(set: &mut [Self]) {
        assert_eq!(set.len(), 4, "transpose needs a full vector set");
        unsafe {
            let (r0, r1, r2, r3) = (set[0].0, set[1].0, set[2].0, set[3].0);
            // Stage 1: exchange 128-bit halves between rows 0<->2, 1<->3.
            let t0 = _mm256_permute2f128_pd::<0x20>(r0, r2); // [a0 a1 | c0 c1]
            let t1 = _mm256_permute2f128_pd::<0x20>(r1, r3); // [b0 b1 | d0 d1]
            let t2 = _mm256_permute2f128_pd::<0x31>(r0, r2); // [a2 a3 | c2 c3]
            let t3 = _mm256_permute2f128_pd::<0x31>(r1, r3); // [b2 b3 | d2 d3]

            // Stage 2: interleave 64-bit lanes within halves.
            set[0] = Self(_mm256_unpacklo_pd(t0, t1)); // [a0 b0 c0 d0]
            set[1] = Self(_mm256_unpackhi_pd(t0, t1)); // [a1 b1 c1 d1]
            set[2] = Self(_mm256_unpacklo_pd(t2, t3)); // [a2 b2 c2 d2]
            set[3] = Self(_mm256_unpackhi_pd(t2, t3)); // [a3 b3 c3 d3]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::PF64x4;

    fn p(v: F64x4) -> PF64x4 {
        PF64x4::new(v.to_array())
    }

    #[test]
    fn matches_portable_arithmetic() {
        let a = F64x4::new([1.5, -2.0, 3.25, 4.0]);
        let b = F64x4::new([0.5, 8.0, -1.0, 2.0]);
        let pa = p(a);
        let pb = p(b);
        assert_eq!(p(a.add(b)), pa.add(pb));
        assert_eq!(p(a.sub(b)), pa.sub(pb));
        assert_eq!(p(a.mul(b)), pa.mul(pb));
        assert_eq!(p(a.mul_add(b, a)), pa.mul_add(pb, pa));
        assert_eq!(p(a.max(b)), pa.max(pb));
        assert_eq!(p(a.min(b)), pa.min(pb));
    }

    #[test]
    fn matches_portable_shifts() {
        let a = F64x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::new([5.0, 6.0, 7.0, 8.0]);
        assert_eq!(p(a.shift_in_right(b)), p(a).map_shift_r(p(b)));
        assert_eq!(p(a.shift_in_left(b)), p(a).map_shift_l(p(b)));
    }

    trait ShiftHelpers {
        fn map_shift_r(self, n: PF64x4) -> PF64x4;
        fn map_shift_l(self, n: PF64x4) -> PF64x4;
    }
    impl ShiftHelpers for PF64x4 {
        fn map_shift_r(self, n: PF64x4) -> PF64x4 {
            self.shift_in_right(n)
        }
        fn map_shift_l(self, n: PF64x4) -> PF64x4 {
            self.shift_in_left(n)
        }
    }

    #[test]
    fn transpose_matches_portable() {
        let mut a = [
            F64x4::new([1.0, 2.0, 3.0, 4.0]),
            F64x4::new([5.0, 6.0, 7.0, 8.0]),
            F64x4::new([9.0, 10.0, 11.0, 12.0]),
            F64x4::new([13.0, 14.0, 15.0, 16.0]),
        ];
        F64x4::transpose(&mut a);
        assert_eq!(a[0].to_array(), [1.0, 5.0, 9.0, 13.0]);
        assert_eq!(a[1].to_array(), [2.0, 6.0, 10.0, 14.0]);
        assert_eq!(a[2].to_array(), [3.0, 7.0, 11.0, 15.0]);
        assert_eq!(a[3].to_array(), [4.0, 8.0, 12.0, 16.0]);
    }
}
