//! The long-running job service: bounded submission queue, executor
//! workers over one shared pool, same-plan batching, policy-driven
//! domain sharding, graceful shutdown.
//!
//! ```
//! use stencil_serve::{JobDomain, JobSpec, ServeConfig, StencilService};
//! use stencil_core::kernels;
//! use stencil_grid::Grid1D;
//!
//! let service = StencilService::start(ServeConfig {
//!     threads: 2,
//!     workers: 1,
//!     ..ServeConfig::default()
//! });
//! let grid = Grid1D::from_fn(4096, |i| if i == 2048 { 1.0 } else { 0.0 });
//! let ticket = service
//!     .submit(JobSpec::new(kernels::heat1d(), JobDomain::D1(grid), 100))
//!     .unwrap();
//! let result = ticket.wait().unwrap();
//! let mass: f64 = match &result.output {
//!     JobDomain::D1(g) => g.as_slice().iter().sum(),
//!     _ => unreachable!(),
//! };
//! assert!((mass - 1.0).abs() < 1e-9);
//! let stats = service.shutdown();
//! assert_eq!(stats.jobs_completed, 1);
//! ```

use crate::adapt::{AdaptConfig, Decider, ProbeLane, SharedClock};
use crate::metrics::{ServeStats, StatsSnapshot};
use crate::queue::{Bounded, PushError};
use crate::registry::{PlanRegistry, PlanShape, WarmReport};
use crate::shard::{self, ShardPolicy};
use crate::Manifest;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use stencil_core::{Pattern, Plan, PlanError, Tuning};
use stencil_grid::{Grid1D, Grid2D, Grid3D};
use stencil_runtime::sync::{Condvar, Mutex};

/// A job's input (and its result's output) domain.
#[derive(Debug, Clone)]
pub enum JobDomain {
    /// 1D grid.
    D1(Grid1D),
    /// 2D grid.
    D2(Grid2D),
    /// 3D grid.
    D3(Grid3D),
}

impl JobDomain {
    /// Total grid points.
    pub fn points(&self) -> usize {
        match self {
            JobDomain::D1(g) => g.len(),
            JobDomain::D2(g) => g.ny() * g.nx(),
            JobDomain::D3(g) => g.nz() * g.ny() * g.nx(),
        }
    }

    /// The extents, outermost first.
    pub fn extents(&self) -> Vec<usize> {
        match self {
            JobDomain::D1(g) => vec![g.len()],
            JobDomain::D2(g) => vec![g.ny(), g.nx()],
            JobDomain::D3(g) => vec![g.nz(), g.ny(), g.nx()],
        }
    }
}

/// A unit of work: advance `domain` by `steps` applications of
/// `pattern`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The stencil to apply.
    pub pattern: Pattern,
    /// Input state.
    pub domain: JobDomain,
    /// Time steps to advance.
    pub steps: usize,
    /// Per-job tuning override (`None` = the service default).
    pub tuning: Option<Tuning>,
    /// Queue-wait deadline: a job still queued this long after
    /// submission is shed at dequeue with
    /// [`ServeError::DeadlineExceeded`] instead of burning pool time on
    /// an answer nobody is waiting for (`None` = no deadline).
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// Job with the service's default tuning mode.
    pub fn new(pattern: Pattern, domain: JobDomain, steps: usize) -> Self {
        Self {
            pattern,
            domain,
            steps,
            tuning: None,
            deadline: None,
        }
    }

    /// Set a queue-wait deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }
}

/// A completed job.
#[derive(Debug)]
pub struct JobResult {
    /// The advanced domain.
    pub output: JobDomain,
    /// Slabs the job was executed as (1 = unsharded).
    pub shards: usize,
    /// True when the job rode a multi-job batch.
    pub batched: bool,
    /// End-to-end latency, submission to completion.
    pub latency: Duration,
    /// Epoch of the plan generation that executed the job. Bumps when
    /// the retuning decider hot-swaps the job's registry entry — a job
    /// resolved before a swap finishes on (and reports) the old
    /// generation.
    pub epoch: u64,
    /// Where the latency went: queue wait, compute, blocked IO and
    /// (informationally) IO overlapped with compute. The first three
    /// sum to `latency` exactly.
    pub timeline: stencil_obs::Timeline,
}

/// Why a job was refused or failed.
#[derive(Debug)]
pub enum ServeError {
    /// `try_submit` on a full queue — the backpressure signal; retry
    /// later or use the blocking `submit`.
    Backpressure {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service is shutting down; no further jobs are accepted.
    ShuttingDown,
    /// Plan compilation or execution failed.
    Plan(PlanError),
    /// The executor dropped the job without completing it (worker
    /// panic) — should not happen; surfaced instead of hanging the
    /// waiter.
    WorkerLost,
    /// An out-of-core-routed job failed in the streaming executor or
    /// its file-backed store (IO, budget, crash detection).
    Ooc(stencil_ooc::OocError),
    /// The job's queue-wait deadline expired before a worker dequeued
    /// it; the executor shed it without running.
    DeadlineExceeded {
        /// The deadline the job carried, in milliseconds.
        deadline_ms: u64,
        /// How long the job had actually waited when it was shed.
        waited_ms: u64,
    },
    /// The job's registry key is quarantined: previous jobs on this
    /// key panicked repeatedly, so further submissions are refused with
    /// a typed error instead of killing every batch that touches it.
    Quarantined {
        /// The quarantined registry key.
        key: String,
        /// Consecutive panics observed on the key.
        panics: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Backpressure { capacity } => write!(
                f,
                "submission queue is full ({capacity} jobs): backpressure — retry or block"
            ),
            ServeError::ShuttingDown => write!(f, "the service is shutting down"),
            ServeError::Plan(e) => write!(f, "plan error: {e}"),
            ServeError::WorkerLost => write!(f, "the executor dropped this job"),
            ServeError::Ooc(e) => write!(f, "out-of-core execution failed: {e}"),
            ServeError::DeadlineExceeded {
                deadline_ms,
                waited_ms,
            } => write!(
                f,
                "deadline exceeded: job shed after waiting {waited_ms} ms \
                 (deadline {deadline_ms} ms)"
            ),
            ServeError::Quarantined { key, panics } => write!(
                f,
                "plan key {key:?} is quarantined after {panics} consecutive panics"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}

impl From<stencil_ooc::OocError> for ServeError {
    fn from(e: stencil_ooc::OocError) -> Self {
        ServeError::Ooc(e)
    }
}

/// When to route an oversized 3D job through the out-of-core streaming
/// executor instead of the resident (possibly sharded) path.
///
/// Sharding splits a job *across workers* but still holds the whole
/// domain (plus halos) in memory; the out-of-core path caps residency
/// at [`OocThreshold::budget_bytes`] by marching file-backed z-slab
/// windows — bit-identical to the resident run. Routing is per job:
/// only 3D jobs above [`OocThreshold::max_resident_points`] whose plan
/// is [`stencil_ooc::streamable`] take the streaming path; everything
/// else falls through to the usual resident executor.
#[derive(Debug, Clone)]
pub struct OocThreshold {
    /// 3D jobs above this many grid points stream through the store.
    pub max_resident_points: usize,
    /// Resident window budget handed to [`stencil_ooc::OocConfig`].
    pub budget_bytes: usize,
    /// Overlap IO with compute via the background prefetch thread.
    pub prefetch: bool,
    /// Steps per streaming pass (0 = deepest that fits the budget).
    pub steps_per_pass: usize,
}

impl Default for OocThreshold {
    fn default() -> Self {
        let d = stencil_ooc::OocConfig::default();
        Self {
            // 128 Mi points = 1 GiB of f64 payload before padding
            max_resident_points: 1 << 27,
            budget_bytes: d.budget_bytes,
            prefetch: d.prefetch,
            steps_per_pass: d.steps_per_pass,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool threads unsharded runs parallelize over.
    pub threads: usize,
    /// Executor worker threads draining the queue.
    pub workers: usize,
    /// Submission queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Most same-plan jobs drained per batch.
    pub batch_max: usize,
    /// Default tuning mode for plan compilation.
    pub tuning: Tuning,
    /// When and how much to shard large 2D/3D jobs.
    pub shard: ShardPolicy,
    /// Time source for latency telemetry (wall clock by default; tests
    /// and the CI retune scenario inject a
    /// [`VirtualClock`](crate::adapt::VirtualClock)).
    pub clock: SharedClock,
    /// Adaptive retuning knobs (disabled by default).
    pub adapt: AdaptConfig,
    /// Route oversized streamable 3D jobs through the out-of-core
    /// executor (`None` = always resident).
    pub ooc: Option<OocThreshold>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: stencil_runtime::available_parallelism(),
            workers: 2,
            queue_capacity: 64,
            batch_max: 8,
            tuning: Tuning::Static,
            shard: ShardPolicy::default(),
            clock: SharedClock::wall(),
            adapt: AdaptConfig::default(),
            ooc: None,
        }
    }
}

/// One-slot promise the waiter blocks on. `completed` records that a
/// result was *delivered* (even if already consumed by `try_take`), so
/// the executor's drop-completion can tell "never finished" apart from
/// "finished and collected".
struct TicketState {
    result: Option<Result<JobResult, ServeError>>,
    completed: bool,
}

struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketCell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(TicketState {
                result: None,
                completed: false,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, r: Result<JobResult, ServeError>) {
        let mut st = self.state.lock();
        st.result = Some(r);
        st.completed = true;
        drop(st);
        self.done.notify_all();
    }
}

/// The executor's side of a ticket. Completion-on-drop: if the job is
/// dropped without an explicit [`TicketHandle::complete`] — a worker
/// panic unwinding the batch, a queue discarded mid-drain — the waiter
/// is woken with [`ServeError::WorkerLost`] instead of parking forever
/// (a plain `Arc` drop would never notify the condvar). A ticket that
/// did complete is left alone even when `try_take` already consumed
/// the result — the `completed` flag, not slot emptiness, is the
/// authority.
struct TicketHandle(Arc<TicketCell>);

impl TicketHandle {
    fn complete(&self, r: Result<JobResult, ServeError>) {
        self.0.complete(r);
    }
}

impl Drop for TicketHandle {
    fn drop(&mut self) {
        let mut st = self.0.state.lock();
        if !st.completed {
            st.result = Some(Err(ServeError::WorkerLost));
            st.completed = true;
            drop(st);
            self.0.done.notify_all();
        }
    }
}

/// Handle to a submitted job; [`JobTicket::wait`] blocks until the
/// executor completes it.
pub struct JobTicket {
    cell: Arc<TicketCell>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("done", &self.cell.state.lock().completed)
            .finish()
    }
}

impl JobTicket {
    /// Block until the job completes. A job whose executor died
    /// resolves to [`ServeError::WorkerLost`] (the executor side
    /// completes on drop), so this never parks forever — including
    /// after a [`JobTicket::try_take`] already consumed the result
    /// (which returns `WorkerLost` here rather than blocking).
    pub fn wait(self) -> Result<JobResult, ServeError> {
        let mut st = self.cell.state.lock();
        loop {
            if let Some(r) = st.result.take() {
                return r;
            }
            if st.completed {
                // delivered but consumed by an earlier try_take
                return Err(ServeError::WorkerLost);
            }
            // belt and braces alongside TicketHandle's drop-complete:
            // if the executor's handle is somehow gone without filling
            // the slot, fail fast instead of waiting
            if Arc::strong_count(&self.cell) == 1 {
                return Err(ServeError::WorkerLost);
            }
            self.cell.done.wait(&mut st);
        }
    }

    /// The result if already available (non-blocking, consumes it).
    pub fn try_take(&self) -> Option<Result<JobResult, ServeError>> {
        self.cell.state.lock().result.take()
    }
}

struct Job {
    /// Service-unique job id — the span correlation tag all of this
    /// job's trace events carry.
    id: u64,
    key: String,
    plan: Arc<Plan>,
    /// Slabs this job will execute as (1 = unsharded), decided at
    /// submission so batching groups by identical execution shape.
    shards: usize,
    domain: JobDomain,
    steps: usize,
    ticket: TicketHandle,
    /// Queue-wait deadline carried from the spec.
    deadline: Option<Duration>,
    /// Submission time on the service clock (virtual in tests).
    submitted: Duration,
    /// Submission time on the obs clock (0 when tracing is disabled) —
    /// the queue-wait span's start, stamped on the submitting thread
    /// and closed on the executing one.
    enqueued_obs_us: u64,
}

struct Inner {
    cfg: ServeConfig,
    registry: Arc<PlanRegistry>,
    queue: Bounded<Job>,
    stats: Arc<ServeStats>,
    closing: AtomicBool,
    next_job_id: AtomicU64,
    /// Unix seconds when the service started (the `/healthz` uptime
    /// anchor).
    started_unix: u64,
}

/// The tuning-aware stencil job service (see the crate docs for the
/// architecture).
pub struct StencilService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Present when `cfg.adapt.enabled`: the retuning control loop,
    /// tickable by hand ([`StencilService::retune_tick`]) and, with a
    /// non-zero `adapt.interval`, driven by `adapt_thread`.
    decider: Option<Arc<Decider>>,
    adapt_thread: Option<std::thread::JoinHandle<()>>,
}

impl StencilService {
    /// Start a service: spawns the executor workers and the shared
    /// worker pool. No plans are compiled yet — call
    /// [`StencilService::warm`] with a manifest to pre-compile the
    /// expected patterns.
    pub fn start(cfg: ServeConfig) -> Self {
        let stats = Arc::new(ServeStats::new());
        let inner = Arc::new(Inner {
            registry: Arc::new(PlanRegistry::new(
                cfg.threads,
                cfg.shard,
                Arc::clone(&stats),
            )),
            queue: Bounded::new(cfg.queue_capacity),
            stats,
            closing: AtomicBool::new(false),
            next_job_id: AtomicU64::new(1),
            started_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("stencil-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn executor worker")
            })
            .collect();
        let decider = inner.cfg.adapt.enabled.then(|| {
            Arc::new(Decider::new(
                inner.cfg.adapt.clone(),
                Arc::clone(&inner.registry),
                Arc::clone(&inner.stats),
                Box::new(ProbeLane::new()),
            ))
        });
        // the background lane: low-duty decider ticks between sleeps,
        // joined on shutdown. A zero interval means manual ticks only —
        // what deterministic tests and the bench driver use.
        let adapt_thread = decider.as_ref().and_then(|d| {
            let interval = inner.cfg.adapt.interval;
            if interval.is_zero() {
                return None;
            }
            let decider = Arc::clone(d);
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("stencil-serve-retune".into())
                    .spawn(move || {
                        // sleep in short slices so shutdown joins
                        // promptly even under a long tick interval
                        let slice = Duration::from_millis(10).min(interval);
                        let mut slept = Duration::ZERO;
                        while !inner.closing.load(Ordering::Acquire) {
                            std::thread::sleep(slice);
                            slept += slice;
                            if slept >= interval {
                                slept = Duration::ZERO;
                                decider.tick();
                            }
                        }
                    })
                    .expect("failed to spawn retune decider"),
            )
        });
        Self {
            inner,
            workers,
            decider,
            adapt_thread,
        }
    }

    /// Run one retuning decider pass by hand; returns how many registry
    /// entries were hot-swapped (always 0 when `adapt.enabled` is
    /// off). With `adapt.interval == 0` this is the *only* way ticks
    /// run, which is what makes seeded scenarios reproducible.
    pub fn retune_tick(&self) -> usize {
        self.decider.as_ref().map(|d| d.tick()).unwrap_or(0)
    }

    /// The registry as a shared handle — lets an external retuning
    /// decider (e.g. a [`ScriptedLane`](crate::adapt::ScriptedLane)
    /// harness in tests) operate on the live service's plans.
    pub fn registry_handle(&self) -> Arc<PlanRegistry> {
        Arc::clone(&self.inner.registry)
    }

    /// Pre-compile every pattern a manifest declares (warm-at-startup;
    /// see [`PlanRegistry::warm`] for the cold-start semantics).
    pub fn warm(&self, manifest: &Manifest) -> WarmReport {
        self.inner.registry.warm(manifest)
    }

    /// The plan registry (for introspection; plans register through
    /// submission automatically).
    pub fn registry(&self) -> &PlanRegistry {
        &self.inner.registry
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner
            .stats
            .queue_depth
            .store(self.inner.queue.len() as u64, Ordering::Relaxed);
        self.inner.stats.snapshot()
    }

    /// The live stats surface itself — for front ends (the network
    /// layer) that update counters alongside the service rather than
    /// through it.
    pub fn stats_handle(&self) -> Arc<ServeStats> {
        Arc::clone(&self.inner.stats)
    }

    /// Current `(depth, capacity)` of the submission queue — the cheap
    /// backlog probe behind admission backoff hints.
    pub fn queue_backlog(&self) -> (usize, usize) {
        (self.inner.queue.len(), self.inner.queue.capacity())
    }

    /// Unix seconds when this service started (the `/healthz` uptime
    /// anchor).
    pub fn started_unix(&self) -> u64 {
        self.inner.started_unix
    }

    /// Submit a job, blocking while the queue is full (closed-loop
    /// backpressure). Plan resolution happens here, so an invalid
    /// pattern/configuration fails synchronously with a typed error.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, ServeError> {
        self.enqueue(spec, true)
    }

    /// Submit without blocking: a full queue returns
    /// [`ServeError::Backpressure`] immediately (load shedding).
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobTicket, ServeError> {
        self.enqueue(spec, false)
    }

    /// The execution decision for a spec: registry key, compiled plan
    /// and shard count. Large 2D/3D jobs route to the block-free
    /// registry shape (the only one the register pipelines shard
    /// bit-exactly); everything else gets the pooled tiled plan.
    fn resolve(&self, spec: &JobSpec) -> Result<(String, Arc<Plan>, usize), ServeError> {
        let inner = &self.inner;
        let extents = spec.domain.extents();
        if spec.pattern.dims() != extents.len() {
            return Err(ServeError::Plan(PlanError::DimensionMismatch {
                pattern_dims: spec.pattern.dims(),
                domain_dims: extents.len(),
            }));
        }
        let tuning = spec.tuning.unwrap_or(inner.cfg.tuning);
        let halo = spec.steps * spec.pattern.radius();
        let want_shards = if spec.pattern.dims() >= 2 {
            inner
                .cfg
                .shard
                .shards_for(spec.domain.points(), extents[0], halo)
        } else {
            1
        };
        let shape = if want_shards > 1 {
            PlanShape::BlockFree
        } else {
            PlanShape::Pooled
        };
        let (key, plan) = inner
            .registry
            .entry_for(&spec.pattern, Some(&extents), tuning, shape)?;
        let shards = if want_shards > 1 && shard::shardable(&plan) {
            want_shards
        } else {
            1
        };
        Ok((key, plan, shards))
    }

    /// The plan (and shard count) a spec would execute with — the same
    /// decision [`StencilService::submit`] makes, exposed for
    /// introspection and tests.
    pub fn plan_for(&self, spec: &JobSpec) -> Result<(Arc<Plan>, usize), ServeError> {
        let (_, plan, shards) = self.resolve(spec)?;
        Ok((plan, shards))
    }

    fn enqueue(&self, spec: JobSpec, block: bool) -> Result<JobTicket, ServeError> {
        let inner = &self.inner;
        if inner.closing.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let (key, plan, shards) = self.resolve(&spec)?;
        if let Some(panics) = inner.registry.quarantined(&key) {
            inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            inner.stats.jobs_quarantined.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Quarantined { key, panics });
        }
        let ticket = TicketCell::new();
        let job = Job {
            id: inner.next_job_id.fetch_add(1, Ordering::Relaxed),
            key,
            plan,
            shards,
            domain: spec.domain,
            steps: spec.steps,
            ticket: TicketHandle(Arc::clone(&ticket)),
            deadline: spec.deadline,
            submitted: inner.cfg.clock.now(),
            enqueued_obs_us: if stencil_obs::enabled() {
                stencil_obs::now_us()
            } else {
                0
            },
        };
        let pushed = if block {
            inner.queue.push(job)
        } else {
            inner.queue.try_push(job)
        };
        match pushed {
            Ok(()) => {
                inner.stats.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                inner
                    .stats
                    .queue_depth
                    .store(inner.queue.len() as u64, Ordering::Relaxed);
                Ok(JobTicket { cell: ticket })
            }
            Err(PushError::Full(_)) => {
                inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Backpressure {
                    capacity: inner.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Graceful shutdown: stop accepting jobs, drain the queue, join
    /// the workers, release the shared pool if nothing else pins it,
    /// and return the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.inner.closing.store(true, Ordering::Release);
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(t) = self.adapt_thread.take() {
            let _ = t.join();
        }
        let stats = self.inner.stats.snapshot();
        // the registry (and its plans, each pinning the shared pool)
        // lives inside `inner`: it must be dropped *before* the purge,
        // or the pool's worker threads survive as unreclaimable —
        // callers that cloned plan Arcs out keep the pool alive, which
        // is the documented contract
        drop(self);
        stencil_runtime::purge_shared();
        stats
    }
}

impl Drop for StencilService {
    fn drop(&mut self) {
        self.inner.closing.store(true, Ordering::Release);
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(t) = self.adapt_thread.take() {
            let _ = t.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(batch) = inner
        .queue
        .pop_batch(inner.cfg.batch_max, |a, b| a.key == b.key)
    {
        inner
            .stats
            .queue_depth
            .store(inner.queue.len() as u64, Ordering::Relaxed);
        inner.stats.record_batch(batch.len());
        let batched = batch.len() > 1;
        let _drain = stencil_obs::span(stencil_obs::SpanId::BatchDrain);
        for job in batch {
            // a panicking job (the pool re-raises worker-job panics on
            // this thread) must not kill the executor: the unwinding
            // drop of the job's TicketHandle resolves its waiter with
            // WorkerLost, and this worker lives on to serve the rest
            // of the queue
            let key = job.key.clone();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute(inner, job, batched);
            }));
            if outcome.is_err() {
                inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
                let panics = inner.registry.note_panic(&key);
                inner
                    .stats
                    .warn("a job panicked in the executor; its waiter received WorkerLost");
                if panics == crate::registry::QUARANTINE_PANICS {
                    inner.stats.warn(format!(
                        "plan key {key:?} quarantined after {panics} consecutive panics"
                    ));
                }
            } else {
                inner.registry.note_panic_free(&key);
            }
        }
    }
}

fn execute(inner: &Inner, job: Job, batched: bool) {
    // queue wait ends now, at dequeue: measured on the service clock
    // for the timeline, and recorded as a span from the obs-clock
    // stamp the submitting thread left on the job
    let dequeued = inner.cfg.clock.now();
    let waited = dequeued.saturating_sub(job.submitted);
    let queue_us = waited.as_micros() as u64;
    if job.enqueued_obs_us != 0 {
        stencil_obs::record_for_job(
            stencil_obs::SpanId::QueueWait,
            job.id,
            job.enqueued_obs_us,
            stencil_obs::now_us(),
        );
    }
    // deadline shedding happens here, at dequeue: a job whose queue
    // wait already blew its deadline is completed with a typed error
    // without spending a single pool cycle on it
    if let Some(deadline) = job.deadline {
        if waited > deadline {
            inner.stats.jobs_shed.fetch_add(1, Ordering::Relaxed);
            job.ticket.complete(Err(ServeError::DeadlineExceeded {
                deadline_ms: deadline.as_millis() as u64,
                waited_ms: waited.as_millis() as u64,
            }));
            return;
        }
    }
    let outcome = stencil_obs::with_job(job.id, || run_job(inner, &job));
    let latency = inner.cfg.clock.now().saturating_sub(job.submitted);
    let latency_us = latency.as_micros() as u64;
    let epoch = job.plan.epoch();
    let io = match &outcome {
        Ok((_, _, io)) => *io,
        Err(_) => ExecIo::default(),
    };
    // compute is the remainder, so queue + compute + io == latency
    // exactly (overlap is informational and deliberately outside the
    // sum — it is time IO ran *under* compute, not in addition to it)
    let timeline = stencil_obs::Timeline {
        queue_us,
        compute_us: latency_us
            .saturating_sub(queue_us)
            .saturating_sub(io.blocked_us),
        io_us: io.blocked_us,
        overlap_us: io.overlap_us,
    };
    inner.stats.latency.record(latency);
    // per-plan telemetry: the retuning decider's hot-key input. The
    // extents closure only runs when this key's first job creates the
    // entry.
    inner
        .stats
        .traffic
        .record(&job.key, latency, epoch, timeline, || job.domain.extents());
    match outcome {
        Ok((output, shards, _)) => {
            inner.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
            if shards > 1 {
                inner.stats.sharded_jobs.fetch_add(1, Ordering::Relaxed);
                inner
                    .stats
                    .shards_executed
                    .fetch_add(shards as u64, Ordering::Relaxed);
            }
            job.ticket.complete(Ok(JobResult {
                output,
                shards,
                batched,
                latency,
                epoch,
                timeline,
            }));
        }
        Err(e) => {
            inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            job.ticket.complete(Err(e));
        }
    }
}

/// Storage-time accounting of one executed job — zero for resident
/// jobs, the streaming report's split for out-of-core ones.
#[derive(Debug, Clone, Copy, Default)]
struct ExecIo {
    /// Microseconds the job sat blocked on storage.
    blocked_us: u64,
    /// Microseconds of IO hidden under compute (prefetch overlap).
    overlap_us: u64,
}

/// A collision-resistant stable path for an out-of-core job's backing
/// store, derived from the registry key, shape, step count and the
/// domain contents (FNV-1a over the raw bits). A resubmission of the
/// same job lands on the same path, which is what lets the streaming
/// executor recover and resume an earlier interrupted attempt.
fn ooc_store_path(key: &str, g: &Grid3D, steps: usize) -> std::path::PathBuf {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    eat(key.as_bytes());
    for v in [g.nz(), g.ny(), g.nx(), steps] {
        eat(&(v as u64).to_le_bytes());
    }
    for z in 0..g.nz() {
        for y in 0..g.ny() {
            for v in g.row(z, y) {
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    let mut p = std::env::temp_dir();
    p.push(format!("stencil-serve-ooc-{h:016x}.slab"));
    p
}

fn run_job(inner: &Inner, job: &Job) -> Result<(JobDomain, usize, ExecIo), ServeError> {
    let plan = &job.plan;
    let shards = job.shards;
    let resident = ExecIo::default();
    if stencil_faults::should_fire(stencil_faults::Failpoint::WorkerPanic) {
        panic!("injected failpoint: worker_panic");
    }
    match &job.domain {
        JobDomain::D1(g) => Ok((JobDomain::D1(plan.run_1d(g, job.steps)?), 1, resident)),
        JobDomain::D2(g) => {
            if shards > 1 {
                let lanes = inner.registry.lane_plans(&job.key, plan, shards)?;
                let out = shard::run_sharded_2d(&lanes, g, job.steps, shards)?;
                Ok((JobDomain::D2(out), shards, resident))
            } else {
                Ok((JobDomain::D2(plan.run_2d(g, job.steps)?), 1, resident))
            }
        }
        JobDomain::D3(g) => {
            // the out-of-core gate outranks sharding: a domain too big
            // to hold resident is too big to hold in sharded halves too
            if let Some(th) = &inner.cfg.ooc {
                if g.nz() * g.ny() * g.nx() > th.max_resident_points
                    && stencil_ooc::streamable(plan)
                {
                    let cfg = stencil_ooc::OocConfig {
                        budget_bytes: th.budget_bytes,
                        steps_per_pass: th.steps_per_pass,
                        prefetch: th.prefetch,
                    };
                    // content-keyed store path: a failed attempt leaves
                    // its store behind, and a resubmission of the same
                    // job recovers it and resumes from the committed
                    // round instead of starting over
                    let path = ooc_store_path(&job.key, g, job.steps);
                    let (out, report) =
                        stencil_ooc::run_streaming_grid_resumable(plan, g, job.steps, &cfg, &path)?;
                    inner.stats.ooc_jobs.fetch_add(1, Ordering::Relaxed);
                    inner.stats.record_ooc(&report.stats);
                    return Ok((
                        JobDomain::D3(out),
                        1,
                        ExecIo {
                            blocked_us: report.io_blocked_us,
                            overlap_us: report.io_overlap_us,
                        },
                    ));
                }
            }
            if shards > 1 {
                let lanes = inner.registry.lane_plans(&job.key, plan, shards)?;
                let out = shard::run_sharded_3d(&lanes, g, job.steps, shards)?;
                Ok((JobDomain::D3(out), shards, resident))
            } else {
                Ok((JobDomain::D3(plan.run_3d(g, job.steps)?), 1, resident))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            threads: 2,
            workers: 2,
            queue_capacity: 8,
            batch_max: 4,
            tuning: Tuning::Static,
            shard: ShardPolicy {
                min_points: 1 << 30, // effectively off unless a test opts in
                ..ShardPolicy::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_jobs_of_every_dimensionality() {
        let svc = StencilService::start(small_cfg());
        let t1 = svc
            .submit(JobSpec::new(
                kernels::heat1d(),
                JobDomain::D1(Grid1D::from_fn(512, |i| (i % 7) as f64)),
                8,
            ))
            .unwrap();
        let t2 = svc
            .submit(JobSpec::new(
                kernels::heat2d(),
                JobDomain::D2(Grid2D::from_fn(48, 40, |y, x| ((y + x) % 5) as f64)),
                4,
            ))
            .unwrap();
        let t3 = svc
            .submit(JobSpec::new(
                kernels::heat3d(),
                JobDomain::D3(Grid3D::from_fn(10, 12, 14, |z, y, x| {
                    ((z + y + x) % 3) as f64
                })),
                2,
            ))
            .unwrap();
        for t in [t1, t2, t3] {
            let r = t.wait().unwrap();
            assert_eq!(r.shards, 1);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.jobs_completed, 3);
        assert_eq!(stats.jobs_failed, 0);
        assert!(stats.p99_us > 0);
    }

    #[test]
    fn results_match_a_direct_plan_run() {
        let svc = StencilService::start(small_cfg());
        let g = Grid2D::from_fn(40, 36, |y, x| ((y * 3 + x) % 11) as f64);
        let ticket = svc
            .submit(JobSpec::new(
                kernels::box2d9p(),
                JobDomain::D2(g.clone()),
                5,
            ))
            .unwrap();
        let served = match ticket.wait().unwrap().output {
            JobDomain::D2(out) => out,
            _ => panic!("wrong dimensionality"),
        };
        // the service's plan for this spec is the reference
        let (plan, shards) = svc
            .plan_for(&JobSpec::new(
                kernels::box2d9p(),
                JobDomain::D2(g.clone()),
                5,
            ))
            .unwrap();
        assert_eq!(shards, 1);
        let want = plan.run_2d(&g, 5).unwrap();
        assert_eq!(want.to_dense(), served.to_dense());
        svc.shutdown();
    }

    #[test]
    fn dimension_mismatch_is_synchronous() {
        let svc = StencilService::start(small_cfg());
        let err = svc
            .submit(JobSpec::new(
                kernels::heat2d(),
                JobDomain::D1(Grid1D::zeros(64)),
                1,
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Plan(PlanError::DimensionMismatch { .. })
        ));
        let stats = svc.shutdown();
        assert_eq!(stats.jobs_submitted, 0);
    }

    #[test]
    fn sharding_kicks_in_for_large_jobs_and_matches_unsharded() {
        let mut cfg = small_cfg();
        cfg.shard = ShardPolicy {
            min_points: 1,
            max_shards: 3,
            min_slab: 4,
        };
        let svc = StencilService::start(cfg);
        let g = Grid2D::from_fn(90, 32, |y, x| ((y * 7 + x * 3) % 13) as f64);
        let steps = 3;
        let ticket = svc
            .submit(JobSpec::new(
                kernels::heat2d(),
                JobDomain::D2(g.clone()),
                steps,
            ))
            .unwrap();
        let r = ticket.wait().unwrap();
        assert!(r.shards > 1, "expected sharding, got {} shard(s)", r.shards);
        let served = match r.output {
            JobDomain::D2(out) => out,
            _ => panic!("wrong dimensionality"),
        };
        let (plan, shards) = svc
            .plan_for(&JobSpec::new(
                kernels::heat2d(),
                JobDomain::D2(g.clone()),
                steps,
            ))
            .unwrap();
        assert!(shards > 1);
        let want = plan.run_2d(&g, steps).unwrap();
        let wb: Vec<u64> = want.to_dense().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u64> = served.to_dense().iter().map(|v| v.to_bits()).collect();
        assert_eq!(wb, gb, "sharded result must be bit-identical");
        let stats = svc.shutdown();
        assert_eq!(stats.sharded_jobs, 1);
        assert!(stats.shards_executed >= 2);
    }

    #[test]
    fn try_submit_sheds_load_when_full() {
        // one worker, tiny queue, slow-ish jobs: the queue must fill
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..small_cfg()
        };
        let svc = StencilService::start(cfg);
        let spec = || {
            JobSpec::new(
                kernels::heat2d(),
                JobDomain::D2(Grid2D::from_fn(96, 96, |y, x| ((y + x) % 9) as f64)),
                200,
            )
        };
        let mut tickets = Vec::new();
        let mut saw_backpressure = false;
        for _ in 0..32 {
            match svc.try_submit(spec()) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Backpressure { capacity }) => {
                    assert_eq!(capacity, 2);
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_backpressure, "a 2-slot queue must reject eventually");
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = svc.shutdown();
        assert!(stats.jobs_rejected >= 1);
        assert_eq!(stats.jobs_failed, 0);
    }

    #[test]
    fn same_plan_jobs_batch() {
        // one worker and a stream of identical-plan jobs: at least one
        // multi-job batch must form while the worker is busy
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 64,
            batch_max: 8,
            ..small_cfg()
        };
        let svc = StencilService::start(cfg);
        let tickets: Vec<_> = (0..24)
            .map(|i| {
                svc.submit(JobSpec::new(
                    kernels::heat1d(),
                    JobDomain::D1(Grid1D::from_fn(8192, |j| ((i + j) % 13) as f64)),
                    64,
                ))
                .unwrap()
            })
            .collect();
        let mut any_batched = false;
        for t in tickets {
            any_batched |= t.wait().unwrap().batched;
        }
        let stats = svc.shutdown();
        assert_eq!(stats.jobs_completed, 24);
        assert!(
            any_batched && stats.batched_jobs > 0 && stats.max_batch > 1,
            "expected batching: {stats:?}"
        );
    }

    #[test]
    fn dropped_executor_handle_fails_the_waiter_instead_of_hanging() {
        // simulates a worker panic unwinding a job: the executor-side
        // handle is dropped without complete(); the parked waiter must
        // be woken with WorkerLost, not left blocked forever
        let cell = TicketCell::new();
        let ticket = JobTicket {
            cell: Arc::clone(&cell),
        };
        let handle = TicketHandle(cell);
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(30));
        drop(handle);
        match waiter.join().unwrap() {
            Err(ServeError::WorkerLost) => {}
            other => panic!("expected WorkerLost, got {other:?}"),
        }
    }

    #[test]
    fn oversized_jobs_stream_out_of_core_and_match_the_resident_run() {
        // the ooc gate outranks sharding: even with an eager shard
        // policy, a 3D job above the threshold goes through the
        // file-backed streaming executor — bit-exactly
        let mut cfg = small_cfg();
        cfg.shard = ShardPolicy {
            min_points: 1,
            max_shards: 2,
            min_slab: 4,
        };
        cfg.ooc = Some(OocThreshold {
            max_resident_points: 8192, // the big job is 16384 points
            // a budget of ~32 window planes forces several windows
            budget_bytes: 32 * Grid3D::zeros(1, 16, 16).stride_z() * 8 * 5,
            ..OocThreshold::default()
        });
        let svc = StencilService::start(cfg);
        let big = Grid3D::from_fn(64, 16, 16, |z, y, x| ((z * 5 + y * 3 + x) % 17) as f64);
        let small = Grid3D::from_fn(8, 12, 12, |z, y, x| ((z + y + x) % 3) as f64);
        let spec = |g: &Grid3D| JobSpec::new(kernels::heat3d(), JobDomain::D3(g.clone()), 4);
        let t_big = svc.submit(spec(&big)).unwrap();
        let t_small = svc.submit(spec(&small)).unwrap();
        let r = t_big.wait().unwrap();
        assert_eq!(r.shards, 1, "ooc-routed jobs report a single shard");
        let served = match r.output {
            JobDomain::D3(out) => out,
            _ => panic!("wrong dimensionality"),
        };
        let (plan, _) = svc.plan_for(&spec(&big)).unwrap();
        let want = plan.run_3d(&big, 4).unwrap();
        assert_eq!(want.to_dense(), served.to_dense());
        t_small.wait().unwrap();
        let stats = svc.shutdown();
        // only the oversized job streamed; the small one stayed resident
        assert_eq!(stats.ooc_jobs, 1, "{stats:?}");
        assert_eq!(stats.jobs_failed, 0);
    }

    #[test]
    fn job_timelines_account_for_the_full_latency() {
        // the timeline decomposition is exact by construction — queue +
        // compute + blocked IO == end-to-end latency — and an
        // ooc-routed job must actually populate the IO components
        let mut cfg = small_cfg();
        cfg.shard = ShardPolicy {
            min_points: 1,
            max_shards: 2,
            min_slab: 4,
        };
        cfg.ooc = Some(OocThreshold {
            max_resident_points: 8192, // the job is 16384 points
            budget_bytes: 32 * Grid3D::zeros(1, 16, 16).stride_z() * 8 * 5,
            ..OocThreshold::default()
        });
        let svc = StencilService::start(cfg);
        let big = Grid3D::from_fn(64, 16, 16, |z, y, x| ((z * 5 + y * 3 + x) % 17) as f64);
        let r = svc
            .submit(JobSpec::new(kernels::heat3d(), JobDomain::D3(big), 4))
            .unwrap()
            .wait()
            .unwrap();
        let latency_us = r.latency.as_micros() as u64;
        let total = r.timeline.total_us();
        // ±5% (plus 1 µs of truncation headroom) — in practice exact
        assert!(
            total.abs_diff(latency_us) <= latency_us / 20 + 1,
            "timeline {:?} does not account for latency {latency_us} µs",
            r.timeline
        );
        // streaming through the file store always pays some blocked IO
        // (the spill into the store and the gather back are never free)
        assert!(r.timeline.io_us > 0, "{:?}", r.timeline);
        let stats = svc.shutdown();
        assert_eq!(stats.ooc_jobs, 1);
        assert!(stats.ooc_bytes_read > 0 && stats.ooc_bytes_written > 0);
        // the per-plan aggregate carries the same breakdown
        let (_, row) = stats
            .plans
            .iter()
            .find(|(_, t)| t.samples == 1)
            .expect("the job's plan key has traffic");
        assert_eq!(row.queue_us, r.timeline.queue_us);
        assert_eq!(row.compute_us, r.timeline.compute_us);
        assert_eq!(row.io_us, r.timeline.io_us);
        assert_eq!(row.overlap_us, r.timeline.overlap_us);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let svc = StencilService::start(small_cfg());
        let ticket = svc
            .submit(JobSpec::new(
                kernels::heat1d(),
                JobDomain::D1(Grid1D::from_fn(256, |i| i as f64)),
                4,
            ))
            .unwrap();
        let stats = svc.shutdown();
        // the queued job was served before the workers exited
        assert_eq!(stats.jobs_completed, 1);
        ticket.wait().unwrap();
    }
}
