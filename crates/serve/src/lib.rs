//! # stencil-serve
//!
//! A tuning-aware stencil job service: the compile-once/run-many
//! [`Plan`](stencil_core::Plan) discipline of the core library,
//! operated as a long-running server under sustained concurrent load.
//! The paper's kernels win by removing redundancy *inside* a sweep;
//! sustained serving throughput is won by removing redundancy *around*
//! it — plan reuse, pool amortization, batching and data placement —
//! which is this crate:
//!
//! * [`registry`] — a [`PlanRegistry`]: concurrent map from (pattern
//!   signature × domain shape class × tuning mode) to compiled plans,
//!   all sharing one worker pool. Serving-path lookups never compile.
//! * [`manifest`] — the warm-start [`Manifest`]: patterns a deployment
//!   expects, compiled at startup. Under `Tuning::CacheOnly` a warmed
//!   host reaches serving state with **zero probe runs**; cold or
//!   foreign-ISA tune caches degrade to the static cost model with a
//!   one-line operator warning instead of a silent re-probe.
//! * [`queue`] — a bounded submission queue: blocking backpressure for
//!   closed-loop clients, immediate rejection for load shedding, and
//!   same-plan batch draining so consecutive runs keep one folded
//!   kernel hot.
//! * [`shard`] — halo-correct domain sharding: large 2D/3D jobs split
//!   into sub-domain slabs along the outermost axis, executed in
//!   parallel, stitched back **bit-identically** to the unsharded run.
//! * [`metrics`] — the stats surface: jobs served, p50/p99 latency,
//!   queue depth, registry hit ratio, shard/batch counts, tuner probe
//!   counter and operator warnings, exported through the project's
//!   hand-rolled JSON writer.
//! * [`service`] — [`StencilService`]: executor workers tying the
//!   pieces together, with graceful shutdown that reclaims the shared
//!   pool.
//! * [`adapt`] — online workload-adaptive retuning: per-plan
//!   production-traffic telemetry (injectable clock, per-key latency
//!   histograms), a budgeted background challenger lane re-running the
//!   `stencil-tune` hill-climb on hot keys, and margin-gated registry
//!   hot-swaps whose verdicts persist to the per-host tune cache.
//!   In-flight jobs finish on their old plan generation bit-exactly.
//! * [`net`] — the network front end: a length-prefixed TCP protocol
//!   over the service (hand-rolled framing on `std::net`), per-tenant
//!   admission quotas, streamed progress for multi-round jobs, and a
//!   `/healthz` + `/metrics` HTTP scrape surface on the same port.
//!
//! ## Quickstart
//!
//! ```
//! use stencil_serve::{JobDomain, JobSpec, Manifest, ServeConfig, StencilService};
//! use stencil_core::{kernels, Tuning};
//! use stencil_grid::Grid2D;
//!
//! // Declare the expected traffic, start, warm.
//! let mut manifest = Manifest::new(Tuning::Static);
//! manifest.push_kernel("heat2d", Some(&[256, 256]));
//! let service = StencilService::start(ServeConfig {
//!     threads: 2,
//!     workers: 1,
//!     ..ServeConfig::default()
//! });
//! let report = service.warm(&manifest);
//! assert_eq!(report.loaded, 1);
//!
//! // Serve.
//! let grid = Grid2D::from_fn(256, 256, |y, x| ((y + x) % 7) as f64);
//! let ticket = service
//!     .submit(JobSpec::new(kernels::heat2d(), JobDomain::D2(grid), 10))
//!     .unwrap();
//! let result = ticket.wait().unwrap();
//! assert!(matches!(result.output, JobDomain::D2(_)));
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.jobs_completed, 1);
//! assert!(stats.plan_hits >= 1); // the submit hit the warmed plan
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adapt;
pub mod manifest;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod registry;
pub mod service;
pub mod shard;

pub use adapt::{
    AdaptConfig, ChallengeVerdict, ChallengerLane, Decider, PlanChoice, ProbeLane, ScriptedLane,
    SharedClock, VirtualClock,
};
pub use manifest::{Manifest, ManifestEntry};
pub use metrics::{LatencyHistogram, PlanTelemetry, ServeStats, StatsSnapshot, TenantCounters};
pub use net::{NetClient, NetConfig, NetError, NetServer, SubmitHeader};
pub use registry::{PlanRegistry, WarmReport};
pub use service::{
    JobDomain, JobResult, JobSpec, JobTicket, OocThreshold, ServeConfig, ServeError, StencilService,
};
pub use shard::ShardPolicy;
pub use stencil_obs::Timeline;
