//! The service's stats surface: lock-free counters, a log-bucketed
//! latency histogram, and a JSON export through the same hand-rolled
//! writer the tuning cache and the benchmark dumps use
//! ([`stencil_tune::json`]), so one parser covers every artifact the
//! project emits.
//!
//! Everything on the hot path is an atomic increment; the only lock is
//! around the (rare, capped) operator warning list. A [`StatsSnapshot`]
//! is a plain-data copy taken at a point in time — cheap enough to poll
//! from a metrics scraper loop.

use crate::adapt::telemetry::TrafficMap;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use stencil_runtime::sync::Mutex;
use stencil_tune::json::Value;

/// Number of log2 latency buckets (bucket `i` counts samples with
/// `floor(log2(us)) == i`; 63 covers every representable duration).
const BUCKETS: usize = 64;

/// Most operator warnings retained before older ones are dropped — the
/// list is a diagnostic surface, not a log sink.
const MAX_WARNINGS: usize = 64;

/// Log2-bucketed latency histogram over microseconds.
///
/// Quantiles are read as the upper bound of the bucket the rank falls
/// in — at most 2x off, which is the right fidelity for a p99 gauge
/// that must cost one atomic add per sample.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds: upper bound of
    /// the bucket holding that rank, 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        // rank against the buckets actually scanned, not the separate
        // `count` counter: under concurrent record()s (all Relaxed) the
        // counter can run ahead of a bucket increment, and a rank no
        // bucket covers would return a nonsense sentinel
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        unreachable!("rank <= total, so some scanned bucket covers it")
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Sum of all recorded samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the per-bucket counts (bucket `i` holds
    /// samples with `floor(log2(us)) == i`, i.e. upper bound
    /// `2^(i+1) - 1` µs) — the Prometheus `_bucket` series source.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Per-tenant admission counters, maintained by the network front end
/// and exported inside the [`StatsSnapshot`] JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Jobs this tenant got accepted into the queue.
    pub submitted: u64,
    /// Submissions refused (quota or queue backpressure).
    pub rejected: u64,
    /// Jobs completed for this tenant.
    pub completed: u64,
}

/// Live counters of a running service. Shared (`Arc`) between the
/// submission side, the executor workers, and the registry.
#[derive(Default)]
pub struct ServeStats {
    /// Jobs accepted into the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs refused by backpressure (`try_submit` on a full queue).
    pub jobs_rejected: AtomicU64,
    /// Jobs completed successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed at execution.
    pub jobs_failed: AtomicU64,
    /// Jobs shed at dequeue because their queue-wait deadline had
    /// already passed (counted separately from `jobs_failed`: the job
    /// never ran).
    pub jobs_shed: AtomicU64,
    /// Submissions rejected because their registry key is quarantined
    /// after repeated worker panics.
    pub jobs_quarantined: AtomicU64,
    /// Current queue depth gauge.
    pub queue_depth: AtomicU64,
    /// Registry lookups resolved by an already-compiled plan.
    pub plan_hits: AtomicU64,
    /// Registry lookups that had to compile.
    pub plan_misses: AtomicU64,
    /// Plans compiled during manifest warm-up.
    pub warm_loaded: AtomicU64,
    /// Warm-up or submit compiles that fell back from a measured
    /// tuning mode to the static cost model (cold tune cache / no
    /// tuner) — each one also pushes a warning line.
    pub cold_fallbacks: AtomicU64,
    /// Cold keys later upgraded to their real (measured) plan after the
    /// tune cache was re-warmed while the service was running.
    pub cold_recoveries: AtomicU64,
    /// Same-plan batches drained from the queue (a batch of one still
    /// counts).
    pub batches: AtomicU64,
    /// Jobs that rode in a batch of two or more.
    pub batched_jobs: AtomicU64,
    /// Largest batch drained so far.
    pub max_batch: AtomicU64,
    /// Jobs executed through the domain sharder.
    pub sharded_jobs: AtomicU64,
    /// Sub-domain slabs executed in total.
    pub shards_executed: AtomicU64,
    /// Jobs routed through the out-of-core streaming executor
    /// (oversized 3D domains above the configured threshold).
    pub ooc_jobs: AtomicU64,
    /// Payload bytes OOC jobs read from their slab stores.
    pub ooc_bytes_read: AtomicU64,
    /// Payload bytes OOC jobs wrote to their slab stores.
    pub ooc_bytes_written: AtomicU64,
    /// OOC window loads already resident when the sweep asked.
    pub ooc_prefetch_hits: AtomicU64,
    /// OOC window loads the sweep had to wait for.
    pub ooc_prefetch_misses: AtomicU64,
    /// Microseconds OOC sweeps spent stalled on IO.
    pub ooc_stall_us: AtomicU64,
    /// Transient IO faults OOC slab stores absorbed by retrying with
    /// backoff (each increment is one re-attempt that succeeded or fed
    /// the next backoff step).
    pub ooc_io_retries: AtomicU64,
    /// End-to-end job latency (submit to completion, queue wait
    /// included).
    pub latency: LatencyHistogram,
    /// Per-registry-key latency telemetry (the adaptive retuning
    /// decider's hot-key input), recorded alongside `latency` for
    /// every executed job.
    pub traffic: TrafficMap,
    /// Registry entries hot-swapped by the retuning decider.
    pub swaps: AtomicU64,
    /// Challenger sessions the decider started.
    pub challenges: AtomicU64,
    /// Challenges that did not end in a swap (lost, margin-short, no
    /// verdict, or the winner failed to compile).
    pub challenges_rejected: AtomicU64,
    warnings: Mutex<Vec<String>>,
    /// Per-tenant admission counters (network front end). Rarely
    /// contended: one writer (the poll loop) plus snapshot readers.
    tenants: Mutex<BTreeMap<String, TenantCounters>>,
}

impl std::fmt::Debug for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a one-line operator warning (cold starts, corrupt tune
    /// cache, foreign-ISA invalidation, ...). Capped: past the
    /// retention limit the oldest lines are dropped.
    pub fn warn(&self, line: impl Into<String>) {
        let mut w = self.warnings.lock();
        if w.len() >= MAX_WARNINGS {
            w.remove(0);
        }
        w.push(line.into());
    }

    /// Update `tenant`'s admission counters in place (creating the row
    /// on first touch).
    pub fn tenant_update(&self, tenant: &str, f: impl FnOnce(&mut TenantCounters)) {
        let mut map = self.tenants.lock();
        f(map.entry(tenant.to_string()).or_default());
    }

    /// Fold one OOC run's store counters into the service-wide OOC IO
    /// surface (each serve-routed OOC job streams through its own
    /// transient store, so the per-run counters accumulate here).
    pub fn record_ooc(&self, s: &stencil_ooc::StoreStats) {
        let ld = Ordering::Relaxed;
        self.ooc_bytes_read.fetch_add(s.bytes_read, ld);
        self.ooc_bytes_written.fetch_add(s.bytes_written, ld);
        self.ooc_prefetch_hits.fetch_add(s.prefetch_hit, ld);
        self.ooc_prefetch_misses.fetch_add(s.prefetch_miss, ld);
        self.ooc_stall_us.fetch_add(s.stall_us, ld);
        self.ooc_io_retries.fetch_add(s.io_retries, ld);
    }

    /// Record a drained batch of `n` same-plan jobs.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if n > 1 {
            self.batched_jobs.fetch_add(n as u64, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter (plus the installed tuner's
    /// probe counter — a read-only gauge; tuner *warnings* are drained
    /// onto the stats surface by the registry's warm-up, the one place
    /// a bad cache first becomes visible, so concurrent services never
    /// steal each other's lines).
    pub fn snapshot(&self) -> StatsSnapshot {
        let warnings = self.warnings.lock().clone();
        let tenants = self.tenants.lock().clone();
        let plans = self
            .traffic
            .entries()
            .into_iter()
            .map(|(key, t)| {
                let tl = t.timeline_totals();
                (
                    key,
                    PlanTelemetry {
                        samples: t.latency.count(),
                        p50_us: t.latency.quantile_us(0.50),
                        p99_us: t.latency.quantile_us(0.99),
                        epoch: t.epoch(),
                        queue_us: tl.queue_us,
                        compute_us: tl.compute_us,
                        io_us: tl.io_us,
                        overlap_us: tl.overlap_us,
                    },
                )
            })
            .collect();
        let ld = Ordering::Relaxed;
        StatsSnapshot {
            jobs_submitted: self.jobs_submitted.load(ld),
            jobs_rejected: self.jobs_rejected.load(ld),
            jobs_completed: self.jobs_completed.load(ld),
            jobs_failed: self.jobs_failed.load(ld),
            jobs_shed: self.jobs_shed.load(ld),
            jobs_quarantined: self.jobs_quarantined.load(ld),
            queue_depth: self.queue_depth.load(ld),
            plan_hits: self.plan_hits.load(ld),
            plan_misses: self.plan_misses.load(ld),
            warm_loaded: self.warm_loaded.load(ld),
            cold_fallbacks: self.cold_fallbacks.load(ld),
            cold_recoveries: self.cold_recoveries.load(ld),
            batches: self.batches.load(ld),
            batched_jobs: self.batched_jobs.load(ld),
            max_batch: self.max_batch.load(ld),
            sharded_jobs: self.sharded_jobs.load(ld),
            shards_executed: self.shards_executed.load(ld),
            ooc_jobs: self.ooc_jobs.load(ld),
            ooc_bytes_read: self.ooc_bytes_read.load(ld),
            ooc_bytes_written: self.ooc_bytes_written.load(ld),
            ooc_prefetch_hits: self.ooc_prefetch_hits.load(ld),
            ooc_prefetch_misses: self.ooc_prefetch_misses.load(ld),
            ooc_stall_us: self.ooc_stall_us.load(ld),
            ooc_io_retries: self.ooc_io_retries.load(ld),
            swaps: self.swaps.load(ld),
            challenges: self.challenges.load(ld),
            challenges_rejected: self.challenges_rejected.load(ld),
            p50_us: self.latency.quantile_us(0.50),
            p99_us: self.latency.quantile_us(0.99),
            mean_us: self.latency.mean_us(),
            tuner_probes: stencil_tune::installed_auto()
                .map(|t| t.probe_count())
                .unwrap_or(0),
            warnings,
            tenants,
            plans,
        }
    }

    /// Render the full stats surface in the Prometheus text exposition
    /// format (version 0.0.4): every counter as a `_total` series, the
    /// gauges, the end-to-end latency histogram as native cumulative
    /// `_bucket` series (log2 upper bounds, matching
    /// [`LatencyHistogram`]'s buckets), per-tenant admission counters
    /// and per-plan latency/timeline series with escaped label values.
    /// Served by the net front end at `/metrics?format=prometheus`; the
    /// pinned JSON document at `/metrics` is untouched.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let ld = Ordering::Relaxed;
        let mut out = String::with_capacity(4096);
        let metric = |out: &mut String, name: &str, kind: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {}", fmt_num(v));
        };
        metric(
            &mut out,
            "stencil_jobs_submitted_total",
            "counter",
            "Jobs accepted into the queue.",
            self.jobs_submitted.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_jobs_rejected_total",
            "counter",
            "Jobs refused by backpressure.",
            self.jobs_rejected.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_jobs_completed_total",
            "counter",
            "Jobs completed successfully.",
            self.jobs_completed.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_jobs_failed_total",
            "counter",
            "Jobs that failed at execution.",
            self.jobs_failed.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_jobs_shed_total",
            "counter",
            "Jobs shed at dequeue because their deadline had passed.",
            self.jobs_shed.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_jobs_quarantined_total",
            "counter",
            "Submissions rejected on a panic-quarantined plan key.",
            self.jobs_quarantined.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_queue_depth",
            "gauge",
            "Current submission queue depth.",
            self.queue_depth.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_plan_hits_total",
            "counter",
            "Registry lookups resolved by an already-compiled plan.",
            self.plan_hits.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_plan_misses_total",
            "counter",
            "Registry lookups that had to compile.",
            self.plan_misses.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_warm_loaded_total",
            "counter",
            "Plans compiled during manifest warm-up.",
            self.warm_loaded.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_cold_fallbacks_total",
            "counter",
            "Compiles that fell back to the static cost model.",
            self.cold_fallbacks.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_cold_recoveries_total",
            "counter",
            "Cold keys upgraded to their measured plan at runtime.",
            self.cold_recoveries.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_batches_total",
            "counter",
            "Same-plan batches drained from the queue.",
            self.batches.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_batched_jobs_total",
            "counter",
            "Jobs that rode in a batch of two or more.",
            self.batched_jobs.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_max_batch",
            "gauge",
            "Largest batch drained so far.",
            self.max_batch.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_sharded_jobs_total",
            "counter",
            "Jobs executed through the domain sharder.",
            self.sharded_jobs.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_shards_executed_total",
            "counter",
            "Sub-domain slabs executed in total.",
            self.shards_executed.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_jobs_total",
            "counter",
            "Jobs routed through the out-of-core streaming executor.",
            self.ooc_jobs.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_bytes_read_total",
            "counter",
            "Payload bytes OOC jobs read from their slab stores.",
            self.ooc_bytes_read.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_bytes_written_total",
            "counter",
            "Payload bytes OOC jobs wrote to their slab stores.",
            self.ooc_bytes_written.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_prefetch_hits_total",
            "counter",
            "OOC window loads already resident when the sweep asked.",
            self.ooc_prefetch_hits.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_prefetch_misses_total",
            "counter",
            "OOC window loads the sweep had to wait for.",
            self.ooc_prefetch_misses.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_stall_microseconds_total",
            "counter",
            "Microseconds OOC sweeps spent stalled on IO.",
            self.ooc_stall_us.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_ooc_io_retries_total",
            "counter",
            "Transient IO faults OOC slab stores absorbed by retrying.",
            self.ooc_io_retries.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_swaps_total",
            "counter",
            "Registry entries hot-swapped by the retuning decider.",
            self.swaps.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_challenges_total",
            "counter",
            "Challenger sessions the decider started.",
            self.challenges.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_challenges_rejected_total",
            "counter",
            "Challenges that did not end in a swap.",
            self.challenges_rejected.load(ld) as f64,
        );
        metric(
            &mut out,
            "stencil_tuner_probes_total",
            "counter",
            "Probe sweeps the installed measured tuner has run.",
            stencil_tune::installed_auto()
                .map(|t| t.probe_count())
                .unwrap_or(0) as f64,
        );

        render_histogram(
            &mut out,
            "stencil_job_latency_microseconds",
            "End-to-end job latency (submit to completion).",
            &self.latency,
        );

        let tenants = self.tenants.lock().clone();
        for (name, kind, help, get) in [
            (
                "stencil_tenant_submitted_total",
                "counter",
                "Jobs this tenant got accepted into the queue.",
                (|t: &TenantCounters| t.submitted) as fn(&TenantCounters) -> u64,
            ),
            (
                "stencil_tenant_rejected_total",
                "counter",
                "Submissions refused (quota or queue backpressure).",
                |t: &TenantCounters| t.rejected,
            ),
            (
                "stencil_tenant_completed_total",
                "counter",
                "Jobs completed for this tenant.",
                |t: &TenantCounters| t.completed,
            ),
        ] {
            if tenants.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (tenant, row) in &tenants {
                let _ = writeln!(
                    out,
                    "{name}{{tenant=\"{}\"}} {}",
                    escape_label(tenant),
                    get(row)
                );
            }
        }

        let plans = self.traffic.entries();
        for (name, kind, help, get) in [
            (
                "stencil_plan_samples_total",
                "counter",
                "Latency samples recorded under the registry key.",
                (|t: &PlanTelemetry| t.samples) as fn(&PlanTelemetry) -> u64,
            ),
            (
                "stencil_plan_latency_p50_microseconds",
                "gauge",
                "Median latency under the registry key.",
                |t: &PlanTelemetry| t.p50_us,
            ),
            (
                "stencil_plan_latency_p99_microseconds",
                "gauge",
                "99th-percentile latency under the registry key.",
                |t: &PlanTelemetry| t.p99_us,
            ),
            (
                "stencil_plan_epoch",
                "gauge",
                "Plan generation serving the key (bumps on hot-swap).",
                |t: &PlanTelemetry| t.epoch,
            ),
            (
                "stencil_plan_queue_microseconds_total",
                "counter",
                "Total time the key's jobs waited in the queue.",
                |t: &PlanTelemetry| t.queue_us,
            ),
            (
                "stencil_plan_compute_microseconds_total",
                "counter",
                "Total time the key's jobs spent computing.",
                |t: &PlanTelemetry| t.compute_us,
            ),
            (
                "stencil_plan_io_microseconds_total",
                "counter",
                "Total time the key's jobs were blocked on IO.",
                |t: &PlanTelemetry| t.io_us,
            ),
            (
                "stencil_plan_overlap_microseconds_total",
                "counter",
                "Total IO hidden under the key's compute.",
                |t: &PlanTelemetry| t.overlap_us,
            ),
        ] {
            if plans.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (key, t) in &plans {
                let tl = t.timeline_totals();
                let row = PlanTelemetry {
                    samples: t.latency.count(),
                    p50_us: t.latency.quantile_us(0.50),
                    p99_us: t.latency.quantile_us(0.99),
                    epoch: t.epoch(),
                    queue_us: tl.queue_us,
                    compute_us: tl.compute_us,
                    io_us: tl.io_us,
                    overlap_us: tl.overlap_us,
                };
                let _ = writeln!(
                    out,
                    "{name}{{plan=\"{}\"}} {}",
                    escape_label(key),
                    get(&row)
                );
            }
        }
        out
    }
}

/// Render one [`LatencyHistogram`] as native Prometheus histogram
/// series: cumulative `_bucket{le="..."}` rows at the log2 upper
/// bounds, the mandatory `+Inf` bucket, `_sum` and `_count`.
fn render_histogram(out: &mut String, name: &str, help: &str, h: &LatencyHistogram) {
    use std::fmt::Write as _;
    let counts = h.bucket_counts();
    let total: u64 = counts.iter().sum();
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        // the final bucket's log2 upper bound exceeds u64: that is the
        // +Inf bucket below
        if i + 1 < BUCKETS {
            // only emit buckets up to the last non-empty one (plus
            // +Inf): 64 series per scrape is noise when traffic spans
            // three decades
            if c == 0 && cum == total {
                continue;
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cum}",
                1u128 << (i + 1) as u32
            );
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_sum {}", h.sum_us());
    let _ = writeln!(out, "{name}_count {total}");
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a metric value: integers without a fraction, else shortest
/// float (the exposition format accepts both).
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Per-plan (registry-key) latency telemetry inside a
/// [`StatsSnapshot`] — what the `/metrics` scrape surface exposes per
/// serving plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanTelemetry {
    /// Latency samples recorded under the key (lifetime, not the
    /// decider's hot-key window).
    pub samples: u64,
    /// Median latency under the key, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency under the key, microseconds.
    pub p99_us: u64,
    /// Epoch of the plan generation that served the latest sample —
    /// bumps by one on every retuning hot-swap.
    pub epoch: u64,
    /// Total microseconds this key's jobs spent waiting in the queue.
    pub queue_us: u64,
    /// Total microseconds this key's jobs spent computing.
    pub compute_us: u64,
    /// Total microseconds this key's jobs were blocked on IO.
    pub io_us: u64,
    /// Total microseconds of IO hidden under this key's compute.
    pub overlap_us: u64,
}

/// Plain-data copy of [`ServeStats`] at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs refused by backpressure.
    pub jobs_rejected: u64,
    /// Jobs completed successfully.
    pub jobs_completed: u64,
    /// Jobs that failed at execution.
    pub jobs_failed: u64,
    /// Jobs shed at dequeue because their deadline had passed.
    pub jobs_shed: u64,
    /// Submissions rejected on a panic-quarantined plan key.
    pub jobs_quarantined: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Registry hits.
    pub plan_hits: u64,
    /// Registry misses (compiles).
    pub plan_misses: u64,
    /// Plans compiled by manifest warm-up.
    pub warm_loaded: u64,
    /// CacheOnly → Static cold-start fallbacks.
    pub cold_fallbacks: u64,
    /// Cold keys upgraded to their measured plan at runtime.
    pub cold_recoveries: u64,
    /// Batches drained.
    pub batches: u64,
    /// Jobs that rode in multi-job batches.
    pub batched_jobs: u64,
    /// Largest batch.
    pub max_batch: u64,
    /// Jobs run sharded.
    pub sharded_jobs: u64,
    /// Total slabs executed.
    pub shards_executed: u64,
    /// Jobs routed through the out-of-core streaming executor.
    pub ooc_jobs: u64,
    /// Payload bytes OOC jobs read from their slab stores.
    pub ooc_bytes_read: u64,
    /// Payload bytes OOC jobs wrote to their slab stores.
    pub ooc_bytes_written: u64,
    /// OOC window loads already resident when the sweep asked.
    pub ooc_prefetch_hits: u64,
    /// OOC window loads the sweep had to wait for.
    pub ooc_prefetch_misses: u64,
    /// Microseconds OOC sweeps spent stalled on IO.
    pub ooc_stall_us: u64,
    /// Transient IO faults OOC slab stores absorbed by retrying.
    pub ooc_io_retries: u64,
    /// Registry entries hot-swapped by the retuning decider.
    pub swaps: u64,
    /// Challenger sessions started.
    pub challenges: u64,
    /// Challenges that did not end in a swap.
    pub challenges_rejected: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: u64,
    /// Mean end-to-end latency, microseconds.
    pub mean_us: f64,
    /// Probe sweeps the installed measured tuner has run process-wide
    /// (0 when none is installed). Flat across a warm-started service
    /// — the "zero probe runs" contract made observable.
    pub tuner_probes: u64,
    /// Operator warnings accumulated so far (oldest dropped past a
    /// cap).
    pub warnings: Vec<String>,
    /// Per-tenant admission counters keyed by tenant name (empty when
    /// the service runs without the network front end).
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Per-plan latency telemetry keyed by registry key (empty until a
    /// job completes).
    pub plans: BTreeMap<String, PlanTelemetry>,
}

impl StatsSnapshot {
    /// Registry hit ratio in `[0, 1]` (1.0 when there were no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            1.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }

    /// Serialize through the project's hand-rolled JSON writer.
    pub fn to_json(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        let mut num = |k: &str, v: f64| {
            m.insert(k.to_string(), Value::Num(v));
        };
        num("jobs_submitted", self.jobs_submitted as f64);
        num("jobs_rejected", self.jobs_rejected as f64);
        num("jobs_completed", self.jobs_completed as f64);
        num("jobs_failed", self.jobs_failed as f64);
        num("jobs_shed", self.jobs_shed as f64);
        num("jobs_quarantined", self.jobs_quarantined as f64);
        num("queue_depth", self.queue_depth as f64);
        num("plan_hits", self.plan_hits as f64);
        num("plan_misses", self.plan_misses as f64);
        num("plan_hit_ratio", self.hit_ratio());
        num("warm_loaded", self.warm_loaded as f64);
        num("cold_fallbacks", self.cold_fallbacks as f64);
        num("cold_recoveries", self.cold_recoveries as f64);
        num("batches", self.batches as f64);
        num("batched_jobs", self.batched_jobs as f64);
        num("max_batch", self.max_batch as f64);
        num("sharded_jobs", self.sharded_jobs as f64);
        num("shards_executed", self.shards_executed as f64);
        num("ooc_jobs", self.ooc_jobs as f64);
        num("ooc_bytes_read", self.ooc_bytes_read as f64);
        num("ooc_bytes_written", self.ooc_bytes_written as f64);
        num("ooc_prefetch_hits", self.ooc_prefetch_hits as f64);
        num("ooc_prefetch_misses", self.ooc_prefetch_misses as f64);
        num("ooc_stall_us", self.ooc_stall_us as f64);
        num("ooc_io_retries", self.ooc_io_retries as f64);
        num("swaps", self.swaps as f64);
        num("challenges", self.challenges as f64);
        num("challenges_rejected", self.challenges_rejected as f64);
        num("p50_us", self.p50_us as f64);
        num("p99_us", self.p99_us as f64);
        num("mean_us", self.mean_us);
        num("tuner_probes", self.tuner_probes as f64);
        m.insert(
            "warnings".to_string(),
            Value::Arr(self.warnings.iter().cloned().map(Value::Str).collect()),
        );
        let tenants = self
            .tenants
            .iter()
            .map(|(name, t)| {
                let mut row = std::collections::BTreeMap::new();
                row.insert("submitted".to_string(), Value::Num(t.submitted as f64));
                row.insert("rejected".to_string(), Value::Num(t.rejected as f64));
                row.insert("completed".to_string(), Value::Num(t.completed as f64));
                (name.clone(), Value::Obj(row))
            })
            .collect();
        m.insert("tenants".to_string(), Value::Obj(tenants));
        let plans = self
            .plans
            .iter()
            .map(|(key, t)| {
                let mut row = std::collections::BTreeMap::new();
                row.insert("samples".to_string(), Value::Num(t.samples as f64));
                row.insert("p50_us".to_string(), Value::Num(t.p50_us as f64));
                row.insert("p99_us".to_string(), Value::Num(t.p99_us as f64));
                row.insert("epoch".to_string(), Value::Num(t.epoch as f64));
                row.insert("queue_us".to_string(), Value::Num(t.queue_us as f64));
                row.insert("compute_us".to_string(), Value::Num(t.compute_us as f64));
                row.insert("io_us".to_string(), Value::Num(t.io_us as f64));
                row.insert("overlap_us".to_string(), Value::Num(t.overlap_us as f64));
                (key.clone(), Value::Obj(row))
            })
            .collect();
        m.insert("plans".to_string(), Value::Obj(plans));
        Value::Obj(m)
    }

    /// Rebuild a snapshot from its [`StatsSnapshot::to_json`] document
    /// (`None` on schema mismatch) — lets tests and dashboards
    /// round-trip the dump through the shared parser.
    pub fn from_json(doc: &Value) -> Option<Self> {
        let n = |k: &str| doc.get(k).and_then(Value::as_num);
        // counters must be non-negative integers: a saturating `as`
        // cast would silently repair corrupt documents instead of
        // rejecting them
        let u = |k: &str| {
            n(k).filter(|&v| v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64)
                .map(|v| v as u64)
        };
        Some(Self {
            jobs_submitted: u("jobs_submitted")?,
            jobs_rejected: u("jobs_rejected")?,
            jobs_completed: u("jobs_completed")?,
            jobs_failed: u("jobs_failed")?,
            jobs_shed: u("jobs_shed")?,
            jobs_quarantined: u("jobs_quarantined")?,
            queue_depth: u("queue_depth")?,
            plan_hits: u("plan_hits")?,
            plan_misses: u("plan_misses")?,
            warm_loaded: u("warm_loaded")?,
            cold_fallbacks: u("cold_fallbacks")?,
            cold_recoveries: u("cold_recoveries")?,
            batches: u("batches")?,
            batched_jobs: u("batched_jobs")?,
            max_batch: u("max_batch")?,
            sharded_jobs: u("sharded_jobs")?,
            shards_executed: u("shards_executed")?,
            ooc_jobs: u("ooc_jobs")?,
            ooc_bytes_read: u("ooc_bytes_read")?,
            ooc_bytes_written: u("ooc_bytes_written")?,
            ooc_prefetch_hits: u("ooc_prefetch_hits")?,
            ooc_prefetch_misses: u("ooc_prefetch_misses")?,
            ooc_stall_us: u("ooc_stall_us")?,
            ooc_io_retries: u("ooc_io_retries")?,
            swaps: u("swaps")?,
            challenges: u("challenges")?,
            challenges_rejected: u("challenges_rejected")?,
            p50_us: u("p50_us")?,
            p99_us: u("p99_us")?,
            mean_us: n("mean_us")?,
            tuner_probes: u("tuner_probes")?,
            warnings: doc
                .get("warnings")?
                .as_arr()?
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            tenants: match doc.get("tenants")? {
                Value::Obj(rows) => rows
                    .iter()
                    .map(|(name, row)| {
                        let c = |k: &str| {
                            row.get(k)
                                .and_then(Value::as_num)
                                .filter(|&v| v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64)
                                .map(|v| v as u64)
                        };
                        Some((
                            name.clone(),
                            TenantCounters {
                                submitted: c("submitted")?,
                                rejected: c("rejected")?,
                                completed: c("completed")?,
                            },
                        ))
                    })
                    .collect::<Option<BTreeMap<_, _>>>()?,
                _ => return None,
            },
            plans: match doc.get("plans")? {
                Value::Obj(rows) => rows
                    .iter()
                    .map(|(key, row)| {
                        let c = |k: &str| {
                            row.get(k)
                                .and_then(Value::as_num)
                                .filter(|&v| v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64)
                                .map(|v| v as u64)
                        };
                        Some((
                            key.clone(),
                            PlanTelemetry {
                                samples: c("samples")?,
                                p50_us: c("p50_us")?,
                                p99_us: c("p99_us")?,
                                epoch: c("epoch")?,
                                queue_us: c("queue_us")?,
                                compute_us: c("compute_us")?,
                                io_us: c("io_us")?,
                                overlap_us: c("overlap_us")?,
                            },
                        ))
                    })
                    .collect::<Option<BTreeMap<_, _>>>()?,
                _ => return None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 40, 80, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_us(0.5);
        assert!((16..=64).contains(&p50), "p50={p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 4096, "p99={p99}");
        assert!(h.mean_us() > 0.0);
        // empty histogram is all zeros
        let e = LatencyHistogram::default();
        assert_eq!(e.quantile_us(0.99), 0);
        assert_eq!(e.mean_us(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = ServeStats::new();
        s.jobs_submitted.store(7, Ordering::Relaxed);
        s.plan_hits.store(3, Ordering::Relaxed);
        s.plan_misses.store(1, Ordering::Relaxed);
        s.warn("cold start: cache miss under key \"x|y\"");
        s.latency.record(Duration::from_micros(300));
        s.tenant_update("acme", |t| {
            t.submitted = 5;
            t.completed = 4;
        });
        s.tenant_update("initech", |t| t.rejected += 2);
        s.swaps.store(1, Ordering::Relaxed);
        s.challenges.store(3, Ordering::Relaxed);
        s.challenges_rejected.store(2, Ordering::Relaxed);
        s.ooc_jobs.store(1, Ordering::Relaxed);
        s.record_ooc(&stencil_ooc::StoreStats {
            bytes_read: 4096,
            bytes_written: 2048,
            prefetch_hit: 3,
            prefetch_miss: 1,
            stall_us: 77,
            io_us: 130,
            io_retries: 2,
        });
        s.jobs_shed.store(2, Ordering::Relaxed);
        s.jobs_quarantined.store(1, Ordering::Relaxed);
        s.traffic.record(
            "sig|small|static|pooled",
            Duration::from_micros(120),
            4,
            stencil_obs::Timeline {
                queue_us: 5,
                compute_us: 100,
                io_us: 15,
                overlap_us: 8,
            },
            || vec![64, 64],
        );
        let snap = s.snapshot();
        let text = snap.to_json().pretty();
        let back = StatsSnapshot::from_json(&stencil_tune::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert!((back.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(back.warnings.len(), 1);
        assert_eq!(back.tenants.len(), 2);
        assert_eq!(back.tenants["acme"].completed, 4);
        assert_eq!(back.tenants["initech"].rejected, 2);
        assert_eq!(back.swaps, 1);
        assert_eq!(back.challenges, 3);
        assert_eq!(back.challenges_rejected, 2);
        let plan = &back.plans["sig|small|static|pooled"];
        assert_eq!(plan.samples, 1);
        assert_eq!(plan.epoch, 4);
        assert!(plan.p50_us >= 120);
        assert_eq!((plan.queue_us, plan.compute_us), (5, 100));
        assert_eq!((plan.io_us, plan.overlap_us), (15, 8));
        assert_eq!(back.ooc_bytes_read, 4096);
        assert_eq!(back.ooc_bytes_written, 2048);
        assert_eq!(back.ooc_prefetch_hits, 3);
        assert_eq!(back.ooc_prefetch_misses, 1);
        assert_eq!(back.ooc_stall_us, 77);
        assert_eq!(back.ooc_io_retries, 2);
        assert_eq!(back.jobs_shed, 2);
        assert_eq!(back.jobs_quarantined, 1);
    }

    #[test]
    fn from_json_rejects_corrupt_tenant_rows() {
        let s = ServeStats::new();
        s.tenant_update("t", |c| c.submitted = 1);
        let mut doc = s.snapshot().to_json();
        if let Value::Obj(m) = &mut doc {
            if let Some(Value::Obj(rows)) = m.get_mut("tenants") {
                if let Some(Value::Obj(row)) = rows.get_mut("t") {
                    row.insert("submitted".into(), Value::Num(-1.0));
                }
            }
        }
        assert!(StatsSnapshot::from_json(&doc).is_none());
        // the tenants key is part of the schema, not optional
        let mut missing = s.snapshot().to_json();
        if let Value::Obj(m) = &mut missing {
            m.remove("tenants");
        }
        assert!(StatsSnapshot::from_json(&missing).is_none());
        // so is the per-plan telemetry map, and its rows are validated
        // like the tenant rows
        let mut no_plans = s.snapshot().to_json();
        if let Value::Obj(m) = &mut no_plans {
            m.remove("plans");
        }
        assert!(StatsSnapshot::from_json(&no_plans).is_none());
        s.traffic.record(
            "k",
            Duration::from_micros(10),
            0,
            stencil_obs::Timeline::default(),
            Vec::new,
        );
        let mut bad_plan = s.snapshot().to_json();
        if let Value::Obj(m) = &mut bad_plan {
            if let Some(Value::Obj(rows)) = m.get_mut("plans") {
                if let Some(Value::Obj(row)) = rows.get_mut("k") {
                    row.insert("epoch".into(), Value::Num(1.5));
                }
            }
        }
        assert!(StatsSnapshot::from_json(&bad_plan).is_none());
    }

    #[test]
    fn from_json_rejects_non_integer_counters() {
        let base = ServeStats::new().snapshot().to_json();
        let corrupt = |field: &str, v: f64| {
            let mut doc = base.clone();
            if let Value::Obj(m) = &mut doc {
                m.insert(field.to_string(), Value::Num(v));
            }
            StatsSnapshot::from_json(&doc)
        };
        assert!(StatsSnapshot::from_json(&base).is_some());
        // negative and fractional counters are corruption, not values
        // to be silently saturated
        assert!(corrupt("jobs_submitted", -3.0).is_none());
        assert!(corrupt("p99_us", 2.5).is_none());
        assert!(corrupt("batches", 1e300).is_none());
    }

    #[test]
    fn prometheus_exposition_matches_golden() {
        let s = ServeStats::new();
        s.jobs_submitted.store(5, Ordering::Relaxed);
        s.jobs_completed.store(4, Ordering::Relaxed);
        s.jobs_failed.store(1, Ordering::Relaxed);
        s.queue_depth.store(2, Ordering::Relaxed);
        s.latency.record(Duration::from_micros(300));
        s.latency.record(Duration::from_micros(5000));
        s.tenant_update("ac\"me", |t| t.submitted = 3);
        s.traffic.record(
            "heat3d|large|static|pooled",
            Duration::from_micros(120),
            2,
            stencil_obs::Timeline {
                queue_us: 1,
                compute_us: 2,
                io_us: 3,
                overlap_us: 4,
            },
            || vec![8, 8, 8],
        );
        let text = s.prometheus();

        // counters and gauges render as single-value series
        assert!(text.contains("# TYPE stencil_jobs_submitted_total counter\n"));
        assert!(text.contains("\nstencil_jobs_submitted_total 5\n"));
        assert!(text.contains("\nstencil_jobs_completed_total 4\n"));
        assert!(text.contains("\nstencil_jobs_failed_total 1\n"));
        assert!(text.contains("# TYPE stencil_queue_depth gauge\n"));
        assert!(text.contains("\nstencil_queue_depth 2\n"));

        // the latency histogram block, exactly: cumulative log2
        // buckets, +Inf, sum, count (300us -> le=512, 5000us -> le=8192;
        // trailing empty buckets are elided)
        let golden = "\
# HELP stencil_job_latency_microseconds End-to-end job latency (submit to completion).
# TYPE stencil_job_latency_microseconds histogram
stencil_job_latency_microseconds_bucket{le=\"2\"} 0
stencil_job_latency_microseconds_bucket{le=\"4\"} 0
stencil_job_latency_microseconds_bucket{le=\"8\"} 0
stencil_job_latency_microseconds_bucket{le=\"16\"} 0
stencil_job_latency_microseconds_bucket{le=\"32\"} 0
stencil_job_latency_microseconds_bucket{le=\"64\"} 0
stencil_job_latency_microseconds_bucket{le=\"128\"} 0
stencil_job_latency_microseconds_bucket{le=\"256\"} 0
stencil_job_latency_microseconds_bucket{le=\"512\"} 1
stencil_job_latency_microseconds_bucket{le=\"1024\"} 1
stencil_job_latency_microseconds_bucket{le=\"2048\"} 1
stencil_job_latency_microseconds_bucket{le=\"4096\"} 1
stencil_job_latency_microseconds_bucket{le=\"8192\"} 2
stencil_job_latency_microseconds_bucket{le=\"+Inf\"} 2
stencil_job_latency_microseconds_sum 5300
stencil_job_latency_microseconds_count 2
";
        assert!(text.contains(golden), "histogram block drifted:\n{text}");

        // label values are escaped; per-tenant and per-plan series
        // carry their labels
        assert!(text.contains("stencil_tenant_submitted_total{tenant=\"ac\\\"me\"} 3\n"));
        assert!(
            text.contains("stencil_plan_samples_total{plan=\"heat3d|large|static|pooled\"} 1\n")
        );
        assert!(text.contains("stencil_plan_epoch{plan=\"heat3d|large|static|pooled\"} 2\n"));
        assert!(text.contains(
            "stencil_plan_queue_microseconds_total{plan=\"heat3d|large|static|pooled\"} 1\n"
        ));
        assert!(text.contains(
            "stencil_plan_io_microseconds_total{plan=\"heat3d|large|static|pooled\"} 3\n"
        ));
        assert!(text.contains(
            "stencil_plan_overlap_microseconds_total{plan=\"heat3d|large|static|pooled\"} 4\n"
        ));

        // exposition hygiene: every non-comment line is `name[{labels}] value`
        for line in text.lines() {
            assert!(!line.is_empty());
            if !line.starts_with('#') {
                assert!(line.starts_with("stencil_"), "bad series line: {line}");
                assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok());
            }
        }
        // a fresh service with no tenants or plans renders no labeled
        // series at all (and no dangling HELP/TYPE headers)
        let empty = ServeStats::new().prometheus();
        assert!(!empty.contains("stencil_tenant_"));
        assert!(!empty.contains("stencil_plan_samples_total"));
        assert!(empty.contains("stencil_job_latency_microseconds_bucket{le=\"+Inf\"} 0\n"));
    }

    #[test]
    fn warning_list_is_capped() {
        let s = ServeStats::new();
        for i in 0..(MAX_WARNINGS + 10) {
            s.warn(format!("w{i}"));
        }
        let snap = s.snapshot();
        assert_eq!(snap.warnings.len(), MAX_WARNINGS);
        assert_eq!(
            snap.warnings.last().unwrap(),
            &format!("w{}", MAX_WARNINGS + 9)
        );
    }

    #[test]
    fn batch_counters_track_sizes() {
        let s = ServeStats::new();
        s.record_batch(1);
        s.record_batch(4);
        s.record_batch(2);
        let snap = s.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batched_jobs, 6);
        assert_eq!(snap.max_batch, 4);
    }
}
