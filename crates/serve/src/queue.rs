//! Bounded MPMC job queue with blocking backpressure and same-key batch
//! draining.
//!
//! Built on the runtime's poison-free `Mutex`/`Condvar` (the same
//! primitives as the worker pool) rather than channels: the service
//! needs three things channels don't give together — a hard capacity
//! that *blocks* producers (closed-loop backpressure), a non-blocking
//! `try_push` that reports fullness (load shedding), and batch pops
//! that pull every queued job sharing a plan with the head job, so the
//! executor amortizes pool wakeups and keeps one folded kernel hot
//! across consecutive runs.

use std::collections::VecDeque;
use stencil_runtime::sync::{Condvar, Mutex};

/// Why a push did not enqueue. The rejected item rides along so the
/// caller can complete its ticket with an error instead of losing it.
#[derive(Debug)]
pub enum PushError<T> {
    /// `try_push` on a queue at capacity (backpressure signal).
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// Queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the queue is at capacity — the cheap pre-check a
    /// non-blocking caller uses to skip a `try_push` it knows would be
    /// rejected (racy but safe: the push itself still arbitrates).
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Enqueue, blocking while the queue is full — the backpressure
    /// path: a closed-loop client stalls here until an executor drains
    /// room. Fails only once the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut st);
        }
    }

    /// Enqueue without blocking: a full queue is an immediate
    /// [`PushError::Full`] (load shedding for callers that would rather
    /// reject than wait).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue one item, blocking while the queue is empty. `None` when
    /// the queue is closed and drained — the executor's shutdown
    /// signal.
    pub fn pop(&self) -> Option<T> {
        self.pop_batch(1, |_, _| false).map(|mut b| {
            debug_assert_eq!(b.len(), 1);
            b.pop().expect("batch of one")
        })
    }

    /// Dequeue the head item plus up to `max - 1` later items that
    /// `same(head, item)` — the batch the executor runs back-to-back.
    /// Skipped items keep their order. Blocks while empty; `None` when
    /// closed and drained.
    pub fn pop_batch(&self, max: usize, same: impl Fn(&T, &T) -> bool) -> Option<Vec<T>> {
        let max = max.max(1);
        // chaos: the consumer gets descheduled for a bounded moment
        // before it takes the lock — queued jobs age, which is exactly
        // what deadline shedding must absorb (never an unbounded hang)
        if stencil_faults::should_fire(stencil_faults::Failpoint::QueueStall) {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let mut st = self.state.lock();
        loop {
            if let Some(head) = st.items.pop_front() {
                let mut batch = Vec::with_capacity(max.min(8));
                batch.push(head);
                if max > 1 {
                    let mut i = 0;
                    while i < st.items.len() && batch.len() < max {
                        if same(&batch[0], &st.items[i]) {
                            let item = st.items.remove(i).expect("index checked");
                            batch.push(item);
                        } else {
                            i += 1;
                        }
                    }
                }
                drop(st);
                // every removal frees capacity; wake all queued pushers
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    /// Close the queue: every queued item is still served, further
    /// pushes fail, and blocked consumers wake to observe the drain.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = Bounded::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_drains_then_signals() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.close();
        assert!(matches!(q.push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn batch_pop_groups_same_key_preserving_other_order() {
        let q = Bounded::new(16);
        for (key, n) in [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5)] {
            q.push((key, n)).unwrap();
        }
        let batch = q.pop_batch(8, |h, x| h.0 == x.0).unwrap();
        assert_eq!(batch, vec![("a", 1), ("a", 3), ("a", 5)]);
        // the skipped items kept their relative order
        assert_eq!(q.pop(), Some(("b", 2)));
        assert_eq!(q.pop(), Some(("c", 4)));
        // max bounds the batch
        for n in 0..5 {
            q.push(("k", n)).unwrap();
        }
        let b2 = q.pop_batch(3, |h, x| h.0 == x.0).unwrap();
        assert_eq!(b2.len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn blocking_push_applies_backpressure_until_a_pop() {
        let q = Arc::new(Bounded::new(1));
        q.push(0usize).unwrap();
        let stalled = Arc::new(AtomicUsize::new(0));
        let (q2, s2) = (Arc::clone(&q), Arc::clone(&stalled));
        let producer = std::thread::spawn(move || {
            // must block: capacity 1 and the slot is taken
            q2.push(1).unwrap();
            s2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(stalled.load(Ordering::SeqCst), 0, "push must have blocked");
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(stalled.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn consumers_wake_on_close() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
