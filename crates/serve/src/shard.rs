//! Domain sharding: split a large 2D/3D job into halo-correct
//! sub-domain slabs along the outermost axis, execute the slabs in
//! parallel, and stitch the interiors back — **bit-identical** to the
//! unsharded run.
//!
//! ## Why this is exact, not approximate
//!
//! Every executor in `stencil-core` advances a cell with fixed
//! tap-order arithmetic, and treats grid edges as a frozen Dirichlet
//! band whose influence travels inward at one stencil radius per time
//! step. A slab that extends `halo = t * r` layers beyond its interior
//! therefore reproduces the full-domain run exactly on the interior:
//! after `s` steps only cells within `s * r` of the slab's artificial
//! edge can differ from the full run, and the halo keeps that
//! contamination outside the interior for all `t` steps. Folding does
//! not change the bound — an `m`-step folded macro-step has radius
//! `m * r` but advances `m` steps, so the budget stays `t * r` total.
//!
//! Slabs cut only the outermost axis (`y` in 2D, `z` in 3D): the
//! innermost extent — which drives vector chunking, alignment and the
//! DLT lane constraints — is untouched.
//!
//! Two executor families need two levels of care:
//!
//! * **Row-independent families** (scalar, multiple-loads,
//!   data-reorganization): a cell's instruction stream depends only on
//!   its x position, so any slab geometry is bit-exact — these shard
//!   under every tiling.
//! * **Register pipelines** (transpose-layout, folded): rows are
//!   processed in vector-width groups counted from the sweep origin,
//!   with a scalar remainder at the top. A slab changes the origin, so
//!   [`slab_bounds`] aligns every slab start to [`SLAB_ALIGN`] rows and
//!   pads interior slab tops until the processed row count keeps the
//!   full run's group phase with no mid-grid remainder — which covers
//!   the *block-free* sweep (whose origin is the grid edge). Under
//!   **tessellate tiling** the tile geometry itself is the hazard:
//!   since `DimTiling` anchors tile phase to global coordinates, a
//!   slab executed through `Plan::run_*_at` with its global origin
//!   reproduces every interior tile of the full run exactly. Only the
//!   slab-edge tiles diverge (they see a frozen band where the full
//!   run has live cells), so the halo grows by one tile width — the
//!   divergence starts inside the edge tile and travels inward at one
//!   effective radius per inner step, exactly like the classic bound —
//!   and every slab must stay large enough to run the same per-round
//!   time blocks as the full run ([`shard_geometry`]). With both in
//!   place, register pipelines shard bit-exactly under tessellate
//!   tiling too.
//!
//! Each slab runs on its own single-thread [`Plan`] (same pattern,
//! method, tiling, width and z-ring geometry as the source plan) so
//! the slabs really execute concurrently — a shared pool would
//! serialize them.

use stencil_core::tile::DimTiling;
use stencil_core::{Method, Plan, PlanError, Solver, Tiling};
use stencil_grid::{Grid2D, Grid3D};

/// Slab starts are aligned down to this many outer-axis layers — the
/// widest vector lane count, so every register pipeline's row grouping
/// keeps its phase across slab boundaries.
pub const SLAB_ALIGN: usize = 8;

/// When and how much to shard. The service consults this per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Shard only jobs with at least this many grid points (small
    /// domains fit a cache and lose more to halo duplication than they
    /// gain from slab parallelism).
    pub min_points: usize,
    /// Upper bound on slabs per job (normally the machine's core
    /// count).
    pub max_shards: usize,
    /// A slab's interior must keep at least this many outer-axis
    /// layers *and* at least `2 * halo + 1` layers, or the shard count
    /// is reduced — halo work must never dominate.
    pub min_slab: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            min_points: 1 << 20,
            max_shards: stencil_runtime::available_parallelism(),
            min_slab: 16,
        }
    }
}

impl ShardPolicy {
    /// How many slabs to cut a domain of `points` total points and
    /// `outer` outermost-axis extent into, for a run whose halo is
    /// `halo` layers. Returns 1 (do not shard) when the domain is too
    /// small or the halo too deep to amortize.
    pub fn shards_for(&self, points: usize, outer: usize, halo: usize) -> usize {
        if points < self.min_points || self.max_shards <= 1 {
            return 1;
        }
        let min_interior = self.min_slab.max(2 * halo + 1);
        (outer / min_interior.max(1)).clamp(1, self.max_shards)
    }
}

/// True when `plan` is eligible for bit-exact slab sharding (see the
/// module docs): 2D/3D, natural layout (no DLT/SDSL). Register
/// pipelines shard block-free (slab alignment preserves their
/// origin-relative row grouping) and under tessellate tiling (global
/// tile-phase anchoring plus the widened halo of [`shard_geometry`]).
pub fn shardable(plan: &Plan) -> bool {
    if plan.dims() < 2 {
        return false;
    }
    match plan.method() {
        Method::Scalar | Method::MultipleLoads | Method::DataReorg => true,
        Method::TransposeLayout | Method::Folded { .. } => {
            matches!(plan.tiling(), Tiling::None | Tiling::Tessellate { .. })
        }
        _ => false,
    }
}

/// Halo depth and minimum slab span for running `t` steps of `plan`
/// sharded along an outer axis of extent `outer` (inner extents in
/// `inners`).
///
/// The base halo is the classic contamination bound `t * r`. For
/// register pipelines under tessellate tiling, the slab's edge tiles
/// diverge from the full run's (the slab edge is a frozen band), so
/// divergence can start anywhere inside the widest tile: the halo
/// grows by one tile width `2 * r_step * tb_round`, computed for both
/// the folded body rounds and the `t % m` unfolded tail rounds. The
/// returned minimum span keeps every slab able to run the same
/// per-round time blocks as the full run — the condition under which
/// the per-round tile geometry (and therefore every kernel call on
/// interior tiles) is identical, making the stitch bit-exact.
pub fn shard_geometry(plan: &Plan, t: usize, outer: usize, inners: &[usize]) -> (usize, usize) {
    let r = plan.pattern().radius();
    let base = t * r;
    let Tiling::Tessellate { time_block } = plan.tiling() else {
        return (base, 0);
    };
    if !matches!(
        plan.method(),
        Method::TransposeLayout | Method::Folded { .. }
    ) {
        // row-independent kernels are bit-exact under any slab geometry
        return (base, 0);
    }
    let round_tb = |rad: usize, steps: usize| -> usize {
        if steps == 0 || rad == 0 {
            return 0;
        }
        let mut tb = DimTiling::max_tb(outer, rad, rad, time_block);
        for &n in inners {
            tb = tb.min(DimTiling::max_tb(n, rad, rad, time_block));
        }
        tb.min(steps)
    };
    let reff = plan.effective_radius();
    let mut extra = 0usize;
    let mut min_span = 0usize;
    for (rad, steps) in [(reff, t / plan.m()), (r, t % plan.m())] {
        let tb = round_tb(rad, steps);
        if tb > 0 {
            extra = extra.max(2 * rad * tb);
            min_span = min_span.max(2 * rad * (tb + 1));
        }
    }
    (base + extra, min_span)
}

/// The slab a shard of interior `[lo, hi)` reads: the interior plus a
/// `halo`-deep apron, the start aligned down to [`SLAB_ALIGN`], and —
/// for slabs that do not reach the true top edge — the top padded so
/// the processed row count `(len - 2 * r_eff)` is a multiple of
/// [`SLAB_ALIGN`] (no mid-grid scalar remainder) and snapped to the
/// edge when it comes within one alignment unit of it (so the full
/// run's own top-remainder rows land in an edge slab that reproduces
/// them exactly).
pub fn slab_bounds(
    lo: usize,
    hi: usize,
    extent: usize,
    halo: usize,
    r_eff: usize,
) -> (usize, usize) {
    let mut slab_lo = lo.saturating_sub(halo);
    slab_lo -= slab_lo % SLAB_ALIGN;
    let mut slab_hi = (hi + halo).min(extent);
    if slab_hi < extent {
        let span = slab_hi - slab_lo;
        let want = (2 * r_eff) % SLAB_ALIGN;
        let pad = (want + SLAB_ALIGN - span % SLAB_ALIGN) % SLAB_ALIGN;
        slab_hi += pad;
        if slab_hi + SLAB_ALIGN > extent {
            slab_hi = extent;
        }
    }
    (slab_lo, slab_hi)
}

/// Compile `lanes` single-thread clones of `plan`'s configuration —
/// one per concurrent slab, so parallel slab runs never contend for a
/// pool. The service's registry caches the returned set per plan key.
pub fn lane_plans(plan: &Plan, lanes: usize) -> Result<Vec<Plan>, PlanError> {
    (0..lanes.max(1))
        .map(|_| {
            let mut s = Solver::new(plan.pattern().clone())
                .method(plan.method())
                .tiling(plan.tiling())
                .width(plan.width())
                .threads(1);
            // the z-ring geometry changes slab-edge rounding inside the
            // 3D pipeline: lanes must execute the exact configuration
            // the source plan resolved, or the stitch is not bit-exact
            if let Some(ring) = plan.ring3() {
                s = s.ring3(ring);
            }
            s.compile()
        })
        .collect()
}

/// Split `extent` into `shards` contiguous interior ranges (first
/// ranges one longer when it does not divide evenly).
pub fn interior_ranges(extent: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, extent.max(1));
    let base = extent / shards;
    let extra = extent % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Per-slab outcome: the interior `[lo, hi)`, the slab origin, and the
/// slab's advanced grid.
type SlabResult<G> = Option<Result<(usize, usize, usize, G), PlanError>>;

/// Run `t` steps of `plan` on `grid` as parallel halo slabs and stitch
/// the result — bit-identical to `plan.run_2d(grid, t)`.
///
/// `lanes` supplies one single-thread plan per concurrent slab (see
/// [`lane_plans`]); the number of slabs executed is
/// `min(requested shards, lanes.len(), ny)`. With one slab this
/// degenerates to a plain run on `lanes[0]`.
pub fn run_sharded_2d(
    lanes: &[Plan],
    grid: &Grid2D,
    t: usize,
    shards: usize,
) -> Result<Grid2D, PlanError> {
    assert!(!lanes.is_empty(), "need at least one lane plan");
    let ny = grid.ny();
    let mut shards = shards.clamp(1, lanes.len()).clamp(1, ny.max(1));
    let (halo, min_span) = shard_geometry(&lanes[0], t, ny, &[grid.nx()]);
    let r_eff = lanes[0].effective_radius();
    // tessellate register plans additionally need every slab wide
    // enough to run the full run's per-round time blocks — shed shards
    // until that holds (1 shard always does: the slab is the grid)
    while shards > 1
        && interior_ranges(ny, shards).iter().any(|&(lo, hi)| {
            let (slo, shi) = slab_bounds(lo, hi, ny, halo, r_eff);
            shi - slo < min_span
        })
    {
        shards -= 1;
    }
    let ranges = interior_ranges(ny, shards);
    let mut out = Grid2D::zeros(ny, grid.nx());
    let mut slots: Vec<SlabResult<Grid2D>> = (0..ranges.len()).map(|_| None).collect();
    let run_slab = |lo: usize, hi: usize, lane: &Plan| {
        let (slab_lo, slab_hi) = slab_bounds(lo, hi, ny, halo, r_eff);
        let mut slab = Grid2D::zeros(slab_hi - slab_lo, grid.nx());
        for y in 0..slab_hi - slab_lo {
            slab.row_mut(y).copy_from_slice(grid.row(slab_lo + y));
        }
        // the slab's global origin anchors tessellate tile phase
        lane.run_2d_at(&slab, t, slab_lo)
            .map(|done| (lo, hi, slab_lo, done))
    };
    std::thread::scope(|scope| {
        let mut work = slots.iter_mut().zip(&ranges).zip(lanes);
        // the coordinator runs the last slab itself instead of idling
        // at the scope barrier: one fewer spawn, no oversubscription
        let inline = work.next_back();
        for ((slot, &(lo, hi)), lane) in work {
            let run_slab = &run_slab;
            scope.spawn(move || *slot = Some(run_slab(lo, hi, lane)));
        }
        if let Some(((slot, &(lo, hi)), lane)) = inline {
            *slot = Some(run_slab(lo, hi, lane));
        }
    });
    for slot in slots {
        let (lo, hi, slab_lo, done) = slot.expect("every slab thread writes its slot")?;
        for y in lo..hi {
            out.row_mut(y).copy_from_slice(done.row(y - slab_lo));
        }
    }
    Ok(out)
}

/// 3D counterpart of [`run_sharded_2d`]: slabs along `z`, bit-identical
/// to `plan.run_3d(grid, t)`.
pub fn run_sharded_3d(
    lanes: &[Plan],
    grid: &Grid3D,
    t: usize,
    shards: usize,
) -> Result<Grid3D, PlanError> {
    assert!(!lanes.is_empty(), "need at least one lane plan");
    let nz = grid.nz();
    let mut shards = shards.clamp(1, lanes.len()).clamp(1, nz.max(1));
    let (halo, min_span) = shard_geometry(&lanes[0], t, nz, &[grid.ny(), grid.nx()]);
    let r_eff = lanes[0].effective_radius();
    // same slab-span guard as run_sharded_2d
    while shards > 1
        && interior_ranges(nz, shards).iter().any(|&(lo, hi)| {
            let (slo, shi) = slab_bounds(lo, hi, nz, halo, r_eff);
            shi - slo < min_span
        })
    {
        shards -= 1;
    }
    let ranges = interior_ranges(nz, shards);
    let mut out = Grid3D::zeros(nz, grid.ny(), grid.nx());
    let mut slots: Vec<SlabResult<Grid3D>> = (0..ranges.len()).map(|_| None).collect();
    let run_slab = |lo: usize, hi: usize, lane: &Plan| {
        let (slab_lo, slab_hi) = slab_bounds(lo, hi, nz, halo, r_eff);
        let mut slab = Grid3D::zeros(slab_hi - slab_lo, grid.ny(), grid.nx());
        for z in 0..slab_hi - slab_lo {
            for y in 0..grid.ny() {
                slab.row_mut(z, y).copy_from_slice(grid.row(slab_lo + z, y));
            }
        }
        // the slab's global origin anchors tessellate tile phase
        lane.run_3d_at(&slab, t, slab_lo)
            .map(|done| (lo, hi, slab_lo, done))
    };
    std::thread::scope(|scope| {
        let mut work = slots.iter_mut().zip(&ranges).zip(lanes);
        // coordinator runs the last slab inline (see run_sharded_2d)
        let inline = work.next_back();
        for ((slot, &(lo, hi)), lane) in work {
            let run_slab = &run_slab;
            scope.spawn(move || *slot = Some(run_slab(lo, hi, lane)));
        }
        if let Some(((slot, &(lo, hi)), lane)) = inline {
            *slot = Some(run_slab(lo, hi, lane));
        }
    });
    for slot in slots {
        let (lo, hi, slab_lo, done) = slot.expect("every slab thread writes its slot")?;
        for z in lo..hi {
            for y in 0..grid.ny() {
                out.row_mut(z, y).copy_from_slice(done.row(z - slab_lo, y));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{kernels, Tiling};

    fn bits2d(g: &Grid2D) -> Vec<u64> {
        g.to_dense().iter().map(|v| v.to_bits()).collect()
    }

    fn bits3d(g: &Grid3D) -> Vec<u64> {
        g.to_dense().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn interior_ranges_cover_exactly() {
        assert_eq!(interior_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(interior_ranges(4, 8), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(interior_ranges(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn policy_declines_small_or_halo_dominated_jobs() {
        let p = ShardPolicy {
            min_points: 1000,
            max_shards: 8,
            min_slab: 4,
        };
        assert_eq!(p.shards_for(999, 100, 1), 1, "too few points");
        assert_eq!(p.shards_for(10_000, 100, 40), 1, "halo swallows the slab");
        assert!(p.shards_for(10_000, 100, 1) > 1);
        assert!(p.shards_for(10_000, 100, 1) <= 8);
    }

    #[test]
    fn slab_bounds_align_and_pad() {
        // aligned start, padded top keeping (span - 2 r_eff) % 8 == 0
        let (lo, hi) = slab_bounds(30, 60, 1000, 6, 2);
        assert_eq!(lo % SLAB_ALIGN, 0);
        assert!(lo <= 24 && hi >= 66);
        assert_eq!((hi - lo - 4) % SLAB_ALIGN, 0);
        // near the top edge: snapped to it
        let (_, hi) = slab_bounds(900, 995, 1000, 6, 2);
        assert_eq!(hi, 1000);
        // huge halo clips to the whole extent
        let (lo, hi) = slab_bounds(10, 20, 64, 1000, 1);
        assert_eq!((lo, hi), (0, 64));
    }

    #[test]
    fn sharded_2d_is_bit_identical_across_methods() {
        // deliberately awkward extent (97 rows: not a lane multiple, so
        // the full run has a scalar top-remainder the edge slab must
        // reproduce) across both executor families
        let g = Grid2D::from_fn(97, 60, |y, x| ((y * 31 + x * 7) % 23) as f64 * 0.5);
        let t = 5;
        for (method, tiling, threads) in [
            (Method::Scalar, Tiling::None, 1),
            (
                Method::MultipleLoads,
                Tiling::Tessellate { time_block: 2 },
                3,
            ),
            (Method::MultipleLoads, Tiling::Spatial { block: (8, 16) }, 2),
            (Method::TransposeLayout, Tiling::None, 1),
            (Method::Folded { m: 2 }, Tiling::None, 1),
        ] {
            let plan = Solver::new(kernels::box2d9p())
                .method(method)
                .tiling(tiling)
                .threads(threads)
                .compile()
                .unwrap();
            assert!(shardable(&plan), "{method:?}/{tiling:?}");
            let want = plan.run_2d(&g, t).unwrap();
            let lanes = lane_plans(&plan, 3).unwrap();
            for shards in [1, 2, 3] {
                let got = run_sharded_2d(&lanes, &g, t, shards).unwrap();
                assert_eq!(
                    bits2d(&want),
                    bits2d(&got),
                    "{method:?}/{tiling:?} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_3d_is_bit_identical() {
        let g = Grid3D::from_fn(26, 12, 16, |z, y, x| ((z * 5 + y * 3 + x) % 11) as f64);
        for (method, tiling, threads) in [
            (
                Method::MultipleLoads,
                Tiling::Tessellate { time_block: 2 },
                2,
            ),
            (Method::Folded { m: 2 }, Tiling::None, 1),
        ] {
            let plan = Solver::new(kernels::heat3d())
                .method(method)
                .tiling(tiling)
                .threads(threads)
                .compile()
                .unwrap();
            assert!(shardable(&plan), "{method:?}/{tiling:?}");
            let want = plan.run_3d(&g, 4).unwrap();
            let lanes = lane_plans(&plan, 2).unwrap();
            let got = run_sharded_3d(&lanes, &g, 4, 2).unwrap();
            assert_eq!(bits3d(&want), bits3d(&got), "{method:?}/{tiling:?}");
        }
    }

    #[test]
    fn non_shardable_configurations_are_refused() {
        // DLT transforms the whole array
        let plan = Solver::new(kernels::heat2d())
            .method(Method::Dlt)
            .tiling(Tiling::Split { time_block: 2 })
            .compile()
            .unwrap();
        assert!(!shardable(&plan));
        // 1D has no outer axis to cut
        let plan1d = Solver::new(kernels::heat1d()).compile().unwrap();
        assert!(!shardable(&plan1d));
    }

    #[test]
    fn sharded_register_pipelines_under_tessellate_are_bit_identical() {
        // the origin-anchored tile geometry: register plans now shard
        // under tessellate tiling, bit for bit, with the widened halo
        let g = Grid2D::from_fn(203, 72, |y, x| ((y * 29 + x * 11) % 31) as f64 * 0.25);
        let t = 6;
        for (method, tb) in [
            (Method::Folded { m: 2 }, 2usize),
            (Method::TransposeLayout, 3),
        ] {
            let plan = Solver::new(kernels::box2d9p())
                .method(method)
                .tiling(Tiling::Tessellate { time_block: tb })
                .threads(2)
                .compile()
                .unwrap();
            assert!(shardable(&plan), "{method:?}");
            let want = plan.run_2d(&g, t).unwrap();
            let lanes = lane_plans(&plan, 4).unwrap();
            for shards in [1usize, 2, 3, 4] {
                let got = run_sharded_2d(&lanes, &g, t, shards).unwrap();
                assert_eq!(bits2d(&want), bits2d(&got), "{method:?} shards={shards}");
            }
        }
    }

    #[test]
    fn sharded_3d_zring_under_tessellate_is_bit_identical() {
        // the z-ring pipeline sharded along z under tessellate tiling —
        // the combination this PR exists for
        let g = Grid3D::from_fn(96, 20, 24, |z, y, x| ((z * 13 + y * 7 + x * 3) % 17) as f64);
        for (p, m, t) in [
            (kernels::heat3d(), 2usize, 4usize),
            (kernels::box3d27p(), 2, 5), // odd t: exercises the unfolded tail rounds
        ] {
            let plan = Solver::new(p)
                .method(Method::Folded { m })
                .tiling(Tiling::Tessellate { time_block: 2 })
                .threads(2)
                .compile()
                .unwrap();
            assert!(shardable(&plan));
            let want = plan.run_3d(&g, t).unwrap();
            let lanes = lane_plans(&plan, 3).unwrap();
            for shards in [2usize, 3] {
                let got = run_sharded_3d(&lanes, &g, t, shards).unwrap();
                assert_eq!(bits3d(&want), bits3d(&got), "shards={shards} t={t}");
            }
        }
    }

    #[test]
    fn span_guard_sheds_shards_instead_of_diverging() {
        // a domain too small for the requested shard count under the
        // widened tessellate halo must still be bit-exact (fewer slabs
        // are executed, never wrong ones)
        let g = Grid3D::from_fn(28, 16, 20, |z, y, x| ((z + y * 3 + x) % 7) as f64);
        let plan = Solver::new(kernels::heat3d())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 4 })
            .compile()
            .unwrap();
        let want = plan.run_3d(&g, 6).unwrap();
        let lanes = lane_plans(&plan, 4).unwrap();
        let got = run_sharded_3d(&lanes, &g, 6, 4).unwrap();
        assert_eq!(bits3d(&want), bits3d(&got));
    }

    #[test]
    fn lane_plans_inherit_the_ring_geometry() {
        let plan = Solver::new(kernels::box3d27p())
            .method(Method::Folded { m: 2 })
            .ring3(stencil_core::Ring3 { depth: 5, slab: 3 })
            .compile()
            .unwrap();
        let lanes = lane_plans(&plan, 2).unwrap();
        for lane in &lanes {
            assert_eq!(lane.ring3(), plan.ring3());
        }
    }
}
