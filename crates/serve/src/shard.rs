//! Domain sharding: split a large 2D/3D job into halo-correct
//! sub-domain slabs along the outermost axis, execute the slabs in
//! parallel, and stitch the interiors back — **bit-identical** to the
//! unsharded run.
//!
//! The geometry arithmetic (why slab execution is exact, halo widening
//! under tessellate tiling, slab alignment) lives in
//! [`stencil_core::slab`] — it is shared with the out-of-core streaming
//! executor (`stencil-ooc`), which marches the same halo-widened slabs
//! through a file-backed window instead of across worker threads. This
//! module keeps the serving-side concerns: the [`ShardPolicy`] that
//! decides when sharding pays, per-slab single-thread lane plans, and
//! the scatter/stitch executors.
//!
//! Each slab runs on its own single-thread [`Plan`] (same pattern,
//! method, tiling, width and z-ring geometry as the source plan) so
//! the slabs really execute concurrently — a shared pool would
//! serialize them.

use stencil_core::{Plan, PlanError, Solver};
use stencil_grid::{Grid2D, Grid3D};

pub use stencil_core::slab::{
    effective_shards, interior_ranges, shard_geometry, shardable, slab_bounds, SLAB_ALIGN,
};

/// When and how much to shard. The service consults this per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Shard only jobs with at least this many grid points (small
    /// domains fit a cache and lose more to halo duplication than they
    /// gain from slab parallelism).
    pub min_points: usize,
    /// Upper bound on slabs per job (normally the machine's core
    /// count).
    pub max_shards: usize,
    /// A slab's interior must keep at least this many outer-axis
    /// layers *and* at least `2 * halo + 1` layers, or the shard count
    /// is reduced — halo work must never dominate.
    pub min_slab: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            min_points: 1 << 20,
            max_shards: stencil_runtime::available_parallelism(),
            min_slab: 16,
        }
    }
}

impl ShardPolicy {
    /// How many slabs to cut a domain of `points` total points and
    /// `outer` outermost-axis extent into, for a run whose halo is
    /// `halo` layers. Returns 1 (do not shard) when the domain is too
    /// small or the halo too deep to amortize.
    pub fn shards_for(&self, points: usize, outer: usize, halo: usize) -> usize {
        if points < self.min_points || self.max_shards <= 1 {
            return 1;
        }
        let min_interior = self.min_slab.max(2 * halo + 1);
        (outer / min_interior.max(1)).clamp(1, self.max_shards)
    }
}

/// Compile `lanes` single-thread clones of `plan`'s configuration —
/// one per concurrent slab, so parallel slab runs never contend for a
/// pool. The service's registry caches the returned set per plan key.
pub fn lane_plans(plan: &Plan, lanes: usize) -> Result<Vec<Plan>, PlanError> {
    (0..lanes.max(1))
        .map(|_| {
            let mut s = Solver::new(plan.pattern().clone())
                .method(plan.method())
                .tiling(plan.tiling())
                .width(plan.width())
                .threads(1);
            // the z-ring geometry changes slab-edge rounding inside the
            // 3D pipeline: lanes must execute the exact configuration
            // the source plan resolved, or the stitch is not bit-exact
            if let Some(ring) = plan.ring3() {
                s = s.ring3(ring);
            }
            s.compile()
        })
        .collect()
}

/// Per-slab outcome: the interior `[lo, hi)`, the slab origin, and the
/// slab's advanced grid.
type SlabResult<G> = Option<Result<(usize, usize, usize, G), PlanError>>;

/// Run `t` steps of `plan` on `grid` as parallel halo slabs and stitch
/// the result — bit-identical to `plan.run_2d(grid, t)`.
///
/// `lanes` supplies one single-thread plan per concurrent slab (see
/// [`lane_plans`]); the number of slabs executed is
/// `min(requested shards, lanes.len(), ny)`, further degraded by
/// [`effective_shards`] when the outer axis is too short to give every
/// worker an aligned slab of its own or the tessellate minimum span
/// binds. With one slab this degenerates to a plain run on `lanes[0]`.
pub fn run_sharded_2d(
    lanes: &[Plan],
    grid: &Grid2D,
    t: usize,
    shards: usize,
) -> Result<Grid2D, PlanError> {
    assert!(!lanes.is_empty(), "need at least one lane plan");
    let ny = grid.ny();
    let shards = shards.clamp(1, lanes.len());
    let (halo, min_span) = shard_geometry(&lanes[0], t, ny, &[grid.nx()]);
    let r_eff = lanes[0].effective_radius();
    let shards = effective_shards(ny, shards, halo, r_eff, min_span);
    let ranges = interior_ranges(ny, shards);
    let mut out = Grid2D::zeros(ny, grid.nx());
    let mut slots: Vec<SlabResult<Grid2D>> = (0..ranges.len()).map(|_| None).collect();
    let run_slab = |lo: usize, hi: usize, lane: &Plan| {
        let (slab_lo, slab_hi) = slab_bounds(lo, hi, ny, halo, r_eff);
        let mut slab = Grid2D::zeros(slab_hi - slab_lo, grid.nx());
        for y in 0..slab_hi - slab_lo {
            slab.row_mut(y).copy_from_slice(grid.row(slab_lo + y));
        }
        // the slab's global origin anchors tessellate tile phase
        lane.run_2d_at(&slab, t, slab_lo)
            .map(|done| (lo, hi, slab_lo, done))
    };
    {
        let _fanout = stencil_obs::span(stencil_obs::SpanId::ShardFanout);
        std::thread::scope(|scope| {
            let mut work = slots.iter_mut().zip(&ranges).zip(lanes);
            // the coordinator runs the last slab itself instead of idling
            // at the scope barrier: one fewer spawn, no oversubscription
            let inline = work.next_back();
            for ((slot, &(lo, hi)), lane) in work {
                let run_slab = &run_slab;
                scope.spawn(move || *slot = Some(run_slab(lo, hi, lane)));
            }
            if let Some(((slot, &(lo, hi)), lane)) = inline {
                *slot = Some(run_slab(lo, hi, lane));
            }
        });
    }
    let _join = stencil_obs::span(stencil_obs::SpanId::ShardJoin);
    for slot in slots {
        let (lo, hi, slab_lo, done) = slot.expect("every slab thread writes its slot")?;
        for y in lo..hi {
            out.row_mut(y).copy_from_slice(done.row(y - slab_lo));
        }
    }
    Ok(out)
}

/// 3D counterpart of [`run_sharded_2d`]: slabs along `z`, bit-identical
/// to `plan.run_3d(grid, t)`.
pub fn run_sharded_3d(
    lanes: &[Plan],
    grid: &Grid3D,
    t: usize,
    shards: usize,
) -> Result<Grid3D, PlanError> {
    assert!(!lanes.is_empty(), "need at least one lane plan");
    let nz = grid.nz();
    let shards = shards.clamp(1, lanes.len());
    let (halo, min_span) = shard_geometry(&lanes[0], t, nz, &[grid.ny(), grid.nx()]);
    let r_eff = lanes[0].effective_radius();
    // same degradation ladder as run_sharded_2d
    let shards = effective_shards(nz, shards, halo, r_eff, min_span);
    let ranges = interior_ranges(nz, shards);
    let mut out = Grid3D::zeros(nz, grid.ny(), grid.nx());
    let mut slots: Vec<SlabResult<Grid3D>> = (0..ranges.len()).map(|_| None).collect();
    let run_slab = |lo: usize, hi: usize, lane: &Plan| {
        let (slab_lo, slab_hi) = slab_bounds(lo, hi, nz, halo, r_eff);
        let mut slab = Grid3D::zeros(slab_hi - slab_lo, grid.ny(), grid.nx());
        for z in 0..slab_hi - slab_lo {
            for y in 0..grid.ny() {
                slab.row_mut(z, y).copy_from_slice(grid.row(slab_lo + z, y));
            }
        }
        // the slab's global origin anchors tessellate tile phase
        lane.run_3d_at(&slab, t, slab_lo)
            .map(|done| (lo, hi, slab_lo, done))
    };
    {
        let _fanout = stencil_obs::span(stencil_obs::SpanId::ShardFanout);
        std::thread::scope(|scope| {
            let mut work = slots.iter_mut().zip(&ranges).zip(lanes);
            // coordinator runs the last slab inline (see run_sharded_2d)
            let inline = work.next_back();
            for ((slot, &(lo, hi)), lane) in work {
                let run_slab = &run_slab;
                scope.spawn(move || *slot = Some(run_slab(lo, hi, lane)));
            }
            if let Some(((slot, &(lo, hi)), lane)) = inline {
                *slot = Some(run_slab(lo, hi, lane));
            }
        });
    }
    let _join = stencil_obs::span(stencil_obs::SpanId::ShardJoin);
    for slot in slots {
        let (lo, hi, slab_lo, done) = slot.expect("every slab thread writes its slot")?;
        for z in lo..hi {
            for y in 0..grid.ny() {
                out.row_mut(z, y).copy_from_slice(done.row(z - slab_lo, y));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{kernels, Method, Tiling};

    fn bits2d(g: &Grid2D) -> Vec<u64> {
        g.to_dense().iter().map(|v| v.to_bits()).collect()
    }

    fn bits3d(g: &Grid3D) -> Vec<u64> {
        g.to_dense().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn policy_declines_small_or_halo_dominated_jobs() {
        let p = ShardPolicy {
            min_points: 1000,
            max_shards: 8,
            min_slab: 4,
        };
        assert_eq!(p.shards_for(999, 100, 1), 1, "too few points");
        assert_eq!(p.shards_for(10_000, 100, 40), 1, "halo swallows the slab");
        assert!(p.shards_for(10_000, 100, 1) > 1);
        assert!(p.shards_for(10_000, 100, 1) <= 8);
    }

    #[test]
    fn sharded_2d_is_bit_identical_across_methods() {
        // deliberately awkward extent (97 rows: not a lane multiple, so
        // the full run has a scalar top-remainder the edge slab must
        // reproduce) across both executor families
        let g = Grid2D::from_fn(97, 60, |y, x| ((y * 31 + x * 7) % 23) as f64 * 0.5);
        let t = 5;
        for (method, tiling, threads) in [
            (Method::Scalar, Tiling::None, 1),
            (
                Method::MultipleLoads,
                Tiling::Tessellate { time_block: 2 },
                3,
            ),
            (Method::MultipleLoads, Tiling::Spatial { block: (8, 16) }, 2),
            (Method::TransposeLayout, Tiling::None, 1),
            (Method::Folded { m: 2 }, Tiling::None, 1),
        ] {
            let plan = Solver::new(kernels::box2d9p())
                .method(method)
                .tiling(tiling)
                .threads(threads)
                .compile()
                .unwrap();
            assert!(shardable(&plan), "{method:?}/{tiling:?}");
            let want = plan.run_2d(&g, t).unwrap();
            let lanes = lane_plans(&plan, 3).unwrap();
            for shards in [1, 2, 3] {
                let got = run_sharded_2d(&lanes, &g, t, shards).unwrap();
                assert_eq!(
                    bits2d(&want),
                    bits2d(&got),
                    "{method:?}/{tiling:?} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_3d_is_bit_identical() {
        let g = Grid3D::from_fn(26, 12, 16, |z, y, x| ((z * 5 + y * 3 + x) % 11) as f64);
        for (method, tiling, threads) in [
            (
                Method::MultipleLoads,
                Tiling::Tessellate { time_block: 2 },
                2,
            ),
            (Method::Folded { m: 2 }, Tiling::None, 1),
        ] {
            let plan = Solver::new(kernels::heat3d())
                .method(method)
                .tiling(tiling)
                .threads(threads)
                .compile()
                .unwrap();
            assert!(shardable(&plan), "{method:?}/{tiling:?}");
            let want = plan.run_3d(&g, 4).unwrap();
            let lanes = lane_plans(&plan, 2).unwrap();
            let got = run_sharded_3d(&lanes, &g, 4, 2).unwrap();
            assert_eq!(bits3d(&want), bits3d(&got), "{method:?}/{tiling:?}");
        }
    }

    #[test]
    fn non_shardable_configurations_are_refused() {
        // DLT transforms the whole array
        let plan = Solver::new(kernels::heat2d())
            .method(Method::Dlt)
            .tiling(Tiling::Split { time_block: 2 })
            .compile()
            .unwrap();
        assert!(!shardable(&plan));
        // 1D has no outer axis to cut
        let plan1d = Solver::new(kernels::heat1d()).compile().unwrap();
        assert!(!shardable(&plan1d));
    }

    #[test]
    fn sharded_register_pipelines_under_tessellate_are_bit_identical() {
        // the origin-anchored tile geometry: register plans now shard
        // under tessellate tiling, bit for bit, with the widened halo
        let g = Grid2D::from_fn(203, 72, |y, x| ((y * 29 + x * 11) % 31) as f64 * 0.25);
        let t = 6;
        for (method, tb) in [
            (Method::Folded { m: 2 }, 2usize),
            (Method::TransposeLayout, 3),
        ] {
            let plan = Solver::new(kernels::box2d9p())
                .method(method)
                .tiling(Tiling::Tessellate { time_block: tb })
                .threads(2)
                .compile()
                .unwrap();
            assert!(shardable(&plan), "{method:?}");
            let want = plan.run_2d(&g, t).unwrap();
            let lanes = lane_plans(&plan, 4).unwrap();
            for shards in [1usize, 2, 3, 4] {
                let got = run_sharded_2d(&lanes, &g, t, shards).unwrap();
                assert_eq!(bits2d(&want), bits2d(&got), "{method:?} shards={shards}");
            }
        }
    }

    #[test]
    fn sharded_3d_zring_under_tessellate_is_bit_identical() {
        // the z-ring pipeline sharded along z under tessellate tiling —
        // the combination this PR exists for
        let g = Grid3D::from_fn(96, 20, 24, |z, y, x| ((z * 13 + y * 7 + x * 3) % 17) as f64);
        for (p, m, t) in [
            (kernels::heat3d(), 2usize, 4usize),
            (kernels::box3d27p(), 2, 5), // odd t: exercises the unfolded tail rounds
        ] {
            let plan = Solver::new(p)
                .method(Method::Folded { m })
                .tiling(Tiling::Tessellate { time_block: 2 })
                .threads(2)
                .compile()
                .unwrap();
            assert!(shardable(&plan));
            let want = plan.run_3d(&g, t).unwrap();
            let lanes = lane_plans(&plan, 3).unwrap();
            for shards in [2usize, 3] {
                let got = run_sharded_3d(&lanes, &g, t, shards).unwrap();
                assert_eq!(bits3d(&want), bits3d(&got), "shards={shards} t={t}");
            }
        }
    }

    #[test]
    fn span_guard_sheds_shards_instead_of_diverging() {
        // a domain too small for the requested shard count under the
        // widened tessellate halo must still be bit-exact (fewer slabs
        // are executed, never wrong ones)
        let g = Grid3D::from_fn(28, 16, 20, |z, y, x| ((z + y * 3 + x) % 7) as f64);
        let plan = Solver::new(kernels::heat3d())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 4 })
            .compile()
            .unwrap();
        let want = plan.run_3d(&g, 6).unwrap();
        let lanes = lane_plans(&plan, 4).unwrap();
        let got = run_sharded_3d(&lanes, &g, 6, 4).unwrap();
        assert_eq!(bits3d(&want), bits3d(&got));
    }

    #[test]
    fn short_outer_axis_degrades_workers_not_slab_geometry() {
        // nz < SLAB_ALIGN * workers: the aligned slab starts of
        // neighbouring shards collapse, so each worker would re-run
        // (almost) the whole domain for a sliver of interior. The
        // effective shard count must degrade to one aligned slab per
        // worker — and the stitched result must stay bit-exact.
        let nz = 20;
        let workers = 4;
        assert!(nz < SLAB_ALIGN * workers);
        assert_eq!(effective_shards(nz, workers, 2, 1, 0), nz / SLAB_ALIGN);
        // below a single aligned slab the job is not sharded at all
        assert_eq!(effective_shards(6, workers, 1, 1, 0), 1);

        let g = Grid3D::from_fn(nz, 18, 24, |z, y, x| ((z * 7 + y * 5 + x) % 13) as f64);
        for (method, tiling) in [
            (Method::Folded { m: 2 }, Tiling::None),
            (Method::MultipleLoads, Tiling::Tessellate { time_block: 2 }),
        ] {
            let plan = Solver::new(kernels::heat3d())
                .method(method)
                .tiling(tiling)
                .compile()
                .unwrap();
            let want = plan.run_3d(&g, 4).unwrap();
            let lanes = lane_plans(&plan, workers).unwrap();
            let got = run_sharded_3d(&lanes, &g, 4, workers).unwrap();
            assert_eq!(bits3d(&want), bits3d(&got), "{method:?}/{tiling:?}");
        }
    }

    #[test]
    fn lane_plans_inherit_the_ring_geometry() {
        let plan = Solver::new(kernels::box3d27p())
            .method(Method::Folded { m: 2 })
            .ring3(stencil_core::Ring3 { depth: 5, slab: 3 })
            .compile()
            .unwrap();
        let lanes = lane_plans(&plan, 2).unwrap();
        for lane in &lanes {
            assert_eq!(lane.ring3(), plan.ring3());
        }
    }
}
