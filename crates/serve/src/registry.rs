//! The plan registry: a concurrent map from (pattern signature ×
//! domain shape class × tuning mode) to compiled [`Plan`]s, shared by
//! every executor worker.
//!
//! Keys reuse the exact identity the per-host tuning cache keys by —
//! [`Pattern::signature`] and [`stencil_core::tune::shape_class`] — so
//! a registry slot and its tuning-cache entry always describe the same
//! problem class. All plans compile against one shared worker pool
//! ([`stencil_runtime::PoolHandle::shared`]); lookups on the serving
//! path are a lock + string hash, never a compile.
//!
//! Warm-at-startup: [`PlanRegistry::warm`] walks a
//! [`Manifest`] and compiles every declared pattern up
//! front. Under `Tuning::CacheOnly` a warmed host reaches serving state
//! with **zero probe runs**; a cold cache (or a binary whose ISA
//! fingerprint diverged from the cache's host stamp) degrades to the
//! static cost model and surfaces a one-line warning on the stats
//! surface instead of silently re-probing.

use crate::manifest::{tuning_to_str, Manifest};
use crate::metrics::ServeStats;
use crate::shard::{self, ShardPolicy};
use std::collections::HashMap;
use std::sync::Arc;
use stencil_core::tune::shape_class;
use stencil_core::{Method, Pattern, Plan, PlanError, Solver, Tiling, Tuning};
use stencil_runtime::sync::Mutex;
use stencil_runtime::PoolHandle;

/// Which execution shape a registry entry serves.
///
/// Large jobs are sharded into single-thread slabs, and the register
/// pipelines are only bit-exactly shardable in their block-free form
/// (see [`shard::shardable`]) — so a pattern the service both shards
/// and serves unsharded gets two entries: the pool-parallel tiled plan
/// and the block-free slab plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// The tiling the tuner/cost model picks; runs on the shared pool.
    Pooled,
    /// Block-free (`Tiling::None`); the configuration slab lanes clone.
    BlockFree,
}

impl PlanShape {
    fn token(self) -> &'static str {
        match self {
            PlanShape::Pooled => "pooled",
            PlanShape::BlockFree => "bf",
        }
    }
}

/// Outcome of a manifest warm-up.
#[derive(Debug, Default)]
pub struct WarmReport {
    /// Manifest entries (× shapes) resolved to a registered plan —
    /// compiled, or already present when two entries share a registry
    /// key (same signature, shape class and mode).
    pub loaded: usize,
    /// Entry × shape resolutions (same granularity as `loaded`) that
    /// fell back from a measured tuning mode to the static cost model
    /// (cold tune cache / missing tuner / foreign-ISA stamp) — each
    /// also produced a stats warning.
    pub fallbacks: usize,
    /// Entries that failed to compile at all.
    pub failed: Vec<(String, PlanError)>,
}

/// Concurrent map from plan key to compiled plan (plus the per-key
/// single-thread lane plans the sharder uses).
pub struct PlanRegistry {
    pool: PoolHandle,
    policy: ShardPolicy,
    plans: Mutex<HashMap<String, Arc<Plan>>>,
    /// Single-thread slab lanes per key, tagged with the plan they
    /// were compiled from: a cold-key recovery replaces the registry
    /// plan, and stale lanes must never be served for it.
    lanes: Mutex<HashMap<String, LaneSet>>,
    /// Keys currently served by a cold-start fallback plan (CacheOnly
    /// requested, static model delivered), with a hit counter that
    /// throttles recovery retries. Periodic hits on these keys retry
    /// the real resolution, so re-warming the tune cache takes effect
    /// in a running service instead of requiring a restart.
    cold: Mutex<HashMap<String, u64>>,
    /// Consecutive worker-panic counts per key; a key at or past
    /// [`QUARANTINE_PANICS`] is quarantined (see
    /// [`PlanRegistry::quarantined`]).
    panics: Mutex<HashMap<String, u32>>,
    stats: Arc<ServeStats>,
}

/// A cold key retries its real resolution on the first hit and then
/// every this-many hits — recovery stays prompt without putting a
/// tuner consult on every request of a permanently cold deployment.
pub const COLD_RETRY_PERIOD: u64 = 16;

/// Consecutive worker panics on one registry key before the key is
/// quarantined: further submissions are rejected with
/// [`crate::ServeError::Quarantined`] instead of burning a worker (and
/// a caller timeout) per crash. Any panic-free execution on the key
/// resets the count; [`PlanRegistry::swap_plan`] lifts an active
/// quarantine, so a retune/hot-swap is the recovery path.
pub const QUARANTINE_PANICS: u32 = 3;

/// Cached slab lanes plus the source plan they were cloned from. The
/// strong `Arc` is the identity tag: holding it pins the allocation,
/// so pointer equality can never alias a recycled address (no ABA).
type LaneSet = (Arc<Plan>, Arc<Vec<Plan>>);

impl PlanRegistry {
    /// Registry whose plans share one process-wide pool of `threads`
    /// workers; `policy` decides which manifest entries also pre-warm
    /// their block-free shard variant.
    pub fn new(threads: usize, policy: ShardPolicy, stats: Arc<ServeStats>) -> Self {
        Self {
            pool: PoolHandle::shared(threads),
            policy,
            plans: Mutex::new(HashMap::new()),
            lanes: Mutex::new(HashMap::new()),
            cold: Mutex::new(HashMap::new()),
            panics: Mutex::new(HashMap::new()),
            stats,
        }
    }

    /// The registry key for a request:
    /// `signature|shape-class|mode|shape`.
    pub fn key(
        pattern: &Pattern,
        domain_hint: Option<&[usize]>,
        tuning: Tuning,
        shape: PlanShape,
    ) -> String {
        format!(
            "{}|{}|{}|{}",
            pattern.signature(),
            shape_class(domain_hint),
            tuning_to_str(tuning),
            shape.token()
        )
    }

    /// The shared pool every registered plan runs on.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The already-registered plan for a request, if any (counts a
    /// hit/miss either way).
    pub fn get(
        &self,
        pattern: &Pattern,
        domain_hint: Option<&[usize]>,
        tuning: Tuning,
        shape: PlanShape,
    ) -> Option<Arc<Plan>> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = Self::key(pattern, domain_hint, tuning, shape);
        let found = self.plans.lock().get(&key).cloned();
        match &found {
            Some(_) => self.stats.plan_hits.fetch_add(1, Relaxed),
            None => self.stats.plan_misses.fetch_add(1, Relaxed),
        };
        found
    }

    /// The plan for a request, compiling and registering it on first
    /// use. `Method::Auto` + `Tiling::Auto` are resolved through the
    /// requested tuning mode; a `CacheOnly` request whose per-host
    /// cache entry is missing (cold cache, foreign ISA stamp) or whose
    /// tuner is absent **falls back to the static cost model** and
    /// pushes a one-line warning — a registered plan beats a refused
    /// job, but the cold start must be visible to operators.
    pub fn get_or_compile(
        &self,
        pattern: &Pattern,
        domain_hint: Option<&[usize]>,
        tuning: Tuning,
        shape: PlanShape,
    ) -> Result<Arc<Plan>, PlanError> {
        self.entry_for(pattern, domain_hint, tuning, shape)
            .map(|(_, plan)| plan)
    }

    /// [`PlanRegistry::get_or_compile`] returning the registry key
    /// alongside the plan — the submission path needs both, and the
    /// key (an FNV hash over every pattern weight) should be built
    /// once per job, not twice.
    pub fn entry_for(
        &self,
        pattern: &Pattern,
        domain_hint: Option<&[usize]>,
        tuning: Tuning,
        shape: PlanShape,
    ) -> Result<(String, Arc<Plan>), PlanError> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = Self::key(pattern, domain_hint, tuning, shape);
        // bind the lookup before the `if let`: a scrutinee temporary
        // would hold the plans lock across the body, deadlocking the
        // re-lock in the recovery path below
        let hit = self.plans.lock().get(&key).cloned();
        if let Some(plan) = hit {
            self.stats.plan_hits.fetch_add(1, Relaxed);
            // a key served by a cold-start fallback periodically
            // retries the real resolution, so re-warming the tune
            // cache upgrades a running service instead of requiring a
            // restart — throttled, so a permanently cold deployment
            // does not pay a tuner consult per request
            let retry_now = {
                let mut cold = self.cold.lock();
                match cold.get_mut(&key) {
                    None => false,
                    Some(hits) => {
                        *hits += 1;
                        *hits % COLD_RETRY_PERIOD == 1
                    }
                }
            };
            if retry_now {
                // always retry under CacheOnly, whatever mode went
                // cold: a warm cache upgrades the key, and a probing
                // Measured resolve must never run on the serving path
                if let Ok(fresh) = self.compile(pattern, domain_hint, Tuning::CacheOnly, shape) {
                    let fresh = Arc::new(fresh);
                    self.plans.lock().insert(key.clone(), Arc::clone(&fresh));
                    self.lanes.lock().remove(&key);
                    self.cold.lock().remove(&key);
                    self.stats.cold_recoveries.fetch_add(1, Relaxed);
                    self.stats.warn(format!(
                        "recovered: tune cache now resolves the previously cold key; \
                         serving the measured plan for {key:?}"
                    ));
                    return Ok((key, fresh));
                }
            }
            return Ok((key, plan));
        }
        self.stats.plan_misses.fetch_add(1, Relaxed);
        let mut went_cold = false;
        let plan = match self.compile(pattern, domain_hint, tuning, shape) {
            Ok(plan) => plan,
            Err(PlanError::TuneCacheMiss { key: miss }) if tuning == Tuning::CacheOnly => {
                self.stats.cold_fallbacks.fetch_add(1, Relaxed);
                self.stats.warn(format!(
                    "cold start: tune cache has no entry for {miss:?}; serving the static \
                     cost-model plan (re-warm with Tuning::Measured or `stencil-bench tune`)"
                ));
                went_cold = true;
                self.compile(pattern, domain_hint, Tuning::Static, shape)?
            }
            Err(PlanError::TunerUnavailable { mode }) => {
                self.stats.cold_fallbacks.fetch_add(1, Relaxed);
                self.stats.warn(format!(
                    "cold start: {mode:?} tuning requested but no measured tuner is \
                     installed; serving the static cost-model plan"
                ));
                went_cold = true;
                self.compile(pattern, domain_hint, Tuning::Static, shape)?
            }
            Err(e) => return Err(e),
        };
        let plan = Arc::new(plan);
        if went_cold {
            self.cold.lock().insert(key.clone(), 0);
        }
        // two racers may compile the same key; first insert wins so
        // every caller sees one canonical plan per key
        let mut map = self.plans.lock();
        let entry = map.entry(key.clone()).or_insert_with(|| Arc::clone(&plan));
        let plan = Arc::clone(entry);
        drop(map);
        Ok((key, plan))
    }

    /// The consecutive-panic count for `key` when it has reached the
    /// [`QUARANTINE_PANICS`] threshold — `None` while the key is still
    /// servable. The submission path consults this *after* resolving
    /// the registry key and rejects quarantined jobs before they reach
    /// the queue.
    pub fn quarantined(&self, key: &str) -> Option<u32> {
        self.panics
            .lock()
            .get(key)
            .copied()
            .filter(|&n| n >= QUARANTINE_PANICS)
    }

    /// Record a worker panic while executing a job resolved to `key`;
    /// returns the new consecutive count (the caller warns when it
    /// crosses [`QUARANTINE_PANICS`]).
    pub fn note_panic(&self, key: &str) -> u32 {
        let mut map = self.panics.lock();
        let n = map.entry(key.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    /// Record a panic-free execution on `key`: the consecutive-panic
    /// count resets, so only an unbroken run of panics quarantines.
    pub fn note_panic_free(&self, key: &str) {
        self.panics.lock().remove(key);
    }

    /// The plan currently registered under a raw key, if any — no
    /// hit/miss accounting (this is the retuning decider's
    /// introspection path, not the serving path).
    pub fn plan_for_key(&self, key: &str) -> Option<Arc<Plan>> {
        self.plans.lock().get(key).cloned()
    }

    /// Atomically replace the plan registered under `key` — the
    /// retuning hot-swap. Same invalidation discipline as a cold-key
    /// recovery: the stale shard lanes are dropped (the `Arc::ptr_eq`
    /// tag in [`PlanRegistry::lane_plans`] would refuse them anyway),
    /// any cold marker is cleared, and an active panic quarantine is
    /// lifted. Jobs already resolved keep
    /// their `Arc<Plan>` and finish on the old generation bit-exactly;
    /// only jobs resolved after this call see the new plan.
    pub fn swap_plan(&self, key: &str, plan: Arc<Plan>) {
        use std::sync::atomic::Ordering::Relaxed;
        let epoch = plan.epoch();
        self.plans.lock().insert(key.to_string(), plan);
        self.lanes.lock().remove(key);
        self.cold.lock().remove(key);
        // a hot-swap is the recovery path out of a panic quarantine:
        // the new generation starts with a clean consecutive count
        self.panics.lock().remove(key);
        self.stats.swaps.fetch_add(1, Relaxed);
        self.stats.warn(format!(
            "retune: hot-swapped the plan for {key:?} (now epoch {epoch}); in-flight \
             jobs finish on the previous generation"
        ));
    }

    fn compile(
        &self,
        pattern: &Pattern,
        domain_hint: Option<&[usize]>,
        tuning: Tuning,
        shape: PlanShape,
    ) -> Result<Plan, PlanError> {
        let tiling = match shape {
            PlanShape::Pooled => Tiling::Auto,
            PlanShape::BlockFree => Tiling::None,
        };
        let mut solver = Solver::new(pattern.clone())
            .method(Method::Auto)
            .tiling(tiling)
            .tuning(tuning)
            .pool(self.pool.clone());
        if let Some(hint) = domain_hint {
            solver = solver.domain_hint(hint);
        }
        solver.compile()
    }

    /// The cached single-thread lane plans backing sharded execution of
    /// `plan` (compiled once per registry key, sized to `lanes`; a
    /// request for more lanes than cached recompiles the set). Cached
    /// sets are only reused for the *same* plan instance — after a
    /// cold-key recovery swaps the registry plan, the next sharded job
    /// rebuilds its lanes from the fresh configuration.
    pub fn lane_plans(
        &self,
        key: &str,
        plan: &Arc<Plan>,
        lanes: usize,
    ) -> Result<Arc<Vec<Plan>>, PlanError> {
        if let Some((src, set)) = self.lanes.lock().get(key) {
            if Arc::ptr_eq(src, plan) && set.len() >= lanes {
                return Ok(Arc::clone(set));
            }
        }
        let set = Arc::new(shard::lane_plans(plan.as_ref(), lanes)?);
        // compiled outside the lock, so re-check before inserting: a
        // concurrent compile for the same key and plan may have cached
        // a set already — keep whichever is larger (smaller sets are a
        // strict prefix use-case); a different plan always replaces
        let mut map = self.lanes.lock();
        match map.get(key) {
            Some((src, existing)) if Arc::ptr_eq(src, plan) && existing.len() >= set.len() => {
                Ok(Arc::clone(existing))
            }
            _ => {
                map.insert(key.to_string(), (Arc::clone(plan), Arc::clone(&set)));
                Ok(set)
            }
        }
    }

    /// Compile every manifest entry up front (see the module docs for
    /// the cold-start semantics). Entries whose expected domain is
    /// large enough for the shard policy also pre-warm their
    /// block-free slab variant, so the first big job does not pay a
    /// compile either. Also drains the installed tuner's load warnings
    /// (corrupt cache file, foreign-ISA entries) onto the stats
    /// surface, so `warm` is the moment a bad cache becomes visible.
    pub fn warm(&self, manifest: &Manifest) -> WarmReport {
        use std::sync::atomic::Ordering::Relaxed;
        let mut report = WarmReport::default();
        for entry in &manifest.entries {
            let tuning = entry.tuning.unwrap_or(manifest.default_tuning);
            let hint = entry.domain_hint.as_deref();
            let mut shapes = vec![PlanShape::Pooled];
            if entry.pattern.dims() >= 2 {
                let points: usize = hint.map(|h| h.iter().product()).unwrap_or(0);
                if points >= self.policy.min_points && self.policy.max_shards > 1 {
                    shapes.push(PlanShape::BlockFree);
                }
            }
            for shape in shapes {
                match self.entry_for(&entry.pattern, hint, tuning, shape) {
                    Ok((key, plan)) => {
                        report.loaded += 1;
                        self.stats.warm_loaded.fetch_add(1, Relaxed);
                        // per-entry cold state, not a diff of the global
                        // counter: concurrent submissions' fallbacks
                        // must not be misattributed to this entry
                        if self.cold.lock().contains_key(&key) {
                            report.fallbacks += 1;
                        }
                        // pre-warm the slab lanes too: the first big
                        // job must not pay `shards` compiles on the
                        // executor hot path
                        if shape == PlanShape::BlockFree && shard::shardable(&plan) {
                            if let Err(e) = self.lane_plans(&key, &plan, self.policy.max_shards) {
                                self.stats.warn(format!(
                                    "warm-up: lane plans for {:?} failed to compile: {e}",
                                    entry.name
                                ));
                            }
                        }
                    }
                    Err(e) => {
                        self.stats.warn(format!(
                            "warm-up: manifest entry {:?} ({shape:?}) failed to compile: {e}",
                            entry.name
                        ));
                        report.failed.push((entry.name.clone(), e));
                    }
                }
            }
        }
        // a Static-only manifest never touched the tuner; draining
        // here would steal another (measured) service's load warnings
        let used_measured = manifest
            .entries
            .iter()
            .any(|e| e.tuning.unwrap_or(manifest.default_tuning) != Tuning::Static);
        if used_measured {
            if let Some(tuner) = stencil_tune::installed_auto() {
                for w in tuner.drain_warnings() {
                    self.stats.warn(w);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn registry() -> (PlanRegistry, Arc<ServeStats>) {
        let stats = Arc::new(ServeStats::new());
        let policy = ShardPolicy {
            min_points: 1 << 20,
            max_shards: 4,
            min_slab: 16,
        };
        (PlanRegistry::new(2, policy, Arc::clone(&stats)), stats)
    }

    #[test]
    fn keys_split_by_signature_class_mode_and_shape() {
        let p = kernels::heat2d();
        let a = PlanRegistry::key(&p, None, Tuning::Static, PlanShape::Pooled);
        assert_ne!(
            a,
            PlanRegistry::key(&kernels::box2d9p(), None, Tuning::Static, PlanShape::Pooled)
        );
        assert_ne!(
            a,
            PlanRegistry::key(&p, Some(&[64, 64]), Tuning::Static, PlanShape::Pooled)
        );
        assert_ne!(
            a,
            PlanRegistry::key(&p, None, Tuning::CacheOnly, PlanShape::Pooled)
        );
        assert_ne!(
            a,
            PlanRegistry::key(&p, None, Tuning::Static, PlanShape::BlockFree)
        );
        assert_eq!(
            a,
            PlanRegistry::key(&p, None, Tuning::Static, PlanShape::Pooled)
        );
    }

    #[test]
    fn compile_once_then_hit() {
        use std::sync::atomic::Ordering::Relaxed;
        let (reg, stats) = registry();
        let p = kernels::heat2d();
        let a = reg
            .get_or_compile(&p, None, Tuning::Static, PlanShape::Pooled)
            .unwrap();
        let b = reg
            .get_or_compile(&p, None, Tuning::Static, PlanShape::Pooled)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        assert_eq!(stats.plan_misses.load(Relaxed), 1);
        assert_eq!(stats.plan_hits.load(Relaxed), 1);
        // every plan shares the registry pool
        assert!(PoolHandle::ptr_eq(a.pool(), reg.pool()));
        assert_ne!(a.method(), Method::Auto);
        assert_ne!(a.tiling(), Tiling::Auto);
        // the block-free shape is a distinct entry with Tiling::None
        let bf = reg
            .get_or_compile(&p, None, Tuning::Static, PlanShape::BlockFree)
            .unwrap();
        assert_eq!(bf.tiling(), Tiling::None);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn cache_only_without_tuner_degrades_to_static_with_warning() {
        use std::sync::atomic::Ordering::Relaxed;
        let (reg, stats) = registry();
        let p = kernels::heat1d();
        // this test binary installs no tuner: CacheOnly cannot resolve,
        // the registry must fall back and say so
        let plan = reg
            .get_or_compile(&p, None, Tuning::CacheOnly, PlanShape::Pooled)
            .unwrap();
        assert_ne!(plan.method(), Method::Auto);
        assert_eq!(stats.cold_fallbacks.load(Relaxed), 1);
        let snap = stats.snapshot();
        assert!(
            snap.warnings.iter().any(|w| w.contains("cold start")),
            "{:?}",
            snap.warnings
        );
    }

    #[test]
    fn warm_compiles_every_manifest_entry_plus_shard_variants() {
        let (reg, stats) = registry();
        let mut m = Manifest::new(Tuning::Static);
        m.push_kernel("heat2d", Some(&[2048, 2048])) // large: + bf variant
            .push_kernel("box2d9p", None) // no hint: pooled only
            .push_kernel("heat1d", Some(&[1 << 22])); // 1D: pooled only
        let report = reg.warm(&m);
        assert_eq!(report.loaded, 4, "3 pooled + 1 block-free");
        assert!(report.failed.is_empty());
        assert_eq!(reg.len(), 4);
        assert_eq!(stats.snapshot().warm_loaded, 4);
        // warm plans are hits now
        let p = kernels::heat2d();
        assert!(reg
            .get(&p, Some(&[2048, 2048]), Tuning::Static, PlanShape::Pooled)
            .is_some());
        assert!(reg
            .get(
                &p,
                Some(&[2048, 2048]),
                Tuning::Static,
                PlanShape::BlockFree
            )
            .is_some());
    }

    #[test]
    fn swap_plan_replaces_the_entry_and_invalidates_stale_lanes() {
        let (reg, stats) = registry();
        let p = kernels::box2d9p();
        let plan = reg
            .get_or_compile(&p, None, Tuning::Static, PlanShape::BlockFree)
            .unwrap();
        let key = PlanRegistry::key(&p, None, Tuning::Static, PlanShape::BlockFree);
        let lanes = reg.lane_plans(&key, &plan, 2).unwrap();
        // a challenger generation: same configuration, next epoch
        let fresh = Arc::new(
            Solver::new(p.clone())
                .method(plan.method())
                .tiling(plan.tiling())
                .width(plan.width())
                .pool(reg.pool().clone())
                .epoch(plan.epoch() + 1)
                .compile()
                .unwrap(),
        );
        reg.swap_plan(&key, Arc::clone(&fresh));
        let now = reg.plan_for_key(&key).unwrap();
        assert!(Arc::ptr_eq(&now, &fresh));
        assert_eq!(now.epoch(), plan.epoch() + 1);
        let snap = stats.snapshot();
        assert_eq!(snap.swaps, 1);
        assert!(snap.warnings.iter().any(|w| w.contains("hot-swapped")));
        // the stale lane set was dropped: the next sharded request
        // rebuilds against the new generation
        let rebuilt = reg.lane_plans(&key, &fresh, 2).unwrap();
        assert!(!Arc::ptr_eq(&lanes, &rebuilt));
        // the old Arc is untouched — an in-flight job holding it
        // finishes on its own generation
        assert_eq!(plan.epoch(), 0);
    }

    #[test]
    fn cold_retry_is_throttled_while_the_cache_stays_cold() {
        use std::sync::atomic::Ordering::Relaxed;
        let (reg, stats) = registry();
        let p = kernels::heat1d();
        // no tuner is installed in this binary: the CacheOnly resolve
        // falls back to the static model and marks the key cold
        let (key, first) = reg
            .entry_for(&p, None, Tuning::CacheOnly, PlanShape::Pooled)
            .unwrap();
        assert_eq!(stats.cold_fallbacks.load(Relaxed), 1);
        assert_eq!(reg.cold.lock().get(&key).copied(), Some(0));
        // hammer the cold key for several retry periods; every retry
        // fails (still no tuner), so the key must stay cold, keep
        // serving the same fallback plan, and never warn again — the
        // throttle is what keeps a permanently cold deployment quiet
        let hits = 2 * COLD_RETRY_PERIOD + 3;
        for _ in 0..hits {
            let (_, plan) = reg
                .entry_for(&p, None, Tuning::CacheOnly, PlanShape::Pooled)
                .unwrap();
            assert!(Arc::ptr_eq(&plan, &first));
        }
        assert_eq!(
            reg.cold.lock().get(&key).copied(),
            Some(hits),
            "every hit on a cold key advances its throttle counter"
        );
        assert_eq!(stats.cold_recoveries.load(Relaxed), 0);
        assert_eq!(stats.cold_fallbacks.load(Relaxed), 1);
        let snap = stats.snapshot();
        assert_eq!(
            snap.warnings
                .iter()
                .filter(|w| w.contains("cold start"))
                .count(),
            1,
            "failed retries must not spam warnings: {:?}",
            snap.warnings
        );
        assert_eq!(snap.tuner_probes, 0, "retries never probe");
    }

    #[test]
    fn measured_cold_keys_throttle_the_same_and_never_probe() {
        use std::sync::atomic::Ordering::Relaxed;
        let (reg, stats) = registry();
        let p = kernels::heat1d();
        // Measured with no tuner installed degrades to the static
        // model too (TunerUnavailable), and the key goes cold under
        // its own mode token
        let (key, _) = reg
            .entry_for(&p, None, Tuning::Measured, PlanShape::Pooled)
            .unwrap();
        assert_eq!(stats.cold_fallbacks.load(Relaxed), 1);
        assert!(reg.cold.lock().contains_key(&key));
        for _ in 0..COLD_RETRY_PERIOD + 1 {
            reg.entry_for(&p, None, Tuning::Measured, PlanShape::Pooled)
                .unwrap();
        }
        // the periodic retry resolves under CacheOnly regardless of
        // the mode that went cold — a probing Measured resolve must
        // never run on the serving path
        assert_eq!(stats.snapshot().tuner_probes, 0);
        assert_eq!(stats.cold_recoveries.load(Relaxed), 0);
        assert!(reg.cold.lock().contains_key(&key), "key stays cold");
    }

    #[test]
    fn quarantine_needs_consecutive_panics_and_success_resets() {
        let (reg, _) = registry();
        let key = "sig|class|static|pooled";
        assert_eq!(reg.quarantined(key), None);
        for n in 1..QUARANTINE_PANICS {
            assert_eq!(reg.note_panic(key), n);
            assert_eq!(
                reg.quarantined(key),
                None,
                "below the threshold the key still serves"
            );
        }
        // a clean execution in between resets the streak
        reg.note_panic_free(key);
        assert_eq!(reg.note_panic(key), 1);
        reg.note_panic_free(key);
        // an unbroken streak quarantines at exactly the threshold
        for _ in 0..QUARANTINE_PANICS {
            reg.note_panic(key);
        }
        assert_eq!(reg.quarantined(key), Some(QUARANTINE_PANICS));
        // other keys are unaffected
        assert_eq!(reg.quarantined("other|key"), None);
    }

    #[test]
    fn swap_plan_lifts_an_active_quarantine() {
        let (reg, _) = registry();
        let p = kernels::heat2d();
        let plan = reg
            .get_or_compile(&p, None, Tuning::Static, PlanShape::Pooled)
            .unwrap();
        let key = PlanRegistry::key(&p, None, Tuning::Static, PlanShape::Pooled);
        for _ in 0..QUARANTINE_PANICS + 2 {
            reg.note_panic(&key);
        }
        assert!(reg.quarantined(&key).is_some());
        reg.swap_plan(&key, plan);
        assert_eq!(
            reg.quarantined(&key),
            None,
            "a hot-swapped generation starts with a clean record"
        );
    }

    #[test]
    fn lane_plans_are_cached_per_key_and_grow_on_demand() {
        let (reg, _) = registry();
        let p = kernels::box2d9p();
        let plan = reg
            .get_or_compile(&p, None, Tuning::Static, PlanShape::BlockFree)
            .unwrap();
        let key = PlanRegistry::key(&p, None, Tuning::Static, PlanShape::BlockFree);
        let a = reg.lane_plans(&key, &plan, 2).unwrap();
        let b = reg.lane_plans(&key, &plan, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2);
        let c = reg.lane_plans(&key, &plan, 4).unwrap();
        assert_eq!(c.len(), 4);
        for lane in c.iter() {
            assert_eq!(lane.method(), plan.method());
            assert_eq!(lane.pool().threads(), 1);
        }
    }
}
