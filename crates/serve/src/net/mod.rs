//! Network front end for multi-tenant serving.
//!
//! A length-prefixed TCP protocol over [`crate::StencilService`] built
//! entirely on `std::net` (no async runtime, no HTTP library):
//!
//! - **Wire format** ([`wire`]): `[u32 BE length][kind][body]` frames.
//!   Kind `b'J'` carries a JSON message header; kind `b'P'` carries a
//!   raw little-endian `f64` grid payload, so multi-megabyte grids
//!   never round-trip through text.
//! - **Server** ([`server`]): one poll-based readiness loop over
//!   non-blocking sockets and a connection slab — thousands of idle
//!   connections cost buffers, not threads. Job execution stays on the
//!   service's existing pool workers.
//! - **Admission** ([`tenant`]): per-tenant in-flight quotas in front
//!   of the bounded queue's `try_submit`; both refusal layers answer a
//!   typed `rejected` frame with a `retry_after_ms` hint.
//! - **Observability**: `GET /healthz` and `GET /metrics` HTTP scrapes
//!   are answered on the same port (the first byte disambiguates — see
//!   [`wire::HARD_FRAME_CAP`]), exporting the [`crate::StatsSnapshot`]
//!   JSON document including per-tenant counters.
//! - **Client** ([`client`]): a blocking [`NetClient`] for tests,
//!   benches, and examples, streaming `progress` events for
//!   multi-round jobs.
//!
//! Multi-round jobs split `steps` into `rounds` sequential service
//! submissions ([`round_steps`]); the server streams a `progress`
//! frame after each non-final round. With `rounds = 1` (the default)
//! the result is bit-identical to a single in-process
//! [`crate::StencilService::submit`] of the same spec.

pub mod client;
mod conn;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{http_get, JobEvent, JobOutcome, NetClient, NetError};
pub use server::{NetConfig, NetServer};
pub use tenant::TenantGate;
pub use wire::{RejectReason, SubmitHeader};

/// Split `steps` into `rounds` contiguous chunks, front-loaded:
/// `round_steps(8, 3) == [3, 3, 2]`. Rounds are clamped to `[1, steps]`
/// (zero-step jobs run as one empty round) so no chunk is zero.
///
/// This split is the protocol's *definition* of a multi-round job —
/// reference results for round-streamed jobs must chunk identically,
/// because folded/tessellated plans are only bit-stable for a given
/// step partition.
pub fn round_steps(steps: usize, rounds: usize) -> Vec<usize> {
    let rounds = rounds.clamp(1, steps.max(1));
    let base = steps / rounds;
    let extra = steps % rounds;
    (0..rounds).map(|r| base + usize::from(r < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::round_steps;

    #[test]
    fn round_steps_partitions_front_loaded() {
        assert_eq!(round_steps(8, 3), vec![3, 3, 2]);
        assert_eq!(round_steps(6, 3), vec![2, 2, 2]);
        assert_eq!(round_steps(5, 1), vec![5]);
        assert_eq!(round_steps(2, 5), vec![1, 1], "rounds clamped to steps");
        assert_eq!(round_steps(0, 4), vec![0], "zero steps = one empty round");
        assert_eq!(round_steps(7, 0), vec![7], "zero rounds clamped to one");
        for steps in 0..40usize {
            for rounds in 0..10usize {
                let c = round_steps(steps, rounds);
                assert_eq!(c.iter().sum::<usize>(), steps);
                assert!(!c.is_empty());
                assert!(c.windows(2).all(|w| w[0] >= w[1]), "front-loaded");
            }
        }
    }
}
