//! The wire format: length-prefixed frames carrying a compact
//! JSON-header / raw-`f64`-payload hybrid.
//!
//! Every message on a connection is a sequence of **frames**:
//!
//! ```text
//! [u32 big-endian length n][1 byte kind][n-1 bytes body]
//! ```
//!
//! * kind `b'J'` — a JSON header (UTF-8, parsed by the project's
//!   hand-rolled [`stencil_tune::json`] reader). Headers carry the
//!   control plane: submissions, progress, rejections, stats.
//! * kind `b'P'` — a raw payload: little-endian `f64` bits, no
//!   serialization overhead. Payload frames carry grid data (a submit's
//!   input state, a done's output state) bit-exactly — `f64::to_bits`
//!   round-trips including NaN payloads and signed zeros, which is what
//!   lets the end-to-end suite assert *bit* identity over the network.
//!
//! A submission is `Header(submit) + Payload(grid)`; a completion is
//! `Header(done) + Payload(grid)`; everything else is a single header
//! frame.
//!
//! Decoding is typed and total: malformed length prefixes, truncated
//! buffers, unknown kinds, mis-sized payloads and invalid JSON all
//! surface as [`WireError`] variants — never a panic, and never an
//! unbounded wait (an incomplete frame is `Ok(None)`, distinct from a
//! stream that *ended* mid-frame, which [`decode_eof`] reports as
//! [`WireError::Truncated`]).
//!
//! Length prefixes are capped at [`HARD_FRAME_CAP`] (1 GiB). The cap
//! doubles as protocol sniffing: every ASCII uppercase letter is ≥
//! `0x41`, so the first byte of an HTTP request line (`GET /metrics…`)
//! reads as a > 1 GiB length prefix and can never be confused with a
//! valid frame — the server uses exactly this to serve `/healthz` and
//! `/metrics` scrapes on the protocol port.

use std::collections::BTreeMap;
use stencil_core::{Pattern, Tuning};
use stencil_tune::json::{self, Value};

use crate::manifest::{kernel_by_name, tuning_from_str, tuning_to_str};

/// Bytes of the frame length prefix.
pub const LEN_PREFIX: usize = 4;

/// Hard upper bound on a frame's declared length (1 GiB). Anything
/// larger is rejected before buffering — and because `b'A'..=b'Z'` as a
/// length-prefix high byte always exceeds this cap, ASCII protocols
/// (HTTP scrapes) are cleanly distinguishable from frames.
pub const HARD_FRAME_CAP: usize = 0x4000_0000;

/// Default per-connection frame size limit (256 MiB — a 2048³ `f64`
/// grid ships as sharded sub-jobs, not one frame).
pub const DEFAULT_MAX_FRAME: usize = 1 << 28;

/// Frame kind byte for JSON headers.
pub const KIND_HEADER: u8 = b'J';

/// Frame kind byte for raw `f64` payloads.
pub const KIND_PAYLOAD: u8 = b'P';

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A JSON control-plane header.
    Header(Value),
    /// Raw grid data: the `f64`s' little-endian bits, verbatim.
    Payload(Vec<f64>),
}

/// Why a buffer failed to decode (or a message failed to parse).
/// Every variant is a protocol error the peer caused; none are panics.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The length prefix declares a frame larger than the receiver's
    /// limit (or the hard cap).
    FrameTooLarge {
        /// Declared frame length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// A zero-length frame (no room for even the kind byte).
    EmptyFrame,
    /// The stream ended mid-frame: `have` buffered bytes of a frame
    /// needing `need`.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the complete frame needs (prefix included).
        need: usize,
    },
    /// A frame kind byte that is neither header nor payload.
    UnknownKind(u8),
    /// A header frame whose body is not valid JSON (or not UTF-8).
    BadJson(String),
    /// A payload frame whose body length is not a multiple of 8.
    BadPayloadLen(usize),
    /// A structurally valid JSON header that does not parse as a
    /// protocol message.
    BadHeader(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::Truncated { have, need } => {
                write!(f, "stream ended mid-frame ({have} of {need} bytes)")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind byte 0x{k:02x}"),
            WireError::BadJson(e) => write!(f, "header frame is not valid JSON: {e}"),
            WireError::BadPayloadLen(n) => {
                write!(
                    f,
                    "payload frame body of {n} bytes is not a whole number of f64s"
                )
            }
            WireError::BadHeader(e) => write!(f, "malformed protocol header: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append `frame`'s encoding to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Header(doc) => {
            let body = doc.pretty();
            let len = 1 + body.len();
            out.extend_from_slice(&(len as u32).to_be_bytes());
            out.push(KIND_HEADER);
            out.extend_from_slice(body.as_bytes());
        }
        Frame::Payload(data) => {
            let len = 1 + data.len() * 8;
            out.extend_from_slice(&(len as u32).to_be_bytes());
            out.push(KIND_PAYLOAD);
            for v in data {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; the caller
///   drains `consumed` bytes.
/// * `Ok(None)` — the buffer holds only a prefix of a frame; read more.
/// * `Err(_)` — the peer sent something unrecoverable; close.
pub fn decode(buf: &[u8], max_frame: usize) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < LEN_PREFIX {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    let max = max_frame.min(HARD_FRAME_CAP);
    if len > max {
        return Err(WireError::FrameTooLarge { len, max });
    }
    let total = LEN_PREFIX + len;
    if buf.len() < total {
        return Ok(None);
    }
    let kind = buf[LEN_PREFIX];
    let body = &buf[LEN_PREFIX + 1..total];
    let frame = match kind {
        KIND_HEADER => {
            let text = std::str::from_utf8(body)
                .map_err(|e| WireError::BadJson(format!("not UTF-8: {e}")))?;
            Frame::Header(json::parse(text).map_err(|e| WireError::BadJson(e.to_string()))?)
        }
        KIND_PAYLOAD => {
            if !body.len().is_multiple_of(8) {
                return Err(WireError::BadPayloadLen(body.len()));
            }
            Frame::Payload(
                body.chunks_exact(8)
                    .map(|c| {
                        f64::from_bits(u64::from_le_bytes([
                            c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                        ]))
                    })
                    .collect(),
            )
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    Ok(Some((frame, total)))
}

/// [`decode`] for a stream that has ended: leftover bytes that do not
/// form a complete frame are a [`WireError::Truncated`] protocol error
/// instead of "read more".
pub fn decode_eof(buf: &[u8], max_frame: usize) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.is_empty() {
        return Ok(None);
    }
    match decode(buf, max_frame)? {
        Some(hit) => Ok(Some(hit)),
        None => {
            let need = if buf.len() < LEN_PREFIX {
                LEN_PREFIX
            } else {
                LEN_PREFIX + u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize
            };
            Err(WireError::Truncated {
                have: buf.len(),
                need,
            })
        }
    }
}

/// A submission's control-plane header (the frame before its grid
/// payload).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitHeader {
    /// Client-chosen job id, echoed on every frame about this job.
    pub id: u64,
    /// Display name (a Table-1 kernel name, or the inline pattern's).
    pub name: String,
    /// The stencil to apply.
    pub pattern: Pattern,
    /// Domain extents, outermost first (the payload frame must carry
    /// exactly their product in `f64`s).
    pub extents: Vec<usize>,
    /// Total time steps to advance.
    pub steps: usize,
    /// Progress rounds the job is driven as (≥ 1): the server executes
    /// `rounds` sequential sub-jobs (see [`super::round_steps`]) and
    /// streams a progress frame after each — the job-handle protocol
    /// for long multi-round jobs.
    pub rounds: usize,
    /// Per-job tuning override (`None` = the service default).
    pub tuning: Option<Tuning>,
    /// Optional queue-wait deadline in milliseconds: a round that has
    /// waited longer than this when a worker dequeues it is shed with
    /// a typed [`ServerMsg::Deadline`] instead of running late
    /// (`None` = never shed).
    pub deadline_ms: Option<u64>,
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is full (`try_submit` backpressure).
    QueueFull,
    /// The tenant is at its in-flight quota.
    QuotaExceeded,
    /// The service is shutting down.
    ShuttingDown,
    /// The job's plan key is quarantined after repeated worker panics;
    /// resubmitting the same job will keep failing until the key is
    /// retuned/hot-swapped.
    Quarantined,
}

impl RejectReason {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::QuotaExceeded => "quota-exceeded",
            RejectReason::ShuttingDown => "shutting-down",
            RejectReason::Quarantined => "quarantined",
        }
    }

    /// Decode [`RejectReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queue-full" => RejectReason::QueueFull,
            "quota-exceeded" => RejectReason::QuotaExceeded,
            "shutting-down" => RejectReason::ShuttingDown,
            "quarantined" => RejectReason::Quarantined,
            _ => return None,
        })
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Identify the tenant (must be the first message).
    Hello {
        /// Tenant name quotas and per-tenant stats key on.
        tenant: String,
    },
    /// Submit a job (a payload frame with the grid follows).
    Submit(SubmitHeader),
    /// Abandon a previously submitted job.
    Cancel {
        /// The job to abandon.
        id: u64,
    },
    /// Request a [`crate::StatsSnapshot`] document.
    Stats,
    /// Liveness probe.
    Health,
    /// Orderly goodbye; the server flushes and closes.
    Bye,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Hello accepted.
    HelloOk {
        /// Echoed tenant name.
        tenant: String,
        /// The tenant's in-flight job quota.
        quota: u64,
    },
    /// Submission admitted; progress/done frames will follow.
    Accepted {
        /// Echoed job id.
        id: u64,
    },
    /// Submission refused — the admission-control signal. Typed, never
    /// a hang: the client should wait `retry_after_ms` and retry.
    Rejected {
        /// Echoed job id.
        id: u64,
        /// Why.
        reason: RejectReason,
        /// Suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// A multi-round job finished round `round` of `rounds`.
    Progress {
        /// Echoed job id.
        id: u64,
        /// Rounds completed so far.
        round: u64,
        /// Total rounds.
        rounds: u64,
    },
    /// Job complete (a payload frame with the result grid follows).
    Done {
        /// Echoed job id.
        id: u64,
        /// Slabs of the final round (1 = unsharded).
        shards: u64,
        /// True when any round rode a multi-job batch.
        batched: bool,
        /// Summed queue+execution latency across rounds, microseconds.
        latency_us: u64,
        /// Result extents, outermost first.
        extents: Vec<usize>,
    },
    /// Job failed at execution (plan error, worker loss).
    JobError {
        /// Echoed job id.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// The job was shed: its queue-wait deadline had already passed
    /// when a worker dequeued it. Terminal like [`ServerMsg::JobError`],
    /// but typed — a deadline-aware client resubmits with fresh
    /// headroom instead of parsing an error string.
    Deadline {
        /// Echoed job id.
        id: u64,
        /// The deadline the submission carried, milliseconds.
        deadline_ms: u64,
        /// How long the round actually waited, milliseconds.
        waited_ms: u64,
    },
    /// Acknowledge a cancel.
    Cancelled {
        /// Echoed job id.
        id: u64,
    },
    /// The stats document (a [`crate::StatsSnapshot`] as JSON).
    Stats(Value),
    /// Liveness answer.
    Health {
        /// `"ok"` while serving.
        status: String,
        /// Open protocol connections.
        conns: u64,
    },
    /// Protocol-level error; the server closes after sending it.
    Error {
        /// What the peer did wrong.
        message: String,
    },
    /// Goodbye acknowledged; the connection closes next.
    ByeOk,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

impl ClientMsg {
    /// Encode as a header document.
    pub fn to_json(&self) -> Value {
        match self {
            ClientMsg::Hello { tenant } => obj(vec![
                ("type", Value::Str("hello".into())),
                ("tenant", Value::Str(tenant.clone())),
            ]),
            ClientMsg::Submit(h) => {
                let mut fields = vec![
                    ("type", Value::Str("submit".into())),
                    ("id", num(h.id)),
                    (
                        "extents",
                        Value::Arr(h.extents.iter().map(|&e| num(e as u64)).collect()),
                    ),
                    ("steps", num(h.steps as u64)),
                    ("rounds", num(h.rounds as u64)),
                ];
                // same duality as the manifest: a resolvable kernel name
                // ships as the name, anything else as the inline pattern
                if kernel_by_name(&h.name).as_ref() == Some(&h.pattern) {
                    fields.push(("kernel", Value::Str(h.name.clone())));
                } else {
                    fields.push(("name", Value::Str(h.name.clone())));
                    fields.push(("dims", num(h.pattern.dims() as u64)));
                    fields.push(("radius", num(h.pattern.radius() as u64)));
                    fields.push((
                        "weights",
                        Value::Arr(h.pattern.weights().iter().map(|&w| Value::Num(w)).collect()),
                    ));
                }
                if let Some(t) = h.tuning {
                    fields.push(("tuning", Value::Str(tuning_to_str(t).into())));
                }
                if let Some(d) = h.deadline_ms {
                    fields.push(("deadline_ms", num(d)));
                }
                obj(fields)
            }
            ClientMsg::Cancel { id } => obj(vec![
                ("type", Value::Str("cancel".into())),
                ("id", num(*id)),
            ]),
            ClientMsg::Stats => obj(vec![("type", Value::Str("stats".into()))]),
            ClientMsg::Health => obj(vec![("type", Value::Str("health".into()))]),
            ClientMsg::Bye => obj(vec![("type", Value::Str("bye".into()))]),
        }
    }

    /// Parse a header document as a client message.
    pub fn from_json(doc: &Value) -> Result<Self, WireError> {
        let bad = |m: &str| WireError::BadHeader(m.to_string());
        let ty = doc
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing \"type\""))?;
        match ty {
            "hello" => Ok(ClientMsg::Hello {
                tenant: doc
                    .get("tenant")
                    .and_then(Value::as_str)
                    .filter(|t| !t.is_empty())
                    .ok_or_else(|| bad("hello needs a non-empty \"tenant\""))?
                    .to_string(),
            }),
            "submit" => Ok(ClientMsg::Submit(parse_submit(doc)?)),
            "cancel" => Ok(ClientMsg::Cancel {
                id: get_u64(doc, "id")?,
            }),
            "stats" => Ok(ClientMsg::Stats),
            "health" => Ok(ClientMsg::Health),
            "bye" => Ok(ClientMsg::Bye),
            other => Err(bad(&format!("unknown client message type {other:?}"))),
        }
    }
}

impl ServerMsg {
    /// Encode as a header document.
    pub fn to_json(&self) -> Value {
        match self {
            ServerMsg::HelloOk { tenant, quota } => obj(vec![
                ("type", Value::Str("hello-ok".into())),
                ("tenant", Value::Str(tenant.clone())),
                ("quota", num(*quota)),
            ]),
            ServerMsg::Accepted { id } => obj(vec![
                ("type", Value::Str("accepted".into())),
                ("id", num(*id)),
            ]),
            ServerMsg::Rejected {
                id,
                reason,
                retry_after_ms,
            } => obj(vec![
                ("type", Value::Str("rejected".into())),
                ("id", num(*id)),
                ("reason", Value::Str(reason.as_str().into())),
                ("retry_after_ms", num(*retry_after_ms)),
            ]),
            ServerMsg::Progress { id, round, rounds } => obj(vec![
                ("type", Value::Str("progress".into())),
                ("id", num(*id)),
                ("round", num(*round)),
                ("rounds", num(*rounds)),
            ]),
            ServerMsg::Done {
                id,
                shards,
                batched,
                latency_us,
                extents,
            } => obj(vec![
                ("type", Value::Str("done".into())),
                ("id", num(*id)),
                ("shards", num(*shards)),
                ("batched", Value::Bool(*batched)),
                ("latency_us", num(*latency_us)),
                (
                    "extents",
                    Value::Arr(extents.iter().map(|&e| num(e as u64)).collect()),
                ),
            ]),
            ServerMsg::JobError { id, message } => obj(vec![
                ("type", Value::Str("job-error".into())),
                ("id", num(*id)),
                ("message", Value::Str(message.clone())),
            ]),
            ServerMsg::Deadline {
                id,
                deadline_ms,
                waited_ms,
            } => obj(vec![
                ("type", Value::Str("deadline".into())),
                ("id", num(*id)),
                ("deadline_ms", num(*deadline_ms)),
                ("waited_ms", num(*waited_ms)),
            ]),
            ServerMsg::Cancelled { id } => obj(vec![
                ("type", Value::Str("cancelled".into())),
                ("id", num(*id)),
            ]),
            ServerMsg::Stats(doc) => obj(vec![
                ("type", Value::Str("stats".into())),
                ("stats", doc.clone()),
            ]),
            ServerMsg::Health { status, conns } => obj(vec![
                ("type", Value::Str("health".into())),
                ("status", Value::Str(status.clone())),
                ("conns", num(*conns)),
            ]),
            ServerMsg::Error { message } => obj(vec![
                ("type", Value::Str("error".into())),
                ("message", Value::Str(message.clone())),
            ]),
            ServerMsg::ByeOk => obj(vec![("type", Value::Str("bye-ok".into()))]),
        }
    }

    /// Parse a header document as a server message.
    pub fn from_json(doc: &Value) -> Result<Self, WireError> {
        let bad = |m: &str| WireError::BadHeader(m.to_string());
        let ty = doc
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing \"type\""))?;
        match ty {
            "hello-ok" => Ok(ServerMsg::HelloOk {
                tenant: get_str(doc, "tenant")?,
                quota: get_u64(doc, "quota")?,
            }),
            "accepted" => Ok(ServerMsg::Accepted {
                id: get_u64(doc, "id")?,
            }),
            "rejected" => Ok(ServerMsg::Rejected {
                id: get_u64(doc, "id")?,
                reason: RejectReason::parse(&get_str(doc, "reason")?)
                    .ok_or_else(|| bad("unknown reject reason"))?,
                retry_after_ms: get_u64(doc, "retry_after_ms")?,
            }),
            "progress" => Ok(ServerMsg::Progress {
                id: get_u64(doc, "id")?,
                round: get_u64(doc, "round")?,
                rounds: get_u64(doc, "rounds")?,
            }),
            "done" => Ok(ServerMsg::Done {
                id: get_u64(doc, "id")?,
                shards: get_u64(doc, "shards")?,
                batched: match doc.get("batched") {
                    Some(Value::Bool(b)) => *b,
                    _ => return Err(bad("done needs a boolean \"batched\"")),
                },
                latency_us: get_u64(doc, "latency_us")?,
                extents: get_extents(doc)?,
            }),
            "job-error" => Ok(ServerMsg::JobError {
                id: get_u64(doc, "id")?,
                message: get_str(doc, "message")?,
            }),
            "deadline" => Ok(ServerMsg::Deadline {
                id: get_u64(doc, "id")?,
                deadline_ms: get_u64(doc, "deadline_ms")?,
                waited_ms: get_u64(doc, "waited_ms")?,
            }),
            "cancelled" => Ok(ServerMsg::Cancelled {
                id: get_u64(doc, "id")?,
            }),
            "stats" => Ok(ServerMsg::Stats(
                doc.get("stats")
                    .cloned()
                    .ok_or_else(|| bad("stats message lacks the document"))?,
            )),
            "health" => Ok(ServerMsg::Health {
                status: get_str(doc, "status")?,
                conns: get_u64(doc, "conns")?,
            }),
            "error" => Ok(ServerMsg::Error {
                message: get_str(doc, "message")?,
            }),
            "bye-ok" => Ok(ServerMsg::ByeOk),
            other => Err(bad(&format!("unknown server message type {other:?}"))),
        }
    }
}

fn get_u64(doc: &Value, key: &str) -> Result<u64, WireError> {
    doc.get(key)
        .and_then(Value::as_num)
        .filter(|&n| n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64)
        .map(|n| n as u64)
        .ok_or_else(|| WireError::BadHeader(format!("missing or non-integer {key:?}")))
}

fn get_str(doc: &Value, key: &str) -> Result<String, WireError> {
    doc.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| WireError::BadHeader(format!("missing string {key:?}")))
}

fn get_extents(doc: &Value) -> Result<Vec<usize>, WireError> {
    let bad = |m: &str| WireError::BadHeader(m.to_string());
    doc.get("extents")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("missing \"extents\" array"))?
        .iter()
        .map(|v| {
            v.as_num()
                .filter(|&n| n >= 1.0 && n.fract() == 0.0 && n <= (1u64 << 32) as f64)
                .map(|n| n as usize)
                .ok_or_else(|| bad("\"extents\" must be positive integers"))
        })
        .collect()
}

fn parse_submit(doc: &Value) -> Result<SubmitHeader, WireError> {
    let bad = |m: String| WireError::BadHeader(m);
    let id = get_u64(doc, "id")?;
    let extents = get_extents(doc)?;
    let steps = get_u64(doc, "steps")? as usize;
    let rounds = (get_u64(doc, "rounds").unwrap_or(1) as usize).max(1);
    let tuning = match doc.get("tuning") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| bad("\"tuning\" must be a string".into()))
                .and_then(|s| tuning_from_str(s).map_err(bad))?,
        ),
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(_) => Some(get_u64(doc, "deadline_ms")?),
    };
    let (name, pattern) = if let Some(k) = doc.get("kernel") {
        let k = k
            .as_str()
            .ok_or_else(|| bad("\"kernel\" must be a string".into()))?;
        let p = kernel_by_name(k).ok_or_else(|| bad(format!("unknown kernel {k:?}")))?;
        (k.to_string(), p)
    } else {
        let dims = get_u64(doc, "dims")? as usize;
        let radius = get_u64(doc, "radius")? as usize;
        if !(1..=3).contains(&dims) || radius == 0 {
            return Err(bad("inline pattern needs dims in 1..=3, radius >= 1".into()));
        }
        let weights: Vec<f64> = doc
            .get("weights")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("inline pattern needs a \"weights\" array".into()))?
            .iter()
            .map(|w| {
                w.as_num()
                    .ok_or_else(|| bad("\"weights\" must be numbers".into()))
            })
            .collect::<Result<_, _>>()?;
        let side = 2 * radius + 1;
        if weights.len() != side.pow(dims as u32) {
            return Err(bad(format!(
                "inline pattern has {} weights, needs (2*{radius}+1)^{dims}",
                weights.len()
            )));
        }
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("inline")
            .to_string();
        (name, Pattern::new(dims, radius, weights))
    };
    if extents.len() != pattern.dims() {
        return Err(bad(format!(
            "{} extents for a {}D pattern",
            extents.len(),
            pattern.dims()
        )));
    }
    Ok(SubmitHeader {
        id,
        name,
        pattern,
        extents,
        steps,
        rounds,
        tuning,
        deadline_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn roundtrip_frame(f: Frame) {
        let mut buf = Vec::new();
        encode(&f, &mut buf);
        let (back, used) = decode(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(used, buf.len());
        match (&f, &back) {
            (Frame::Payload(a), Frame::Payload(b)) => {
                let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb);
            }
            _ => assert_eq!(f, back),
        }
    }

    #[test]
    fn frames_round_trip_including_nan_bits() {
        roundtrip_frame(Frame::Header(ClientMsg::Stats.to_json()));
        roundtrip_frame(Frame::Payload(vec![]));
        roundtrip_frame(Frame::Payload(vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload bits
            1.5e-300,
        ]));
    }

    #[test]
    fn incomplete_is_none_eof_is_truncated() {
        let mut buf = Vec::new();
        encode(&Frame::Payload(vec![1.0, 2.0]), &mut buf);
        for cut in 0..buf.len() {
            let r = decode(&buf[..cut], DEFAULT_MAX_FRAME).unwrap();
            assert!(r.is_none(), "cut at {cut}");
            if cut > 0 {
                match decode_eof(&buf[..cut], DEFAULT_MAX_FRAME) {
                    Err(WireError::Truncated { have, need }) => {
                        assert_eq!(have, cut);
                        assert!(need > have);
                    }
                    other => panic!("cut at {cut}: {other:?}"),
                }
            }
        }
        assert_eq!(decode_eof(&[], DEFAULT_MAX_FRAME), Ok(None));
    }

    #[test]
    fn oversized_and_malformed_prefixes_are_typed() {
        // declared length over the receiver limit
        let mut buf = vec![0, 1, 0, 0, KIND_PAYLOAD];
        assert!(matches!(
            decode(&buf, 1024),
            Err(WireError::FrameTooLarge { .. })
        ));
        // an HTTP request line reads as an over-cap length prefix
        assert!(matches!(
            decode(b"GET /metrics HTTP/1.1\r\n", DEFAULT_MAX_FRAME),
            Err(WireError::FrameTooLarge { .. })
        ));
        // zero-length frame
        buf = vec![0, 0, 0, 0];
        assert_eq!(decode(&buf, 1024), Err(WireError::EmptyFrame));
        // unknown kind
        buf = vec![0, 0, 0, 1, b'X'];
        assert_eq!(decode(&buf, 1024), Err(WireError::UnknownKind(b'X')));
        // payload body not a multiple of 8
        buf = vec![0, 0, 0, 4, KIND_PAYLOAD, 1, 2, 3];
        assert_eq!(decode(&buf, 1024), Err(WireError::BadPayloadLen(3)));
        // header body that is not JSON
        buf = vec![0, 0, 0, 3, KIND_HEADER, b'{', b'x'];
        assert!(matches!(decode(&buf, 1024), Err(WireError::BadJson(_))));
    }

    #[test]
    fn client_messages_round_trip() {
        let msgs = [
            ClientMsg::Hello {
                tenant: "acme".into(),
            },
            ClientMsg::Submit(SubmitHeader {
                id: 7,
                name: "heat2d".into(),
                pattern: kernels::heat2d(),
                extents: vec![64, 48],
                steps: 12,
                rounds: 3,
                tuning: Some(Tuning::Static),
                deadline_ms: Some(250),
            }),
            ClientMsg::Submit(SubmitHeader {
                id: 8,
                name: "custom".into(),
                pattern: Pattern::new_1d(&[0.25, 0.5, 0.25]),
                extents: vec![4096],
                steps: 5,
                rounds: 1,
                tuning: None,
                deadline_ms: None,
            }),
            ClientMsg::Cancel { id: 9 },
            ClientMsg::Stats,
            ClientMsg::Health,
            ClientMsg::Bye,
        ];
        for m in msgs {
            let back = ClientMsg::from_json(&m.to_json()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let msgs = [
            ServerMsg::HelloOk {
                tenant: "acme".into(),
                quota: 4,
            },
            ServerMsg::Accepted { id: 1 },
            ServerMsg::Rejected {
                id: 2,
                reason: RejectReason::QueueFull,
                retry_after_ms: 25,
            },
            ServerMsg::Progress {
                id: 3,
                round: 2,
                rounds: 8,
            },
            ServerMsg::Done {
                id: 4,
                shards: 3,
                batched: true,
                latency_us: 12345,
                extents: vec![16, 20, 24],
            },
            ServerMsg::JobError {
                id: 5,
                message: "plan error: …".into(),
            },
            ServerMsg::Deadline {
                id: 11,
                deadline_ms: 100,
                waited_ms: 140,
            },
            ServerMsg::Rejected {
                id: 12,
                reason: RejectReason::Quarantined,
                retry_after_ms: 1000,
            },
            ServerMsg::Cancelled { id: 6 },
            ServerMsg::Stats(crate::ServeStats::new().snapshot().to_json()),
            ServerMsg::Health {
                status: "ok".into(),
                conns: 12,
            },
            ServerMsg::Error {
                message: "hello first".into(),
            },
            ServerMsg::ByeOk,
        ];
        for m in msgs {
            let back = ServerMsg::from_json(&m.to_json()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn bad_headers_are_typed_not_panics() {
        for doc in [
            json::parse("{}").unwrap(),
            json::parse(r#"{"type": "warp"}"#).unwrap(),
            json::parse(r#"{"type": "hello"}"#).unwrap(),
            json::parse(r#"{"type": "hello", "tenant": ""}"#).unwrap(),
            json::parse(r#"{"type": "submit", "id": 1.5}"#).unwrap(),
            json::parse(
                r#"{"type": "submit", "id": 1, "kernel": "nope", "extents": [8], "steps": 1}"#,
            )
            .unwrap(),
            json::parse(
                r#"{"type": "submit", "id": 1, "kernel": "heat2d", "extents": [8], "steps": 1}"#,
            )
            .unwrap(),
        ] {
            assert!(matches!(
                ClientMsg::from_json(&doc),
                Err(WireError::BadHeader(_))
            ));
        }
        assert!(matches!(
            ServerMsg::from_json(&json::parse(r#"{"type": "done", "id": 1}"#).unwrap()),
            Err(WireError::BadHeader(_))
        ));
    }
}
