//! Per-connection state for the poll loop: non-blocking read/write
//! buffering, frame extraction, protocol sniffing, and idle tracking.
//!
//! A [`Conn`] is one slot in the server's connection slab. All I/O is
//! non-blocking — the poll loop calls [`Conn::fill_read`] and
//! [`Conn::flush_write`] each tick, and a connection never pins a
//! thread while idle. Outbound frames are staged in a write buffer
//! (capped: a peer that stops reading while the server streams results
//! is dropped instead of ballooning memory).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use super::wire::{self, Frame, SubmitHeader, WireError};

/// Most bytes staged for a peer that is not reading them before the
/// connection is declared dead (twice the frame limit: one in-flight
/// result frame plus headroom).
const MAX_WRITE_BACKLOG_FACTOR: usize = 2;

/// Bytes read per `read()` call on the non-blocking socket.
const READ_CHUNK: usize = 64 * 1024;

/// What the first byte said this connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnMode {
    /// Nothing received yet.
    Sniffing,
    /// Length-prefixed frames (the job protocol).
    Frames,
    /// An HTTP scrape (`GET /healthz`, `GET /metrics`): one request,
    /// one response, close.
    Http,
}

/// One connection in the server's slab.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub peer: SocketAddr,
    pub mode: ConnMode,
    /// Tenant set by `hello` (frames mode only).
    pub tenant: Option<String>,
    /// A received submit header waiting for its grid payload frame.
    pub pending_submit: Option<SubmitHeader>,
    /// Read-side accumulation buffer.
    rbuf: Vec<u8>,
    /// Write-side staging buffer (`wpos` bytes already sent).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Last moment bytes arrived from the peer.
    pub last_activity: Instant,
    /// Flush pending writes, then close (orderly goodbye / HTTP done /
    /// after a protocol error).
    pub closing: bool,
    /// The socket is gone (EOF or error); reap without flushing.
    pub dead: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, peer: SocketAddr, now: Instant) -> Self {
        Self {
            stream,
            peer,
            mode: ConnMode::Sniffing,
            tenant: None,
            pending_submit: None,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_activity: now,
            closing: false,
            dead: false,
        }
    }

    /// Pull every available byte off the socket (non-blocking). Returns
    /// how many arrived; EOF or a hard error marks the connection dead.
    pub fn fill_read(&mut self, now: Instant) -> usize {
        let mut total = 0;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            // chaos: deliver one byte instead of a full chunk — frames
            // arrive maximally fragmented and the reassembly path (the
            // `Ok(None)`/partial-prefix handling in `next_frame`) is
            // exercised on every boundary; data is never corrupted
            let window = if stencil_faults::should_fire(stencil_faults::Failpoint::NetShortRead) {
                &mut chunk[..1]
            } else {
                &mut chunk[..]
            };
            match self.stream.read(window) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if total > 0 {
            self.last_activity = now;
            if self.mode == ConnMode::Sniffing {
                // Frame length prefixes are capped below 1 GiB, so a
                // first byte in the ASCII-letter range can only be an
                // HTTP request line (GET/HEAD/...).
                self.mode = if self.rbuf[0].is_ascii_uppercase() {
                    ConnMode::Http
                } else {
                    ConnMode::Frames
                };
            }
        }
        total
    }

    /// Decode the next complete frame out of the read buffer.
    /// `Ok(None)` = need more bytes.
    pub fn next_frame(&mut self, max_frame: usize) -> Result<Option<Frame>, WireError> {
        let span = stencil_obs::span(stencil_obs::SpanId::NetDecode);
        match wire::decode(&self.rbuf, max_frame)? {
            None => {
                // no complete frame: nothing was decoded, no span
                span.cancel();
                if self.dead && !self.rbuf.is_empty() {
                    // stream ended mid-frame: surface it as the typed
                    // truncation error (once), then discard
                    let r = wire::decode_eof(&self.rbuf, max_frame).map(|_| None);
                    self.rbuf.clear();
                    return r;
                }
                Ok(None)
            }
            Some((frame, used)) => {
                self.rbuf.drain(..used);
                Ok(Some(frame))
            }
        }
    }

    /// The buffered HTTP request, if it is complete (headers ended).
    /// Consumes the request bytes.
    pub fn take_http_request(&mut self) -> Option<Vec<u8>> {
        let end = self
            .rbuf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)?;
        Some(self.rbuf.drain(..end).collect())
    }

    /// Bytes buffered but not yet consumed by the protocol layer.
    pub fn read_backlog(&self) -> usize {
        self.rbuf.len()
    }

    /// Stage one frame for sending.
    pub fn send(&mut self, frame: &Frame) {
        let _span = stencil_obs::span(stencil_obs::SpanId::NetEncode);
        wire::encode(frame, &mut self.wbuf);
    }

    /// Stage raw bytes (HTTP responses).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Push staged bytes to the socket (non-blocking). Returns how many
    /// left. A peer that lets the backlog grow past the cap is dropped.
    pub fn flush_write(&mut self, max_frame: usize) -> usize {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos > 0 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        if self.wbuf.len() > max_frame.saturating_mul(MAX_WRITE_BACKLOG_FACTOR) {
            self.dead = true;
        }
        self.wbuf.len()
    }

    /// True when every staged byte reached the socket.
    pub fn write_drained(&self) -> bool {
        self.wbuf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = l.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn sniffs_http_vs_frames() {
        let now = Instant::now();
        let (client, server) = pair();
        let peer = server.peer_addr().unwrap();
        let mut conn = Conn::new(server, peer, now);
        let mut c = client;
        std::io::Write::write_all(&mut c, b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        while conn.fill_read(Instant::now()) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(conn.mode, ConnMode::Http);
        assert!(conn.take_http_request().is_some());
        assert_eq!(conn.read_backlog(), 0);

        let (client2, server2) = pair();
        let peer2 = server2.peer_addr().unwrap();
        let mut conn2 = Conn::new(server2, peer2, now);
        let mut buf = Vec::new();
        wire::encode(
            &Frame::Header(super::super::wire::ClientMsg::Stats.to_json()),
            &mut buf,
        );
        let mut c2 = client2;
        std::io::Write::write_all(&mut c2, &buf).unwrap();
        while conn2.fill_read(Instant::now()) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(conn2.mode, ConnMode::Frames);
        let frame = conn2.next_frame(wire::DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(matches!(frame, Frame::Header(_)));
        // nothing further buffered
        assert!(conn2.next_frame(wire::DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_truncated_once() {
        let now = Instant::now();
        let (client, server) = pair();
        let peer = server.peer_addr().unwrap();
        let mut conn = Conn::new(server, peer, now);
        let mut buf = Vec::new();
        wire::encode(&Frame::Payload(vec![1.0, 2.0, 3.0]), &mut buf);
        let mut c = client;
        std::io::Write::write_all(&mut c, &buf[..buf.len() - 5]).unwrap();
        drop(c); // FIN mid-frame
        loop {
            conn.fill_read(Instant::now());
            if conn.dead {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(matches!(
            conn.next_frame(wire::DEFAULT_MAX_FRAME),
            Err(WireError::Truncated { .. })
        ));
        // the half-frame was discarded with the error; no loop
        assert!(conn.next_frame(wire::DEFAULT_MAX_FRAME).unwrap().is_none());
    }
}
