//! Per-tenant admission control: a fixed in-flight job quota per
//! tenant, layered *in front of* the bounded queue — a noisy tenant is
//! refused at its quota before it can monopolize queue capacity, and a
//! refusal is a typed `Rejected` frame, never a blocked accept loop.
//!
//! The gate tracks in-flight counts only; the per-tenant
//! submitted/rejected/completed counters live on the shared
//! [`crate::ServeStats`] surface so `/metrics` exports one document.

use std::collections::HashMap;

/// In-flight job quota table. Owned by the poll loop (single-threaded),
/// so no locking.
#[derive(Debug)]
pub struct TenantGate {
    quota: usize,
    inflight: HashMap<String, usize>,
}

impl TenantGate {
    /// Gate admitting at most `quota` concurrent in-flight jobs per
    /// tenant (min 1).
    pub fn new(quota: usize) -> Self {
        Self {
            quota: quota.max(1),
            inflight: HashMap::new(),
        }
    }

    /// The per-tenant quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Jobs currently in flight for `tenant`.
    pub fn inflight(&self, tenant: &str) -> usize {
        self.inflight.get(tenant).copied().unwrap_or(0)
    }

    /// Try to admit one more job for `tenant`: `true` reserves a slot,
    /// `false` means the tenant is at quota (send `Rejected` and do
    /// not submit).
    pub fn admit(&mut self, tenant: &str) -> bool {
        let n = self.inflight.entry(tenant.to_string()).or_insert(0);
        if *n >= self.quota {
            return false;
        }
        *n += 1;
        true
    }

    /// Release one admitted slot — on job completion, failure, cancel,
    /// or when a disconnect abandons the job. Idempotence is the
    /// caller's job; releasing below zero is a server bug and debug-
    /// asserts.
    pub fn release(&mut self, tenant: &str) {
        match self.inflight.get_mut(tenant) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    self.inflight.remove(tenant);
                }
            }
            _ => debug_assert!(false, "released un-admitted tenant {tenant:?}"),
        }
    }

    /// Total in-flight jobs across every tenant.
    pub fn total_inflight(&self) -> usize {
        self.inflight.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_bounds_each_tenant_independently() {
        let mut g = TenantGate::new(2);
        assert!(g.admit("a"));
        assert!(g.admit("a"));
        assert!(!g.admit("a"), "at quota");
        assert!(g.admit("b"), "other tenants unaffected");
        assert_eq!(g.inflight("a"), 2);
        assert_eq!(g.total_inflight(), 3);
        g.release("a");
        assert!(g.admit("a"), "released slot reusable");
        g.release("a");
        g.release("a");
        g.release("b");
        assert_eq!(g.total_inflight(), 0);
        assert_eq!(g.inflight("a"), 0);
    }

    #[test]
    fn zero_quota_is_clamped_to_one() {
        let mut g = TenantGate::new(0);
        assert_eq!(g.quota(), 1);
        assert!(g.admit("t"));
        assert!(!g.admit("t"));
    }
}
