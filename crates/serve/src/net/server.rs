//! The protocol server: a poll-based readiness loop over non-blocking
//! sockets and a connection slab, fronting a [`StencilService`].
//!
//! One loop thread owns every connection: it accepts, reads frames,
//! runs admission control (per-tenant quota → bounded-queue
//! `try_submit`), drives multi-round jobs by polling their tickets
//! (never blocking), streams `progress` / `done` / `rejected` frames,
//! and answers `GET /healthz` + `GET /metrics` HTTP scrapes on the same
//! port (see [`super::wire`] for how the two protocols coexist).
//!
//! Job *execution* never happens on this thread — rounds are submitted
//! into the service's bounded queue and run on the existing pool
//! workers. Thousands of idle connections therefore cost buffer memory
//! and a read probe per tick, not threads.
//!
//! Disconnect semantics: a peer that vanishes mid-job has its jobs
//! abandoned at reap time — pending rounds are never submitted, the
//! in-flight round's ticket is dropped (its result is discarded when
//! the worker finishes; the queue slot frees normally), and the
//! tenant's quota slots are released immediately.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::StatsSnapshot;
use crate::service::{JobDomain, JobSpec, JobTicket, ServeError, StencilService};
use stencil_grid::{Grid1D, Grid2D, Grid3D};

use super::conn::{Conn, ConnMode};
use super::round_steps;
use super::tenant::TenantGate;
use super::wire::{ClientMsg, Frame, RejectReason, ServerMsg, SubmitHeader, DEFAULT_MAX_FRAME};

/// An HTTP scrape request larger than this is dropped unanswered.
const MAX_HTTP_REQUEST: usize = 16 * 1024;

/// Protocol server configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Most simultaneous connections; extras wait in the OS backlog.
    pub max_conns: usize,
    /// Per-tenant in-flight job quota (admission control).
    pub tenant_quota: usize,
    /// Connections with no traffic and no active jobs for this long
    /// are reaped (half-open sweep).
    pub idle_timeout: Duration,
    /// Per-frame size limit for this listener.
    pub max_frame: usize,
    /// Poll-loop sleep when a tick moves no bytes and no jobs.
    pub tick: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_conns: 1024,
            tenant_quota: 4,
            idle_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            tick: Duration::from_millis(1),
        }
    }
}

/// The network front end over a [`StencilService`]. Owns the service;
/// [`NetServer::shutdown`] tears both down and returns the final
/// stats.
pub struct NetServer {
    service: Option<Arc<StencilService>>,
    addr: SocketAddr,
    conns_gauge: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Bind `cfg.addr` and start the poll loop over `service`.
    pub fn start(service: StencilService, cfg: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let conns_gauge = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let (service, conns_gauge, stop) = (
                Arc::clone(&service),
                Arc::clone(&conns_gauge),
                Arc::clone(&stop),
            );
            std::thread::Builder::new()
                .name("stencil-serve-net".into())
                .spawn(move || serve_loop(&service, listener, &cfg, &stop, &conns_gauge))?
        };
        Ok(Self {
            service: Some(service),
            addr,
            conns_gauge,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fronted service (for stats, `plan_for` references in tests,
    /// warm-up).
    pub fn service(&self) -> &StencilService {
        self.service.as_ref().expect("present until shutdown")
    }

    /// Open protocol connections right now.
    pub fn connections(&self) -> usize {
        self.conns_gauge.load(Ordering::Relaxed)
    }

    fn stop_loop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting, drop every connection, shut the service down
    /// (draining its queue, joining its workers, releasing the shared
    /// pool) and return the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_loop();
        let service = self.service.take().expect("shutdown runs once");
        match Arc::try_unwrap(service) {
            Ok(svc) => svc.shutdown(),
            // unreachable in practice: the loop thread held the only
            // other clone and was just joined
            Err(svc) => svc.stats(),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_loop();
    }
}

/// One slab slot: the connection plus its active jobs.
struct Session {
    conn: Conn,
    jobs: Vec<NetJob>,
}

/// A job the loop is driving through its rounds.
struct NetJob {
    id: u64,
    tenant: String,
    header: SubmitHeader,
    /// Per-round step counts (see [`round_steps`]).
    chunks: Vec<usize>,
    /// Rounds completed.
    round: usize,
    /// Queue+execution latency summed across completed rounds.
    latency_us: u64,
    any_batched: bool,
    phase: Phase,
}

enum Phase {
    /// A round is queued or executing; poll the ticket.
    Running(JobTicket),
    /// The next round hit queue backpressure; retry next tick.
    Resubmit(JobDomain),
}

fn serve_loop(
    service: &Arc<StencilService>,
    listener: TcpListener,
    cfg: &NetConfig,
    stop: &AtomicBool,
    conns_gauge: &AtomicUsize,
) {
    let mut sessions: Vec<Session> = Vec::new();
    let mut gate = TenantGate::new(cfg.tenant_quota);
    while !stop.load(Ordering::Acquire) {
        let mut busy = false;
        // accept every waiting connection up to the slab cap
        while sessions.len() < cfg.max_conns {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    sessions.push(Session {
                        conn: Conn::new(stream, peer, Instant::now()),
                        jobs: Vec::new(),
                    });
                    busy = true;
                }
                Err(_) => break, // WouldBlock or a transient accept error
            }
        }
        let now = Instant::now();
        let open = sessions.len() as u64;
        for sess in &mut sessions {
            // chaos: sever the connection as an unplugged cable would —
            // the peer sees EOF and must surface a typed error, and the
            // reap below releases the session's quota slots
            if stencil_faults::should_fire(stencil_faults::Failpoint::NetDrop) {
                sess.conn.dead = true;
                continue;
            }
            busy |= sess.conn.fill_read(now) > 0;
            match sess.conn.mode {
                ConnMode::Sniffing => {}
                ConnMode::Http => {
                    if let Some(req) = sess.conn.take_http_request() {
                        let resp = http_response_for(service, open, &req);
                        sess.conn.send_raw(&resp);
                        sess.conn.closing = true;
                        busy = true;
                    } else if sess.conn.read_backlog() > MAX_HTTP_REQUEST {
                        sess.conn.dead = true;
                    }
                }
                ConnMode::Frames => {
                    busy |= process_frames(service, &mut gate, cfg, open, sess);
                }
            }
            busy |= poll_jobs(service, &mut gate, sess);
            sess.conn.flush_write(cfg.max_frame);
        }
        // reap: dead sockets, drained goodbyes, and idle half-opens
        sessions.retain_mut(|sess| {
            let idle = sess.jobs.is_empty()
                && sess.conn.write_drained()
                && now.duration_since(sess.conn.last_activity) > cfg.idle_timeout;
            let drop_now =
                sess.conn.dead || (sess.conn.closing && sess.conn.write_drained()) || idle;
            if drop_now {
                abandon_jobs(&mut gate, sess);
            }
            !drop_now
        });
        conns_gauge.store(sessions.len(), Ordering::Relaxed);
        if !busy {
            std::thread::sleep(cfg.tick);
        }
    }
    conns_gauge.store(0, Ordering::Relaxed);
    for sess in &mut sessions {
        abandon_jobs(&mut gate, sess);
    }
}

/// Release every quota slot a dropped session still holds. In-flight
/// tickets are dropped with the jobs: the executor's round completes
/// into a discarded cell and its queue slot frees normally; rounds not
/// yet submitted never will be.
fn abandon_jobs(gate: &mut TenantGate, sess: &mut Session) {
    for job in sess.jobs.drain(..) {
        gate.release(&job.tenant);
    }
}

/// Drain and dispatch every complete frame on a session. Returns true
/// when anything was processed.
fn process_frames(
    service: &Arc<StencilService>,
    gate: &mut TenantGate,
    cfg: &NetConfig,
    open_conns: u64,
    sess: &mut Session,
) -> bool {
    let mut busy = false;
    loop {
        if sess.conn.closing || sess.conn.dead {
            return busy;
        }
        let frame = match sess.conn.next_frame(cfg.max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return busy,
            Err(e) => {
                // typed protocol error to the peer, then close — a
                // malformed frame must never hang or kill the loop
                sess.conn.send(&header(ServerMsg::Error {
                    message: e.to_string(),
                }));
                sess.conn.closing = true;
                service
                    .stats_handle()
                    .warn(format!("net: protocol error from {}: {e}", sess.conn.peer));
                return true;
            }
        };
        busy = true;
        // a submit header must be followed by exactly one payload frame
        if let Some(pending) = sess.conn.pending_submit.take() {
            match frame {
                Frame::Payload(data) => {
                    handle_submission(service, gate, sess, pending, data);
                    continue;
                }
                Frame::Header(_) => {
                    sess.conn.send(&header(ServerMsg::Error {
                        message: "submit header must be followed by its grid payload".into(),
                    }));
                    sess.conn.closing = true;
                    return true;
                }
            }
        }
        let msg = match frame {
            Frame::Payload(_) => {
                sess.conn.send(&header(ServerMsg::Error {
                    message: "unexpected payload frame without a submit header".into(),
                }));
                sess.conn.closing = true;
                return true;
            }
            Frame::Header(doc) => match ClientMsg::from_json(&doc) {
                Ok(m) => m,
                Err(e) => {
                    sess.conn.send(&header(ServerMsg::Error {
                        message: e.to_string(),
                    }));
                    sess.conn.closing = true;
                    return true;
                }
            },
        };
        match msg {
            ClientMsg::Hello { tenant } => {
                sess.conn.tenant = Some(tenant.clone());
                sess.conn.send(&header(ServerMsg::HelloOk {
                    tenant,
                    quota: gate.quota() as u64,
                }));
            }
            ClientMsg::Submit(h) => {
                if sess.conn.tenant.is_none() {
                    sess.conn.send(&header(ServerMsg::Error {
                        message: "submit before hello: identify a tenant first".into(),
                    }));
                    sess.conn.closing = true;
                    return true;
                }
                sess.conn.pending_submit = Some(h);
            }
            ClientMsg::Cancel { id } => {
                if let Some(pos) = sess.jobs.iter().position(|j| j.id == id) {
                    let job = sess.jobs.swap_remove(pos);
                    gate.release(&job.tenant);
                    sess.conn.send(&header(ServerMsg::Cancelled { id }));
                } else {
                    sess.conn.send(&header(ServerMsg::JobError {
                        id,
                        message: "no such job".into(),
                    }));
                }
            }
            ClientMsg::Stats => {
                let doc = service.stats().to_json();
                sess.conn.send(&header(ServerMsg::Stats(doc)));
            }
            ClientMsg::Health => {
                sess.conn.send(&header(ServerMsg::Health {
                    status: "ok".into(),
                    conns: open_conns,
                }));
            }
            ClientMsg::Bye => {
                sess.conn.send(&header(ServerMsg::ByeOk));
                sess.conn.closing = true;
                return true;
            }
        }
    }
}

/// Admission control for a complete submission: tenant quota first,
/// then the bounded queue's `try_submit` — both refusals are typed
/// `Rejected` frames with a backoff hint, never a blocked loop.
fn handle_submission(
    service: &Arc<StencilService>,
    gate: &mut TenantGate,
    sess: &mut Session,
    h: SubmitHeader,
    data: Vec<f64>,
) {
    let stats = service.stats_handle();
    let tenant = sess.conn.tenant.clone().expect("checked at submit header");
    let id = h.id;
    let domain = match domain_from(&h.extents, data) {
        Ok(d) => d,
        Err(message) => {
            sess.conn.send(&header(ServerMsg::JobError { id, message }));
            return;
        }
    };
    if !gate.admit(&tenant) {
        stats.tenant_update(&tenant, |t| t.rejected += 1);
        stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        sess.conn.send(&header(ServerMsg::Rejected {
            id,
            reason: RejectReason::QuotaExceeded,
            retry_after_ms: retry_after_ms(service),
        }));
        return;
    }
    let chunks = round_steps(h.steps, h.rounds);
    let spec = JobSpec {
        pattern: h.pattern.clone(),
        domain,
        steps: chunks[0],
        tuning: h.tuning,
        deadline: h.deadline_ms.map(Duration::from_millis),
    };
    match service.try_submit(spec) {
        Ok(ticket) => {
            stats.tenant_update(&tenant, |t| t.submitted += 1);
            sess.conn.send(&header(ServerMsg::Accepted { id }));
            sess.jobs.push(NetJob {
                id,
                tenant,
                header: h,
                chunks,
                round: 0,
                latency_us: 0,
                any_batched: false,
                phase: Phase::Running(ticket),
            });
        }
        Err(e) => {
            gate.release(&tenant);
            match e {
                ServeError::Backpressure { .. } => {
                    // the service already counted jobs_rejected
                    stats.tenant_update(&tenant, |t| t.rejected += 1);
                    sess.conn.send(&header(ServerMsg::Rejected {
                        id,
                        reason: RejectReason::QueueFull,
                        retry_after_ms: retry_after_ms(service),
                    }));
                }
                ServeError::ShuttingDown => {
                    stats.tenant_update(&tenant, |t| t.rejected += 1);
                    sess.conn.send(&header(ServerMsg::Rejected {
                        id,
                        reason: RejectReason::ShuttingDown,
                        retry_after_ms: retry_after_ms(service),
                    }));
                }
                ServeError::Quarantined { .. } => {
                    // typed and non-transient: retrying the same job
                    // keeps failing until the key is retuned, so the
                    // backoff hint is long
                    stats.tenant_update(&tenant, |t| t.rejected += 1);
                    sess.conn.send(&header(ServerMsg::Rejected {
                        id,
                        reason: RejectReason::Quarantined,
                        retry_after_ms: 5_000,
                    }));
                }
                other => {
                    sess.conn.send(&header(ServerMsg::JobError {
                        id,
                        message: other.to_string(),
                    }));
                }
            }
        }
    }
}

/// Advance every active job on a session: poll running tickets
/// (non-blocking), emit progress / done / error frames, and push the
/// next round into the queue. Returns true when any job moved.
fn poll_jobs(service: &Arc<StencilService>, gate: &mut TenantGate, sess: &mut Session) -> bool {
    let stats = service.stats_handle();
    let mut busy = false;
    let mut i = 0;
    while i < sess.jobs.len() {
        let job = &mut sess.jobs[i];
        let next_domain = match &mut job.phase {
            Phase::Running(ticket) => match ticket.try_take() {
                None => {
                    i += 1;
                    continue;
                }
                Some(Ok(result)) => {
                    busy = true;
                    job.round += 1;
                    job.latency_us += result.latency.as_micros().min(u64::MAX as u128) as u64;
                    job.any_batched |= result.batched;
                    if job.round == job.chunks.len() {
                        // final round: ship the result grid
                        let (extents, data) = flatten(&result.output);
                        sess.conn.send(&header(ServerMsg::Done {
                            id: job.id,
                            shards: result.shards as u64,
                            batched: job.any_batched,
                            latency_us: job.latency_us,
                            extents,
                        }));
                        sess.conn.send(&Frame::Payload(data));
                        stats.tenant_update(&job.tenant, |t| t.completed += 1);
                        gate.release(&job.tenant);
                        sess.jobs.swap_remove(i);
                        continue;
                    }
                    sess.conn.send(&header(ServerMsg::Progress {
                        id: job.id,
                        round: job.round as u64,
                        rounds: job.chunks.len() as u64,
                    }));
                    Some(result.output)
                }
                Some(Err(e)) => {
                    busy = true;
                    // shedding is terminal like an execution error, but
                    // typed: clients distinguish "too late" from "broke"
                    let msg = match e {
                        ServeError::DeadlineExceeded {
                            deadline_ms,
                            waited_ms,
                        } => ServerMsg::Deadline {
                            id: job.id,
                            deadline_ms,
                            waited_ms,
                        },
                        other => ServerMsg::JobError {
                            id: job.id,
                            message: other.to_string(),
                        },
                    };
                    sess.conn.send(&header(msg));
                    gate.release(&job.tenant);
                    sess.jobs.swap_remove(i);
                    continue;
                }
            },
            Phase::Resubmit(_) => None,
        };
        if let Some(domain) = next_domain {
            job.phase = Phase::Resubmit(domain);
        }
        // try (or retry) queueing the next round; backpressure mid-job
        // parks the job until a queue slot frees — the admitted job
        // keeps its quota slot and never blocks the loop
        if let Phase::Resubmit(domain) = &job.phase {
            let (depth, cap) = service.queue_backlog();
            if depth >= cap {
                // a visibly full queue: skip the attempt so parked
                // rounds don't inflate the rejected counter every tick
                i += 1;
                continue;
            }
            let spec = JobSpec {
                pattern: job.header.pattern.clone(),
                domain: domain.clone(),
                steps: job.chunks[job.round],
                tuning: job.header.tuning,
                deadline: job.header.deadline_ms.map(Duration::from_millis),
            };
            match service.try_submit(spec) {
                Ok(ticket) => {
                    busy = true;
                    job.phase = Phase::Running(ticket);
                }
                Err(ServeError::Backpressure { .. }) => {
                    // stay parked; retry on a later tick once a queue
                    // slot frees (the parked domain is still in phase)
                }
                Err(e) => {
                    busy = true;
                    sess.conn.send(&header(ServerMsg::JobError {
                        id: job.id,
                        message: e.to_string(),
                    }));
                    gate.release(&job.tenant);
                    sess.jobs.swap_remove(i);
                    continue;
                }
            }
        }
        i += 1;
    }
    busy
}

/// Encode a server message as a header frame.
fn header(msg: ServerMsg) -> Frame {
    Frame::Header(msg.to_json())
}

/// Backoff hint for a rejected submission: scale the median job
/// latency by the queue backlog, clamped to `[1ms, 5s]`. Deadline
/// shedding shrinks the effective backlog — shed jobs leave the queue
/// without running — so the hint is scaled by the fraction of dequeues
/// that actually execute.
fn retry_after_ms(service: &StencilService) -> u64 {
    use std::sync::atomic::Ordering::Relaxed;
    let (depth, _cap) = service.queue_backlog();
    let stats = service.stats_handle();
    let p50_ms = stats.latency.quantile_us(0.5) / 1000;
    let raw = (depth as u64 + 1) * p50_ms.max(1);
    let done = stats.jobs_completed.load(Relaxed);
    let shed = stats.jobs_shed.load(Relaxed);
    let scaled = if shed > 0 {
        // done/(done+shed) of dequeued jobs cost a full execution; the
        // rest drain instantly
        (raw * done.max(1)) / (done + shed).max(1)
    } else {
        raw
    };
    scaled.clamp(1, 5_000)
}

/// Build the job domain from a submit's extents and payload.
fn domain_from(extents: &[usize], data: Vec<f64>) -> Result<JobDomain, String> {
    let points = extents
        .iter()
        .try_fold(1usize, |acc, &e| acc.checked_mul(e))
        .ok_or("extents overflow")?;
    if points != data.len() {
        return Err(format!(
            "payload carries {} f64s for a {extents:?} domain ({points} points)",
            data.len()
        ));
    }
    match *extents {
        [n] => Ok(JobDomain::D1(Grid1D::from_fn(n, |i| data[i]))),
        [ny, nx] => Ok(JobDomain::D2(Grid2D::from_fn(ny, nx, |y, x| {
            data[y * nx + x]
        }))),
        [nz, ny, nx] => Ok(JobDomain::D3(Grid3D::from_fn(nz, ny, nx, |z, y, x| {
            data[(z * ny + y) * nx + x]
        }))),
        _ => Err(format!("{}D domains are not supported", extents.len())),
    }
}

/// A result grid as (extents, row-major dense data).
fn flatten(domain: &JobDomain) -> (Vec<usize>, Vec<f64>) {
    match domain {
        JobDomain::D1(g) => (vec![g.len()], g.as_slice().to_vec()),
        JobDomain::D2(g) => (vec![g.ny(), g.nx()], g.to_dense()),
        JobDomain::D3(g) => (vec![g.nz(), g.ny(), g.nx()], g.to_dense()),
    }
}

const JSON_CT: &str = "application/json";
const PROM_CT: &str = "text/plain; version=0.0.4";

/// Answer an HTTP scrape: `/healthz` liveness plus host identity,
/// `/metrics` the pinned [`StatsSnapshot`](crate::StatsSnapshot) JSON
/// (`?format=prometheus` selects the text exposition instead), and
/// `/trace` the span rings as Chrome trace-event JSON (`?ms=N` keeps
/// only the last `N` milliseconds). Anything else is 404.
fn http_response_for(service: &StencilService, open_conns: u64, req: &[u8]) -> Vec<u8> {
    let line = req.split(|&b| b == b'\r').next().unwrap_or(b"");
    let mut parts = line.split(|&b| b == b' ');
    let method = parts.next().unwrap_or(b"");
    let target = parts.next().unwrap_or(b"");
    if method != b"GET" && method != b"HEAD" {
        return http_response(
            405,
            "Method Not Allowed",
            JSON_CT,
            "{\"error\": \"GET only\"}\n",
        );
    }
    let mut it = target.splitn(2, |&b| b == b'?');
    let path = it.next().unwrap_or(b"");
    let query = it.next().unwrap_or(b"");
    match path {
        b"/healthz" => {
            let host = stencil_tune::host::HostFingerprint::detect();
            http_response(
                200,
                "OK",
                JSON_CT,
                &format!(
                    "{{\"status\": \"ok\", \"conns\": {open_conns}, \
                     \"hostname\": \"{}\", \"isa\": \"{}\", \"threads\": {}, \
                     \"started_unix\": {}}}\n",
                    json_escape(&host.hostname),
                    json_escape(&host.isa),
                    host.threads,
                    service.started_unix(),
                ),
            )
        }
        b"/metrics" if query_param(query, "format").as_deref() == Some("prometheus") => {
            // stats() refreshes the queue-depth gauge the exposition
            // reads; the snapshot itself is discarded
            let _ = service.stats();
            http_response(200, "OK", PROM_CT, &service.stats_handle().prometheus())
        }
        b"/metrics" => http_response(200, "OK", JSON_CT, &service.stats().to_json().pretty()),
        b"/trace" => {
            let window = query_param(query, "ms").and_then(|v| v.parse().ok());
            http_response(
                200,
                "OK",
                JSON_CT,
                &stencil_obs::TraceSink::chrome_json(window),
            )
        }
        _ => http_response(404, "Not Found", JSON_CT, "{\"error\": \"not found\"}\n"),
    }
}

/// The raw value of `name` in an `a=1&b=2` query string, if present.
fn query_param(query: &[u8], name: &str) -> Option<String> {
    query.split(|&b| b == b'&').find_map(|kv| {
        let mut it = kv.splitn(2, |&b| b == b'=');
        if it.next()? == name.as_bytes() {
            Some(String::from_utf8_lossy(it.next().unwrap_or(b"")).into_owned())
        } else {
            None
        }
    })
}

/// Minimal JSON string escaping for host-derived values.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn http_response(status: u16, reason: &str, ctype: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}
