//! A blocking protocol client for tests, benches, and examples.
//!
//! [`NetClient`] speaks the length-prefixed frame protocol over one
//! TCP connection: `hello` handshake, `submit` (header + grid payload),
//! then event streaming per job — `progress` frames for multi-round
//! jobs, a `done` header plus the result payload, or a typed
//! `rejected` / `error`. The client is deliberately synchronous: each
//! call reads until its answer arrives, which is exactly what a
//! closed-loop bench or an e2e test wants.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use stencil_tune::json::Value;

use super::wire::{
    self, ClientMsg, Frame, RejectReason, ServerMsg, SubmitHeader, WireError, DEFAULT_MAX_FRAME,
};

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame that failed to decode.
    Wire(WireError),
    /// The server answered out of protocol (unexpected message kind).
    Protocol(String),
    /// The server reported a job or connection error.
    Remote(String),
    /// The submission was refused by admission control.
    Rejected {
        /// Why: queue-full, quota-exceeded, shutting-down, or
        /// quarantined.
        reason: RejectReason,
        /// The server's suggested backoff.
        retry_after: Duration,
    },
    /// The job was shed server-side: its queue-wait deadline passed
    /// before a worker dequeued it.
    Deadline {
        /// The deadline the submission carried, milliseconds.
        deadline_ms: u64,
        /// How long the round actually waited, milliseconds.
        waited_ms: u64,
    },
    /// A receive exceeded the read timeout: the server accepted the
    /// connection but stalled without answering — typed, so callers
    /// back off instead of blocking forever on a wedged peer.
    Timeout {
        /// The configured receive bound (`None` would block forever,
        /// so this is always `Some` when the variant is produced).
        limit: Option<Duration>,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Remote(m) => write!(f, "server error: {m}"),
            NetError::Rejected {
                reason,
                retry_after,
            } => write!(
                f,
                "submission rejected ({}), retry after {retry_after:?}",
                reason.as_str()
            ),
            NetError::Deadline {
                deadline_ms,
                waited_ms,
            } => write!(
                f,
                "job shed: waited {waited_ms} ms past a {deadline_ms} ms deadline"
            ),
            NetError::Timeout { limit } => {
                write!(f, "receive timed out (limit {limit:?}): server stalled")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// One streamed update for an in-flight job.
#[derive(Debug)]
pub enum JobEvent {
    /// `round` of `rounds` finished; more follow.
    Progress {
        /// Rounds completed so far.
        round: u64,
        /// Total rounds this job runs.
        rounds: u64,
    },
    /// The job finished; carries the result.
    Done(JobOutcome),
}

/// A finished job's result as received off the wire.
#[derive(Debug)]
pub struct JobOutcome {
    /// Result grid extents (row-major).
    pub extents: Vec<usize>,
    /// Result grid data, dense row-major.
    pub data: Vec<f64>,
    /// Shards the final round executed as.
    pub shards: u64,
    /// True when any round rode a multi-job batch.
    pub batched: bool,
    /// Queue+execution latency summed across rounds, microseconds.
    pub latency_us: u64,
}

/// A blocking connection to a [`super::NetServer`].
///
/// Multiple jobs can be in flight on one connection: the server
/// interleaves their `progress`/`done` frames, so every receive path
/// demultiplexes — stream messages for *other* jobs are buffered and
/// replayed by [`NetClient::next_event`], never dropped or mistaken
/// for the reply being waited on.
pub struct NetClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    max_frame: usize,
    next_id: u64,
    tenant: String,
    read_timeout: Option<Duration>,
    /// Buffered stream events per job id (`Err` = a terminal
    /// `job-error` or `deadline`).
    events: HashMap<u64, VecDeque<Result<JobEvent, JobFailure>>>,
}

/// A buffered terminal failure for one job, kept typed until the
/// caller's `next_event` turns it into the matching [`NetError`].
#[derive(Debug)]
enum JobFailure {
    Error(String),
    Deadline { deadline_ms: u64, waited_ms: u64 },
}

impl JobFailure {
    fn into_error(self) -> NetError {
        match self {
            JobFailure::Error(m) => NetError::Remote(m),
            JobFailure::Deadline {
                deadline_ms,
                waited_ms,
            } => NetError::Deadline {
                deadline_ms,
                waited_ms,
            },
        }
    }
}

/// Default receive timeout applied at [`NetClient::connect`]: a server
/// that accepts the connection and then never answers surfaces as a
/// typed [`NetError::Timeout`] instead of a forever-blocked client.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

impl NetClient {
    /// Connect and run the `hello` handshake for `tenant`. Returns the
    /// connected client; the server's per-tenant quota is available via
    /// the handshake but not retained. Receives are bounded by
    /// [`DEFAULT_READ_TIMEOUT`] (adjust with
    /// [`NetClient::set_read_timeout`]).
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Self, NetError> {
        Self::connect_with_timeout(addr, tenant, Some(DEFAULT_READ_TIMEOUT))
    }

    /// [`NetClient::connect`] with an explicit receive timeout
    /// (`None` = block forever, the pre-timeout behavior).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        tenant: &str,
        timeout: Option<Duration>,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeout)?;
        let mut c = Self {
            stream,
            rbuf: Vec::new(),
            max_frame: DEFAULT_MAX_FRAME,
            next_id: 1,
            tenant: tenant.to_string(),
            read_timeout: timeout,
            events: HashMap::new(),
        };
        c.send_msg(&ClientMsg::Hello {
            tenant: tenant.into(),
        })?;
        match c.recv_msg()? {
            ServerMsg::HelloOk { .. } => Ok(c),
            other => Err(NetError::Protocol(format!(
                "expected hello-ok, got {other:?}"
            ))),
        }
    }

    /// The tenant this connection identified as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Cap accepted inbound frames (mirrors the server-side limit).
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Bound how long a single receive may block (`None` = forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(t)?;
        self.read_timeout = t;
        Ok(())
    }

    /// Submit a job: `header` (its `id` is assigned here) plus the
    /// dense row-major grid `data`. Returns the job id once the server
    /// answers `accepted`; a refusal surfaces as
    /// [`NetError::Rejected`].
    pub fn submit(&mut self, mut header: SubmitHeader, data: &[f64]) -> Result<u64, NetError> {
        header.id = self.next_id;
        self.next_id += 1;
        let id = header.id;
        self.send_msg(&ClientMsg::Submit(header))?;
        self.send_frame(&Frame::Payload(data.to_vec()))?;
        loop {
            // a failed submission answers job-error instead of accepted
            if let Some(ev) = self.take_event(id) {
                return match ev {
                    Err(fail) => Err(fail.into_error()),
                    Ok(ev) => Err(NetError::Protocol(format!(
                        "job {id} streamed {ev:?} before being accepted"
                    ))),
                };
            }
            match self.recv_control()? {
                Some(ServerMsg::Accepted { id: got }) if got == id => return Ok(id),
                Some(ServerMsg::Rejected {
                    id: got,
                    reason,
                    retry_after_ms,
                }) if got == id => {
                    return Err(NetError::Rejected {
                        reason,
                        retry_after: Duration::from_millis(retry_after_ms),
                    })
                }
                Some(ServerMsg::Error { message }) => return Err(NetError::Remote(message)),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "expected accepted, got {other:?}"
                    )))
                }
                None => continue, // another job's stream message, buffered
            }
        }
    }

    /// Block for the next event on job `id`: a progress update or the
    /// final result (whose payload frame is read here too). Events for
    /// other in-flight jobs arriving in between are buffered for their
    /// own `next_event` calls.
    pub fn next_event(&mut self, id: u64) -> Result<JobEvent, NetError> {
        loop {
            if let Some(ev) = self.take_event(id) {
                return ev.map_err(JobFailure::into_error);
            }
            match self.recv_control()? {
                None => continue,
                Some(ServerMsg::Error { message }) => return Err(NetError::Remote(message)),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "unexpected message while waiting on job {id}: {other:?}"
                    )))
                }
            }
        }
    }

    /// Submit and drive a job to completion, discarding progress
    /// events. The closed-loop convenience path.
    pub fn run(&mut self, header: SubmitHeader, data: &[f64]) -> Result<JobOutcome, NetError> {
        let id = self.submit(header, data)?;
        loop {
            match self.next_event(id)? {
                JobEvent::Progress { .. } => continue,
                JobEvent::Done(outcome) => return Ok(outcome),
            }
        }
    }

    /// Cancel job `id` (pending rounds are dropped; a round already
    /// executing still runs, into the void).
    pub fn cancel(&mut self, id: u64) -> Result<(), NetError> {
        self.send_msg(&ClientMsg::Cancel { id })?;
        loop {
            // "no such job" (or a racing completion) lands in the
            // job's stream buffer
            if let Some(ev) = self.take_event(id) {
                return match ev {
                    Err(fail) => Err(fail.into_error()),
                    Ok(ev) => Err(NetError::Protocol(format!(
                        "job {id} streamed {ev:?} while cancelling"
                    ))),
                };
            }
            match self.recv_control()? {
                Some(ServerMsg::Cancelled { id: got }) if got == id => return Ok(()),
                Some(ServerMsg::Error { message }) => return Err(NetError::Remote(message)),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "expected cancelled, got {other:?}"
                    )))
                }
                None => continue,
            }
        }
    }

    /// Fetch the live [`crate::StatsSnapshot`] JSON document.
    pub fn stats(&mut self) -> Result<Value, NetError> {
        self.send_msg(&ClientMsg::Stats)?;
        loop {
            match self.recv_control()? {
                Some(ServerMsg::Stats(doc)) => return Ok(doc),
                Some(other) => {
                    return Err(NetError::Protocol(format!("expected stats, got {other:?}")))
                }
                None => continue,
            }
        }
    }

    /// In-band liveness probe. Returns `(status, open_connections)`.
    pub fn health(&mut self) -> Result<(String, u64), NetError> {
        self.send_msg(&ClientMsg::Health)?;
        loop {
            match self.recv_control()? {
                Some(ServerMsg::Health { status, conns }) => return Ok((status, conns)),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "expected health, got {other:?}"
                    )))
                }
                None => continue,
            }
        }
    }

    /// Orderly goodbye: the server acknowledges and closes.
    pub fn bye(mut self) -> Result<(), NetError> {
        self.send_msg(&ClientMsg::Bye)?;
        loop {
            match self.recv_control()? {
                Some(ServerMsg::ByeOk) => return Ok(()),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "expected bye-ok, got {other:?}"
                    )))
                }
                None => continue,
            }
        }
    }

    /// Pop a buffered stream event for job `id`.
    fn take_event(&mut self, id: u64) -> Option<Result<JobEvent, JobFailure>> {
        let q = self.events.get_mut(&id)?;
        let ev = q.pop_front();
        if q.is_empty() {
            self.events.remove(&id);
        }
        ev
    }

    /// Receive one message; per-job stream messages (`progress`,
    /// `done` + payload, `job-error`) are buffered and reported as
    /// `None`, anything else is returned for the caller to match.
    fn recv_control(&mut self) -> Result<Option<ServerMsg>, NetError> {
        match self.recv_msg()? {
            ServerMsg::Progress { id, round, rounds } => {
                self.events
                    .entry(id)
                    .or_default()
                    .push_back(Ok(JobEvent::Progress { round, rounds }));
                Ok(None)
            }
            ServerMsg::Done {
                id,
                shards,
                batched,
                latency_us,
                extents,
            } => {
                let data = match self.recv_frame()? {
                    Frame::Payload(d) => d,
                    Frame::Header(_) => {
                        return Err(NetError::Protocol(
                            "done header without its payload frame".into(),
                        ))
                    }
                };
                self.events
                    .entry(id)
                    .or_default()
                    .push_back(Ok(JobEvent::Done(JobOutcome {
                        extents,
                        data,
                        shards,
                        batched,
                        latency_us,
                    })));
                Ok(None)
            }
            ServerMsg::JobError { id, message } => {
                self.events
                    .entry(id)
                    .or_default()
                    .push_back(Err(JobFailure::Error(message)));
                Ok(None)
            }
            ServerMsg::Deadline {
                id,
                deadline_ms,
                waited_ms,
            } => {
                self.events
                    .entry(id)
                    .or_default()
                    .push_back(Err(JobFailure::Deadline {
                        deadline_ms,
                        waited_ms,
                    }));
                Ok(None)
            }
            other => Ok(Some(other)),
        }
    }

    fn send_msg(&mut self, msg: &ClientMsg) -> Result<(), NetError> {
        self.send_frame(&Frame::Header(msg.to_json()))
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        let mut buf = Vec::new();
        wire::encode(frame, &mut buf);
        self.stream.write_all(&buf)?;
        Ok(())
    }

    fn recv_msg(&mut self) -> Result<ServerMsg, NetError> {
        match self.recv_frame()? {
            Frame::Header(doc) => {
                ServerMsg::from_json(&doc).map_err(|e| NetError::Protocol(e.to_string()))
            }
            Frame::Payload(_) => Err(NetError::Protocol(
                "unexpected payload frame; expected a message header".into(),
            )),
        }
    }

    fn recv_frame(&mut self) -> Result<Frame, NetError> {
        loop {
            if let Some((frame, used)) = wire::decode(&self.rbuf, self.max_frame)? {
                self.rbuf.drain(..used);
                return Ok(frame);
            }
            let mut chunk = [0u8; 64 * 1024];
            let n = match self.stream.read(&mut chunk) {
                Ok(n) => n,
                // the OS reports a read timeout as WouldBlock (unix)
                // or TimedOut (windows); both mean "the server went
                // quiet past the bound", which deserves its own type
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(NetError::Timeout {
                        limit: self.read_timeout,
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            if n == 0 {
                // orderly remote close mid-read: surface the typed
                // truncation if a partial frame is stranded
                wire::decode_eof(&self.rbuf, self.max_frame)?;
                return Err(NetError::Protocol("connection closed by the server".into()));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Plain HTTP `GET` against the same port (the scrape surface).
/// Returns `(status_code, body)`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<(u16, String), NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write!(stream, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or("");
    let body = parts.next().unwrap_or("").to_string();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NetError::Protocol(format!("malformed http response: {head:?}")))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn a_server_that_accepts_but_never_replies_times_out_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // the "server" accepts and then goes silent, holding the socket
        // open so the client blocks in the hello handshake's receive —
        // the exact stall the default read timeout exists to bound
        let hold = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(800));
            drop(sock);
        });
        let limit = Duration::from_millis(150);
        let start = std::time::Instant::now();
        let err = NetClient::connect_with_timeout(addr, "tenant", Some(limit))
            .err()
            .expect("handshake against a mute server must fail");
        assert!(
            matches!(err, NetError::Timeout { limit: Some(l) } if l == limit),
            "expected a typed timeout carrying the limit, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_millis(700),
            "timeout must fire near the configured bound, not at socket death"
        );
        hold.join().unwrap();
    }
}
