//! The warm-start manifest: the patterns a deployment expects to serve,
//! declared up front so the service can compile every plan at startup —
//! under `Tuning::CacheOnly` a fully warmed host reaches serving state
//! without a single probe run.
//!
//! The format is JSON through the project's shared hand-rolled
//! reader/writer ([`stencil_tune::json`]):
//!
//! ```json
//! {
//!   "version": 1.0,
//!   "default_tuning": "cache-only",
//!   "patterns": [
//!     { "kernel": "heat2d",   "domain": [4096.0, 4096.0] },
//!     { "kernel": "box2d9p",  "domain": [2048.0, 2048.0], "tuning": "static" },
//!     { "name": "custom-blur", "dims": 1.0, "radius": 1.0,
//!       "weights": [0.25, 0.5, 0.25] }
//!   ]
//! }
//! ```
//!
//! An entry is either a named Table-1 kernel (`"kernel"`) or an inline
//! pattern (`"dims"`/`"radius"`/`"weights"`); `"domain"` is the
//! expected extents (the registry's shape class and the tuner's
//! [`Solver::domain_hint`](stencil_core::Solver::domain_hint) both key
//! on it), and `"tuning"` overrides the manifest-wide default for one
//! entry.

use std::collections::BTreeMap;
use std::path::Path;
use stencil_core::{kernels, Pattern, Tuning};
use stencil_tune::json::{self, Value};

/// Current manifest schema version.
pub const MANIFEST_VERSION: f64 = 1.0;

/// One pattern the service should be ready to serve.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Display name (the kernel name, or the inline entry's `"name"`).
    pub name: String,
    /// The stencil pattern.
    pub pattern: Pattern,
    /// Expected domain extents (shape-class / tuner hint), if declared.
    pub domain_hint: Option<Vec<usize>>,
    /// Per-entry tuning override (`None` = use the manifest default).
    pub tuning: Option<Tuning>,
}

/// A parsed warm-start manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Tuning mode entries without an override warm up under.
    pub default_tuning: Tuning,
    /// The declared patterns, in file order.
    pub entries: Vec<ManifestEntry>,
}

impl Default for Manifest {
    fn default() -> Self {
        Self {
            default_tuning: Tuning::CacheOnly,
            entries: Vec::new(),
        }
    }
}

impl Manifest {
    /// Empty manifest with the given default tuning mode.
    pub fn new(default_tuning: Tuning) -> Self {
        Self {
            default_tuning,
            entries: Vec::new(),
        }
    }

    /// Append a named Table-1 kernel with an optional expected domain.
    ///
    /// # Panics
    ///
    /// If `kernel` is not one of the names [`kernel_by_name`] knows.
    pub fn push_kernel(&mut self, kernel: &str, domain: Option<&[usize]>) -> &mut Self {
        let pattern = kernel_by_name(kernel)
            .unwrap_or_else(|| panic!("unknown kernel name {kernel:?} (see kernel_by_name)"));
        self.entries.push(ManifestEntry {
            name: kernel.to_string(),
            pattern,
            domain_hint: domain.map(<[usize]>::to_vec),
            tuning: None,
        });
        self
    }

    /// Parse a manifest document.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = json::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Value::as_num)
            .ok_or("manifest lacks a numeric \"version\"")?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "manifest version {version} is not the supported {MANIFEST_VERSION}"
            ));
        }
        let default_tuning = match doc.get("default_tuning") {
            None => Tuning::CacheOnly,
            Some(v) => tuning_from_str(
                v.as_str()
                    .ok_or("manifest \"default_tuning\" must be a string")?,
            )?,
        };
        let mut entries = Vec::new();
        let patterns = doc
            .get("patterns")
            .and_then(Value::as_arr)
            .ok_or("manifest lacks a \"patterns\" array")?;
        for (i, e) in patterns.iter().enumerate() {
            entries.push(parse_entry(e).map_err(|why| format!("patterns[{i}]: {why}"))?);
        }
        Ok(Manifest {
            default_tuning,
            entries,
        })
    }

    /// Load and parse a manifest file.
    pub fn load(path: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable manifest {path:?}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("manifest {path:?}: {e}"))
    }

    /// Serialize back to the manifest JSON schema (round-trips through
    /// [`Manifest::parse`]).
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Num(MANIFEST_VERSION));
        root.insert(
            "default_tuning".into(),
            Value::Str(tuning_to_str(self.default_tuning).into()),
        );
        let patterns = self
            .entries
            .iter()
            .map(|e| {
                let mut m = BTreeMap::new();
                if kernel_by_name(&e.name).as_ref() == Some(&e.pattern) {
                    m.insert("kernel".into(), Value::Str(e.name.clone()));
                } else {
                    m.insert("name".into(), Value::Str(e.name.clone()));
                    m.insert("dims".into(), Value::Num(e.pattern.dims() as f64));
                    m.insert("radius".into(), Value::Num(e.pattern.radius() as f64));
                    m.insert(
                        "weights".into(),
                        Value::Arr(e.pattern.weights().iter().map(|&w| Value::Num(w)).collect()),
                    );
                }
                if let Some(d) = &e.domain_hint {
                    m.insert(
                        "domain".into(),
                        Value::Arr(d.iter().map(|&x| Value::Num(x as f64)).collect()),
                    );
                }
                if let Some(t) = e.tuning {
                    m.insert("tuning".into(), Value::Str(tuning_to_str(t).into()));
                }
                Value::Obj(m)
            })
            .collect();
        root.insert("patterns".into(), Value::Arr(patterns));
        Value::Obj(root)
    }

    /// Write the manifest to a file (pretty-printed).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json().pretty())
    }
}

fn parse_entry(e: &Value) -> Result<ManifestEntry, String> {
    let tuning = match e.get("tuning") {
        None => None,
        Some(v) => Some(tuning_from_str(
            v.as_str().ok_or("\"tuning\" must be a string")?,
        )?),
    };
    let domain_hint = match e.get("domain") {
        None => None,
        Some(v) => Some(
            v.as_arr()
                .ok_or("\"domain\" must be an array of extents")?
                .iter()
                .map(|x| {
                    x.as_num()
                        .filter(|&n| n >= 1.0 && n.fract() == 0.0)
                        .map(|n| n as usize)
                        .ok_or("\"domain\" extents must be positive integers")
                })
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    let (name, pattern) = if let Some(k) = e.get("kernel") {
        let k = k.as_str().ok_or("\"kernel\" must be a string")?;
        let p = kernel_by_name(k).ok_or_else(|| format!("unknown kernel {k:?}"))?;
        (k.to_string(), p)
    } else {
        let dims = e
            .get("dims")
            .and_then(Value::as_num)
            .filter(|&d| (1.0..=3.0).contains(&d) && d.fract() == 0.0)
            .ok_or("inline pattern needs \"dims\" in 1..=3")? as usize;
        let radius =
            e.get("radius")
                .and_then(Value::as_num)
                .filter(|&r| r >= 1.0 && r.fract() == 0.0)
                .ok_or("inline pattern needs an integer \"radius\" >= 1")? as usize;
        let weights: Vec<f64> = e
            .get("weights")
            .and_then(Value::as_arr)
            .ok_or("inline pattern needs a \"weights\" array")?
            .iter()
            .map(|w| w.as_num().ok_or("\"weights\" must be numbers"))
            .collect::<Result<_, _>>()?;
        let side = 2 * radius + 1;
        if weights.len() != side.pow(dims as u32) {
            return Err(format!(
                "inline pattern has {} weights, needs (2*{radius}+1)^{dims} = {}",
                weights.len(),
                side.pow(dims as u32)
            ));
        }
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("inline")
            .to_string();
        (name, Pattern::new(dims, radius, weights))
    };
    if let Some(d) = &domain_hint {
        if d.len() != pattern.dims() {
            return Err(format!(
                "\"domain\" has {} extents for a {}D pattern",
                d.len(),
                pattern.dims()
            ));
        }
    }
    Ok(ManifestEntry {
        name,
        pattern,
        domain_hint,
        tuning,
    })
}

/// Resolve a Table-1 kernel name (the names `stencil-bench` prints,
/// lower-case, plus the `star3d` alias for the 3D heat star).
pub fn kernel_by_name(name: &str) -> Option<Pattern> {
    Some(match name {
        "heat1d" => kernels::heat1d(),
        "d1p5" => kernels::d1p5(),
        "heat2d" => kernels::heat2d(),
        "box2d9p" => kernels::box2d9p(),
        "gb" => kernels::gb(),
        "heat3d" | "star3d" => kernels::heat3d(),
        "box3d27p" => kernels::box3d27p(),
        "box3d125p" => kernels::box3d125p(),
        "star3d_r2" => kernels::star3d_r2(),
        _ => return None,
    })
}

/// Encode a tuning mode for manifests (`static`/`measured`/`cache-only`).
pub fn tuning_to_str(t: Tuning) -> &'static str {
    match t {
        Tuning::Static => "static",
        Tuning::Measured => "measured",
        Tuning::CacheOnly => "cache-only",
    }
}

/// Decode [`tuning_to_str`].
pub fn tuning_from_str(s: &str) -> Result<Tuning, String> {
    match s {
        "static" => Ok(Tuning::Static),
        "measured" => Ok(Tuning::Measured),
        "cache-only" => Ok(Tuning::CacheOnly),
        other => Err(format!(
            "unknown tuning mode {other:?} (expected static | measured | cache-only)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let text = r#"{
  "version": 1.0,
  "default_tuning": "cache-only",
  "patterns": [
    { "kernel": "heat2d",  "domain": [4096.0, 4096.0] },
    { "kernel": "box2d9p", "domain": [2048.0, 2048.0], "tuning": "static" },
    { "name": "custom-blur", "dims": 1.0, "radius": 1.0,
      "weights": [0.25, 0.5, 0.25] }
  ]
}"#;
        let m = Manifest::parse(text).unwrap();
        assert_eq!(m.default_tuning, Tuning::CacheOnly);
        assert_eq!(m.entries.len(), 3);
        assert_eq!(m.entries[0].pattern, kernels::heat2d());
        assert_eq!(m.entries[0].domain_hint.as_deref(), Some(&[4096, 4096][..]));
        assert_eq!(m.entries[1].tuning, Some(Tuning::Static));
        assert_eq!(m.entries[2].name, "custom-blur");
        assert_eq!(m.entries[2].pattern.dims(), 1);
    }

    #[test]
    fn round_trips_through_its_own_writer() {
        let mut m = Manifest::new(Tuning::Static);
        m.push_kernel("heat2d", Some(&[1024, 1024]))
            .push_kernel("star3d", None);
        m.entries.push(ManifestEntry {
            name: "custom".into(),
            pattern: Pattern::new_1d(&[0.2, 0.6, 0.2]),
            domain_hint: Some(vec![65536]),
            tuning: Some(Tuning::Measured),
        });
        let text = m.to_json().pretty();
        let back = Manifest::parse(&text).unwrap();
        // star3d resolves to the same pattern as heat3d; the name is
        // preserved because the alias is itself resolvable
        assert_eq!(back.default_tuning, m.default_tuning);
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.entries[2].pattern, m.entries[2].pattern);
        assert_eq!(back.entries[2].tuning, Some(Tuning::Measured));
    }

    #[test]
    fn save_load_on_disk() {
        let path = std::env::temp_dir().join(format!(
            "stencil-serve-manifest-{}.json",
            std::process::id()
        ));
        let mut m = Manifest::default();
        m.push_kernel("heat1d", Some(&[1 << 20]));
        m.save(&path).unwrap();
        let back = Manifest::load(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_manifests_are_described_errors() {
        for (text, needle) in [
            ("{", "not valid JSON"),
            (r#"{"version": 2.0, "patterns": []}"#, "version"),
            (r#"{"version": 1.0}"#, "patterns"),
            (
                r#"{"version": 1.0, "patterns": [{"kernel": "nope"}]}"#,
                "unknown kernel",
            ),
            (
                r#"{"version": 1.0, "patterns": [{"dims": 2.0, "radius": 1.0, "weights": [1.0]}]}"#,
                "weights",
            ),
            (
                r#"{"version": 1.0, "patterns": [{"kernel": "heat2d", "domain": [8.0]}]}"#,
                "extents",
            ),
            (
                r#"{"version": 1.0, "default_tuning": "warp", "patterns": []}"#,
                "unknown tuning mode",
            ),
        ] {
            let err = Manifest::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn every_table1_kernel_name_resolves() {
        for name in [
            "heat1d",
            "d1p5",
            "heat2d",
            "box2d9p",
            "gb",
            "heat3d",
            "box3d27p",
            "star3d",
            "box3d125p",
            "star3d_r2",
        ] {
            assert!(kernel_by_name(name).is_some(), "{name}");
        }
        assert!(kernel_by_name("life").is_none());
    }
}
