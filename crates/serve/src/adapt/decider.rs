//! The retuning decider: watches per-key traffic, challenges hot
//! incumbents, and hot-swaps the registry when a challenger wins by
//! enough.
//!
//! One [`Decider::tick`] is the whole control loop, deliberately
//! synchronous and side-effect-ordered so a test driving ticks by hand
//! sees exactly what the background thread does:
//!
//! 1. scan the [`TrafficMap`](super::TrafficMap) for keys whose
//!    samples-since-challenge window reached `min_samples`,
//! 2. run each hot key through the [`ChallengerLane`],
//! 3. reset the key's window (win or lose — the hysteresis),
//! 4. on a win by more than `margin`, compile the challenger against
//!    the shared pool at the next epoch, [`PlanRegistry::swap_plan`] it
//!    in, and persist the verdict to the per-host tune cache.
//!
//! In-flight jobs keep their `Arc<Plan>` across a swap and finish on
//! the old generation bit-exactly; only jobs resolved after the swap
//! see the new epoch.

use super::lane::{ChallengeRequest, ChallengerLane, PlanChoice};
use crate::metrics::ServeStats;
use crate::registry::PlanRegistry;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;
use stencil_core::{Plan, PlanError, Solver, Tuning};

/// Knobs of the adaptive retuning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptConfig {
    /// The master switch. Off by default: retuning spends probe time
    /// and changes serving plans at runtime, so a deployment opts in.
    pub enabled: bool,
    /// A challenger must beat the incumbent's re-measured rate by this
    /// fraction to swap (`0.10` = 10% faster). The margin plus the
    /// post-challenge window reset is what keeps two near-equal
    /// configurations from flapping.
    pub margin: f64,
    /// Samples a key must accumulate since its last challenge before
    /// it counts as hot.
    pub min_samples: u64,
    /// Probe budget per challenge, milliseconds — the background
    /// lane's spend, independent of the tuner's startup budget.
    pub lane_budget_ms: u64,
    /// Background decider tick period. `Duration::ZERO` spawns no
    /// thread: ticks only run through
    /// [`StencilService::retune_tick`](crate::StencilService::retune_tick)
    /// (what deterministic tests and the bench driver use).
    pub interval: Duration,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            margin: 0.10,
            min_samples: 64,
            lane_budget_ms: 40,
            interval: Duration::from_millis(200),
        }
    }
}

/// The retuning control loop (see the module docs for the tick
/// anatomy).
pub struct Decider {
    cfg: AdaptConfig,
    registry: Arc<PlanRegistry>,
    stats: Arc<ServeStats>,
    lane: Box<dyn ChallengerLane>,
}

impl std::fmt::Debug for Decider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Decider").field("cfg", &self.cfg).finish()
    }
}

impl Decider {
    /// A decider over a registry and its stats surface, challenging
    /// through `lane`.
    pub fn new(
        cfg: AdaptConfig,
        registry: Arc<PlanRegistry>,
        stats: Arc<ServeStats>,
        lane: Box<dyn ChallengerLane>,
    ) -> Self {
        Self {
            cfg,
            registry,
            stats,
            lane,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Run one decider pass; returns how many registry entries were
    /// hot-swapped. Hot keys are visited in key order, so a scripted
    /// lane sees a reproducible challenge sequence.
    pub fn tick(&self) -> usize {
        let mut swaps = 0;
        for (key, traffic) in self.stats.traffic.hot(self.cfg.min_samples) {
            let Some(incumbent) = self.registry.plan_for_key(&key) else {
                // traffic under a key the registry no longer serves:
                // nothing to challenge, stop counting it as hot
                traffic.reset_window();
                continue;
            };
            let req = ChallengeRequest {
                key: key.clone(),
                pattern: incumbent.pattern().clone(),
                domain_hint: traffic.hint().to_vec(),
                threads: self.registry.pool().threads(),
                incumbent: PlanChoice::from_plan(&incumbent),
                budget_ms: self.cfg.lane_budget_ms,
            };
            self.stats.challenges.fetch_add(1, Relaxed);
            let verdict = self.lane.challenge(&req);
            // win or lose, the key starts a fresh window: a margin-edge
            // loser must re-earn min_samples before the next trial
            traffic.reset_window();
            let Some(v) = verdict else {
                self.stats.challenges_rejected.fetch_add(1, Relaxed);
                continue;
            };
            let beats = v.rate > v.incumbent_rate * (1.0 + self.cfg.margin);
            if !beats || v.choice == req.incumbent {
                self.stats.challenges_rejected.fetch_add(1, Relaxed);
                continue;
            }
            match compile_choice(&req, &v.choice, incumbent.epoch() + 1, &self.registry) {
                Ok(plan) => {
                    self.registry.swap_plan(&key, Arc::new(plan));
                    self.lane.persist(&req, &v);
                    swaps += 1;
                }
                Err(e) => {
                    self.stats.challenges_rejected.fetch_add(1, Relaxed);
                    self.stats.warn(format!(
                        "retune: winning challenger for {key:?} failed to compile ({e}); \
                         keeping the incumbent"
                    ));
                }
            }
        }
        swaps
    }
}

/// Compile a fully-pinned challenger configuration against the
/// registry's shared pool, tagged with the next plan epoch.
fn compile_choice(
    req: &ChallengeRequest,
    choice: &PlanChoice,
    epoch: u64,
    registry: &PlanRegistry,
) -> Result<Plan, PlanError> {
    let mut solver = Solver::new(req.pattern.clone())
        .method(choice.method)
        .tiling(choice.tiling)
        .width(choice.width)
        .tuning(Tuning::Static)
        .pool(registry.pool().clone())
        .domain_hint(&req.domain_hint)
        .epoch(epoch);
    if let Some(r) = choice.ring {
        solver = solver.ring3(r);
    }
    solver.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::lane::{ChallengeVerdict, ScriptedLane};
    use crate::registry::PlanShape;
    use crate::shard::ShardPolicy;
    use std::time::Duration;
    use stencil_core::api::Width;
    use stencil_core::{kernels, Method, Tiling};

    fn harness() -> (Arc<PlanRegistry>, Arc<ServeStats>, String) {
        let stats = Arc::new(ServeStats::new());
        let registry = Arc::new(PlanRegistry::new(
            2,
            ShardPolicy::default(),
            Arc::clone(&stats),
        ));
        let p = kernels::heat2d();
        let hint = [48usize, 48];
        let (key, _) = registry
            .entry_for(&p, Some(&hint), Tuning::Static, PlanShape::Pooled)
            .unwrap();
        (registry, stats, key)
    }

    fn heat_traffic(stats: &ServeStats, key: &str, n: usize, epoch: u64) {
        for _ in 0..n {
            stats.traffic.record(
                key,
                Duration::from_micros(80),
                epoch,
                stencil_obs::Timeline::default(),
                || vec![48, 48],
            );
        }
    }

    fn winning_verdict(registry: &PlanRegistry, key: &str, rate: f64) -> ChallengeVerdict {
        // a challenger that differs from whatever the incumbent
        // resolved to (flip the width), and always compiles for heat2d
        let incumbent = registry.plan_for_key(key).unwrap();
        let width = match incumbent.width() {
            Width::W4 => Width::W8,
            _ => Width::W4,
        };
        ChallengeVerdict {
            choice: PlanChoice {
                method: Method::MultipleLoads,
                tiling: Tiling::None,
                width,
                ring: None,
            },
            rate,
            incumbent_rate: 1.0,
            probes: 3,
            spent_ms: 1.0,
            method_rates: vec![(Method::MultipleLoads, rate)],
        }
    }

    #[test]
    fn cold_keys_are_never_challenged() {
        let (registry, stats, key) = harness();
        let lane = ScriptedLane::new(vec![winning_verdict(&registry, &key, 10.0)]);
        let decider = Decider::new(
            AdaptConfig {
                enabled: true,
                min_samples: 8,
                ..AdaptConfig::default()
            },
            Arc::clone(&registry),
            Arc::clone(&stats),
            Box::new(lane),
        );
        heat_traffic(&stats, &key, 7, 0);
        assert_eq!(decider.tick(), 0);
        assert_eq!(stats.challenges.load(Relaxed), 0);
        // the 8th sample crosses min_samples
        heat_traffic(&stats, &key, 1, 0);
        assert_eq!(decider.tick(), 1);
        assert_eq!(stats.challenges.load(Relaxed), 1);
        assert_eq!(stats.swaps.load(Relaxed), 1);
    }

    #[test]
    fn margin_boundary_does_not_swap_and_window_resets_either_way() {
        let (registry, stats, key) = harness();
        let incumbent = registry.plan_for_key(&key).unwrap();
        // exactly at the boundary: rate == incumbent * (1 + margin) is
        // NOT a win (strict inequality) — the anti-flapping edge
        let mut at_margin = winning_verdict(&registry, &key, 1.10);
        at_margin.incumbent_rate = 1.0;
        let lane = ScriptedLane::new(vec![at_margin]);
        let cfg = AdaptConfig {
            enabled: true,
            margin: 0.10,
            min_samples: 4,
            ..AdaptConfig::default()
        };
        let decider = Decider::new(
            cfg,
            Arc::clone(&registry),
            Arc::clone(&stats),
            Box::new(lane),
        );
        heat_traffic(&stats, &key, 4, 0);
        assert_eq!(decider.tick(), 0);
        assert_eq!(stats.challenges.load(Relaxed), 1);
        assert_eq!(stats.challenges_rejected.load(Relaxed), 1);
        assert_eq!(stats.swaps.load(Relaxed), 0);
        // the incumbent survived untouched...
        assert!(Arc::ptr_eq(
            &registry.plan_for_key(&key).unwrap(),
            &incumbent
        ));
        // ...and the losing challenge still reset the window: the very
        // next tick has no hot key, so no immediate re-trial
        assert_eq!(decider.tick(), 0);
        assert_eq!(stats.challenges.load(Relaxed), 1);
    }

    #[test]
    fn winning_challenge_swaps_once_and_does_not_flap_back() {
        let (registry, stats, key) = harness();
        let old = registry.plan_for_key(&key).unwrap();
        let win = winning_verdict(&registry, &key, 2.0);
        // after the swap the script answers with an incumbent-favoring
        // verdict (challenger loses): a second hot window must not swap
        let lose = ChallengeVerdict {
            choice: PlanChoice::from_plan(&old),
            rate: 1.0,
            incumbent_rate: 2.0,
            probes: 3,
            spent_ms: 1.0,
            method_rates: vec![(old.method(), 2.0)],
        };
        let lane = ScriptedLane::new(vec![win.clone(), lose]);
        let decider = Decider::new(
            AdaptConfig {
                enabled: true,
                margin: 0.10,
                min_samples: 4,
                ..AdaptConfig::default()
            },
            Arc::clone(&registry),
            Arc::clone(&stats),
            Box::new(lane),
        );
        heat_traffic(&stats, &key, 4, 0);
        assert_eq!(decider.tick(), 1);
        let swapped = registry.plan_for_key(&key).unwrap();
        assert!(!Arc::ptr_eq(&swapped, &old));
        assert_eq!(swapped.epoch(), old.epoch() + 1);
        assert_eq!(swapped.width(), win.choice.width);
        // second hot window, losing verdict: no swap back
        heat_traffic(&stats, &key, 4, swapped.epoch());
        assert_eq!(decider.tick(), 0);
        assert!(Arc::ptr_eq(&registry.plan_for_key(&key).unwrap(), &swapped));
        assert_eq!(stats.swaps.load(Relaxed), 1);
        assert_eq!(stats.challenges.load(Relaxed), 2);
        assert_eq!(stats.challenges_rejected.load(Relaxed), 1);
    }
}
