//! Production-traffic telemetry for the adaptive retuning loop: an
//! injectable clock and per-plan latency accounting.
//!
//! Every decider verdict must be reproducible, so nothing in the adapt
//! family reads `Instant::now()` directly — time flows through a
//! [`SharedClock`], which is the wall clock in production and a
//! manually-advanced [`VirtualClock`] in tests and the CI smoke
//! scenario. Latency itself is recorded per registry key in a
//! [`TrafficMap`] living on the stats surface: a log-bucketed,
//! constant-size histogram plus a samples-since-last-challenge window
//! counter the decider uses to find hot keys.

use crate::metrics::LatencyHistogram;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use stencil_runtime::sync::Mutex;

/// A monotonic time source: `now` is the duration since an arbitrary
/// (per-clock) origin. Implementations must be cheap — the service
/// reads the clock once per submission and once per completion.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// The production clock: `Instant`-based, anchored lazily at first
/// read so a freshly-built clock starts near zero.
#[derive(Debug, Default)]
pub struct WallClock {
    anchor: OnceLock<Instant>,
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.anchor.get_or_init(Instant::now).elapsed()
    }
}

/// A manually-advanced clock for deterministic tests: time only moves
/// when [`VirtualClock::advance`] is called, so every latency sample
/// and every decider window is exactly reproducible.
#[derive(Debug, Default)]
pub struct VirtualClock {
    us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.us.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.us.load(Ordering::Relaxed))
    }
}

/// A cloneable handle to a [`Clock`], embeddable in `ServeConfig`
/// (which stays `derive(Clone)`; the Debug impl hides the trait
/// object).
#[derive(Clone)]
pub struct SharedClock(Arc<dyn Clock>);

impl SharedClock {
    /// Wrap any clock implementation.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self(clock)
    }

    /// The production wall clock.
    pub fn wall() -> Self {
        Self(Arc::new(WallClock::default()))
    }

    /// Current time since the clock's origin.
    pub fn now(&self) -> Duration {
        self.0.now()
    }
}

impl Default for SharedClock {
    fn default() -> Self {
        Self::wall()
    }
}

impl std::fmt::Debug for SharedClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedClock").field(&self.0).finish()
    }
}

/// Live latency telemetry for one registry key (one plan generation at
/// a time serves it; the epoch gauge says which).
#[derive(Debug)]
pub struct PlanTraffic {
    /// Per-key end-to-end latency histogram (log-bucketed, constant
    /// size — same shape as the service-wide one).
    pub latency: LatencyHistogram,
    /// Samples recorded since the decider last challenged this key.
    /// Reset after *every* challenge, won or lost, so a key must earn a
    /// fresh `min_samples` of traffic before it is re-examined — the
    /// hysteresis that prevents swap-flapping at the margin boundary.
    window: AtomicU64,
    /// Epoch of the plan generation that served the latest sample.
    epoch: AtomicU64,
    /// Domain extents of the first job recorded under this key — the
    /// challenger probe's domain hint (keys already bucket by shape
    /// class, so any member of the class is representative).
    hint: Vec<usize>,
}

impl PlanTraffic {
    fn new(hint: Vec<usize>) -> Self {
        Self {
            latency: LatencyHistogram::default(),
            window: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            hint,
        }
    }

    /// Samples since the last challenge of this key.
    pub fn window(&self) -> u64 {
        self.window.load(Ordering::Relaxed)
    }

    /// Restart the hot-key window (called by the decider after every
    /// challenge).
    pub fn reset_window(&self) {
        self.window.store(0, Ordering::Relaxed);
    }

    /// Epoch of the plan generation behind the latest sample.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The recorded domain extents (challenger probe hint).
    pub fn hint(&self) -> &[usize] {
        &self.hint
    }
}

/// Per-registry-key traffic telemetry, shared between the executor
/// workers (writers) and the decider / snapshot readers.
#[derive(Default)]
pub struct TrafficMap {
    map: Mutex<BTreeMap<String, Arc<PlanTraffic>>>,
}

impl fmt::Debug for TrafficMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrafficMap")
            .field("keys", &self.map.lock().len())
            .finish()
    }
}

impl TrafficMap {
    /// Record one completed job under `key`: bumps the key's histogram
    /// and hot-key window, and stamps the serving plan's epoch. The
    /// entry is created on first touch with `hint()`'s extents as the
    /// challenger probe hint.
    pub fn record(
        &self,
        key: &str,
        latency: Duration,
        epoch: u64,
        hint: impl FnOnce() -> Vec<usize>,
    ) {
        let entry = {
            let mut map = self.map.lock();
            match map.get(key) {
                Some(e) => Arc::clone(e),
                None => {
                    let e = Arc::new(PlanTraffic::new(hint()));
                    map.insert(key.to_string(), Arc::clone(&e));
                    e
                }
            }
        };
        entry.latency.record(latency);
        entry.window.fetch_add(1, Ordering::Relaxed);
        entry.epoch.store(epoch, Ordering::Relaxed);
    }

    /// The traffic entry for `key`, if any job ever completed under it.
    pub fn get(&self, key: &str) -> Option<Arc<PlanTraffic>> {
        self.map.lock().get(key).cloned()
    }

    /// Every `(key, traffic)` pair, sorted by key (stable iteration
    /// order keeps decider verdicts reproducible).
    pub fn entries(&self) -> Vec<(String, Arc<PlanTraffic>)> {
        self.map
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Keys whose samples-since-challenge window reached `min_samples`
    /// — the decider's hot-key scan.
    pub fn hot(&self, min_samples: u64) -> Vec<(String, Arc<PlanTraffic>)> {
        self.entries()
            .into_iter()
            .filter(|(_, t)| t.window() >= min_samples.max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let vc = Arc::new(VirtualClock::new());
        let clock = SharedClock::new(Arc::clone(&vc) as Arc<dyn Clock>);
        assert_eq!(clock.now(), Duration::ZERO);
        vc.advance(Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        vc.advance(Duration::from_millis(3));
        assert_eq!(clock.now(), Duration::from_micros(3250));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = SharedClock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn traffic_windows_accumulate_and_reset() {
        let t = TrafficMap::default();
        for i in 0..5 {
            t.record("k", Duration::from_micros(10 + i), 0, || vec![64, 64]);
        }
        t.record("other", Duration::from_micros(9), 2, || vec![32]);
        assert_eq!(t.hot(5).len(), 1);
        let (key, traffic) = &t.hot(5)[0];
        assert_eq!(key, "k");
        assert_eq!(traffic.window(), 5);
        assert_eq!(traffic.latency.count(), 5);
        assert_eq!(traffic.hint(), &[64, 64]);
        traffic.reset_window();
        assert_eq!(traffic.window(), 0);
        assert!(t.hot(1).iter().all(|(k, _)| k == "other"));
        // the histogram survives the window reset; the epoch gauge
        // tracks the latest sample's generation
        assert_eq!(t.get("k").unwrap().latency.count(), 5);
        assert_eq!(t.get("other").unwrap().epoch(), 2);
    }
}
