//! Production-traffic telemetry for the adaptive retuning loop: an
//! injectable clock and per-plan latency accounting.
//!
//! Every decider verdict must be reproducible, so nothing in the adapt
//! family reads `Instant::now()` directly — time flows through a
//! [`SharedClock`], which is the wall clock in production and a
//! manually-advanced [`VirtualClock`] in tests and the CI smoke
//! scenario. Latency itself is recorded per registry key in a
//! [`TrafficMap`] living on the stats surface: a log-bucketed,
//! constant-size histogram plus a samples-since-last-challenge window
//! counter the decider uses to find hot keys.

use crate::metrics::LatencyHistogram;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use stencil_runtime::sync::Mutex;

// The clock family moved down to `stencil-obs` so span rings and the
// service share one time domain; re-exported here so every existing
// `serve::adapt::telemetry::{Clock, SharedClock, ...}` path still works.
pub use stencil_obs::{Clock, SharedClock, VirtualClock, WallClock};

/// Live latency telemetry for one registry key (one plan generation at
/// a time serves it; the epoch gauge says which).
#[derive(Debug)]
pub struct PlanTraffic {
    /// Per-key end-to-end latency histogram (log-bucketed, constant
    /// size — same shape as the service-wide one).
    pub latency: LatencyHistogram,
    /// Samples recorded since the decider last challenged this key.
    /// Reset after *every* challenge, won or lost, so a key must earn a
    /// fresh `min_samples` of traffic before it is re-examined — the
    /// hysteresis that prevents swap-flapping at the margin boundary.
    window: AtomicU64,
    /// Epoch of the plan generation that served the latest sample.
    epoch: AtomicU64,
    /// Domain extents of the first job recorded under this key — the
    /// challenger probe's domain hint (keys already bucket by shape
    /// class, so any member of the class is representative).
    hint: Vec<usize>,
    /// Accumulated per-job timeline components (queue / compute /
    /// blocked IO / overlapped IO), microseconds — the stats surface's
    /// per-key time breakdown.
    queue_us: AtomicU64,
    compute_us: AtomicU64,
    io_us: AtomicU64,
    overlap_us: AtomicU64,
}

impl PlanTraffic {
    fn new(hint: Vec<usize>) -> Self {
        Self {
            latency: LatencyHistogram::default(),
            window: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            hint,
            queue_us: AtomicU64::new(0),
            compute_us: AtomicU64::new(0),
            io_us: AtomicU64::new(0),
            overlap_us: AtomicU64::new(0),
        }
    }

    /// Samples since the last challenge of this key.
    pub fn window(&self) -> u64 {
        self.window.load(Ordering::Relaxed)
    }

    /// Restart the hot-key window (called by the decider after every
    /// challenge).
    pub fn reset_window(&self) {
        self.window.store(0, Ordering::Relaxed);
    }

    /// Epoch of the plan generation behind the latest sample.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The recorded domain extents (challenger probe hint).
    pub fn hint(&self) -> &[usize] {
        &self.hint
    }

    /// Accumulated timeline components of every job recorded under
    /// this key.
    pub fn timeline_totals(&self) -> stencil_obs::Timeline {
        stencil_obs::Timeline {
            queue_us: self.queue_us.load(Ordering::Relaxed),
            compute_us: self.compute_us.load(Ordering::Relaxed),
            io_us: self.io_us.load(Ordering::Relaxed),
            overlap_us: self.overlap_us.load(Ordering::Relaxed),
        }
    }
}

/// Per-registry-key traffic telemetry, shared between the executor
/// workers (writers) and the decider / snapshot readers.
#[derive(Default)]
pub struct TrafficMap {
    map: Mutex<BTreeMap<String, Arc<PlanTraffic>>>,
}

impl fmt::Debug for TrafficMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrafficMap")
            .field("keys", &self.map.lock().len())
            .finish()
    }
}

impl TrafficMap {
    /// Record one completed job under `key`: bumps the key's histogram
    /// and hot-key window, accumulates the job's timeline breakdown,
    /// and stamps the serving plan's epoch. The entry is created on
    /// first touch with `hint()`'s extents as the challenger probe
    /// hint.
    pub fn record(
        &self,
        key: &str,
        latency: Duration,
        epoch: u64,
        timeline: stencil_obs::Timeline,
        hint: impl FnOnce() -> Vec<usize>,
    ) {
        let entry = {
            let mut map = self.map.lock();
            match map.get(key) {
                Some(e) => Arc::clone(e),
                None => {
                    let e = Arc::new(PlanTraffic::new(hint()));
                    map.insert(key.to_string(), Arc::clone(&e));
                    e
                }
            }
        };
        entry.latency.record(latency);
        entry.window.fetch_add(1, Ordering::Relaxed);
        entry.epoch.store(epoch, Ordering::Relaxed);
        entry
            .queue_us
            .fetch_add(timeline.queue_us, Ordering::Relaxed);
        entry
            .compute_us
            .fetch_add(timeline.compute_us, Ordering::Relaxed);
        entry.io_us.fetch_add(timeline.io_us, Ordering::Relaxed);
        entry
            .overlap_us
            .fetch_add(timeline.overlap_us, Ordering::Relaxed);
    }

    /// The traffic entry for `key`, if any job ever completed under it.
    pub fn get(&self, key: &str) -> Option<Arc<PlanTraffic>> {
        self.map.lock().get(key).cloned()
    }

    /// Every `(key, traffic)` pair, sorted by key (stable iteration
    /// order keeps decider verdicts reproducible).
    pub fn entries(&self) -> Vec<(String, Arc<PlanTraffic>)> {
        self.map
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Keys whose samples-since-challenge window reached `min_samples`
    /// — the decider's hot-key scan.
    pub fn hot(&self, min_samples: u64) -> Vec<(String, Arc<PlanTraffic>)> {
        self.entries()
            .into_iter()
            .filter(|(_, t)| t.window() >= min_samples.max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let vc = Arc::new(VirtualClock::new());
        let clock = SharedClock::new(Arc::clone(&vc) as Arc<dyn Clock>);
        assert_eq!(clock.now(), Duration::ZERO);
        vc.advance(Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        vc.advance(Duration::from_millis(3));
        assert_eq!(clock.now(), Duration::from_micros(3250));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = SharedClock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn traffic_windows_accumulate_and_reset() {
        let t = TrafficMap::default();
        let tl = stencil_obs::Timeline {
            queue_us: 2,
            compute_us: 7,
            io_us: 1,
            overlap_us: 3,
        };
        for i in 0..5 {
            t.record("k", Duration::from_micros(10 + i), 0, tl, || vec![64, 64]);
        }
        t.record(
            "other",
            Duration::from_micros(9),
            2,
            stencil_obs::Timeline::default(),
            || vec![32],
        );
        assert_eq!(t.hot(5).len(), 1);
        let (key, traffic) = &t.hot(5)[0];
        assert_eq!(key, "k");
        assert_eq!(traffic.window(), 5);
        assert_eq!(traffic.latency.count(), 5);
        assert_eq!(traffic.hint(), &[64, 64]);
        traffic.reset_window();
        assert_eq!(traffic.window(), 0);
        assert!(t.hot(1).iter().all(|(k, _)| k == "other"));
        // the histogram survives the window reset; the epoch gauge
        // tracks the latest sample's generation
        assert_eq!(t.get("k").unwrap().latency.count(), 5);
        assert_eq!(t.get("other").unwrap().epoch(), 2);
        // timeline components accumulate per sample
        let totals = t.get("k").unwrap().timeline_totals();
        assert_eq!(
            (
                totals.queue_us,
                totals.compute_us,
                totals.io_us,
                totals.overlap_us
            ),
            (10, 35, 5, 15)
        );
    }
}
