//! The challenger lane: where a hot key's incumbent plan is put on
//! trial.
//!
//! The decider never probes inline — it hands a [`ChallengeRequest`]
//! to a [`ChallengerLane`] and acts on the verdict. Production uses
//! [`ProbeLane`], which re-runs the `stencil-tune` hill-climb over the
//! incumbent's neighborhood (method × width × time-block × spatial
//! tiles × `Ring3` geometry) through the process-installed
//! [`AutoTuner`] on a small per-challenge budget; tests use
//! [`ScriptedLane`], whose verdicts are fixed up front so every
//! decider decision is reproducible down to the bit.

use std::collections::VecDeque;
use stencil_core::api::Width;
use stencil_core::exec::folded3d::Ring3;
use stencil_core::tune::TuneRequest;
use stencil_core::{Method, Pattern, Plan, Tiling, Tuning};
use stencil_runtime::sync::Mutex;
use stencil_tune::candidates::Candidate;
use stencil_tune::probe::Budget;
use stencil_tune::{AutoTuner, ChallengeOutcome};

/// One fully-resolved plan configuration — the axes a hot-swap can
/// change. (The compiled [`Plan`] adds the pool and the epoch tag on
/// top of this.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChoice {
    /// Vectorization method.
    pub method: Method,
    /// Tiling scheme.
    pub tiling: Tiling,
    /// Vector width.
    pub width: Width,
    /// 3D z-ring geometry, when pinned.
    pub ring: Option<Ring3>,
}

impl PlanChoice {
    /// The configuration a compiled plan resolved to.
    pub fn from_plan(plan: &Plan) -> Self {
        Self {
            method: plan.method(),
            tiling: plan.tiling(),
            width: plan.width(),
            ring: plan.ring3(),
        }
    }

    /// As a tuner candidate (unscored — the probe measures it).
    pub fn to_candidate(self) -> Candidate {
        Candidate {
            method: self.method,
            tiling: self.tiling,
            width: self.width,
            ring: self.ring,
            score: f64::NAN,
        }
    }
}

/// Everything a lane needs to put one hot key on trial.
#[derive(Debug, Clone)]
pub struct ChallengeRequest {
    /// The registry key under trial (diagnostics; the tune-cache key is
    /// derived from the fields below).
    pub key: String,
    /// The stencil pattern served under the key.
    pub pattern: Pattern,
    /// Domain extents of the traffic observed under the key — the
    /// probe's shape-class hint.
    pub domain_hint: Vec<usize>,
    /// Worker threads the incumbent runs with (the shared pool's
    /// size).
    pub threads: usize,
    /// The configuration currently serving the key.
    pub incumbent: PlanChoice,
    /// Probe budget for this challenge, in milliseconds.
    pub budget_ms: u64,
}

/// A lane's measured (or scripted) verdict on one challenge.
#[derive(Debug, Clone)]
pub struct ChallengeVerdict {
    /// The session's winning configuration.
    pub choice: PlanChoice,
    /// The winner's rate (points × steps per second).
    pub rate: f64,
    /// The incumbent's own rate in the same session.
    pub incumbent_rate: f64,
    /// Probe sweeps the session ran (0 for scripted verdicts).
    pub probes: usize,
    /// Time spent probing, milliseconds.
    pub spent_ms: f64,
    /// Best rate per probed method — the probe history a persisted
    /// verdict feeds back into the tune cache's dominance bookkeeping.
    pub method_rates: Vec<(Method, f64)>,
}

/// Where challenger sessions run and where winning verdicts are
/// persisted. Implementations must tolerate concurrent calls (the
/// decider is single-threaded, but tests drive lanes directly).
pub trait ChallengerLane: Send + Sync {
    /// Run one challenge session. `None` means no verdict could be
    /// produced (no tuner installed, every candidate failed, the
    /// incumbent was never re-measured) — the decider counts it as a
    /// rejected challenge and moves on.
    fn challenge(&self, req: &ChallengeRequest) -> Option<ChallengeVerdict>;

    /// Persist a winning verdict to the per-host tune cache, so the
    /// next warm-start resolves straight to it.
    fn persist(&self, req: &ChallengeRequest, verdict: &ChallengeVerdict);
}

/// The *unconstrained* tune request for a challenged key: method,
/// tiling and ring are left open, and the width is the solver default,
/// exactly mirroring how the registry compiles `Method::Auto` +
/// `Tiling::Auto` plans — so a persisted verdict lands under the very
/// cache key the next warm-start resolves.
pub fn unconstrained_request<'a>(
    pattern: &'a Pattern,
    domain_hint: &'a [usize],
    threads: usize,
) -> TuneRequest<'a> {
    TuneRequest {
        pattern,
        width: Width::native_max(),
        threads,
        method: None,
        tiling: None,
        domain_hint: Some(domain_hint),
        ring3: None,
        mode: Tuning::Measured,
    }
}

fn outcome_of(verdict: &ChallengeVerdict) -> ChallengeOutcome {
    let mut best = verdict.choice.to_candidate();
    best.score = verdict.rate;
    ChallengeOutcome {
        best,
        rate: verdict.rate,
        incumbent_rate: Some(verdict.incumbent_rate),
        probes: verdict.probes,
        spent_ms: verdict.spent_ms,
        method_rates: verdict.method_rates.clone(),
    }
}

/// The production lane: challenges run as real probe sessions through
/// the process-installed [`AutoTuner`] ([`stencil_tune::installed_auto`]),
/// so they share its probe counter, cache image and cache file. The
/// per-challenge budget is the request's, not the tuner's — a few tens
/// of milliseconds in a background lane, independent of how generous
/// startup tuning was.
#[derive(Debug, Default)]
pub struct ProbeLane;

impl ProbeLane {
    /// A lane over the installed tuner (challenges return `None` until
    /// one is installed).
    pub fn new() -> Self {
        Self
    }
}

impl ChallengerLane for ProbeLane {
    fn challenge(&self, req: &ChallengeRequest) -> Option<ChallengeVerdict> {
        let tuner = stencil_tune::installed_auto()?;
        let treq = unconstrained_request(&req.pattern, &req.domain_hint, req.threads);
        let budget = Budget::from_millis(req.budget_ms);
        let outcome = tuner
            .challenge(&treq, &req.incumbent.to_candidate(), &budget)
            .ok()?;
        // no re-measured incumbent rate means no fair comparison: a
        // swap decided against a stale number is how flapping starts
        let incumbent_rate = outcome.incumbent_rate?;
        Some(ChallengeVerdict {
            choice: PlanChoice {
                method: outcome.best.method,
                tiling: outcome.best.tiling,
                width: outcome.best.width,
                ring: outcome.best.ring,
            },
            rate: outcome.rate,
            incumbent_rate,
            probes: outcome.probes,
            spent_ms: outcome.spent_ms,
            method_rates: outcome.method_rates,
        })
    }

    fn persist(&self, req: &ChallengeRequest, verdict: &ChallengeVerdict) {
        if let Some(tuner) = stencil_tune::installed_auto() {
            let treq = unconstrained_request(&req.pattern, &req.domain_hint, req.threads);
            tuner.persist_verdict(&treq, &outcome_of(verdict));
        }
    }
}

/// A deterministic lane for tests and the CI smoke scenario: verdicts
/// are dequeued from a fixed script (in order; an exhausted script
/// yields `None`), and persisted verdicts go to this lane's *own*
/// [`AutoTuner`] (when one is attached) rather than the process-global
/// one, so parallel tests never share cache files.
#[derive(Default)]
pub struct ScriptedLane {
    verdicts: Mutex<VecDeque<ChallengeVerdict>>,
    persisted: Mutex<Vec<String>>,
    tuner: Option<AutoTuner>,
}

impl ScriptedLane {
    /// A lane that will answer challenges with `verdicts`, in order.
    pub fn new(verdicts: Vec<ChallengeVerdict>) -> Self {
        Self {
            verdicts: Mutex::new(verdicts.into()),
            persisted: Mutex::new(Vec::new()),
            tuner: None,
        }
    }

    /// Attach an owned tuner; winning verdicts are persisted through
    /// it (and its cache file) instead of being dropped.
    pub fn with_tuner(mut self, tuner: AutoTuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Registry keys whose verdicts the decider asked to persist.
    pub fn persisted_keys(&self) -> Vec<String> {
        self.persisted.lock().clone()
    }

    /// Verdicts not yet consumed by challenges.
    pub fn remaining(&self) -> usize {
        self.verdicts.lock().len()
    }
}

impl std::fmt::Debug for ScriptedLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedLane")
            .field("remaining", &self.remaining())
            .field("persisted", &self.persisted_keys())
            .finish()
    }
}

impl ChallengerLane for ScriptedLane {
    fn challenge(&self, _req: &ChallengeRequest) -> Option<ChallengeVerdict> {
        self.verdicts.lock().pop_front()
    }

    fn persist(&self, req: &ChallengeRequest, verdict: &ChallengeVerdict) {
        self.persisted.lock().push(req.key.clone());
        if let Some(tuner) = &self.tuner {
            let treq = unconstrained_request(&req.pattern, &req.domain_hint, req.threads);
            tuner.persist_verdict(&treq, &outcome_of(verdict));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn req() -> ChallengeRequest {
        ChallengeRequest {
            key: "k".into(),
            pattern: kernels::heat2d(),
            domain_hint: vec![64, 64],
            threads: 2,
            incumbent: PlanChoice {
                method: Method::MultipleLoads,
                tiling: Tiling::None,
                width: Width::native_max(),
                ring: None,
            },
            budget_ms: 5,
        }
    }

    #[test]
    fn scripted_lane_replays_verdicts_in_order_then_dries_up() {
        let v = |rate: f64| ChallengeVerdict {
            choice: PlanChoice {
                method: Method::MultipleLoads,
                tiling: Tiling::None,
                width: Width::W4,
                ring: None,
            },
            rate,
            incumbent_rate: 1.0,
            probes: 0,
            spent_ms: 0.0,
            method_rates: vec![(Method::MultipleLoads, rate)],
        };
        let lane = ScriptedLane::new(vec![v(2.0), v(3.0)]);
        assert_eq!(lane.challenge(&req()).unwrap().rate, 2.0);
        assert_eq!(lane.challenge(&req()).unwrap().rate, 3.0);
        assert!(lane.challenge(&req()).is_none());
        let verdict = v(2.0);
        lane.persist(&req(), &verdict);
        assert_eq!(lane.persisted_keys(), vec!["k".to_string()]);
    }

    #[test]
    fn unconstrained_request_leaves_every_tunable_axis_open() {
        let p = kernels::heat2d();
        let hint = [64usize, 64];
        let r = unconstrained_request(&p, &hint, 4);
        assert!(r.method.is_none());
        assert!(r.tiling.is_none());
        assert!(r.ring3.is_none());
        assert_eq!(r.width, Width::native_max());
        assert_eq!(r.threads, 4);
    }
}
