//! Online workload-adaptive retuning: production-traffic telemetry, a
//! background challenger lane, and registry hot-swaps.
//!
//! A warmed service starts with the plans yesterday's tuning session
//! thought best. This module keeps them honest against *today's*
//! traffic:
//!
//! * [`telemetry`] — an injectable clock ([`SharedClock`] /
//!   [`VirtualClock`]) and the per-plan [`TrafficMap`] (latency
//!   histograms + hot-key windows) the executor feeds on every
//!   completed job,
//! * [`lane`] — the [`ChallengerLane`]: [`ProbeLane`] re-runs the
//!   `stencil-tune` hill-climb over the incumbent's neighborhood in a
//!   budgeted background session; [`ScriptedLane`] makes every verdict
//!   reproducible in tests,
//! * [`decider`] — the [`Decider`]: hot-key scan → challenge →
//!   margin/hysteresis decision → epoch-tagged compile →
//!   [`PlanRegistry::swap_plan`](crate::PlanRegistry::swap_plan) →
//!   verdict persisted to the per-host tune cache.
//!
//! Swaps never change the bits a job produces: in-flight and queued
//! jobs hold their `Arc<Plan>` and finish on the old generation
//! bit-exactly; jobs resolved afterwards run (and report, via
//! `JobResult::epoch`) the new one.

pub mod decider;
pub mod lane;
pub mod telemetry;

pub use decider::{AdaptConfig, Decider};
pub use lane::{
    unconstrained_request, ChallengeRequest, ChallengeVerdict, ChallengerLane, PlanChoice,
    ProbeLane, ScriptedLane,
};
pub use telemetry::{Clock, PlanTraffic, SharedClock, TrafficMap, VirtualClock, WallClock};
