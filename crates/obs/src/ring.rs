//! Lock-free per-thread span rings.
//!
//! Each recording thread owns one fixed-size [`SpanRing`]: a single
//! writer (the owning thread) and any number of concurrent snapshot
//! readers. Slots follow the classic seqlock protocol — the writer
//! marks a slot torn (odd sequence), stores the span fields, then marks
//! it stable (even sequence); readers re-check the sequence after
//! reading and simply skip slots that changed under them. Recording
//! never allocates, never locks, never syscalls: it is a handful of
//! relaxed atomic stores between two fences.
//!
//! Rings register themselves in a process-wide list on first use, so
//! [`snapshot`] can walk every thread's ring without stopping the
//! writers. The ring is overwrite-oldest: a thread recording more than
//! [`RING_CAP`] spans between snapshots loses its oldest spans, never
//! its newest, and never blocks.

use crate::SpanId;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Spans retained per thread (power of two; ~160 KiB of slots).
pub const RING_CAP: usize = 4096;

/// One seqlock slot. `seq` is 0 when never written, odd while the
/// writer is mid-store, and `2*push_index + 2` (even, nonzero) when the
/// fields are stable.
struct Slot {
    seq: AtomicU64,
    id: AtomicU64,
    t0: AtomicU64,
    t1: AtomicU64,
    job: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            id: AtomicU64::new(0),
            t0: AtomicU64::new(0),
            t1: AtomicU64::new(0),
            job: AtomicU64::new(0),
        }
    }
}

/// A completed span read out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which instrumented stage this span measured.
    pub id: SpanId,
    /// Start, obs-clock microseconds.
    pub t0_us: u64,
    /// End, obs-clock microseconds.
    pub t1_us: u64,
    /// Serve job id the span belongs to (0 = not tied to a job).
    pub job: u64,
    /// Stable per-ring thread ordinal (the Chrome trace `tid`).
    pub tid: u64,
    /// Name of the recording thread at ring creation (may be empty).
    pub thread: String,
}

impl SpanEvent {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.t1_us.saturating_sub(self.t0_us)
    }
}

/// One thread's fixed-size span ring: single writer, lock-free
/// concurrent readers, overwrite-oldest.
pub struct SpanRing {
    head: AtomicU64,
    tid: u64,
    thread: String,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("tid", &self.tid)
            .field("thread", &self.thread)
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// A fresh ring for thread ordinal `tid` (not yet registered).
    pub fn new(tid: u64, thread: String) -> Self {
        Self {
            head: AtomicU64::new(0),
            tid,
            thread,
            slots: (0..RING_CAP).map(|_| Slot::new()).collect(),
        }
    }

    /// Record one completed span. Must only be called by the ring's
    /// owning thread (the single-writer invariant is what makes the
    /// slot protocol safe without CAS loops).
    pub fn push(&self, id: SpanId, job: u64, t0_us: u64, t1_us: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAP - 1)];
        // Torn marker first; the release fence keeps the field stores
        // from being reordered before it.
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.id.store(id as u64, Ordering::Relaxed);
        slot.t0.store(t0_us, Ordering::Relaxed);
        slot.t1.store(t1_us, Ordering::Relaxed);
        slot.job.store(job, Ordering::Relaxed);
        // Stable marker: the release store publishes the fields.
        slot.seq.store(2 * h + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Relaxed);
    }

    /// Total spans ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Read every stable slot. Slots the writer is concurrently
    /// rewriting are skipped, not waited on — a snapshot never blocks
    /// recording.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or torn right now
            }
            let id = slot.id.load(Ordering::Relaxed);
            let t0 = slot.t0.load(Ordering::Relaxed);
            let t1 = slot.t1.load(Ordering::Relaxed);
            let job = slot.job.load(Ordering::Relaxed);
            // The acquire fence orders the field reads before the
            // re-check; an unchanged sequence proves they were not
            // overwritten mid-read.
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue;
            }
            let Some(id) = SpanId::from_u8(id as u8) else {
                continue;
            };
            out.push(SpanEvent {
                id,
                t0_us: t0,
                t1_us: t1,
                job,
                tid: self.tid,
                thread: self.thread.clone(),
            });
        }
        out
    }
}

/// Process-wide ring registry; rings live for the process lifetime
/// (threads are pooled, and a dead thread's final spans stay readable).
static REGISTRY: Mutex<Vec<Arc<SpanRing>>> = Mutex::new(Vec::new());

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    static LOCAL: Arc<SpanRing> = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current().name().unwrap_or("").to_string();
        let ring = Arc::new(SpanRing::new(tid, name));
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    };
}

/// This thread's ring, creating and registering it on first use.
pub(crate) fn local_ring() -> Arc<SpanRing> {
    LOCAL.with(Arc::clone)
}

/// Collect every visible span from every thread's ring, sorted by
/// `(t0_us, tid)`. Spans hidden by [`crate::clear`] (ended at or before
/// the floor) are filtered out; torn slots are skipped.
pub fn snapshot() -> Vec<SpanEvent> {
    let rings: Vec<Arc<SpanRing>> = REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    let floor = crate::floor_us();
    let mut out: Vec<SpanEvent> = rings
        .iter()
        .flat_map(|r| r.events())
        .filter(|e| e.t1_us >= floor)
        .collect();
    out.sort_by_key(|e| (e.t0_us, e.tid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_newest() {
        let ring = SpanRing::new(99, "test".into());
        let extra = 100u64;
        for i in 0..(RING_CAP as u64 + extra) {
            ring.push(SpanId::WorkerJob, i, i, i + 1);
        }
        let mut events = ring.events();
        assert_eq!(events.len(), RING_CAP);
        events.sort_by_key(|e| e.t0_us);
        // the oldest `extra` spans were overwritten; the newest survive
        assert_eq!(events.first().unwrap().t0_us, extra);
        assert_eq!(events.last().unwrap().t0_us, RING_CAP as u64 + extra - 1);
        assert_eq!(ring.pushed(), RING_CAP as u64 + extra);
        assert!(events.iter().all(|e| e.tid == 99 && e.thread == "test"));
    }

    #[test]
    fn partially_filled_ring_reports_only_written_slots() {
        let ring = SpanRing::new(7, String::new());
        for i in 0..10u64 {
            ring.push(SpanId::OocCompute, 0, 100 + i, 200 + i);
        }
        let events = ring.events();
        assert_eq!(events.len(), 10);
        assert!(events.iter().all(|e| e.id == SpanId::OocCompute));
        assert!(events.iter().all(|e| e.dur_us() == 100));
    }

    #[test]
    fn concurrent_reads_never_observe_torn_spans() {
        // Writer invariant: every span has t1 == t0 + 17 and job == t0.
        // Any interleaving a reader observes must preserve it — a torn
        // read would mix fields from different pushes.
        let ring = Arc::new(SpanRing::new(1, "w".into()));
        let stop = Arc::new(AtomicU64::new(0));
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut t = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    ring.push(SpanId::RingSweep, t, t, t + 17);
                    t += 1;
                }
            })
        };
        let mut seen = 0usize;
        for _ in 0..200 {
            for e in ring.events() {
                assert_eq!(e.t1_us, e.t0_us + 17, "torn slot leaked to a reader");
                assert_eq!(e.job, e.t0_us);
                seen += 1;
            }
        }
        stop.store(1, Ordering::Relaxed);
        writer.join().unwrap();
        assert!(seen > 0, "reader should observe spans while writing");
    }
}
