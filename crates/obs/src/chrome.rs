//! Chrome trace-event JSON export.
//!
//! Renders a ring [`snapshot`](crate::snapshot) as the Chrome
//! trace-event format (the JSON array flavor wrapped in an object),
//! loadable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//! Every span becomes one complete event (`"ph":"X"`) with
//! microsecond `ts`/`dur`, the span vocabulary name/category, and the
//! owning serve job id in `args`. Per-thread `thread_name` metadata
//! events label the tracks. The JSON is hand-rolled like every other
//! artifact this project emits — no serde in the workspace.

use crate::ring::SpanEvent;
use std::fmt::Write as _;

/// Renders span snapshots as Chrome trace-event JSON.
pub struct TraceSink;

impl TraceSink {
    /// Export the current global snapshot. With `window_ms`, only spans
    /// that ended within the last `window_ms` milliseconds (on the obs
    /// clock) are included — the `/trace?ms=N` contract.
    pub fn chrome_json(window_ms: Option<u64>) -> String {
        let mut events = crate::snapshot();
        if let Some(ms) = window_ms {
            let cutoff = crate::now_us().saturating_sub(ms.saturating_mul(1000));
            events.retain(|e| e.t1_us >= cutoff);
        }
        Self::render(&events)
    }

    /// Render an explicit event list (snapshot already taken).
    pub fn render(events: &[SpanEvent]) -> String {
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // One thread_name metadata event per distinct tid so Perfetto
        // labels the tracks; events are (t0, tid)-sorted, so a tid's
        // first appearance is where its metadata goes.
        let mut named: Vec<u64> = Vec::new();
        for e in events {
            if !named.contains(&e.tid) {
                named.push(e.tid);
                if !first {
                    out.push(',');
                }
                first = false;
                let label = if e.thread.is_empty() {
                    format!("thread-{}", e.tid)
                } else {
                    e.thread.clone()
                };
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    e.tid,
                    escape(&label)
                );
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"job\":{}}}}}",
                e.id.name(),
                e.id.category(),
                e.t0_us,
                e.dur_us(),
                e.tid,
                e.job
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanId;

    fn ev(id: SpanId, t0: u64, t1: u64, job: u64, tid: u64, thread: &str) -> SpanEvent {
        SpanEvent {
            id,
            t0_us: t0,
            t1_us: t1,
            job,
            tid,
            thread: thread.to_string(),
        }
    }

    #[test]
    fn renders_complete_events_with_metadata() {
        let events = vec![
            ev(SpanId::QueueWait, 100, 250, 7, 1, "serve-worker-0"),
            ev(SpanId::OocCompute, 260, 900, 7, 1, "serve-worker-0"),
            ev(SpanId::OocPrefetch, 270, 800, 7, 2, "ooc-io"),
        ];
        let json = TraceSink::render(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"queue_wait\",\"cat\":\"serve\""));
        assert!(json.contains("\"ts\":260,\"dur\":640"));
        assert!(json.contains("\"args\":{\"job\":7}"));
        // one metadata event per tid, not per span
        assert_eq!(json.matches("thread_name").count(), 2);
        assert!(json.contains("\"args\":{\"name\":\"ooc-io\"}"));
    }

    #[test]
    fn empty_snapshot_is_still_a_document() {
        assert_eq!(
            TraceSink::render(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn thread_names_are_escaped() {
        let events = vec![ev(SpanId::NetDecode, 0, 1, 0, 3, "we\"ird\\name\n")];
        let json = TraceSink::render(&events);
        assert!(json.contains("we\\\"ird\\\\name\\n"));
    }
}
