//! # stencil-obs
//!
//! The workspace's tracing and measurement substrate: always compiled,
//! near-zero overhead while idle, dependency-free (it sits *below*
//! `stencil-runtime`, so it can only use `std`).
//!
//! ## Architecture
//!
//! * [`ring`] — lock-free per-thread span ring buffers. Each recording
//!   thread owns a fixed-size [`SpanRing`] (single writer, seqlock
//!   slots, overwrite-oldest); a global registry lets any thread
//!   [`snapshot`] every ring without stopping the writers. Recording a
//!   span is two clock reads and a handful of relaxed atomic stores —
//!   no allocation, no locks, no syscalls. While tracing is disabled
//!   ([`set_enabled`]), recording is a single relaxed load and a
//!   branch.
//! * [`clock`] — the injectable monotonic time source the whole
//!   workspace shares ([`Clock`] / [`WallClock`] / [`VirtualClock`] /
//!   [`SharedClock`]; `stencil-serve` re-exports these for its config).
//!   Tests [`install_clock`] a [`VirtualClock`] to make every span
//!   timestamp deterministic.
//! * [`SpanId`] — a small static vocabulary of instrumented stages:
//!   plan compilation, tune probes, queue wait, batch drain, shard
//!   fan-out/join, the 3D ring-pipeline sweep, runtime pool jobs, OOC
//!   window load/compute/writeback/prefetch, and net frame
//!   encode/decode.
//! * [`chrome`] — [`TraceSink`]: renders a snapshot as Chrome
//!   trace-event JSON (hand-rolled, like every other artifact the
//!   project emits) loadable in Perfetto or `chrome://tracing`.
//! * [`timeline`] — the per-job [`Timeline`]: where one job's wall
//!   time went (queue wait, compute, blocking IO, IO hidden under
//!   compute). Assembled by the serve executor at job completion and
//!   exported on `JobResult` and the `/metrics` surface.
//!
//! ## Usage
//!
//! ```
//! use stencil_obs as obs;
//!
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span(obs::SpanId::PlanCompile);
//!     // ... work ...
//! } // recorded on drop
//! let events = obs::snapshot();
//! assert!(events.iter().any(|e| e.id == obs::SpanId::PlanCompile));
//! let json = obs::TraceSink::chrome_json(None);
//! assert!(json.contains("\"traceEvents\""));
//! obs::set_enabled(false);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chrome;
pub mod clock;
pub mod ring;
pub mod timeline;

pub use chrome::TraceSink;
pub use clock::{Clock, SharedClock, VirtualClock, WallClock};
pub use ring::{snapshot, SpanEvent, SpanRing, RING_CAP};
pub use timeline::Timeline;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Process-wide tracing switch. All recording entry points check it
/// first with one relaxed load, so disabled tracing costs a branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans that finished at or before this obs-clock microsecond are
/// hidden from snapshots — the race-free way to "clear" rings whose
/// writers may still be live (see [`clear`]).
static FLOOR: AtomicU64 = AtomicU64::new(0);

/// Turn span recording on or off (off at startup). Flipping the switch
/// does not touch the rings: spans recorded earlier stay visible to
/// [`snapshot`] until overwritten or [`clear`]ed.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when span recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn clock_cell() -> &'static RwLock<SharedClock> {
    static CLOCK: OnceLock<RwLock<SharedClock>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(SharedClock::wall()))
}

/// Install the process-wide span clock (the wall clock by default).
/// Tests install a [`VirtualClock`] here so trace timestamps are
/// exactly reproducible.
pub fn install_clock(clock: SharedClock) {
    // a panic elsewhere while holding this lock must not cascade into
    // every later span timestamp — the clock value itself is always
    // whole (replaced atomically under the lock), so recover it
    *clock_cell()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = clock;
}

/// Current time on the installed span clock, in microseconds since the
/// clock's origin. Only read while tracing is enabled.
pub fn now_us() -> u64 {
    let c = clock_cell()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    c.now().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Hide everything recorded so far from future snapshots (without
/// touching the rings — their writers may be mid-record on other
/// threads). New spans keep accumulating normally; a span must *end*
/// strictly after the clear instant to be visible. A plain store, not
/// a max: installing a different clock legitimately moves the time
/// domain backwards, and the floor must follow it.
pub fn clear() {
    FLOOR.store(now_us() + 1, Ordering::Relaxed);
}

pub(crate) fn floor_us() -> u64 {
    FLOOR.load(Ordering::Relaxed)
}

/// The static span vocabulary: every instrumented stage in the
/// workspace. Kept small and flat so a span record is one byte of
/// identity — names and categories are resolved at export time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanId {
    /// `Solver::compile`: folding matrix, kernel plan, pool resolution.
    PlanCompile = 1,
    /// One timed autotuner probe sweep.
    TuneProbe = 2,
    /// A job's wait in the serve submission queue (submit → dequeue).
    QueueWait = 3,
    /// An executor worker draining one same-plan batch.
    BatchDrain = 4,
    /// Sharded execution: slab fan-out across lanes (spawn → barrier).
    ShardFanout = 5,
    /// Sharded execution: stitching slab results into the output grid.
    ShardJoin = 6,
    /// One 3D register ring-pipeline sweep (the paper's executor).
    RingSweep = 7,
    /// One fork-join job on a runtime pool worker.
    WorkerJob = 8,
    /// Synchronous OOC window load from the slab store.
    OocLoad = 9,
    /// OOC window compute (the plan sweep over one resident window).
    OocCompute = 10,
    /// OOC window writeback to the slab store.
    OocWriteback = 11,
    /// Background OOC prefetch of the next window (IO thread).
    OocPrefetch = 12,
    /// Encoding one protocol frame onto a connection's write buffer.
    NetEncode = 13,
    /// Decoding one protocol frame out of a connection's read buffer.
    NetDecode = 14,
}

impl SpanId {
    /// Every span id, in declaration order.
    pub const ALL: [SpanId; 14] = [
        SpanId::PlanCompile,
        SpanId::TuneProbe,
        SpanId::QueueWait,
        SpanId::BatchDrain,
        SpanId::ShardFanout,
        SpanId::ShardJoin,
        SpanId::RingSweep,
        SpanId::WorkerJob,
        SpanId::OocLoad,
        SpanId::OocCompute,
        SpanId::OocWriteback,
        SpanId::OocPrefetch,
        SpanId::NetEncode,
        SpanId::NetDecode,
    ];

    /// Stable snake_case name (the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanId::PlanCompile => "plan_compile",
            SpanId::TuneProbe => "tune_probe",
            SpanId::QueueWait => "queue_wait",
            SpanId::BatchDrain => "batch_drain",
            SpanId::ShardFanout => "shard_fanout",
            SpanId::ShardJoin => "shard_join",
            SpanId::RingSweep => "ring_sweep",
            SpanId::WorkerJob => "worker_job",
            SpanId::OocLoad => "ooc_load",
            SpanId::OocCompute => "ooc_compute",
            SpanId::OocWriteback => "ooc_writeback",
            SpanId::OocPrefetch => "ooc_prefetch",
            SpanId::NetEncode => "net_encode",
            SpanId::NetDecode => "net_decode",
        }
    }

    /// Coarse subsystem category (the Chrome trace `cat` field).
    pub fn category(self) -> &'static str {
        match self {
            SpanId::PlanCompile => "plan",
            SpanId::TuneProbe => "tune",
            SpanId::QueueWait | SpanId::BatchDrain | SpanId::ShardFanout | SpanId::ShardJoin => {
                "serve"
            }
            SpanId::RingSweep | SpanId::WorkerJob => "exec",
            SpanId::OocLoad | SpanId::OocCompute | SpanId::OocWriteback | SpanId::OocPrefetch => {
                "ooc"
            }
            SpanId::NetEncode | SpanId::NetDecode => "net",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<SpanId> {
        SpanId::ALL.get(v.wrapping_sub(1) as usize).copied()
    }
}

std::thread_local! {
    /// Job id spans on this thread are tagged with (0 = no job).
    static CURRENT_JOB: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Run `f` with this thread's spans tagged as belonging to `job`,
/// restoring the previous tag afterwards (including on unwind). Job ids
/// correlate ring spans with serve [`Timeline`]s in trace exports.
pub fn with_job<R>(job: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_JOB.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT_JOB.with(|c| c.replace(job)));
    f()
}

/// The job id this thread's spans are currently tagged with (0 = none).
pub fn current_job() -> u64 {
    CURRENT_JOB.with(|c| c.get())
}

/// An in-flight span: records `[construction, drop]` on the calling
/// thread's ring. Inert (no clock read, nothing recorded) while tracing
/// is disabled at construction time.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    id: SpanId,
    t0_us: u64,
    armed: bool,
}

impl SpanGuard {
    /// Drop the guard without recording anything.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed && enabled() {
            record(self.id, self.t0_us, now_us());
        }
    }
}

/// Open a span of `id` ending when the returned guard drops. The
/// disabled path is one relaxed load and a branch.
#[inline]
pub fn span(id: SpanId) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id,
            t0_us: 0,
            armed: false,
        };
    }
    SpanGuard {
        id,
        t0_us: now_us(),
        armed: true,
    }
}

/// Record a completed span `[t0_us, t1_us]` (obs-clock microseconds)
/// on this thread's ring, tagged with [`current_job`]. No-op while
/// disabled.
#[inline]
pub fn record(id: SpanId, t0_us: u64, t1_us: u64) {
    if !enabled() {
        return;
    }
    record_for_job(id, current_job(), t0_us, t1_us);
}

/// Record a completed span under an explicit job id (for spans whose
/// endpoints straddle threads, like queue wait: opened at submission,
/// closed by the executor). No-op while disabled.
#[inline]
pub fn record_for_job(id: SpanId, job: u64, t0_us: u64, t1_us: u64) {
    if !enabled() {
        return;
    }
    ring::local_ring().push(id, job, t0_us, t1_us);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Obs globals (enabled flag, clock, floor, rings) are process-wide;
    /// tests that touch them serialize here so `cargo test` parallelism
    /// cannot interleave them.
    static GLOBALS: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _g = lock();
        set_enabled(false);
        // tag with a job id no other test uses: rings and the floor are
        // process-global, so emptiness is asserted per-tag, not per-ring
        with_job(777_001, || {
            record(SpanId::PlanCompile, now_us(), now_us() + 10);
            let guard = span(SpanId::TuneProbe);
            drop(guard);
        });
        assert!(!snapshot().iter().any(|e| e.job == 777_001));
    }

    #[test]
    fn spans_round_trip_with_job_tags() {
        let _g = lock();
        set_enabled(true);
        clear();
        let base = now_us();
        with_job(42, || {
            record(SpanId::OocLoad, base + 1, base + 5);
        });
        record(SpanId::OocCompute, base + 6, base + 9);
        let events = snapshot();
        set_enabled(false);
        let load = events
            .iter()
            .find(|e| e.id == SpanId::OocLoad && e.job == 42)
            .expect("tagged span visible");
        assert_eq!((load.t0_us, load.t1_us), (base + 1, base + 5));
        assert!(events
            .iter()
            .any(|e| e.id == SpanId::OocCompute && e.job == 0));
    }

    #[test]
    fn virtual_clock_makes_timestamps_deterministic() {
        let _g = lock();
        let vc = Arc::new(VirtualClock::new());
        vc.advance(Duration::from_micros(1_000_000));
        install_clock(SharedClock::new(Arc::clone(&vc) as Arc<dyn Clock>));
        set_enabled(true);
        clear();
        let s = span(SpanId::RingSweep);
        vc.advance(Duration::from_micros(250));
        drop(s);
        let events = snapshot();
        set_enabled(false);
        install_clock(SharedClock::wall());
        let e = events
            .iter()
            .find(|e| e.id == SpanId::RingSweep)
            .expect("sweep span recorded");
        assert_eq!((e.t0_us, e.t1_us), (1_000_000, 1_000_250));
    }

    #[test]
    fn clear_hides_earlier_spans() {
        let _g = lock();
        let vc = Arc::new(VirtualClock::new());
        vc.advance(Duration::from_micros(500));
        install_clock(SharedClock::new(Arc::clone(&vc) as Arc<dyn Clock>));
        set_enabled(true);
        clear(); // floor at 501
        record(SpanId::NetEncode, 510, 600);
        assert!(snapshot()
            .iter()
            .any(|e| e.id == SpanId::NetEncode && e.t0_us == 510));
        vc.advance(Duration::from_micros(500)); // now 1000
        clear(); // floor at 1001: the 600-end span is gone
        assert!(!snapshot()
            .iter()
            .any(|e| e.id == SpanId::NetEncode && e.t0_us == 510));
        set_enabled(false);
        install_clock(SharedClock::wall());
    }

    #[test]
    fn span_ids_have_stable_names_and_categories() {
        for id in SpanId::ALL {
            assert!(!id.name().is_empty());
            assert!(!id.category().is_empty());
            assert_eq!(SpanId::from_u8(id as u8), Some(id));
        }
        assert_eq!(SpanId::from_u8(0), None);
        assert_eq!(SpanId::from_u8(200), None);
    }
}
