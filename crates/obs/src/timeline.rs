//! The per-job time breakdown.
//!
//! A [`Timeline`] says where one serve job's wall time went, in the
//! paper's terms: waiting in the queue, computing (data organization +
//! arithmetic), blocked on IO (the OOC path's synchronous loads,
//! writebacks and prefetch stalls), and IO that ran but was *hidden*
//! under compute by the prefetch pipeline (`overlap_us` — informational,
//! not part of the wall-time sum). The serve executor assembles one at
//! job completion from its clock reads and the OOC stream report, so
//! `queue_us + compute_us + io_us` equals the job's measured latency
//! exactly.

/// Where one job's wall time went, microseconds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Timeline {
    /// Submission → dequeue: time spent waiting in the serve queue.
    pub queue_us: u64,
    /// Dequeue → completion, minus blocked IO: plan execution proper.
    pub compute_us: u64,
    /// Time the executor was blocked on IO (synchronous OOC window
    /// loads/writebacks, prefetch stalls, store create/materialize).
    pub io_us: u64,
    /// Background IO that completed while compute ran — work the
    /// prefetch pipeline hid. Not part of [`total_us`](Self::total_us):
    /// it overlaps `compute_us` by construction.
    pub overlap_us: u64,
}

impl Timeline {
    /// The wall-time components summed: `queue + compute + io`. By
    /// construction this equals the job's measured latency.
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.compute_us + self.io_us
    }

    /// Merge another timeline in (component-wise sum) — used when
    /// aggregating per-plan totals on the stats surface.
    pub fn accumulate(&mut self, other: &Timeline) {
        self.queue_us += other.queue_us;
        self.compute_us += other.compute_us;
        self.io_us += other.io_us;
        self.overlap_us += other.overlap_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_excludes_overlap() {
        let t = Timeline {
            queue_us: 10,
            compute_us: 500,
            io_us: 40,
            overlap_us: 300,
        };
        assert_eq!(t.total_us(), 550);
    }

    #[test]
    fn accumulate_is_componentwise() {
        let mut a = Timeline {
            queue_us: 1,
            compute_us: 2,
            io_us: 3,
            overlap_us: 4,
        };
        a.accumulate(&Timeline {
            queue_us: 10,
            compute_us: 20,
            io_us: 30,
            overlap_us: 40,
        });
        assert_eq!(
            a,
            Timeline {
                queue_us: 11,
                compute_us: 22,
                io_us: 33,
                overlap_us: 44,
            }
        );
        assert_eq!(Timeline::default().total_us(), 0);
    }
}
