//! The injectable monotonic time source shared by the whole workspace.
//!
//! Every timestamp in the observability layer — and every latency the
//! serve executor records — flows through a [`SharedClock`]: the wall
//! clock in production, a manually-advanced [`VirtualClock`] in tests
//! and CI smoke scenarios, so traces and decider verdicts are exactly
//! reproducible. These types originated in `stencil-serve`'s adapt
//! telemetry; they live here now so the span rings (which sit below
//! the runtime) and the service share one time domain, and serve
//! re-exports them unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic time source: `now` is the duration since an arbitrary
/// (per-clock) origin. Implementations must be cheap — the service
/// reads the clock once per submission and once per completion, and
/// every span open/close reads it once.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// The production clock: `Instant`-based, anchored lazily at first
/// read so a freshly-built clock starts near zero.
#[derive(Debug, Default)]
pub struct WallClock {
    anchor: OnceLock<Instant>,
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.anchor.get_or_init(Instant::now).elapsed()
    }
}

/// A manually-advanced clock for deterministic tests: time only moves
/// when [`VirtualClock::advance`] is called, so every latency sample,
/// every decider window, and every span timestamp is exactly
/// reproducible.
#[derive(Debug, Default)]
pub struct VirtualClock {
    us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.us.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.us.load(Ordering::Relaxed))
    }
}

/// A cloneable handle to a [`Clock`], embeddable in configuration
/// structs that stay `derive(Clone)` (the Debug impl hides the trait
/// object).
#[derive(Clone)]
pub struct SharedClock(Arc<dyn Clock>);

impl SharedClock {
    /// Wrap any clock implementation.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self(clock)
    }

    /// The production wall clock.
    pub fn wall() -> Self {
        Self(Arc::new(WallClock::default()))
    }

    /// Current time since the clock's origin.
    pub fn now(&self) -> Duration {
        self.0.now()
    }
}

impl Default for SharedClock {
    fn default() -> Self {
        Self::wall()
    }
}

impl std::fmt::Debug for SharedClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedClock").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let vc = Arc::new(VirtualClock::new());
        let clock = SharedClock::new(Arc::clone(&vc) as Arc<dyn Clock>);
        assert_eq!(clock.now(), Duration::ZERO);
        vc.advance(Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        vc.advance(Duration::from_millis(3));
        assert_eq!(clock.now(), Duration::from_micros(3250));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = SharedClock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn shared_clock_debug_and_default_are_wall() {
        let c = SharedClock::default();
        assert!(format!("{c:?}").contains("SharedClock"));
        assert!(c.now() < Duration::from_secs(3600));
    }
}
