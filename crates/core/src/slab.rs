//! Halo-correct slab geometry along the outermost axis — the shared
//! arithmetic behind bit-exact domain sharding (the serving layer) and
//! out-of-core streaming (`stencil-ooc`).
//!
//! ## Why slab execution is exact, not approximate
//!
//! Every executor in this crate advances a cell with fixed tap-order
//! arithmetic, and treats grid edges as a frozen Dirichlet band whose
//! influence travels inward at one stencil radius per time step. A slab
//! that extends `halo = t * r` layers beyond its interior therefore
//! reproduces the full-domain run exactly on the interior: after `s`
//! steps only cells within `s * r` of the slab's artificial edge can
//! differ from the full run, and the halo keeps that contamination
//! outside the interior for all `t` steps. Folding does not change the
//! bound — an `m`-step folded macro-step has radius `m * r` but
//! advances `m` steps, so the budget stays `t * r` total.
//!
//! Slabs cut only the outermost axis (`y` in 2D, `z` in 3D): the
//! innermost extent — which drives vector chunking, alignment and the
//! DLT lane constraints — is untouched.
//!
//! Two executor families need two levels of care:
//!
//! * **Row-independent families** (scalar, multiple-loads,
//!   data-reorganization): a cell's instruction stream depends only on
//!   its x position, so any slab geometry is bit-exact — these slab
//!   under every tiling.
//! * **Register pipelines** (transpose-layout, folded): rows are
//!   processed in vector-width groups counted from the sweep origin,
//!   with a scalar remainder at the top. A slab changes the origin, so
//!   [`slab_bounds`] aligns every slab start to [`SLAB_ALIGN`] rows and
//!   pads interior slab tops until the processed row count keeps the
//!   full run's group phase with no mid-grid remainder — which covers
//!   the *block-free* sweep (whose origin is the grid edge). Under
//!   **tessellate tiling** the tile geometry itself is the hazard:
//!   since [`DimTiling`] anchors tile phase to global coordinates, a
//!   slab executed through `Plan::run_*_at` with its global origin
//!   reproduces every interior tile of the full run exactly. Only the
//!   slab-edge tiles diverge (they see a frozen band where the full
//!   run has live cells), so the halo grows by one tile width — the
//!   divergence starts inside the edge tile and travels inward at one
//!   effective radius per inner step, exactly like the classic bound —
//!   and every slab must stay large enough to run the same per-round
//!   time blocks as the full run ([`shard_geometry`]). With both in
//!   place, register pipelines slab bit-exactly under tessellate
//!   tiling too.
//!
//! ## Time-axis composition ([`pass_quantum`])
//!
//! The out-of-core executor additionally splits the *time* axis: a
//! `t`-step run becomes several passes of `s` steps each, every pass a
//! full stitched traversal of the domain. The concatenation is
//! bit-identical to the resident run exactly when the sequence of
//! executed (round, time-block) pairs is unchanged. Block-free folded
//! runs group steps as `t / m` macro-steps plus a `t % m` unfolded
//! tail, so any pass boundary at a multiple of `m` composes exactly.
//! Tessellate runs additionally group (possibly folded) rounds into
//! per-round time blocks of `C = min(time_block, per-dimension caps)`
//! — a constant of the full-domain extents — consuming `C, C, ...,
//! rest` rounds; a pass boundary at a multiple of `m * C` steps
//! preserves that grouping. [`pass_quantum`] returns this composition
//! unit.

use crate::api::{Method, Plan, Tiling};
use crate::tile::DimTiling;

/// Slab starts are aligned down to this many outer-axis layers — the
/// widest vector lane count, so every register pipeline's row grouping
/// keeps its phase across slab boundaries.
pub const SLAB_ALIGN: usize = 8;

/// True when `plan` is eligible for bit-exact slab execution (see the
/// module docs): 2D/3D, natural layout (no DLT/SDSL). Register
/// pipelines slab block-free (slab alignment preserves their
/// origin-relative row grouping) and under tessellate tiling (global
/// tile-phase anchoring plus the widened halo of [`shard_geometry`]).
pub fn shardable(plan: &Plan) -> bool {
    if plan.dims() < 2 {
        return false;
    }
    match plan.method() {
        Method::Scalar | Method::MultipleLoads | Method::DataReorg => true,
        Method::TransposeLayout | Method::Folded { .. } => {
            matches!(plan.tiling(), Tiling::None | Tiling::Tessellate { .. })
        }
        _ => false,
    }
}

/// Halo depth and minimum slab span for running `t` steps of `plan`
/// sharded along an outer axis of extent `outer` (inner extents in
/// `inners`).
///
/// The base halo is the classic contamination bound `t * r`. For
/// register pipelines under tessellate tiling, the slab's edge tiles
/// diverge from the full run's (the slab edge is a frozen band), so
/// divergence can start anywhere inside the widest tile: the halo
/// grows by one tile width `2 * r_step * tb_round`, computed for both
/// the folded body rounds and the `t % m` unfolded tail rounds. The
/// returned minimum span keeps every slab able to run the same
/// per-round time blocks as the full run — the condition under which
/// the per-round tile geometry (and therefore every kernel call on
/// interior tiles) is identical, making the stitch bit-exact.
pub fn shard_geometry(plan: &Plan, t: usize, outer: usize, inners: &[usize]) -> (usize, usize) {
    let r = plan.pattern().radius();
    let base = t * r;
    let Tiling::Tessellate { time_block } = plan.tiling() else {
        return (base, 0);
    };
    if !matches!(
        plan.method(),
        Method::TransposeLayout | Method::Folded { .. }
    ) {
        // row-independent kernels are bit-exact under any slab geometry
        return (base, 0);
    }
    let round_tb = |rad: usize, steps: usize| -> usize {
        if steps == 0 || rad == 0 {
            return 0;
        }
        let mut tb = DimTiling::max_tb(outer, rad, rad, time_block);
        for &n in inners {
            tb = tb.min(DimTiling::max_tb(n, rad, rad, time_block));
        }
        tb.min(steps)
    };
    let reff = plan.effective_radius();
    let mut extra = 0usize;
    let mut min_span = 0usize;
    for (rad, steps) in [(reff, t / plan.m()), (r, t % plan.m())] {
        let tb = round_tb(rad, steps);
        if tb > 0 {
            extra = extra.max(2 * rad * tb);
            min_span = min_span.max(2 * rad * (tb + 1));
        }
    }
    (base + extra, min_span)
}

/// The slab a shard of interior `[lo, hi)` reads: the interior plus a
/// `halo`-deep apron, the start aligned down to [`SLAB_ALIGN`], and —
/// for slabs that do not reach the true top edge — the top padded so
/// the processed row count `(len - 2 * r_eff)` is a multiple of
/// [`SLAB_ALIGN`] (no mid-grid scalar remainder) and snapped to the
/// edge when it comes within one alignment unit of it (so the full
/// run's own top-remainder rows land in an edge slab that reproduces
/// them exactly).
pub fn slab_bounds(
    lo: usize,
    hi: usize,
    extent: usize,
    halo: usize,
    r_eff: usize,
) -> (usize, usize) {
    let mut slab_lo = lo.saturating_sub(halo);
    slab_lo -= slab_lo % SLAB_ALIGN;
    let mut slab_hi = (hi + halo).min(extent);
    if slab_hi < extent {
        let span = slab_hi - slab_lo;
        let want = (2 * r_eff) % SLAB_ALIGN;
        let pad = (want + SLAB_ALIGN - span % SLAB_ALIGN) % SLAB_ALIGN;
        slab_hi += pad;
        if slab_hi + SLAB_ALIGN > extent {
            slab_hi = extent;
        }
    }
    (slab_lo, slab_hi)
}

/// Split `extent` into `shards` contiguous interior ranges (first
/// ranges one longer when it does not divide evenly).
pub fn interior_ranges(extent: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, extent.max(1));
    let base = extent / shards;
    let extra = extent % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// The slab count actually worth executing for an outer axis of
/// `extent` layers when `requested` parallel slabs were asked for.
///
/// Two degradations apply, in order:
///
/// * **One aligned slab per worker.** [`slab_bounds`] aligns every
///   slab start down to [`SLAB_ALIGN`]; when `extent <
///   SLAB_ALIGN * requested` the aligned starts of neighbouring shards
///   collapse onto each other, leaving workers with no layers of their
///   own — each re-runs (almost) the whole domain for an interior a
///   few layers high. The shard count is capped at
///   `extent / SLAB_ALIGN` so every shard owns at least one aligned
///   slab of the axis.
/// * **Minimum span.** Tessellate register plans need every slab to
///   span at least `min_span` layers (see [`shard_geometry`]) to run
///   the full run's per-round time blocks; the count is reduced until
///   that holds (1 always does: the slab is the whole domain).
///
/// Results are bit-identical at any shard count — this is purely a
/// work-amplification guard.
pub fn effective_shards(
    extent: usize,
    requested: usize,
    halo: usize,
    r_eff: usize,
    min_span: usize,
) -> usize {
    let mut shards = requested
        .clamp(1, extent.max(1))
        .min((extent / SLAB_ALIGN).max(1));
    while shards > 1
        && interior_ranges(extent, shards).iter().any(|&(lo, hi)| {
            let (slo, shi) = slab_bounds(lo, hi, extent, halo, r_eff);
            shi - slo < min_span
        })
    {
        shards -= 1;
    }
    shards
}

/// The time-axis composition unit of `plan` on a domain of `extents`:
/// splitting a `t`-step run at any multiple of this many steps (the
/// final segment takes the remainder, including the `t % m` tail)
/// executes exactly the resident run's sequence of folded macro-steps,
/// per-round time blocks and tail steps — the condition under which a
/// multi-pass out-of-core run is bit-identical to the resident one
/// (see the module docs).
///
/// * Untiled plans compose at the fold factor `m` (1 when unfolded).
/// * Tessellate plans compose at `m * C`, where `C` is the constant
///   per-round time block the resident run settles on:
///   `min(time_block, per-dimension interior caps)`.
pub fn pass_quantum(plan: &Plan, extents: &[usize]) -> usize {
    let m = plan.m().max(1);
    let Tiling::Tessellate { time_block } = plan.tiling() else {
        return m;
    };
    let reff = plan.effective_radius();
    if reff == 0 {
        return m;
    }
    let mut c = time_block.max(1);
    for &n in extents {
        // domains below the Dirichlet band cannot run at all; cap at 1
        // instead of underflowing so callers get a typed error later
        c = c.min(if n > 2 * reff {
            DimTiling::max_tb(n, reff, reff, time_block)
        } else {
            1
        });
    }
    m * c.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernels, Solver};

    #[test]
    fn interior_ranges_cover_exactly() {
        assert_eq!(interior_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(interior_ranges(4, 8), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(interior_ranges(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn slab_bounds_align_and_pad() {
        // aligned start, padded top keeping (span - 2 r_eff) % 8 == 0
        let (lo, hi) = slab_bounds(30, 60, 1000, 6, 2);
        assert_eq!(lo % SLAB_ALIGN, 0);
        assert!(lo <= 24 && hi >= 66);
        assert_eq!((hi - lo - 4) % SLAB_ALIGN, 0);
        // near the top edge: snapped to it
        let (_, hi) = slab_bounds(900, 995, 1000, 6, 2);
        assert_eq!(hi, 1000);
        // huge halo clips to the whole extent
        let (lo, hi) = slab_bounds(10, 20, 64, 1000, 1);
        assert_eq!((lo, hi), (0, 64));
    }

    #[test]
    fn effective_shards_caps_at_one_aligned_slab_per_worker() {
        // a short outer axis cannot feed more workers than it has
        // aligned slabs: nz = 20 < SLAB_ALIGN * 4 degrades to 2
        assert_eq!(effective_shards(20, 4, 2, 1, 0), 2);
        // below one aligned slab the whole axis is one shard
        assert_eq!(effective_shards(6, 4, 1, 1, 0), 1);
        // a long axis keeps the requested count
        assert_eq!(effective_shards(1000, 4, 6, 2, 0), 4);
        // never zero, even for degenerate extents
        assert_eq!(effective_shards(0, 3, 0, 0, 0), 1);
    }

    #[test]
    fn effective_shards_sheds_below_min_span() {
        // min_span larger than a quarter of the axis: 4 shards shed
        let got = effective_shards(64, 4, 2, 1, 40);
        assert!((1..4).contains(&got), "got {got}");
        // one shard always satisfies any span (the slab is the domain)
        assert_eq!(effective_shards(16, 1, 2, 1, 1000), 1);
    }

    #[test]
    fn pass_quantum_matches_plan_structure() {
        use crate::{Method, Tiling};
        // untiled folded plan: the fold factor
        let p = Solver::new(kernels::heat3d())
            .method(Method::Folded { m: 2 })
            .compile()
            .unwrap();
        assert_eq!(pass_quantum(&p, &[64, 64, 64]), 2);
        // tessellate: m * min(time_block, per-dim caps); reff = 2 and
        // ny = 12 caps the round at (12 - 4) / 4 = 2
        let p = Solver::new(kernels::heat3d())
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 4 })
            .compile()
            .unwrap();
        assert_eq!(pass_quantum(&p, &[64, 12, 64]), 2 * 2);
        // wide domain: time_block itself is the cap
        assert_eq!(pass_quantum(&p, &[64, 64, 64]), 2 * 4);
        // unfolded tessellate vector plan: just the round cap
        let p = Solver::new(kernels::heat3d())
            .method(Method::MultipleLoads)
            .tiling(Tiling::Tessellate { time_block: 3 })
            .compile()
            .unwrap();
        assert_eq!(pass_quantum(&p, &[64, 64, 64]), 3);
    }
}
