//! Stencil pattern algebra: d-dimensional weight tensors.
//!
//! A [`Pattern`] is the weight tensor of a linear, constant-coefficient
//! stencil: `out[p] = sum over off of w[off] * in[p + off]` with offsets
//! ranging over the `(2r+1)^d` cube. All of the paper's linear
//! benchmarks (Table 1) are `Pattern`s; the folding matrix of §3 is the
//! pattern's self-convolution (`folding::fold`).

/// Shape classification of a pattern (paper Table 1 distinguishes star
/// and box stencils; GB is an asymmetric box).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Nonzero weights only on the axes (heat equations).
    Star,
    /// Nonzero weights possible anywhere in the cube.
    Box,
}

/// A dense `d`-dimensional stencil weight tensor of radius `r`.
///
/// Weights are stored row-major over the `(2r+1)^d` cube, index order
/// `(z, y, x)` with `x` fastest; offset `(0,..,0)` sits at the center.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    dims: usize,
    radius: usize,
    w: Vec<f64>,
}

impl Pattern {
    /// Build from explicit weights (`w.len() == (2r+1)^dims`).
    pub fn new(dims: usize, radius: usize, w: Vec<f64>) -> Self {
        assert!((1..=3).contains(&dims), "dims must be 1..=3");
        let side = 2 * radius + 1;
        assert_eq!(w.len(), side.pow(dims as u32), "weight count mismatch");
        Self { dims, radius, w }
    }

    /// 1D pattern from taps `[-r .. r]`.
    pub fn new_1d(taps: &[f64]) -> Self {
        assert!(taps.len() % 2 == 1, "tap count must be odd");
        Self::new(1, taps.len() / 2, taps.to_vec())
    }

    /// 2D pattern from a `(2r+1) x (2r+1)` row-major matrix.
    pub fn new_2d(radius: usize, m: &[f64]) -> Self {
        Self::new(2, radius, m.to_vec())
    }

    /// 3D pattern from a `(2r+1)^3` row-major cube (z-major).
    pub fn new_3d(radius: usize, m: &[f64]) -> Self {
        Self::new(3, radius, m.to_vec())
    }

    /// Dimensionality (1..=3).
    #[inline(always)]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Stable signature of this pattern: dimensionality, radius, point
    /// count and an FNV-1a hash of the exact weights, so two patterns
    /// with the same shape but different coefficients never collide.
    /// Used as a key component by the per-host tuning cache and the
    /// serving plan registry (e.g. `d2r1p5-1a2b...`).
    pub fn signature(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(&(self.dims as u64).to_le_bytes());
        mix(&(self.radius as u64).to_le_bytes());
        for w in &self.w {
            mix(&w.to_bits().to_le_bytes());
        }
        format!(
            "d{}r{}p{}-{:016x}",
            self.dims,
            self.radius,
            self.points(),
            h
        )
    }

    /// Radius `r`.
    #[inline(always)]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Side length of the weight cube, `2r + 1`.
    #[inline(always)]
    pub fn side(&self) -> usize {
        2 * self.radius + 1
    }

    /// Raw weights (row-major, x fastest).
    #[inline(always)]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Weight at offset `(dz, dy, dx)`; unused leading offsets must be 0
    /// for lower-dimensional patterns.
    pub fn at(&self, dz: isize, dy: isize, dx: isize) -> f64 {
        let r = self.radius as isize;
        assert!(dx.abs() <= r, "dx out of range");
        match self.dims {
            1 => {
                assert!(dz == 0 && dy == 0);
                self.w[(dx + r) as usize]
            }
            2 => {
                assert!(dz == 0 && dy.abs() <= r);
                self.w[((dy + r) * self.side() as isize + (dx + r)) as usize]
            }
            _ => {
                assert!(dz.abs() <= r && dy.abs() <= r);
                let s = self.side() as isize;
                self.w[((dz + r) * s * s + (dy + r) * s + (dx + r)) as usize]
            }
        }
    }

    /// Number of nonzero weights ("points" in the paper's Pts column).
    pub fn points(&self) -> usize {
        self.w.iter().filter(|&&x| x != 0.0).count()
    }

    /// Star/box classification.
    pub fn shape(&self) -> Shape {
        let r = self.radius as isize;
        for dz in -r..=r {
            for dy in -r..=r {
                for dx in -r..=r {
                    if self.dims < 3 && dz != 0 || self.dims < 2 && dy != 0 {
                        continue;
                    }
                    let on_axis = [dz != 0, dy != 0, dx != 0].iter().filter(|&&b| b).count() <= 1;
                    if !on_axis && self.at(dz, dy, dx) != 0.0 {
                        return Shape::Box;
                    }
                }
            }
        }
        Shape::Star
    }

    /// True if the pattern is symmetric under negating every offset.
    pub fn is_symmetric(&self) -> bool {
        let n = self.w.len();
        (0..n).all(|i| self.w[i] == self.w[n - 1 - i])
    }

    /// Sum of all weights (1.0 for conservative/averaging stencils).
    pub fn weight_sum(&self) -> f64 {
        self.w.iter().sum()
    }

    /// The `x`-columns of the weight tensor: for each `dx` offset, the
    /// flattened weight slab over the remaining dimensions
    /// (`(2r+1)^(d-1)` values, `y` fastest then `z`).
    ///
    /// These are the *vertical folding* weight vectors of §3.3: column
    /// `dx` is what a counterpart folds the neighbouring rows with.
    pub fn x_columns(&self) -> Vec<Vec<f64>> {
        let side = self.side();
        let slab = side.pow(self.dims as u32 - 1);
        let mut cols = vec![vec![0.0; slab]; side];
        for (i, &wv) in self.w.iter().enumerate() {
            let dx = i % side;
            let rest = i / side; // (y + z*side) combined index, y fastest
            cols[dx][rest] = wv;
        }
        cols
    }

    /// Flops per point per time step for this pattern under
    /// multiply-accumulate counting: one multiply + one add per nonzero
    /// tap (the standard GFLOP/s accounting for stencils, also used by
    /// the reference implementations we compare against).
    pub fn flops_per_point(&self) -> usize {
        2 * self.points()
    }

    /// Apply the stencil once at a single point of a 1D slice (bounds
    /// must allow the full support). Test/diagnostic helper.
    pub fn apply_1d(&self, src: &[f64], i: usize) -> f64 {
        assert_eq!(self.dims, 1);
        let r = self.radius;
        let mut acc = 0.0;
        for (k, &wv) in self.w.iter().enumerate() {
            acc += wv * src[i + k - r];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_at() {
        let p = Pattern::new_1d(&[0.25, 0.5, 0.25]);
        assert_eq!(p.dims(), 1);
        assert_eq!(p.radius(), 1);
        assert_eq!(p.at(0, 0, -1), 0.25);
        assert_eq!(p.at(0, 0, 0), 0.5);
        assert_eq!(p.points(), 3);
        assert!(p.is_symmetric());
        assert_eq!(p.weight_sum(), 1.0);
    }

    #[test]
    fn star_vs_box_2d() {
        let star = Pattern::new_2d(1, &[0.0, 0.1, 0.0, 0.2, 0.4, 0.2, 0.0, 0.1, 0.0]);
        assert_eq!(star.shape(), Shape::Star);
        assert_eq!(star.points(), 5);
        let boxp = Pattern::new_2d(1, &[1.0; 9]);
        assert_eq!(boxp.shape(), Shape::Box);
        assert_eq!(boxp.points(), 9);
    }

    #[test]
    fn at_2d_orientation() {
        // row-major, x fastest: w[(dy+r)*side + (dx+r)]
        let p = Pattern::new_2d(1, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(p.at(0, -1, -1), 1.0);
        assert_eq!(p.at(0, -1, 1), 3.0);
        assert_eq!(p.at(0, 0, 0), 5.0);
        assert_eq!(p.at(0, 1, -1), 7.0);
        assert!(!p.is_symmetric());
    }

    #[test]
    fn x_columns_2d() {
        let p = Pattern::new_2d(1, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let cols = p.x_columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0], vec![1.0, 4.0, 7.0]); // dx = -1 column
        assert_eq!(cols[1], vec![2.0, 5.0, 8.0]); // dx = 0
        assert_eq!(cols[2], vec![3.0, 6.0, 9.0]); // dx = +1
    }

    #[test]
    fn x_columns_1d_are_scalars() {
        let p = Pattern::new_1d(&[1.0, 2.0, 3.0]);
        let cols = p.x_columns();
        assert_eq!(cols, vec![vec![1.0], vec![2.0], vec![3.0]]);
    }

    #[test]
    fn three_d_at() {
        let mut w = vec![0.0; 27];
        w[13] = 1.0; // center
        w[4] = 0.5; // dz=-1, dy=0, dx=0 -> (0*9 + 1*3 + 1) = 4
        let p = Pattern::new_3d(1, &w);
        assert_eq!(p.at(0, 0, 0), 1.0);
        assert_eq!(p.at(-1, 0, 0), 0.5);
        assert_eq!(p.shape(), Shape::Star);
    }

    #[test]
    fn flops_counting() {
        let p = Pattern::new_2d(1, &[1.0; 9]);
        assert_eq!(p.flops_per_point(), 18);
    }

    #[test]
    #[should_panic]
    fn wrong_weight_count_panics() {
        Pattern::new(2, 1, vec![0.0; 8]);
    }
}
