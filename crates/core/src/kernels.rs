//! The nine benchmark stencils of the paper (Table 1) plus their
//! experiment parameters.
//!
//! Star stencils: 1D-Heat, 2D-Heat, 3D-Heat. Box stencils: 1D5P, 2D9P,
//! 3D27P. Real-world kernels: APOP (American put option pricing, 1D3P
//! over two arrays), Game of Life (8-neighbour automaton), GB (general
//! box: 9 distinct weights, the paper's stress test for folding).

use crate::pattern::Pattern;

/// 1D 3-point heat stencil: `0.25, 0.5, 0.25`.
pub fn heat1d() -> Pattern {
    Pattern::new_1d(&[0.25, 0.5, 0.25])
}

/// 1D 5-point stencil (radius 2), binomial weights.
pub fn d1p5() -> Pattern {
    Pattern::new_1d(&[0.0625, 0.25, 0.375, 0.25, 0.0625])
}

/// Linear part of the APOP binomial update (1D 3-point): the `max` with
/// the payoff array is applied by the APOP executor on top of this.
pub fn apop_linear() -> Pattern {
    // risk-neutral binomial weights with a discount factor < 1
    Pattern::new_1d(&[0.4975, 0.0, 0.4975])
}

/// 2D 5-point heat stencil (star): center 0.5, axis neighbours 0.125.
pub fn heat2d() -> Pattern {
    Pattern::new_2d(1, &[0.0, 0.125, 0.0, 0.125, 0.5, 0.125, 0.0, 0.125, 0.0])
}

/// 2D 9-point box stencil, uniform weight 1/9 (Fig. 5's kernel).
pub fn box2d9p() -> Pattern {
    Pattern::new_2d(1, &[1.0 / 9.0; 9])
}

/// Neighbour-count pattern for Game of Life: 8 ones, zero center.
/// The automaton rule itself is nonlinear and lives in the Life executor.
pub fn life_count() -> Pattern {
    Pattern::new_2d(1, &[1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0])
}

/// GB — general box: an asymmetric 2D9P stencil with 9 distinct weights
/// (the paper's stress test: no column of the folding matrix is a
/// multiple of another).
pub fn gb() -> Pattern {
    Pattern::new_2d(1, &[0.01, 0.03, 0.05, 0.07, 0.53, 0.11, 0.09, 0.06, 0.05])
}

/// 3D 7-point heat stencil (star): center 0.4, axis neighbours 0.1.
pub fn heat3d() -> Pattern {
    let mut w = vec![0.0; 27];
    let idx = |dz: usize, dy: usize, dx: usize| dz * 9 + dy * 3 + dx;
    w[idx(1, 1, 1)] = 0.4;
    for (dz, dy, dx) in [
        (0, 1, 1),
        (2, 1, 1),
        (1, 0, 1),
        (1, 2, 1),
        (1, 1, 0),
        (1, 1, 2),
    ] {
        w[idx(dz, dy, dx)] = 0.1;
    }
    Pattern::new_3d(1, &w)
}

/// 3D 27-point box stencil, uniform weight 1/27.
pub fn box3d27p() -> Pattern {
    Pattern::new_3d(1, &[1.0 / 27.0; 27])
}

/// 3D 125-point box stencil (radius 2), uniform weight 1/125 — the
/// larger-radius 3D workload the deeper fold window (`MAX_R3 = 4`)
/// exists for: folded `m = 2` reaches radius 4 and stays separable.
pub fn box3d125p() -> Pattern {
    Pattern::new_3d(2, &[1.0 / 125.0; 125])
}

/// 3D 13-point star stencil of radius 2: center 0.4, axis neighbours
/// 0.08 at distance 1 and 0.02 at distance 2. The radius-2 *star*
/// companion to [`box3d125p`] — same deep fold window (folded `m = 2`
/// reaches radius 4 = `MAX_R3`), but load-bound like [`heat3d`], so it
/// stresses the ring pipeline's plane reuse rather than its arithmetic.
pub fn star3d_r2() -> Pattern {
    let mut w = vec![0.0; 125];
    let idx = |dz: usize, dy: usize, dx: usize| dz * 25 + dy * 5 + dx;
    w[idx(2, 2, 2)] = 0.4;
    for (axis, weight) in [(1usize, 0.08), (2usize, 0.02)] {
        for (dz, dy, dx) in [
            (2 - axis, 2, 2),
            (2 + axis, 2, 2),
            (2, 2 - axis, 2),
            (2, 2 + axis, 2),
            (2, 2, 2 - axis),
            (2, 2, 2 + axis),
        ] {
            w[idx(dz, dy, dx)] = weight;
        }
    }
    Pattern::new_3d(2, &w)
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Nonzero points of the stencil.
    pub points: usize,
    /// Problem size per spatial dimension (paper column "Problem Size"
    /// without the trailing time-step factor).
    pub problem_size: &'static [usize],
    /// Total time steps (the paper fixes T = 1000).
    pub time_steps: usize,
    /// Blocking size per spatial dimension (last entry = time block).
    pub blocking: &'static [usize],
}

/// The nine rows of Table 1.
pub fn table1() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "1D-Heat",
            points: 3,
            problem_size: &[10_240_000],
            time_steps: 1000,
            blocking: &[2000, 1000],
        },
        BenchmarkSpec {
            name: "1D5P",
            points: 5,
            problem_size: &[10_240_000],
            time_steps: 1000,
            blocking: &[2000, 500],
        },
        BenchmarkSpec {
            name: "APOP",
            points: 6,
            problem_size: &[10_240_000],
            time_steps: 1000,
            blocking: &[2000, 500],
        },
        BenchmarkSpec {
            name: "2D-Heat",
            points: 5,
            problem_size: &[5000, 5000],
            time_steps: 1000,
            blocking: &[200, 200, 50],
        },
        BenchmarkSpec {
            name: "2D9P",
            points: 9,
            problem_size: &[5000, 5000],
            time_steps: 1000,
            blocking: &[120, 128, 60],
        },
        BenchmarkSpec {
            name: "Game of Life",
            points: 8,
            problem_size: &[5000, 5000],
            time_steps: 1000,
            blocking: &[200, 200, 50],
        },
        BenchmarkSpec {
            name: "GB",
            points: 9,
            problem_size: &[5000, 5000],
            time_steps: 1000,
            blocking: &[200, 200, 50],
        },
        BenchmarkSpec {
            name: "3D-Heat",
            points: 7,
            problem_size: &[400, 400, 400],
            time_steps: 1000,
            blocking: &[20, 20, 10],
        },
        BenchmarkSpec {
            name: "3D27P",
            points: 27,
            problem_size: &[400, 400, 400],
            time_steps: 1000,
            blocking: &[20, 20, 10],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;

    #[test]
    fn point_counts_match_table1() {
        assert_eq!(heat1d().points(), 3);
        assert_eq!(d1p5().points(), 5);
        assert_eq!(heat2d().points(), 5);
        assert_eq!(box2d9p().points(), 9);
        assert_eq!(life_count().points(), 8);
        assert_eq!(gb().points(), 9);
        assert_eq!(heat3d().points(), 7);
        assert_eq!(box3d27p().points(), 27);
        assert_eq!(box3d125p().points(), 125);
        assert_eq!(star3d_r2().points(), 13);
    }

    #[test]
    fn shapes() {
        assert_eq!(heat1d().shape(), Shape::Star);
        assert_eq!(heat2d().shape(), Shape::Star);
        assert_eq!(heat3d().shape(), Shape::Star);
        assert_eq!(star3d_r2().shape(), Shape::Star);
        assert_eq!(box2d9p().shape(), Shape::Box);
        assert_eq!(gb().shape(), Shape::Box);
        assert_eq!(box3d27p().shape(), Shape::Box);
        assert_eq!(box3d125p().shape(), Shape::Box);
    }

    #[test]
    fn stability_mass() {
        // averaging kernels: weight sum 1 keeps sweeps bounded
        for p in [
            heat1d(),
            d1p5(),
            heat2d(),
            box2d9p(),
            heat3d(),
            box3d27p(),
            box3d125p(),
            star3d_r2(),
        ] {
            assert!((p.weight_sum() - 1.0).abs() < 1e-12, "{p:?}");
        }
        // GB is a weighted average too
        assert!((gb().weight_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gb_is_asymmetric() {
        assert!(!gb().is_symmetric());
        assert!(box2d9p().is_symmetric());
    }

    #[test]
    fn table1_has_nine_rows() {
        let t = table1();
        assert_eq!(t.len(), 9);
        assert_eq!(t[0].problem_size, &[10_240_000]);
        assert_eq!(t[8].points, 27);
        assert!(t.iter().all(|b| b.time_steps == 1000));
    }
}
