//! Counterpart planning for the folded executor (paper §3.3 + §3.5).
//!
//! The folded matrix Λ (= `fold(p, m)`) is evaluated in two phases:
//! *vertical folding* computes, per x-position, one value per distinct
//! weight column of Λ (a *counterpart*), then *horizontal folding*
//! combines counterpart values across x-offsets. The plan decides the
//! minimal set of counterparts that must actually be computed ("fresh")
//! and expresses every column of Λ as a linear combination of them —
//! using proportionality detection for the separable case (c2 = 2 c1,
//! c3 = 3 c1 in Fig. 5) and the least-squares regression of §3.5 for the
//! general case, with the raw input square available as the zero-cost
//! bias basis `b_n`.

use crate::folding::fold;
use crate::pattern::Pattern;
use crate::regression::{least_squares, proportionality, EXACT_TOL};

/// One horizontal-folding term: `coeff * fresh[id]` evaluated at a given
/// x-offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HTerm {
    /// Index into [`FoldPlan::fresh`].
    pub id: usize,
    /// Scale coefficient.
    pub coeff: f64,
}

/// Execution plan for an `m`-step folded update of a linear stencil.
#[derive(Debug, Clone)]
pub struct FoldPlan {
    /// Grid dimensionality.
    pub dims: usize,
    /// Unrolling factor `m`.
    pub m: usize,
    /// Base pattern radius `r`.
    pub base_radius: usize,
    /// Folded radius `R = m * r`.
    pub radius: usize,
    /// The folded pattern Λ.
    pub folded: Pattern,
    /// Fresh counterpart λ-slabs, each of length `(2R+1)^(dims-1)`
    /// (y fastest, then z). `fresh[0]` is always the raw-square basis
    /// `e_center` (the bias of Eq. 7): it costs nothing to "compute".
    pub fresh: Vec<Vec<f64>>,
    /// For each x-offset `dx` in `-R..=R` (index `dx + R`): the
    /// horizontal combination of fresh counterparts reproducing that
    /// column of Λ. Empty for all-zero columns.
    pub h: Vec<Vec<HTerm>>,
}

impl FoldPlan {
    /// Build the plan for pattern `p` folded `m` times.
    pub fn new(p: &Pattern, m: usize) -> Self {
        let folded = fold(p, m);
        let radius = folded.radius();
        let dims = p.dims();
        let cols = folded.x_columns();
        let slab = cols[0].len();

        // Basis 0: the raw input square (delta at the slab center). For
        // 1D the slab is a single element, so e_center == [1.0]: every
        // 1D column is trivially proportional to it and the plan
        // degenerates to plain horizontal folding, as it should.
        let mut center = vec![0.0; slab];
        center[slab / 2] = 1.0;
        let mut fresh: Vec<Vec<f64>> = vec![center];
        let mut h: Vec<Vec<HTerm>> = Vec::with_capacity(cols.len());

        for col in &cols {
            if col.iter().all(|&v| v.abs() <= EXACT_TOL) {
                h.push(vec![]);
                continue;
            }
            // 1) proportional to an existing fresh counterpart?
            let mut terms: Option<Vec<HTerm>> = None;
            for (id, f) in fresh.iter().enumerate() {
                if let Some(k) = proportionality(f, col) {
                    if k.abs() > EXACT_TOL {
                        terms = Some(vec![HTerm { id, coeff: k }]);
                        break;
                    }
                }
            }
            // 2) exact linear combination of the existing basis (the
            //    §3.5 regression)?
            if terms.is_none() && fresh.len() > 1 {
                if let Some(fit) = least_squares(&fresh, col) {
                    if fit.is_exact() {
                        let combo: Vec<HTerm> = fit
                            .omega
                            .iter()
                            .enumerate()
                            .filter(|(_, w)| w.abs() > EXACT_TOL)
                            .map(|(id, &coeff)| HTerm { id, coeff })
                            .collect();
                        // Only worth it if cheaper than a fresh fold.
                        let fresh_cost = col.iter().filter(|v| v.abs() > EXACT_TOL).count();
                        if combo.len() < fresh_cost {
                            terms = Some(combo);
                        }
                    }
                }
            }
            // 3) give up and compute it fresh.
            let terms = terms.unwrap_or_else(|| {
                fresh.push(col.clone());
                vec![HTerm {
                    id: fresh.len() - 1,
                    coeff: 1.0,
                }]
            });
            h.push(terms);
        }

        Self {
            dims,
            m,
            base_radius: p.radius(),
            radius,
            folded,
            fresh,
            h,
        }
    }

    /// Number of counterparts that need a real vertical fold (excludes
    /// the free raw-square basis).
    pub fn fresh_folds(&self) -> usize {
        self.fresh.len() - 1
    }

    /// Whether fresh counterpart `id` is actually referenced by any
    /// horizontal term.
    pub fn is_used(&self, id: usize) -> bool {
        self.h.iter().flatten().any(|t| t.id == id)
    }

    /// Vertical-fold taps of fresh counterpart `id` as
    /// `(slab_index, weight)` pairs (skipping zeros). `slab_index` runs
    /// over the `(2R+1)^(dims-1)` cube, y fastest.
    pub fn fold_taps(&self, id: usize) -> Vec<(usize, f64)> {
        self.fresh[id]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.abs() > EXACT_TOL)
            .map(|(i, &w)| (i, w))
            .collect()
    }

    /// Validate the plan by reconstructing Λ from fresh slabs and
    /// horizontal terms; returns the max reconstruction error.
    pub fn reconstruction_error(&self) -> f64 {
        let cols = self.folded.x_columns();
        let mut err = 0.0f64;
        for (ci, col) in cols.iter().enumerate() {
            for (row, &want) in col.iter().enumerate() {
                let got: f64 = self.h[ci]
                    .iter()
                    .map(|t| t.coeff * self.fresh[t.id][row])
                    .sum();
                err = err.max((got - want).abs());
            }
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn separable_box_needs_one_fresh_counterpart() {
        // Fig. 5: the 2D9P all-w box folded with m=2 is rank-1; one
        // vertical fold (λ = [1,2,3,2,1] scaled), others proportional.
        let plan = FoldPlan::new(&kernels::box2d9p(), 2);
        assert_eq!(plan.fresh_folds(), 1);
        assert_eq!(plan.radius, 2);
        // coefficients across dx must be in ratio 1:2:3:2:1
        let coeffs: Vec<f64> = plan.h.iter().map(|t| t[0].coeff).collect();
        let base = coeffs[0];
        let ratios: Vec<f64> = coeffs.iter().map(|c| c / base).collect();
        for (got, want) in ratios.iter().zip([1.0, 2.0, 3.0, 2.0, 1.0]) {
            assert!((got - want).abs() < 1e-9, "{ratios:?}");
        }
        assert!(plan.reconstruction_error() < 1e-12);
    }

    #[test]
    fn star_m1_uses_raw_square_for_side_columns() {
        // 2D-Heat m=1: side columns are w2 * e_center -> no fresh fold,
        // only the center column needs one.
        let plan = FoldPlan::new(&kernels::heat2d(), 1);
        assert_eq!(plan.fresh_folds(), 1);
        // dx = -1 column resolves to the raw-square basis (id 0)
        assert_eq!(plan.h[0].len(), 1);
        assert_eq!(plan.h[0][0].id, 0);
        assert!((plan.h[0][0].coeff - 0.125).abs() < 1e-12);
        assert!(plan.reconstruction_error() < 1e-12);
    }

    #[test]
    fn star_m2_symmetry_halves_fresh_folds() {
        // folded 2D-Heat (m=2) has 5 columns; dx=+k equals dx=-k, so at
        // most 3 fresh folds; the dx=+-2 column is w2^2 * e_center.
        let plan = FoldPlan::new(&kernels::heat2d(), 2);
        assert!(plan.fresh_folds() <= 2, "plan: {plan:?}");
        assert!(plan.reconstruction_error() < 1e-12);
    }

    #[test]
    fn gb_asymmetric_plan_is_exact() {
        // GB's folding-matrix columns are not proportional; the plan must
        // still reconstruct Λ exactly (fresh folds or regression combos).
        let plan = FoldPlan::new(&kernels::gb(), 2);
        assert!(plan.reconstruction_error() < 1e-10);
        assert!(plan.fresh_folds() >= 3, "GB should be the stress case");
    }

    #[test]
    fn one_dimensional_plan_degenerates() {
        // 1D: slab = single element; every column is proportional to the
        // raw basis -> zero fresh folds, horizontal weights = folded taps.
        let plan = FoldPlan::new(&kernels::heat1d(), 2);
        assert_eq!(plan.fresh_folds(), 0);
        let folded = fold(&kernels::heat1d(), 2);
        for (dx, terms) in plan.h.iter().enumerate() {
            let w = folded.weights()[dx];
            if w == 0.0 {
                continue;
            }
            assert_eq!(terms.len(), 1);
            assert!((terms[0].coeff - w).abs() < 1e-12);
        }
    }

    #[test]
    fn three_d_plan_reconstructs() {
        for m in 1..=2 {
            let plan = FoldPlan::new(&kernels::heat3d(), m);
            assert!(plan.reconstruction_error() < 1e-12, "m={m}");
            let plan = FoldPlan::new(&kernels::box3d27p(), m);
            assert!(plan.reconstruction_error() < 1e-12, "m={m}");
        }
    }

    #[test]
    fn box3d_is_separable_too() {
        // all-w 3D box folds into a rank-1 tensor: one fresh fold.
        let plan = FoldPlan::new(&kernels::box3d27p(), 2);
        assert_eq!(plan.fresh_folds(), 1);
    }

    #[test]
    fn fold_taps_skip_zeros() {
        let plan = FoldPlan::new(&kernels::heat2d(), 1);
        // center column is [w1, w3, w1] = 3 taps
        let taps = plan.fold_taps(1);
        assert_eq!(taps.len(), 3);
    }
}
