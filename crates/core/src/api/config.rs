//! Solver configuration: method, tiling, width and thread selection.

use super::error::PlanError;
use super::plan_exec::Plan;
use crate::pattern::Pattern;
use stencil_grid::{Grid1D, Grid2D, Grid3D};
use stencil_runtime::PoolHandle;

pub use crate::exec::folded3d::Ring3;

/// Vectorization scheme (the methods compared in Fig. 8/9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Scalar reference sweep.
    Scalar,
    /// Multiple loads: one unaligned load per tap.
    MultipleLoads,
    /// Data reorganization: aligned loads + shuffles (1D only).
    DataReorg,
    /// Global dimension-lifted transpose (1D block-free, or SDSL when
    /// combined with [`Tiling::Split`]).
    Dlt,
    /// The paper's transpose layout, single-step (§2).
    TransposeLayout,
    /// The paper's temporal computation folding with unrolling factor
    /// `m` (§3); `m = 1` is the register-transpose pipeline without
    /// temporal fusion.
    Folded {
        /// Unrolling factor (time steps fused per register update).
        m: usize,
    },
    /// Let the library choose: [`Solver::compile`] resolves this via
    /// [`crate::tune::auto_method`] (cost-model profitability §3.2 plus
    /// the executor's radius bounds) into one of the concrete methods
    /// above. Query the choice with [`Plan::method`].
    Auto,
}

/// Tiling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tiling {
    /// Whole-grid Jacobi sweeps (the "block-free" rows of Fig. 8).
    None,
    /// Let the library choose the tiling and its parameters.
    /// [`Solver::compile`] resolves this through the configured
    /// [`Tuning`] mode: statically via
    /// [`crate::tune::auto_tiling`], or empirically via the installed
    /// measured tuner. Query the choice with [`Plan::tiling`], which
    /// never reports `Auto`.
    Auto,
    /// Tessellate tiling (Yuan) with `time_block` inner steps per round.
    Tessellate {
        /// Inner (possibly folded) steps per round.
        time_block: usize,
    },
    /// Split tiling over DLT layout — the SDSL configuration.
    Split {
        /// Inner steps per round.
        time_block: usize,
    },
    /// Spatial blocking only (one step at a time).
    Spatial {
        /// Tile extents `(outer, inner)` = (y,x) in 2D / (z,y) in 3D.
        block: (usize, usize),
    },
}

/// SIMD width selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Scalar lanes (1): useful for calibration.
    W1,
    /// 4 x f64 (AVX2-class).
    W4,
    /// 8 x f64 (AVX-512-class).
    W8,
}

impl Width {
    /// Widest width with a native backend on this build.
    pub fn native_max() -> Self {
        if stencil_simd::HAS_AVX512 {
            Width::W8
        } else {
            Width::W4
        }
    }

    /// Lane count.
    pub fn lanes(self) -> usize {
        match self {
            Width::W1 => 1,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

/// How [`Solver::compile`] resolves [`Method::Auto`] and
/// [`Tiling::Auto`].
///
/// The paper's §3.2 cost model is a machine-independent instruction
/// count; real machines diverge from it (cache sizes, AVX-512
/// downclocking, core counts), so the measured modes route the choice
/// through an installed [`crate::tune::MeasuredTuner`] — normally the
/// `stencil-tune` crate's probing autotuner with its persistent
/// per-host plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tuning {
    /// Resolve analytically from the §3.2 cost model
    /// ([`crate::tune::auto_method`] / [`crate::tune::auto_tiling`]),
    /// with no probe runs. The default, and the fallback every other
    /// mode degrades to when there is nothing to tune.
    #[default]
    Static,
    /// Probe candidate configurations empirically (short timed sweeps on
    /// small representative domains) and persist the winner in the
    /// per-host tuning cache; cached hosts skip the probes entirely.
    /// Requires an installed tuner ([`PlanError::TunerUnavailable`]
    /// otherwise).
    Measured,
    /// Use only previously persisted measurements: a warm cache resolves
    /// without a single probe run, a cold one is a typed
    /// [`PlanError::TuneCacheMiss`] instead of a silent re-probe.
    /// Deterministic by construction — suited to latency-sensitive
    /// `compile()` calls and reproducible benchmarking.
    CacheOnly,
}

/// Stencil solver *configuration* — a cheap, cloneable builder.
///
/// Nothing is derived and no threads are spawned until
/// [`Solver::compile`] turns the configuration into a [`Plan`]; compile
/// once, run many times.
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) pattern: Pattern,
    pub(crate) method: Method,
    pub(crate) tiling: Tiling,
    pub(crate) width: Width,
    pub(crate) threads: usize,
    pub(crate) pool: Option<PoolHandle>,
    pub(crate) tuning: Tuning,
    pub(crate) domain_hint: Option<Vec<usize>>,
    pub(crate) ring3: Option<Ring3>,
    pub(crate) epoch: u64,
}

impl Solver {
    /// New solver for `pattern` (defaults: multiple-loads, no tiling,
    /// the widest native vector width, single thread).
    pub fn new(pattern: Pattern) -> Self {
        Self {
            pattern,
            method: Method::MultipleLoads,
            tiling: Tiling::None,
            width: Width::native_max(),
            threads: 1,
            pool: None,
            tuning: Tuning::Static,
            domain_hint: None,
            ring3: None,
            epoch: 0,
        }
    }

    /// Select the vectorization method.
    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    /// Select the tiling scheme.
    pub fn tiling(mut self, t: Tiling) -> Self {
        self.tiling = t;
        self
    }

    /// Select the vector width (default: [`Width::native_max`]).
    pub fn width(mut self, w: Width) -> Self {
        self.width = w;
        self
    }

    /// Use `n` worker threads. The pool itself is spawned by
    /// [`Solver::compile`], not here; prefer [`Solver::pool`] to share
    /// one pool across several plans.
    ///
    /// `threads` and [`Solver::pool`] are two ways to set the same
    /// thing and the **last call wins**: calling `threads` discards a
    /// previously supplied shared pool (compile will spawn a fresh
    /// `n`-thread pool instead).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self.pool = None;
        self
    }

    /// Share an existing worker pool instead of spawning a new one at
    /// compile time — lets many plans amortize one set of threads.
    ///
    /// Last call wins: this overrides any earlier [`Solver::threads`]
    /// count (the plan uses `pool.threads()` workers), and a later
    /// `threads` call would discard this pool again.
    pub fn pool(mut self, pool: PoolHandle) -> Self {
        self.threads = pool.threads();
        self.pool = Some(pool);
        self
    }

    /// Select how [`Method::Auto`] and [`Tiling::Auto`] are resolved
    /// (default: [`Tuning::Static`], the §3.2 cost model).
    ///
    /// The measured modes consult the installed
    /// [`crate::tune::MeasuredTuner`] — install one with
    /// `stencil_tune::install()` (or [`crate::tune::install_tuner`]) —
    /// and only act when something is actually left to tune; a fully
    /// concrete configuration compiles identically under every mode.
    pub fn tuning(mut self, t: Tuning) -> Self {
        self.tuning = t;
        self
    }

    /// Hint the domain extents the compiled plan will mostly run on
    /// (e.g. `&[ny, nx]` for 2D). The measured tuner probes on a small
    /// representative domain of the same *shape class* and keys its
    /// per-host cache by that class, so plans tuned for L1-resident
    /// grids and for memory-bound grids are cached separately. Purely
    /// advisory: plans still run on any compatible grid.
    pub fn domain_hint(mut self, extents: &[usize]) -> Self {
        self.domain_hint = Some(extents.to_vec());
        self
    }

    /// Pin the z-ring pipeline geometry (z-strip depth × x-slab width)
    /// for 3D register plans. Left unset, [`Solver::compile`] resolves
    /// it — statically via [`Ring3::auto`], or through the measured
    /// tuner (the z-ring axes are part of its 3D candidate space).
    /// Ignored for 1D/2D patterns and non-register methods. Out-of-bound
    /// values are a compile-time [`PlanError::InvalidRing`].
    pub fn ring3(mut self, r: Ring3) -> Self {
        self.ring3 = Some(r);
        self
    }

    /// Tag the compiled plan with an identity epoch (default 0).
    ///
    /// The epoch changes nothing about execution — it is an opaque
    /// generation counter carried by the [`Plan`] so callers that
    /// hot-swap plans at runtime (the serve registry's adaptive
    /// retuning) can tell which generation produced a result: jobs
    /// holding an older `Arc<Plan>` finish on that exact plan,
    /// bit-exactly, and report its epoch.
    pub fn epoch(mut self, e: u64) -> Self {
        self.epoch = e;
        self
    }

    /// The configured pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The configured tuning mode.
    pub fn tuning_mode(&self) -> Tuning {
        self.tuning
    }

    /// Validate the configuration and derive everything the runs will
    /// reuse: the folded pattern Λ, the planned register kernel, the
    /// resolved method (for [`Method::Auto`]) and the worker pool.
    ///
    /// Every invalid method × tiling × dimension combination is reported
    /// here as a typed [`PlanError`]; the returned [`Plan`] can only fail
    /// on grid-shape errors at run time (wrong dimensionality, or a
    /// DLT-layout extent that is ragged or smaller than the lifted
    /// radius).
    pub fn compile(&self) -> Result<Plan, PlanError> {
        let _span = stencil_obs::span(stencil_obs::SpanId::PlanCompile);
        Plan::compile(self)
    }

    /// One-shot run on a 1D grid (compiles on every call).
    #[deprecated(
        since = "0.2.0",
        note = "call `.compile()` once and reuse the returned `Plan`; this wrapper re-plans \
                (folding matrix, kernel plan, thread pool) on every invocation"
    )]
    pub fn run_1d(&self, grid: &Grid1D, t: usize) -> Grid1D {
        self.compile()
            .expect("invalid Solver configuration")
            .run_1d(grid, t)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// One-shot run on a 2D grid (compiles on every call).
    #[deprecated(
        since = "0.2.0",
        note = "call `.compile()` once and reuse the returned `Plan`; this wrapper re-plans \
                (folding matrix, kernel plan, thread pool) on every invocation"
    )]
    pub fn run_2d(&self, grid: &Grid2D, t: usize) -> Grid2D {
        self.compile()
            .expect("invalid Solver configuration")
            .run_2d(grid, t)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// One-shot run on a 3D grid (compiles on every call).
    #[deprecated(
        since = "0.2.0",
        note = "call `.compile()` once and reuse the returned `Plan`; this wrapper re-plans \
                (folding matrix, kernel plan, thread pool) on every invocation"
    )]
    pub fn run_3d(&self, grid: &Grid3D, t: usize) -> Grid3D {
        self.compile()
            .expect("invalid Solver configuration")
            .run_3d(grid, t)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}
