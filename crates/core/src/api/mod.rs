//! High-level solver facade: validated, compile-once/run-many plans.
//!
//! The paper's whole point is removing redundant work, and the facade
//! applies the same discipline to itself: a [`Solver`] is a cheap,
//! cloneable *configuration* (pattern × [`Method`] × [`Tiling`] ×
//! [`Width`] × threads) whose [`Solver::compile`] step validates the
//! combination once, returning either a typed [`PlanError`] or a
//! [`Plan`] that owns every derived artifact — the folded pattern Λ, the
//! planned register kernel, the resolved width, and a shared
//! [`stencil_runtime::PoolHandle`]. A plan can then be run any number of
//! times (and on any [`Domain`] dimensionality it was compiled for)
//! without re-planning.
//!
//! ```
//! use stencil_core::{kernels, Method, Solver, Tiling};
//! use stencil_grid::Grid1D;
//!
//! let plan = Solver::new(kernels::heat1d())
//!     .method(Method::Folded { m: 2 })
//!     .tiling(Tiling::Tessellate { time_block: 8 })
//!     .threads(2)
//!     .compile()
//!     .expect("valid configuration");
//! // Λ, the kernel plan and the thread pool are now fixed; every run
//! // reuses them.
//! let grid = Grid1D::from_fn(1024, |i| if i == 512 { 1.0 } else { 0.0 });
//! for _ in 0..3 {
//!     let out = plan.run_1d(&grid, 100).unwrap();
//!     let mass: f64 = out.as_slice().iter().sum();
//!     assert!((mass - 1.0).abs() < 1e-9);
//! }
//! ```
//!
//! Invalid combinations are rejected at compile time with a typed error
//! instead of a runtime panic:
//!
//! ```
//! use stencil_core::{kernels, Method, PlanError, Solver, Tiling};
//!
//! let err = Solver::new(kernels::heat1d())
//!     .method(Method::Dlt)
//!     .tiling(Tiling::Tessellate { time_block: 8 })
//!     .compile()
//!     .unwrap_err();
//! assert!(matches!(err, PlanError::IncompatibleMethodTiling { .. }));
//! ```
//!
//! The pre-plan one-shot methods (`Solver::run_1d` and friends) survive
//! as deprecated wrappers that compile on every call — see their docs
//! for the migration note.

pub mod config;
pub mod error;
pub mod plan_exec;

pub use config::{Method, Ring3, Solver, Tiling, Tuning, Width};
pub use error::PlanError;
pub use plan_exec::{Domain, Plan};
