//! Compiled execution plans: validation, derived artifacts, and the
//! dimension-dispatched run paths.

use super::config::{Method, Ring3, Solver, Tiling, Tuning, Width};
use super::error::PlanError;
use crate::exec::folded::{self, FoldedKernel, MAX_R, MAX_R3};
use crate::exec::folded3d;
use crate::exec::{dlt, multiload, reorg, scalar, xlayout};
use crate::folding::fold;
use crate::pattern::Pattern;
use crate::plan::FoldPlan;
use crate::tile::{spatial, split, tessellate};
use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};
use stencil_runtime::PoolHandle;
use stencil_simd::{NativeF64x4, NativeF64x8, SimdF64};

/// Largest folded radius `m * r` the register pipeline supports for a
/// pattern of dimensionality `dims` at vector width `width` (the 1D
/// assembled vectors reach one lane per radius cell; 2D is bounded by
/// the fixed register windows of [`crate::exec::folded`]). The 3D bound
/// is the register-budget gate of the z-ring pipeline: [`MAX_R3`]
/// capped by the lane count, since the transpose window holds one
/// column per lane — a deep fold that cannot keep its window in
/// registers is rejected at compile time rather than silently degraded.
/// Scalar lanes keep the pre-ring cap of 2 (they run the scalar folded
/// sweep, where the window budget is moot).
pub(crate) fn fold_radius_cap(dims: usize, width: Width) -> usize {
    match dims {
        1 => width.lanes(),
        2 => MAX_R,
        _ => MAX_R3.min(width.lanes().max(2)),
    }
}

/// Reject degenerate or out-of-bound z-ring geometries with a typed
/// error (shared by the user-pinned and tuner-supplied paths).
fn validate_ring(r: Ring3) -> Result<(), PlanError> {
    if r.depth == 0 {
        return Err(PlanError::InvalidRing {
            ring: r,
            reason: "depth must be >= 1",
        });
    }
    if r.slab == 0 {
        return Err(PlanError::InvalidRing {
            ring: r,
            reason: "slab must be >= 1",
        });
    }
    if !r.valid() {
        return Err(PlanError::InvalidRing {
            ring: r,
            reason: "depth/slab exceed the supported ring bounds",
        });
    }
    Ok(())
}

/// Range-kernel family a method maps to inside the tiled drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Scalar,
    Vector,
    Register,
}

fn family(method: Method) -> Family {
    match method {
        Method::Scalar => Family::Scalar,
        Method::TransposeLayout | Method::Folded { .. } => Family::Register,
        // MultipleLoads and DataReorg share the unaligned-load kernel in
        // tiled execution; Dlt/Auto never reach a tiled family (compile
        // rejects or resolves them).
        _ => Family::Vector,
    }
}

/// A validated, compiled stencil execution plan.
///
/// Produced by [`Solver::compile`]; owns everything the runs reuse:
///
/// * the folded pattern Λ ([`Plan::folded`]) and, for 2D/3D register
///   pipelines, the planned [`FoldedKernel`] with its counterpart
///   schedule,
/// * the resolved [`Method`] (never [`Method::Auto`]) and [`Width`],
/// * a shared [`PoolHandle`] whose worker threads outlive the plan's
///   runs — clone the handle into several plans to amortize one pool.
///
/// `run_1d`/`run_2d`/`run_3d` (or the dimension-generic [`Plan::run`])
/// can be invoked any number of times; the only errors they can return
/// concern the grid itself — [`PlanError::DimensionMismatch`], plus
/// [`PlanError::MisalignedDomain`]/[`PlanError::DomainTooSmall`] for
/// DLT-layout plans, whose lifted rows constrain the innermost extent.
/// No planning work happens per run.
pub struct Plan {
    pattern: Pattern,
    method: Method,
    tiling: Tiling,
    width: Width,
    pool: PoolHandle,
    /// Fold factor (1 unless the method is `Folded { m > 1 }`).
    m: usize,
    /// `fold(pattern, m)`; equals `pattern` when `m == 1`.
    folded: Pattern,
    /// 2D/3D register-pipeline kernel (transpose-layout / folded paths).
    kernel: Option<FoldedKernel>,
    /// Single-step register kernel for the `t % m` tessellate tail.
    tail_kernel: Option<FoldedKernel>,
    /// Resolved z-ring geometry (`Some` exactly for 3D register plans).
    ring3: Option<Ring3>,
    /// Opaque identity epoch ([`Solver::epoch`]): a generation counter
    /// for plan hot-swapping, with no effect on execution.
    epoch: u64,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("dims", &self.dims())
            .field("method", &self.method)
            .field("tiling", &self.tiling)
            .field("width", &self.width)
            .field("threads", &self.pool.threads())
            .field("m", &self.m)
            .field("effective_radius", &self.folded.radius())
            .field("ring3", &self.ring3)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Plan {
    /// Validate `cfg` and derive the reusable artifacts (see
    /// [`Solver::compile`], the public entry point).
    pub(crate) fn compile(cfg: &Solver) -> Result<Plan, PlanError> {
        let p = &cfg.pattern;
        let dims = p.dims();
        let threads = cfg
            .pool
            .as_ref()
            .map(|h| h.threads())
            .unwrap_or(cfg.threads);

        // A user-pinned z-ring geometry is rejected *before* any tuner
        // involvement: the error must be PlanError::InvalidRing in
        // every tuning mode, never a TuningFailed after a wasted probe
        // pass over candidates that cannot compile.
        if let Some(r) = cfg.ring3 {
            validate_ring(r)?;
        }

        // Resolve Method::Auto / Tiling::Auto first. The measured modes
        // route through the installed tuner; Static (and measured modes
        // with nothing left to tune) resolve from the §3.2 cost model.
        let auto_parts = matches!(cfg.method, Method::Auto) || matches!(cfg.tiling, Tiling::Auto);
        let (method, tiling, width, tuned_ring) = if auto_parts && cfg.tuning != Tuning::Static {
            let tuner = crate::tune::installed_tuner()
                .ok_or(PlanError::TunerUnavailable { mode: cfg.tuning })?;
            let req = crate::tune::TuneRequest {
                pattern: p,
                width: cfg.width,
                threads,
                method: match cfg.method {
                    Method::Auto => None,
                    m => Some(m),
                },
                tiling: match cfg.tiling {
                    Tiling::Auto => None,
                    t => Some(t),
                },
                domain_hint: cfg.domain_hint.as_deref(),
                ring3: cfg.ring3,
                mode: cfg.tuning,
            };
            let d = tuner.tune(&req).map_err(|e| match e {
                crate::tune::TuneFailure::CacheMiss { key } => PlanError::TuneCacheMiss { key },
                crate::tune::TuneFailure::Failed { reason } => PlanError::TuningFailed { reason },
            })?;
            // A decision must be concrete; if a (buggy or foreign)
            // tuner leaks an Auto through, resolve the remnant
            // statically so no Plan ever carries Auto.
            let method = match d.method {
                Method::Auto => crate::tune::auto_method(p, d.width, d.tiling),
                m => m,
            };
            let tiling = match d.tiling {
                Tiling::Auto => crate::tune::auto_tiling(dims, method, threads),
                t => t,
            };
            // the user's pinned ring always beats the tuner's
            (method, tiling, d.width, cfg.ring3.or(d.ring3))
        } else {
            let method = match cfg.method {
                Method::Auto => crate::tune::auto_method(p, cfg.width, cfg.tiling),
                m => m,
            };
            let tiling = match cfg.tiling {
                Tiling::Auto => crate::tune::auto_tiling(dims, method, threads),
                t => t,
            };
            (method, tiling, cfg.width, cfg.ring3)
        };

        // A tuner-supplied ring (cache entries are external input) gets
        // the same validation as the user's.
        if let Some(r) = tuned_ring {
            validate_ring(r)?;
        }

        // Degenerate tiling parameters.
        match tiling {
            Tiling::Tessellate { time_block } | Tiling::Split { time_block } if time_block == 0 => {
                return Err(PlanError::InvalidTiling {
                    tiling,
                    reason: "time_block must be >= 1",
                })
            }
            Tiling::Spatial { block: (a, b) } if a == 0 || b == 0 => {
                return Err(PlanError::InvalidTiling {
                    tiling,
                    reason: "spatial block extents must be >= 1",
                })
            }
            _ => {}
        }

        // Method × tiling compatibility.
        match (method, tiling) {
            (Method::Dlt, Tiling::Tessellate { .. } | Tiling::Spatial { .. }) => {
                return Err(PlanError::IncompatibleMethodTiling { method, tiling })
            }
            (m, Tiling::Split { .. }) if m != Method::Dlt => {
                return Err(PlanError::IncompatibleMethodTiling { method, tiling })
            }
            (Method::TransposeLayout | Method::Folded { .. }, Tiling::Spatial { .. }) => {
                return Err(PlanError::IncompatibleMethodTiling { method, tiling })
            }
            _ => {}
        }

        // Dimensionality limits.
        if matches!(tiling, Tiling::Spatial { .. }) && dims == 1 {
            return Err(PlanError::UnsupportedDimension {
                feature: "spatial blocking",
                pattern_dims: 1,
            });
        }
        if method == Method::Dlt && matches!(tiling, Tiling::None) && dims != 1 {
            return Err(PlanError::UnsupportedDimension {
                feature: "block-free DLT (pair Method::Dlt with Tiling::Split for the SDSL hybrid)",
                pattern_dims: dims,
            });
        }

        // Folding bounds.
        let m = match method {
            Method::Folded { m } => m,
            _ => 1,
        };
        if m == 0 {
            return Err(PlanError::InvalidFold {
                m: 0,
                folded_radius: 0,
                max_radius: 0,
            });
        }
        let register = family(method) == Family::Register;
        let cap = fold_radius_cap(dims, width);
        if register && m * p.radius() > cap {
            return Err(PlanError::InvalidFold {
                m,
                folded_radius: m * p.radius(),
                max_radius: cap,
            });
        }

        // Derive the reusable artifacts once.
        let folded = if m > 1 { fold(p, m) } else { p.clone() };
        let tiled = matches!(tiling, Tiling::Tessellate { .. });
        let (kernel, tail_kernel) = if register && dims >= 2 {
            let fold_plan = FoldPlan::new(p, m);
            if fold_plan.fresh.len() > folded::MAX_F {
                // The counterpart schedule overflows the register budget:
                // the fold is unexecutable even though the radius fits.
                return Err(PlanError::FoldPlanTooComplex {
                    m,
                    counterparts: fold_plan.fresh.len(),
                    max: folded::MAX_F,
                });
            }
            let kernel = FoldedKernel::from_plan(fold_plan);
            let tail = if tiled && m > 1 {
                Some(FoldedKernel::new(p, 1))
            } else {
                None
            };
            (Some(kernel), tail)
        } else {
            (None, None)
        };

        let ring3 = if register && dims == 3 {
            Some(tuned_ring.unwrap_or_else(|| Ring3::auto(width.lanes(), m * p.radius())))
        } else {
            None
        };

        let pool = cfg
            .pool
            .clone()
            .unwrap_or_else(|| PoolHandle::new(cfg.threads));
        Ok(Plan {
            pattern: p.clone(),
            method,
            tiling,
            width,
            pool,
            m,
            folded,
            kernel,
            tail_kernel,
            ring3,
            epoch: cfg.epoch,
        })
    }

    /// The pattern this plan was compiled for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The resolved vectorization method (never [`Method::Auto`]).
    pub fn method(&self) -> Method {
        self.method
    }

    /// The tiling scheme.
    pub fn tiling(&self) -> Tiling {
        self.tiling
    }

    /// The resolved vector width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The shared worker pool (clone the handle to reuse it elsewhere).
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// Fold factor `m` (1 unless the method is `Folded { m > 1 }`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Resolved z-ring pipeline geometry — `Some` exactly for 3D
    /// register plans (transpose-layout / folded), `None` otherwise.
    /// Never `Some(invalid)`: compile validates pinned geometries.
    pub fn ring3(&self) -> Option<Ring3> {
        self.ring3
    }

    /// Identity epoch this plan was compiled with ([`Solver::epoch`]).
    /// Purely an identity tag for hot-swap bookkeeping — two plans that
    /// differ only in epoch execute identically, bit for bit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Spatial dimensionality of the compiled pattern.
    pub fn dims(&self) -> usize {
        self.pattern.dims()
    }

    /// The precomputed folded pattern Λ (`== pattern()` when `m == 1`).
    /// The same allocation is reused by every run.
    pub fn folded(&self) -> &Pattern {
        &self.folded
    }

    /// Effective radius of one (possibly folded) inner step.
    pub fn effective_radius(&self) -> usize {
        self.folded.radius()
    }

    /// Run `t` time steps on any supported domain ([`Grid1D`],
    /// [`Grid2D`], [`Grid3D`]); dimension-generic front end of
    /// `run_1d`/`run_2d`/`run_3d`.
    ///
    /// Errors: [`PlanError::DimensionMismatch`] when the domain's
    /// dimensionality differs from the pattern's, and
    /// [`PlanError::MisalignedDomain`] when a DLT-layout plan is given a
    /// grid whose innermost extent is not a lane multiple.
    pub fn run<D: Domain>(&self, domain: &D, t: usize) -> Result<D, PlanError> {
        if self.dims() != D::DIMS {
            return Err(PlanError::DimensionMismatch {
                pattern_dims: self.dims(),
                domain_dims: D::DIMS,
            });
        }
        // The DLT layout (block-free 1D and the SDSL split-tiling hybrid)
        // lifts the innermost dimension into lanes; ragged extents are a
        // typed run error, not an executor assert.
        if self.method == Method::Dlt {
            let lanes = self.width.lanes();
            let extent = domain.x_extent();
            if !extent.is_multiple_of(lanes) {
                return Err(PlanError::MisalignedDomain { extent, lanes });
            }
            // the lifted row (extent / lanes points) must cover the
            // stencil radius
            if extent / lanes < self.pattern.radius() {
                return Err(PlanError::DomainTooSmall {
                    extent,
                    min: self.pattern.radius() * lanes,
                });
            }
        }
        Ok(D::run_with(self, domain, t))
    }

    /// Run `t` time steps on a 1D grid.
    pub fn run_1d(&self, grid: &Grid1D, t: usize) -> Result<Grid1D, PlanError> {
        self.run(grid, t)
    }

    /// Run `t` time steps on a 2D grid.
    pub fn run_2d(&self, grid: &Grid2D, t: usize) -> Result<Grid2D, PlanError> {
        self.run(grid, t)
    }

    /// Run `t` time steps on a 3D grid.
    pub fn run_3d(&self, grid: &Grid3D, t: usize) -> Result<Grid3D, PlanError> {
        self.run(grid, t)
    }

    /// [`Plan::run_2d`] over a local window of a larger domain whose
    /// outer (y) axis starts at global coordinate `origin_y`: tessellate
    /// tile phase is derived from global coordinates, so windows of one
    /// domain agree on every tile they share — the contract bit-exact
    /// domain sharding (the serving layer) relies on. For non-tessellate
    /// tilings the origin changes nothing.
    pub fn run_2d_at(&self, grid: &Grid2D, t: usize, origin_y: usize) -> Result<Grid2D, PlanError> {
        if self.dims() != 2 {
            return Err(PlanError::DimensionMismatch {
                pattern_dims: self.dims(),
                domain_dims: 2,
            });
        }
        Ok(match self.width {
            Width::W1 => self.exec_2d::<f64>(grid, t, origin_y),
            Width::W4 => self.exec_2d::<NativeF64x4>(grid, t, origin_y),
            Width::W8 => self.exec_2d::<NativeF64x8>(grid, t, origin_y),
        })
    }

    /// [`Plan::run_3d`] over a local window whose outer (z) axis starts
    /// at global coordinate `origin_z` (see [`Plan::run_2d_at`]).
    pub fn run_3d_at(&self, grid: &Grid3D, t: usize, origin_z: usize) -> Result<Grid3D, PlanError> {
        if self.dims() != 3 {
            return Err(PlanError::DimensionMismatch {
                pattern_dims: self.dims(),
                domain_dims: 3,
            });
        }
        Ok(match self.width {
            Width::W1 => self.exec_3d::<f64>(grid, t, origin_z),
            Width::W4 => self.exec_3d::<NativeF64x4>(grid, t, origin_z),
            Width::W8 => self.exec_3d::<NativeF64x8>(grid, t, origin_z),
        })
    }

    // -----------------------------------------------------------------
    // Execution (compile() has already excluded every invalid branch; the
    // remaining matches are total without a single panic).
    // -----------------------------------------------------------------

    fn exec_1d<V: SimdF64>(&self, grid: &Grid1D, t: usize) -> Grid1D {
        let p = &self.pattern;
        match self.tiling {
            Tiling::None => match self.method {
                Method::Scalar => {
                    let mut pp = PingPong::new(grid.clone());
                    scalar::sweep_1d(&mut pp, p, t);
                    pp.into_current()
                }
                Method::DataReorg => {
                    let mut pp = PingPong::new(grid.clone());
                    reorg::sweep_1d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
                Method::Dlt => dlt::sweep_1d::<V>(grid, p, t),
                Method::TransposeLayout => xlayout::sweep_1d::<V>(grid, p, t),
                Method::Folded { .. } => {
                    xlayout::sweep_folded_1d_with::<V>(grid, p.weights(), &self.folded, self.m, t)
                }
                // MultipleLoads; Auto is resolved at compile time.
                _ => {
                    let mut pp = PingPong::new(grid.clone());
                    multiload::sweep_1d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
            },
            Tiling::Tessellate { time_block } => {
                let reff = self.folded.radius();
                let tw = self.folded.weights();
                let mut pp = PingPong::new(grid.clone());
                let pool = &self.pool;
                match family(self.method) {
                    Family::Scalar => tessellate::run_1d(
                        pool,
                        &mut pp,
                        reff,
                        reff,
                        time_block,
                        t / self.m,
                        &|s: &[f64], d: &mut [f64], lo, hi| scalar::step_range_1d(s, d, tw, lo, hi),
                    ),
                    Family::Vector => tessellate::run_1d(
                        pool,
                        &mut pp,
                        reff,
                        reff,
                        time_block,
                        t / self.m,
                        &|s: &[f64], d: &mut [f64], lo, hi| {
                            multiload::step_range_1d::<V>(s, d, tw, lo, hi)
                        },
                    ),
                    Family::Register => tessellate::run_1d(
                        pool,
                        &mut pp,
                        reff,
                        reff,
                        time_block,
                        t / self.m,
                        &|s: &[f64], d: &mut [f64], lo, hi| {
                            folded::step_squares_range_1d::<V>(s, d, tw, lo, hi)
                        },
                    ),
                }
                // Leftover unfolded steps (t % m): the same tessellated
                // range-step kernel as the body, with the base taps —
                // threaded, with the same frozen-boundary discipline.
                let tail = t % self.m;
                if tail > 0 {
                    let bw = p.weights();
                    let r = p.radius();
                    tessellate::run_1d(
                        pool,
                        &mut pp,
                        r,
                        r,
                        time_block,
                        tail,
                        &|s: &[f64], d: &mut [f64], lo, hi| {
                            folded::step_squares_range_1d::<V>(s, d, bw, lo, hi)
                        },
                    );
                }
                pp.into_current()
            }
            Tiling::Split { time_block } => {
                split::sweep_1d::<V>(&self.pool, grid, p, time_block, t)
            }
            // Spatial blocking is rejected for 1D at compile time and
            // Tiling::Auto is resolved there; this defensive fallback
            // keeps the match total without a panic in release builds,
            // and flags validation drift in debug ones.
            Tiling::Spatial { .. } | Tiling::Auto => {
                debug_assert!(false, "unresolved/invalid 1D tiling must not reach exec");
                let mut pp = PingPong::new(grid.clone());
                scalar::sweep_1d(&mut pp, p, t);
                pp.into_current()
            }
        }
    }

    fn exec_2d<V: SimdF64>(&self, grid: &Grid2D, t: usize, origin_y: usize) -> Grid2D {
        let p = &self.pattern;
        match self.tiling {
            Tiling::None => match (self.method, &self.kernel) {
                (Method::Scalar, _) => {
                    let mut pp = PingPong::new(grid.clone());
                    scalar::sweep_2d(&mut pp, p, t);
                    pp.into_current()
                }
                (Method::TransposeLayout | Method::Folded { .. }, Some(k)) => {
                    folded::sweep_2d_with::<V>(k, grid, p, t)
                }
                // MultipleLoads / DataReorg (and the defensive rest; the
                // register methods always carry a kernel after compile()).
                (method, kernel) => {
                    debug_assert!(
                        !matches!(method, Method::TransposeLayout | Method::Folded { .. })
                            || kernel.is_some(),
                        "register plan compiled without its kernel"
                    );
                    let mut pp = PingPong::new(grid.clone());
                    multiload::sweep_2d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
            },
            Tiling::Tessellate { time_block } => {
                let mut pp = PingPong::new(grid.clone());
                let pool = &self.pool;
                match (family(self.method), &self.kernel) {
                    (Family::Register, Some(k)) => {
                        let reff = k.radius();
                        tessellate::run_2d_at(
                            pool,
                            &mut pp,
                            reff,
                            reff,
                            time_block,
                            t / self.m,
                            origin_y,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                folded::step_range_2d::<V>(k, s, d, ys, xs)
                            },
                        );
                    }
                    (Family::Scalar, _) => {
                        let r = p.radius();
                        tessellate::run_2d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            t,
                            origin_y,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                scalar::step_range_2d(s, d, p, ys, xs)
                            },
                        );
                    }
                    (fam, kernel) => {
                        debug_assert!(
                            fam != Family::Register || kernel.is_some(),
                            "register plan compiled without its kernel"
                        );
                        let r = p.radius();
                        tessellate::run_2d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            t,
                            origin_y,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                multiload::step_range_2d::<V>(s, d, p, ys, xs)
                            },
                        );
                    }
                }
                // Leftover unfolded steps through the same tessellated
                // register kernel (single-step plan, precompiled). The
                // vector-kernel fallback keeps the result correct even if
                // a future compile() change forgets the tail kernel.
                let tail = t % self.m;
                if tail > 0 {
                    if let Some(tk) = &self.tail_kernel {
                        let r = tk.radius();
                        tessellate::run_2d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            tail,
                            origin_y,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                folded::step_range_2d::<V>(tk, s, d, ys, xs)
                            },
                        );
                    } else {
                        debug_assert!(false, "tessellate tail executed without its kernel");
                        let r = p.radius();
                        tessellate::run_2d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            tail,
                            origin_y,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                multiload::step_range_2d::<V>(s, d, p, ys, xs)
                            },
                        );
                    }
                }
                pp.into_current()
            }
            Tiling::Split { time_block } => {
                split::sweep_2d::<V>(&self.pool, grid, p, time_block, t)
            }
            // compile() resolves Auto; keep the match total (see exec_1d)
            Tiling::Auto => {
                debug_assert!(false, "Tiling::Auto must be resolved by compile()");
                let mut pp = PingPong::new(grid.clone());
                scalar::sweep_2d(&mut pp, p, t);
                pp.into_current()
            }
            Tiling::Spatial { block } => {
                let mut pp = PingPong::new(grid.clone());
                let r = p.radius();
                match family(self.method) {
                    Family::Scalar => spatial::run_2d(
                        &self.pool,
                        &mut pp,
                        r,
                        block,
                        t,
                        &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                            scalar::step_range_2d(s, d, p, ys, xs)
                        },
                    ),
                    _ => spatial::run_2d(
                        &self.pool,
                        &mut pp,
                        r,
                        block,
                        t,
                        &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                            multiload::step_range_2d::<V>(s, d, p, ys, xs)
                        },
                    ),
                }
                pp.into_current()
            }
        }
    }

    fn exec_3d<V: SimdF64>(&self, grid: &Grid3D, t: usize, origin_z: usize) -> Grid3D {
        let p = &self.pattern;
        // 3D register plans always resolve a ring at compile time; the
        // defensive default only covers direct construction drift.
        let ring = self.ring3.unwrap_or_default();
        match self.tiling {
            Tiling::None => match (self.method, &self.kernel) {
                (Method::Scalar, _) => {
                    let mut pp = PingPong::new(grid.clone());
                    scalar::sweep_3d(&mut pp, p, t);
                    pp.into_current()
                }
                (Method::TransposeLayout | Method::Folded { .. }, Some(k)) => {
                    let _span = stencil_obs::span(stencil_obs::SpanId::RingSweep);
                    folded3d::sweep_3d_ring_with::<V>(k, ring, grid, p, t)
                }
                (method, kernel) => {
                    debug_assert!(
                        !matches!(method, Method::TransposeLayout | Method::Folded { .. })
                            || kernel.is_some(),
                        "register plan compiled without its kernel"
                    );
                    let mut pp = PingPong::new(grid.clone());
                    multiload::sweep_3d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
            },
            Tiling::Tessellate { time_block } => {
                let mut pp = PingPong::new(grid.clone());
                let pool = &self.pool;
                match (family(self.method), &self.kernel) {
                    (Family::Register, Some(k)) => {
                        let _span = stencil_obs::span(stencil_obs::SpanId::RingSweep);
                        let reff = k.radius();
                        tessellate::run_3d_at(
                            pool,
                            &mut pp,
                            reff,
                            reff,
                            time_block,
                            t / self.m,
                            origin_z,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                folded3d::step_range_3d_ring::<V>(k, ring, s, d, zs, ys, xs)
                            },
                        );
                    }
                    (Family::Scalar, _) => {
                        let r = p.radius();
                        tessellate::run_3d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            t,
                            origin_z,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                scalar::step_range_3d(s, d, p, zs, ys, xs)
                            },
                        );
                    }
                    (fam, kernel) => {
                        debug_assert!(
                            fam != Family::Register || kernel.is_some(),
                            "register plan compiled without its kernel"
                        );
                        let r = p.radius();
                        tessellate::run_3d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            t,
                            origin_z,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                multiload::step_range_3d::<V>(s, d, p, zs, ys, xs)
                            },
                        );
                    }
                }
                // Same tail discipline as 2D, with the same correct
                // vector-kernel fallback.
                let tail = t % self.m;
                if tail > 0 {
                    if let Some(tk) = &self.tail_kernel {
                        let _span = stencil_obs::span(stencil_obs::SpanId::RingSweep);
                        let r = tk.radius();
                        tessellate::run_3d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            tail,
                            origin_z,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                folded3d::step_range_3d_ring::<V>(tk, ring, s, d, zs, ys, xs)
                            },
                        );
                    } else {
                        debug_assert!(false, "tessellate tail executed without its kernel");
                        let r = p.radius();
                        tessellate::run_3d_at(
                            pool,
                            &mut pp,
                            r,
                            r,
                            time_block,
                            tail,
                            origin_z,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                multiload::step_range_3d::<V>(s, d, p, zs, ys, xs)
                            },
                        );
                    }
                }
                pp.into_current()
            }
            Tiling::Split { time_block } => {
                split::sweep_3d::<V>(&self.pool, grid, p, time_block, t)
            }
            // compile() resolves Auto; keep the match total (see exec_1d)
            Tiling::Auto => {
                debug_assert!(false, "Tiling::Auto must be resolved by compile()");
                let mut pp = PingPong::new(grid.clone());
                scalar::sweep_3d(&mut pp, p, t);
                pp.into_current()
            }
            Tiling::Spatial { block } => {
                let mut pp = PingPong::new(grid.clone());
                let r = p.radius();
                match family(self.method) {
                    Family::Scalar => spatial::run_3d(
                        &self.pool,
                        &mut pp,
                        r,
                        block,
                        t,
                        &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                            scalar::step_range_3d(s, d, p, zs, ys, xs)
                        },
                    ),
                    _ => spatial::run_3d(
                        &self.pool,
                        &mut pp,
                        r,
                        block,
                        t,
                        &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                            multiload::step_range_3d::<V>(s, d, p, zs, ys, xs)
                        },
                    ),
                }
                pp.into_current()
            }
        }
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for stencil_grid::Grid1D {}
    impl Sealed for stencil_grid::Grid2D {}
    impl Sealed for stencil_grid::Grid3D {}
}

/// A grid type a [`Plan`] can run on — implemented by [`Grid1D`],
/// [`Grid2D`] and [`Grid3D`] (sealed). Enables dimension-generic code:
///
/// ```
/// use stencil_core::{kernels, Domain, Plan, Solver};
/// use stencil_grid::Grid2D;
///
/// fn advance<D: Domain>(plan: &Plan, state: &D, t: usize) -> D {
///     plan.run(state, t).expect("dimensionality checked by caller")
/// }
///
/// let plan = Solver::new(kernels::heat2d()).compile().unwrap();
/// let g = Grid2D::from_fn(32, 32, |y, x| (y + x) as f64);
/// let out = advance(&plan, &g, 3);
/// assert_eq!(out.to_dense().len(), 32 * 32);
/// ```
pub trait Domain: Clone + sealed::Sealed {
    /// Spatial dimensionality of this domain type.
    const DIMS: usize;

    /// Innermost (x) extent — used by [`Plan::run`] to validate
    /// DLT-layout alignment.
    #[doc(hidden)]
    fn x_extent(&self) -> usize;

    /// Dispatch a validated plan run (called by [`Plan::run`] after the
    /// dimensionality check).
    #[doc(hidden)]
    fn run_with(plan: &Plan, domain: &Self, t: usize) -> Self;
}

impl Domain for Grid1D {
    const DIMS: usize = 1;

    fn x_extent(&self) -> usize {
        self.len()
    }

    fn run_with(plan: &Plan, domain: &Self, t: usize) -> Self {
        match plan.width {
            Width::W1 => plan.exec_1d::<f64>(domain, t),
            Width::W4 => plan.exec_1d::<NativeF64x4>(domain, t),
            Width::W8 => plan.exec_1d::<NativeF64x8>(domain, t),
        }
    }
}

impl Domain for Grid2D {
    const DIMS: usize = 2;

    fn x_extent(&self) -> usize {
        self.nx()
    }

    fn run_with(plan: &Plan, domain: &Self, t: usize) -> Self {
        match plan.width {
            Width::W1 => plan.exec_2d::<f64>(domain, t, 0),
            Width::W4 => plan.exec_2d::<NativeF64x4>(domain, t, 0),
            Width::W8 => plan.exec_2d::<NativeF64x8>(domain, t, 0),
        }
    }
}

impl Domain for Grid3D {
    const DIMS: usize = 3;

    fn x_extent(&self) -> usize {
        self.nx()
    }

    fn run_with(plan: &Plan, domain: &Self, t: usize) -> Self {
        match plan.width {
            Width::W1 => plan.exec_3d::<f64>(domain, t, 0),
            Width::W4 => plan.exec_3d::<NativeF64x4>(domain, t, 0),
            Width::W8 => plan.exec_3d::<NativeF64x8>(domain, t, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use stencil_grid::max_abs_diff;

    fn ref_1d(p: &Pattern, g: &Grid1D, t: usize) -> Grid1D {
        Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_1d(g, t)
            .unwrap()
    }

    #[test]
    fn all_1d_methods_agree_block_free() {
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(256, |i| ((i * 7) % 13) as f64);
        let t = 6;
        let want = ref_1d(&p, &g, t);
        for m in [
            Method::MultipleLoads,
            Method::DataReorg,
            Method::Dlt,
            Method::TransposeLayout,
        ] {
            let plan = Solver::new(p.clone()).method(m).compile().unwrap();
            let got = plan.run_1d(&g, t).unwrap();
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12,
                "{m:?}"
            );
        }
    }

    #[test]
    fn tessellated_methods_agree_1d() {
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(300, |i| (i as f64 * 0.1).sin());
        let t = 12;
        let want = ref_1d(&p, &g, t);
        for (m, threads) in [
            (Method::MultipleLoads, 1),
            (Method::TransposeLayout, 4),
            (Method::Scalar, 3),
        ] {
            let plan = Solver::new(p.clone())
                .method(m)
                .tiling(Tiling::Tessellate { time_block: 4 })
                .threads(threads)
                .compile()
                .unwrap();
            let got = plan.run_1d(&g, t).unwrap();
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12,
                "{m:?}"
            );
        }
    }

    #[test]
    fn sdsl_configuration_1d() {
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(256, |i| (i % 11) as f64);
        let t = 8;
        let want = ref_1d(&p, &g, t);
        let got = Solver::new(p)
            .method(Method::Dlt)
            .tiling(Tiling::Split { time_block: 4 })
            .threads(4)
            .compile()
            .unwrap()
            .run_1d(&g, t)
            .unwrap();
        assert!(max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12);
    }

    #[test]
    fn folded_tessellated_2d_matches_folded_reference() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(40, 44, |y, x| ((y * 3 + x) % 17) as f64);
        // reference: block-free folded (same m) — identical semantics
        let want = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .compile()
            .unwrap()
            .run_2d(&g, 8)
            .unwrap();
        let got = Solver::new(p)
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 2 })
            .threads(4)
            .compile()
            .unwrap()
            .run_2d(&g, 8)
            .unwrap();
        assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10);
    }

    #[test]
    fn widths_agree_2d() {
        let p = kernels::heat2d();
        let g = Grid2D::from_fn(30, 34, |y, x| ((y * 13 + x * 5) % 19) as f64);
        let run = |w: Width| {
            Solver::new(p.clone())
                .method(Method::Folded { m: 2 })
                .width(w)
                .compile()
                .unwrap()
                .run_2d(&g, 4)
                .unwrap()
        };
        let (a, b, c) = (run(Width::W4), run(Width::W8), run(Width::W1));
        assert!(max_abs_diff(&a.to_dense(), &b.to_dense()) < 1e-10);
        assert!(max_abs_diff(&a.to_dense(), &c.to_dense()) < 1e-10);
    }

    #[test]
    fn three_d_paths_agree() {
        let p = kernels::heat3d();
        let g = Grid3D::from_fn(14, 14, 18, |z, y, x| ((z + y + x) % 5) as f64);
        let t = 4;
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_3d(&g, t)
            .unwrap();
        let ml = Solver::new(p.clone())
            .method(Method::MultipleLoads)
            .compile()
            .unwrap()
            .run_3d(&g, t)
            .unwrap();
        assert!(max_abs_diff(&want.to_dense(), &ml.to_dense()) < 1e-12);
        let tess = Solver::new(p)
            .method(Method::MultipleLoads)
            .tiling(Tiling::Tessellate { time_block: 2 })
            .threads(4)
            .compile()
            .unwrap()
            .run_3d(&g, t)
            .unwrap();
        assert!(max_abs_diff(&want.to_dense(), &tess.to_dense()) < 1e-12);
    }

    #[test]
    fn spatial_blocking_2d() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(33, 37, |y, x| ((y + 2 * x) % 9) as f64);
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_2d(&g, 5)
            .unwrap();
        let got = Solver::new(p)
            .tiling(Tiling::Spatial { block: (8, 8) })
            .threads(3)
            .compile()
            .unwrap()
            .run_2d(&g, 5)
            .unwrap();
        assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-12);
    }

    #[test]
    fn deprecated_one_shot_wrappers_still_work() {
        // the migration shim: one-shot style compiles-per-call
        #![allow(deprecated)]
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(128, |i| (i % 7) as f64);
        let want = ref_1d(&p, &g, 4);
        #[allow(deprecated)]
        let got = Solver::new(p).method(Method::MultipleLoads).run_1d(&g, 4);
        assert!(max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12);
    }

    #[test]
    fn auto_resolves_to_a_concrete_method() {
        let plan = Solver::new(kernels::heat1d())
            .method(Method::Auto)
            .compile()
            .unwrap();
        assert_ne!(plan.method(), Method::Auto);
        let g = Grid1D::from_fn(256, |i| ((i * 7) % 13) as f64);
        let want = ref_1d(&kernels::heat1d(), &g, 6);
        let got = plan.run_1d(&g, 6).unwrap();
        // auto may pick a folded method whose Dirichlet band is wider;
        // compare away from the boundary
        let band = 2 * 6;
        assert!(
            max_abs_diff(
                &want.as_slice()[band..256 - band],
                &got.as_slice()[band..256 - band]
            ) < 1e-12
        );
    }
}
