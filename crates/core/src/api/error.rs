//! Typed validation errors for [`Solver::compile`](super::Solver::compile).

use super::config::{Method, Ring3, Tiling, Tuning};
use std::fmt;

/// Why a [`Solver`](super::Solver) configuration cannot be compiled into
/// a [`Plan`](super::Plan), or why a plan cannot run on a given domain.
///
/// Every invalid method × tiling × dimension combination that used to
/// `panic!` deep inside the execution match now surfaces here, at
/// compile time, before any grid is touched.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The vectorization method and the tiling scheme do not compose
    /// (e.g. DLT pairs with split tiling — the SDSL configuration — and
    /// with nothing else; split tiling accepts only DLT).
    IncompatibleMethodTiling {
        /// The configured method.
        method: Method,
        /// The configured tiling.
        tiling: Tiling,
    },
    /// The pattern's dimensionality does not match the domain the plan
    /// was asked to run on (e.g. a 2D pattern driven through
    /// [`Plan::run_1d`](super::Plan::run_1d)).
    DimensionMismatch {
        /// Dimensionality the plan was compiled for.
        pattern_dims: usize,
        /// Dimensionality of the requested run.
        domain_dims: usize,
    },
    /// Temporal folding is impossible at this configuration: `m == 0`,
    /// or the folded radius `m * r` exceeds what the register pipeline
    /// supports at the resolved width/dimensionality.
    InvalidFold {
        /// Requested unrolling factor.
        m: usize,
        /// Folded radius `m * r` (0 when `m == 0`).
        folded_radius: usize,
        /// Largest folded radius the executor supports here.
        max_radius: usize,
    },
    /// The feature exists but not at this dimensionality (e.g. spatial
    /// blocking is 2D/3D-only; block-free DLT is 1D-only).
    UnsupportedDimension {
        /// Human-readable feature name.
        feature: &'static str,
        /// The pattern's dimensionality.
        pattern_dims: usize,
    },
    /// The pinned z-ring pipeline geometry ([`super::Solver::ring3`])
    /// is degenerate or outside the supported bounds.
    InvalidRing {
        /// The offending geometry.
        ring: Ring3,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A tiling parameter is degenerate (zero time block, zero-sized
    /// spatial block, ...).
    InvalidTiling {
        /// The offending tiling.
        tiling: Tiling,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The domain's innermost extent is not divisible by the vector
    /// lane count, which the dimension-lifted-transpose layout (DLT /
    /// SDSL) requires. Reported by the `run` methods, since the grid is
    /// only known at run time.
    MisalignedDomain {
        /// Innermost (x) extent of the grid.
        extent: usize,
        /// Vector lanes the plan was compiled for.
        lanes: usize,
    },
    /// The domain's innermost extent is too small for the plan: the
    /// DLT-lifted row must cover the stencil radius. Reported by the
    /// `run` methods.
    DomainTooSmall {
        /// Innermost (x) extent of the grid.
        extent: usize,
        /// Minimum extent this plan can run on.
        min: usize,
    },
    /// The fold's counterpart schedule needs more fresh counterparts
    /// than the register pipeline's budget allows, even though the
    /// folded radius itself fits.
    FoldPlanTooComplex {
        /// Requested unrolling factor.
        m: usize,
        /// Fresh counterparts the plan requires.
        counterparts: usize,
        /// Register budget.
        max: usize,
    },
    /// A measured [`Tuning`] mode was requested, the configuration
    /// leaves something to tune ([`Method::Auto`] or
    /// [`super::Tiling::Auto`]), but no
    /// [`crate::tune::MeasuredTuner`] is installed. Install one
    /// (`stencil_tune::install()`) or use [`Tuning::Static`].
    TunerUnavailable {
        /// The tuning mode that needed a tuner.
        mode: Tuning,
    },
    /// [`Tuning::CacheOnly`] found no persisted measurement for this
    /// host × configuration; warm the cache first with
    /// [`Tuning::Measured`] (or `stencil-bench tune`).
    TuneCacheMiss {
        /// The per-host cache key that missed.
        key: String,
    },
    /// The measured tuner ran but could not produce a decision (e.g.
    /// every candidate configuration failed to compile, or the probe
    /// harness rejected the pattern).
    TuningFailed {
        /// Human-readable cause, from the tuner.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::IncompatibleMethodTiling { method, tiling } => {
                write!(
                    f,
                    "method {method:?} does not compose with tiling {tiling:?}"
                )?;
                match (method, tiling) {
                    (Method::Dlt, _) => write!(
                        f,
                        " (DLT pairs with Tiling::Split — the SDSL configuration)"
                    ),
                    (_, Tiling::Split { .. }) => {
                        write!(
                            f,
                            " (Tiling::Split is the SDSL configuration; use Method::Dlt)"
                        )
                    }
                    _ => Ok(()),
                }
            }
            PlanError::DimensionMismatch {
                pattern_dims,
                domain_dims,
            } => write!(
                f,
                "plan compiled for a {pattern_dims}D pattern cannot run on a {domain_dims}D domain"
            ),
            PlanError::InvalidFold {
                m,
                folded_radius,
                max_radius,
            } => {
                if *m == 0 {
                    write!(f, "folding factor m must be >= 1")
                } else {
                    write!(
                        f,
                        "folded radius {folded_radius} (m = {m}) exceeds the supported maximum \
                         {max_radius} at this width/dimensionality"
                    )
                }
            }
            PlanError::UnsupportedDimension {
                feature,
                pattern_dims,
            } => write!(f, "{feature} is not available for {pattern_dims}D patterns"),
            PlanError::InvalidRing { ring, reason } => {
                write!(f, "invalid z-ring geometry {ring:?}: {reason}")
            }
            PlanError::InvalidTiling { tiling, reason } => {
                write!(f, "invalid tiling {tiling:?}: {reason}")
            }
            PlanError::MisalignedDomain { extent, lanes } => write!(
                f,
                "the DLT layout requires the innermost grid extent ({extent}) to be divisible \
                 by the vector lane count ({lanes})"
            ),
            PlanError::DomainTooSmall { extent, min } => write!(
                f,
                "innermost grid extent {extent} is too small for this plan: the DLT-lifted row \
                 must cover the stencil radius (need at least {min} points)"
            ),
            PlanError::FoldPlanTooComplex {
                m,
                counterparts,
                max,
            } => write!(
                f,
                "the m = {m} fold needs {counterparts} fresh counterparts, exceeding the \
                 register pipeline's budget of {max}"
            ),
            PlanError::TunerUnavailable { mode } => write!(
                f,
                "{mode:?} tuning was requested but no measured tuner is installed; call \
                 stencil_tune::install() first, or compile with Tuning::Static"
            ),
            PlanError::TuneCacheMiss { key } => write!(
                f,
                "Tuning::CacheOnly found no persisted measurement for {key:?}; warm the \
                 per-host cache with Tuning::Measured or `stencil-bench tune`"
            ),
            PlanError::TuningFailed { reason } => {
                write!(f, "measured tuning failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_sdsl_pairing() {
        let e = PlanError::IncompatibleMethodTiling {
            method: Method::Dlt,
            tiling: Tiling::Tessellate { time_block: 4 },
        };
        let s = e.to_string();
        assert!(s.contains("Dlt") && s.contains("SDSL"), "{s}");
        let e = PlanError::IncompatibleMethodTiling {
            method: Method::Scalar,
            tiling: Tiling::Split { time_block: 4 },
        };
        assert!(e.to_string().contains("Method::Dlt"));
    }

    #[test]
    fn display_zero_fold() {
        let e = PlanError::InvalidFold {
            m: 0,
            folded_radius: 0,
            max_radius: 0,
        };
        assert!(e.to_string().contains("m must be >= 1"));
    }

    #[test]
    fn display_invalid_ring() {
        let e = PlanError::InvalidRing {
            ring: Ring3 { depth: 0, slab: 4 },
            reason: "depth must be >= 1",
        };
        let s = e.to_string();
        assert!(
            s.contains("z-ring") && s.contains("depth must be >= 1"),
            "{s}"
        );
    }

    #[test]
    fn display_tuning_failures() {
        let e = PlanError::TunerUnavailable {
            mode: Tuning::Measured,
        };
        assert!(e.to_string().contains("Tuning::Static"), "{e}");
        let e = PlanError::TuneCacheMiss {
            key: "host|avx2|k".into(),
        };
        assert!(e.to_string().contains("host|avx2|k"), "{e}");
        let e = PlanError::TuningFailed {
            reason: "no candidate compiled".into(),
        };
        assert!(e.to_string().contains("no candidate compiled"), "{e}");
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(PlanError::DimensionMismatch {
            pattern_dims: 2,
            domain_dims: 1,
        });
        assert!(e.to_string().contains("2D"));
    }
}
