//! DLT executor: global dimension-lifted transpose (Henretty et al.),
//! the paper's strongest vectorization baseline in small working sets.
//!
//! The array of length `n = vl * cols` is viewed as a `vl x cols` matrix
//! and globally transposed into a separate buffer (`dlt[p*vl + l] =
//! orig[l*cols + p]`). Original-space neighbours `x +- k` then live in the
//! *adjacent DLT vectors* `p +- k` at the same lane, so the steady-state
//! sweep runs on aligned full-vector loads with **zero shuffles**. The
//! price — which the paper's transpose layout avoids — is the two global
//! transpose passes and the loss of spatial locality (elements of one
//! vector sit `cols` apart in original space).
//!
//! Seam columns (`p` within `r` of 0 or `cols`) need values from the
//! neighbouring lane: `orig[l*cols - k]` is lane `l-1` of DLT vector
//! `cols - k`. The private `vec_at` helper builds those wrapped vectors with a single lane
//! shift; the out-of-domain lanes they carry are restored by the
//! Dirichlet fix-up, mirroring how DLT codes patch their boundaries.

// Indexed tap/window loops keep the offset arithmetic explicit and unrolled.
#![allow(clippy::needless_range_loop)]

use crate::pattern::Pattern;
use stencil_grid::layout::DltLayout;
use stencil_grid::{AlignedBuf, Grid1D, PingPong};
use stencil_simd::SimdF64;

/// Vector of DLT column `q`, for `q` in `[-cols, 2*cols)`: in-range
/// columns are aligned loads; wrapped columns shift lanes by one (the
/// seam property of the lifted view). Out-of-domain lanes are zero.
#[inline(always)]
fn vec_at<V: SimdF64>(dlt: &[f64], cols: usize, q: isize) -> V {
    let vl = V::LANES as isize;
    let c = cols as isize;
    if q >= 0 && q < c {
        // SAFETY: q*vl + vl <= cols*vl = len
        unsafe { V::load(dlt.as_ptr().add((q as usize) * V::LANES)) }
    } else if q < 0 {
        // lane l = orig[l*cols + q] = lane l-1 of column q + cols
        debug_assert!(q + c >= 0);
        let base = unsafe { V::load(dlt.as_ptr().add(((q + c) as usize) * vl as usize)) };
        base.shift_in_left(V::zero())
    } else {
        // lane l = lane l+1 of column q - cols
        debug_assert!(q - c < c);
        let base = unsafe { V::load(dlt.as_ptr().add(((q - c) as usize) * vl as usize)) };
        base.shift_in_right(V::zero())
    }
}

/// One Jacobi step over DLT columns `p_lo..p_hi` (ring positions:
/// `p_hi` may exceed `cols`, positions wrap modulo `cols`). After
/// computing each column, original-domain Dirichlet cells (orig `[0,r)`
/// in lane 0, orig `[n-r, n)` in the last lane) are restored from `src`.
pub fn step_dlt_range<V: SimdF64>(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    cols: usize,
    p_lo: usize,
    p_hi: usize,
) {
    crate::exec::dispatch_taps!(
        step_dlt_range_t,
        V,
        taps,
        (src, dst, taps, cols, p_lo, p_hi)
    );
}

fn step_dlt_range_t<V: SimdF64, const T: usize>(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    cols: usize,
    p_lo: usize,
    p_hi: usize,
) {
    let nt = crate::exec::tap_count::<T>(taps);
    let vl = V::LANES;
    let r = nt / 2;
    debug_assert_eq!(src.len(), cols * vl);
    debug_assert!(p_hi - p_lo <= cols);
    let mut tapv = [V::zero(); 17];
    for k in 0..nt {
        tapv[k] = V::splat(taps[k]);
    }
    for q in p_lo..p_hi {
        let p = q % cols;
        let mut acc = V::zero();
        if p >= r && p + r < cols {
            // interior: pure aligned loads, no shuffles — DLT's selling
            // point; keep this path branch-free.
            for k in 0..nt {
                // SAFETY: (p+k-r+1)*vl <= cols*vl
                let v = unsafe { V::load(src.as_ptr().add((p + k - r) * vl)) };
                acc = v.mul_add(tapv[k], acc);
            }
        } else {
            for k in 0..nt {
                let v = vec_at::<V>(src, cols, p as isize + k as isize - r as isize);
                acc = v.mul_add(tapv[k], acc);
            }
        }
        // SAFETY: p < cols
        unsafe { acc.store(dst.as_mut_ptr().add(p * vl)) };
        // Dirichlet fix-up on seam columns.
        if p < r {
            dst[p * vl] = src[p * vl]; // orig index p, lane 0
        }
        if p >= cols - r {
            dst[p * vl + vl - 1] = src[p * vl + vl - 1]; // orig n - cols + p
        }
    }
}

/// Driver owning the DLT-transformed ping-pong buffers.
pub struct DltSweep1D<V: SimdF64> {
    layout: DltLayout,
    bufs: PingPong<AlignedBuf>,
    taps: Vec<f64>,
    _marker: core::marker::PhantomData<V>,
}

impl<V: SimdF64> DltSweep1D<V> {
    /// Transform `grid` into DLT layout (counted by the paper as part of
    /// DLT's cost). `grid.len()` must be a multiple of `V::LANES`.
    pub fn new(grid: &Grid1D, p: &Pattern) -> Self {
        assert_eq!(p.dims(), 1);
        let n = grid.len();
        assert_eq!(n % V::LANES, 0, "DLT needs n divisible by vl");
        assert!(p.radius() <= n / V::LANES, "radius exceeds lifted row");
        let layout = DltLayout::new(n, V::LANES);
        let mut a = AlignedBuf::zeroed(n);
        layout.to_dlt::<V>(grid.as_slice(), a.as_mut_slice());
        let b = a.clone();
        Self {
            layout,
            bufs: PingPong::from_pair(a, b),
            taps: p.weights().to_vec(),
            _marker: core::marker::PhantomData,
        }
    }

    /// Advance `t` time steps in DLT space.
    pub fn steps(&mut self, t: usize) {
        let cols = self.layout.cols();
        for _ in 0..t {
            let (src, dst) = self.bufs.src_dst();
            step_dlt_range::<V>(
                src.as_slice(),
                dst.as_mut_slice(),
                &self.taps,
                cols,
                0,
                cols,
            );
            self.bufs.swap();
        }
    }

    /// Completed time steps.
    pub fn steps_done(&self) -> usize {
        self.bufs.steps()
    }

    /// Transform back to the original layout.
    pub fn into_grid(self) -> Grid1D {
        let mut out = Grid1D::zeros(self.layout.cols() * V::LANES);
        self.layout
            .from_dlt::<V>(self.bufs.current().as_slice(), out.as_mut_slice());
        out
    }

    /// Shared access to the DLT-space ping-pong pair (used by the split
    /// tiling layer).
    pub fn bufs_mut(&mut self) -> &mut PingPong<AlignedBuf> {
        &mut self.bufs
    }

    /// The layout descriptor.
    pub fn layout(&self) -> DltLayout {
        self.layout
    }

    /// The stencil taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }
}

/// Convenience: full DLT sweep (transform, `t` steps, transform back).
pub fn sweep_1d<V: SimdF64>(grid: &Grid1D, p: &Pattern, t: usize) -> Grid1D {
    let mut d = DltSweep1D::<V>::new(grid, p);
    d.steps(t);
    d.into_grid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    #[test]
    fn matches_scalar_1d() {
        for p in [kernels::heat1d(), kernels::d1p5()] {
            for n in [64usize, 128, 256] {
                let g = Grid1D::from_fn(n, |i| ((i * 41) % 23) as f64 * 0.5);
                let mut a = PingPong::new(g.clone());
                scalar::sweep_1d(&mut a, &p, 6);
                let out4 = sweep_1d::<NativeF64x4>(&g, &p, 6);
                assert!(
                    max_abs_diff(a.current().as_slice(), out4.as_slice()) < 1e-12,
                    "x4 n={n} p={}pt",
                    p.points()
                );
                let out8 = sweep_1d::<NativeF64x8>(&g, &p, 6);
                assert!(
                    max_abs_diff(a.current().as_slice(), out8.as_slice()) < 1e-12,
                    "x8 n={n}"
                );
            }
        }
    }

    #[test]
    fn seam_dependencies_flow_across_lanes() {
        // An impulse at the end of lane 0's segment must diffuse into
        // lane 1's segment — only possible through the wrapped columns.
        let n = 64;
        let cols = n / 4;
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(n, |i| if i == cols - 1 { 1.0 } else { 0.0 });
        let out = sweep_1d::<NativeF64x4>(&g, &p, 1);
        assert!(out[cols] > 0.0, "impulse must cross the seam");
        let mut a = PingPong::new(g);
        scalar::sweep_1d(&mut a, &p, 1);
        assert!(max_abs_diff(a.current().as_slice(), out.as_slice()) < 1e-12);
    }

    #[test]
    fn ring_range_steps_cover_once() {
        // stepping [0, cols) in two wrapped halves equals one full step
        let n = 96;
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(n, |i| (i as f64 * 0.17).cos());
        let mut d = DltSweep1D::<NativeF64x4>::new(&g, &p);
        let cols = d.layout().cols();
        {
            let taps: Vec<f64> = d.taps().to_vec();
            let (src, dst) = d.bufs_mut().src_dst();
            let (s, dm) = (src.as_slice().to_vec(), dst.as_mut_slice());
            step_dlt_range::<NativeF64x4>(&s, dm, &taps, cols, 5, cols + 5);
            d.bufs_mut().swap();
        }
        let out = d.into_grid();
        let mut a = PingPong::new(g);
        scalar::sweep_1d(&mut a, &p, 1);
        assert!(max_abs_diff(a.current().as_slice(), out.as_slice()) < 1e-12);
    }
}
