//! Multiple-loads executor: one (mostly unaligned) vector load per tap.
//!
//! This is the paper's first auto-vectorization-class baseline: no data
//! reorganization at all, at the price of `2r+1` overlapping loads per
//! output vector — redundant cache traffic that makes it the slowest
//! scheme in Fig. 8.

// Indexed tap/window loops keep the offset arithmetic explicit and unrolled.
#![allow(clippy::needless_range_loop)]

use crate::exec::{dispatch_taps, tap_count};
use crate::pattern::Pattern;
use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};
use stencil_simd::SimdF64;

/// One Jacobi step on `dst[lo..hi]`, vectorized with unaligned loads.
/// Dispatches on the tap count so the hot loop fully unrolls.
pub fn step_range_1d<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64], lo: usize, hi: usize) {
    dispatch_taps!(step_range_1d_t, V, taps, (src, dst, taps, lo, hi));
}

fn step_range_1d_t<V: SimdF64, const T: usize>(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    lo: usize,
    hi: usize,
) {
    let nt = tap_count::<T>(taps);
    let r = nt / 2;
    debug_assert!(lo >= r && hi + r <= src.len());
    let vl = V::LANES;
    let mut tapv = [V::zero(); 17];
    for k in 0..nt {
        tapv[k] = V::splat(taps[k]);
    }
    let mut i = lo;
    while i + vl <= hi {
        // SAFETY: i+k-r+vl <= hi+r <= src.len()
        let mut acc = unsafe { V::load(src.as_ptr().add(i - r)) }.mul(tapv[0]);
        for k in 1..nt {
            let v = unsafe { V::load(src.as_ptr().add(i + k - r)) };
            acc = v.mul_add(tapv[k], acc);
        }
        // SAFETY: i+vl <= hi <= dst.len()
        unsafe { acc.store(dst.as_mut_ptr().add(i)) };
        i += vl;
    }
    // scalar tail
    for j in i..hi {
        let mut acc = 0.0;
        for (k, &w) in taps.iter().enumerate() {
            acc += w * src[j + k - r];
        }
        dst[j] = acc;
    }
}

/// Full 1D step with Dirichlet boundaries.
pub fn step_1d<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64]) {
    let n = src.len();
    let r = taps.len() / 2;
    dst[..r].copy_from_slice(&src[..r]);
    dst[n - r..].copy_from_slice(&src[n - r..]);
    step_range_1d::<V>(src, dst, taps, r, n - r);
}

/// Run `t` steps on a 1D ping-pong pair.
pub fn sweep_1d<V: SimdF64>(pp: &mut PingPong<Grid1D>, p: &Pattern, t: usize) {
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_1d::<V>(src.as_slice(), dst.as_mut_slice(), p.weights());
        pp.swap();
    }
}

/// One 2D Jacobi step on rectangle `ys x xs`, row-vectorized.
pub fn step_range_2d<V: SimdF64>(
    src: &Grid2D,
    dst: &mut Grid2D,
    p: &Pattern,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let r = p.radius();
    let side = p.side();
    let w = p.weights();
    let stride = src.stride();
    let s = src.as_slice();
    let vl = V::LANES;
    let (xlo, xhi) = (xs.start, xs.end);
    // nonzero taps with hoisted broadcasts: (dy, dx, splat(w))
    let taps_nz: Vec<(usize, usize, V)> = (0..side * side)
        .filter(|i| w[*i] != 0.0)
        .map(|i| (i / side, i % side, V::splat(w[i])))
        .collect();
    for y in ys {
        let dbase = y * stride;
        let dstm = dst.as_mut_slice();
        let mut x = xlo;
        while x + vl <= xhi {
            let mut acc = V::zero();
            for &(dy, dx, wv) in &taps_nz {
                let base = (y + dy - r) * stride + x - r;
                // SAFETY: rectangle stays r away from boundaries.
                let v = unsafe { V::load(s.as_ptr().add(base + dx)) };
                acc = v.mul_add(wv, acc);
            }
            // SAFETY: x+vl <= xhi <= nx-r
            unsafe { acc.store(dstm.as_mut_ptr().add(dbase + x)) };
            x += vl;
        }
        for xx in x..xhi {
            let mut acc = 0.0;
            for dy in 0..side {
                for dx in 0..side {
                    acc += w[dy * side + dx] * s[(y + dy - r) * stride + xx + dx - r];
                }
            }
            dstm[dbase + xx] = acc;
        }
    }
}

/// Full 2D step with Dirichlet boundaries.
pub fn step_2d<V: SimdF64>(src: &Grid2D, dst: &mut Grid2D, p: &Pattern) {
    let (ny, nx, r) = (src.ny(), src.nx(), p.radius());
    for y in 0..ny {
        if y < r || y >= ny - r {
            dst.row_mut(y).copy_from_slice(src.row(y));
        } else {
            let srow = src.row(y);
            let drow = dst.row_mut(y);
            drow[..r].copy_from_slice(&srow[..r]);
            drow[nx - r..].copy_from_slice(&srow[nx - r..]);
        }
    }
    step_range_2d::<V>(src, dst, p, r..ny - r, r..nx - r);
}

/// Run `t` steps on a 2D ping-pong pair.
pub fn sweep_2d<V: SimdF64>(pp: &mut PingPong<Grid2D>, p: &Pattern, t: usize) {
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_2d::<V>(src, dst, p);
        pp.swap();
    }
}

/// One 3D Jacobi step on cuboid `zs x ys x xs`, row-vectorized.
pub fn step_range_3d<V: SimdF64>(
    src: &Grid3D,
    dst: &mut Grid3D,
    p: &Pattern,
    zs: core::ops::Range<usize>,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let r = p.radius();
    let side = p.side();
    let w = p.weights();
    let (sy, sz) = (src.stride_y(), src.stride_z());
    let s = src.as_slice();
    let vl = V::LANES;
    let (xlo, xhi) = (xs.start, xs.end);
    // nonzero taps with hoisted broadcasts: (dz, dy, dx, splat(w))
    let taps_nz: Vec<(usize, usize, usize, V)> = (0..side * side * side)
        .filter(|i| w[*i] != 0.0)
        .map(|i| (i / (side * side), i / side % side, i % side, V::splat(w[i])))
        .collect();
    for z in zs {
        for y in ys.clone() {
            let dbase = z * sz + y * sy;
            let dstm = dst.as_mut_slice();
            let mut x = xlo;
            while x + vl <= xhi {
                let mut acc = V::zero();
                for &(dz, dy, dx, wv) in &taps_nz {
                    let base = (z + dz - r) * sz + (y + dy - r) * sy + x - r;
                    // SAFETY: cuboid stays r away from boundaries.
                    let v = unsafe { V::load(s.as_ptr().add(base + dx)) };
                    acc = v.mul_add(wv, acc);
                }
                // SAFETY: x+vl <= xhi
                unsafe { acc.store(dstm.as_mut_ptr().add(dbase + x)) };
                x += vl;
            }
            for xx in x..xhi {
                let mut acc = 0.0;
                for dz in 0..side {
                    for dy in 0..side {
                        for dx in 0..side {
                            acc += w[(dz * side + dy) * side + dx]
                                * s[(z + dz - r) * sz + (y + dy - r) * sy + xx + dx - r];
                        }
                    }
                }
                dstm[dbase + xx] = acc;
            }
        }
    }
}

/// Full 3D step with Dirichlet boundaries.
pub fn step_3d<V: SimdF64>(src: &Grid3D, dst: &mut Grid3D, p: &Pattern) {
    let (nz, ny, nx, r) = (src.nz(), src.ny(), src.nx(), p.radius());
    for z in 0..nz {
        for y in 0..ny {
            let interior = z >= r && z < nz - r && y >= r && y < ny - r;
            if !interior {
                dst.row_mut(z, y).copy_from_slice(src.row(z, y));
            } else {
                let srow = src.row(z, y);
                let drow = dst.row_mut(z, y);
                drow[..r].copy_from_slice(&srow[..r]);
                drow[nx - r..].copy_from_slice(&srow[nx - r..]);
            }
        }
    }
    step_range_3d::<V>(src, dst, p, r..nz - r, r..ny - r, r..nx - r);
}

/// Run `t` steps on a 3D ping-pong pair.
pub fn sweep_3d<V: SimdF64>(pp: &mut PingPong<Grid3D>, p: &Pattern, t: usize) {
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_3d::<V>(src, dst, p);
        pp.swap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn random_grid1(n: usize) -> Grid1D {
        Grid1D::from_fn(n, |i| ((i * 2654435761) % 1000) as f64 / 1000.0)
    }

    #[test]
    fn matches_scalar_1d() {
        for p in [kernels::heat1d(), kernels::d1p5()] {
            for n in [37usize, 64, 129] {
                let g = random_grid1(n);
                let mut a = PingPong::new(g.clone());
                scalar::sweep_1d(&mut a, &p, 4);
                let mut b = PingPong::new(g.clone());
                sweep_1d::<NativeF64x4>(&mut b, &p, 4);
                let mut c = PingPong::new(g);
                sweep_1d::<NativeF64x8>(&mut c, &p, 4);
                assert!(
                    max_abs_diff(a.current().as_slice(), b.current().as_slice()) < 1e-12,
                    "x4 n={n}"
                );
                assert!(
                    max_abs_diff(a.current().as_slice(), c.current().as_slice()) < 1e-12,
                    "x8 n={n}"
                );
            }
        }
    }

    #[test]
    fn matches_scalar_2d() {
        for p in [kernels::heat2d(), kernels::box2d9p(), kernels::gb()] {
            let g = Grid2D::from_fn(21, 19, |y, x| ((y * 31 + x * 7) % 17) as f64);
            let mut a = PingPong::new(g.clone());
            scalar::sweep_2d(&mut a, &p, 3);
            let mut b = PingPong::new(g);
            sweep_2d::<NativeF64x4>(&mut b, &p, 3);
            assert!(max_abs_diff(&a.current().to_dense(), &b.current().to_dense()) < 1e-12);
        }
    }

    #[test]
    fn matches_scalar_3d() {
        for p in [kernels::heat3d(), kernels::box3d27p()] {
            let g = Grid3D::from_fn(9, 11, 13, |z, y, x| ((z * 5 + y * 3 + x) % 7) as f64);
            let mut a = PingPong::new(g.clone());
            scalar::sweep_3d(&mut a, &p, 2);
            let mut b = PingPong::new(g);
            sweep_3d::<NativeF64x8>(&mut b, &p, 2);
            assert!(max_abs_diff(&a.current().to_dense(), &b.current().to_dense()) < 1e-12);
        }
    }

    #[test]
    fn scalar_lane_executor_matches_scalar_module() {
        // V = f64 (LANES = 1) must agree exactly, by construction.
        let p = kernels::heat1d();
        let g = random_grid1(40);
        let mut a = PingPong::new(g.clone());
        scalar::sweep_1d(&mut a, &p, 5);
        let mut b = PingPong::new(g);
        sweep_1d::<f64>(&mut b, &p, 5);
        assert_eq!(a.current().as_slice(), b.current().as_slice());
    }
}
