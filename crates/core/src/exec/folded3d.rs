//! Z-ring 3D register pipeline — the dedicated 3D form of the paper's
//! §3.3 folded executor.
//!
//! The legacy 3D path ([`crate::exec::folded::step_range_3d`]) reloads
//! the full `(2R+1)`-plane × `(vl+2R)`-row vector window from memory for
//! every output block and discards all plane overlap as `z` advances —
//! exactly the data-organization redundancy the paper removes in 1D/2D.
//! This module marches along `z` instead:
//!
//! * **Z-plane rotation** — for each x-block the `(2R+1)` planes the
//!   vertical fold reads live in a rotating ring (`slot = z mod (2R+1)`)
//!   of register/stack-resident row vectors. Each inner-loop step loads
//!   only the one newly-entering plane and rotates the other `2R` in
//!   place, turning `~(2R+1)×` redundant plane loads into `~1×`.
//! * **Separable two-stage fold** — when the counterpart schedule is
//!   rank-1 (uniform boxes, Fig. 5) and its `(dz, dy)` tap matrix
//!   factors as `wz ⊗ wy`, the ring holds *y-prefolded* plane rows:
//!   each plane is dy-folded once on entry and reused by the `2R+1`
//!   consecutive z outputs it participates in — the arithmetic analogue
//!   of the load reuse (`(2R+1)²` → `2(2R+1)` vertical mul-adds per
//!   row).
//! * **Fused assemble** — the scalar-assembled edge columns are built
//!   once per (x-slab, z) and shared by every block of the slab, instead
//!   of per block as in the legacy lookahead scheme.
//!
//! The sweep is organized as y-block → x-slab ([`Ring3::slab`] vector
//! blocks) → z-strip ([`Ring3::depth`] outputs): phase A fills a small
//! L1-resident pane of transposed counterpart columns via the ring,
//! phase B runs the horizontal fold + weighted transpose over the pane.
//! Both knobs are part of the measured tuner's 3D candidate space.
//!
//! Every per-output computation depends only on its global coordinates
//! and the supplied ranges — never on strip/slab phase — so the pipeline
//! is translation-invariant per call, which is what bit-exact domain
//! sharding (serve) relies on.

#![allow(clippy::needless_range_loop)]
// offset windows (ring[j + py]) mirror the paper's notation
#![allow(clippy::too_many_arguments)]
// kernel entry points mirror the (plan, grid, strides, block) sets

use crate::exec::folded::{scalar_col_3d, FoldedKernel, PlanV, MAX_F, MAX_R3};
use crate::pattern::Pattern;
use core::any::{Any, TypeId};
use core::cell::RefCell;
use core::ops::Range;
use std::collections::HashMap;
use stencil_grid::{Grid3D, PingPong};
use stencil_simd::SimdF64;

/// Largest z-strip depth the pipeline accepts.
pub const MAX_RING_DEPTH: usize = 64;
/// Largest x-slab width (in vector blocks) the pipeline accepts.
pub const MAX_RING_SLAB: usize = 32;

/// Geometry of the z-ring pipeline: how many consecutive z outputs one
/// ring march produces before the column pane is drained (`depth`), and
/// how many x vector blocks share one pane (`slab`). Both bound the
/// pane's footprint (`slab × depth × counterparts × vl` vectors), which
/// should stay L1-resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring3 {
    /// Z-strip length (consecutive z outputs per ring march), `>= 1`.
    pub depth: usize,
    /// X-slab width in vector blocks, `>= 1`.
    pub slab: usize,
}

impl Ring3 {
    /// Static default for `lanes`-wide vectors and folded radius
    /// `radius`: sized so the column pane of a typical (≤ 3
    /// counterpart) plan stays within ~16 KB of L1. The measured tuner
    /// probes neighbors of this point.
    pub fn auto(lanes: usize, radius: usize) -> Self {
        let depth = if radius <= 2 { 8 } else { 4 };
        let slab = if lanes >= 8 { 2 } else { 4 };
        Self { depth, slab }
    }

    /// True when both knobs are inside the supported bounds.
    pub fn valid(self) -> bool {
        (1..=MAX_RING_DEPTH).contains(&self.depth) && (1..=MAX_RING_SLAB).contains(&self.slab)
    }
}

impl Default for Ring3 {
    fn default() -> Self {
        Ring3 { depth: 8, slab: 4 }
    }
}

/// One folded step on the cuboid `zs × ys × xs` of a 3D grid through the
/// z-ring pipeline. Same contract as the legacy
/// [`crate::exec::folded::step_range_3d`]: writes exactly the region,
/// reads within `R` of it, caller keeps the region `R` from the grid
/// boundary. Degenerate widths and out-of-bound radii (unreachable
/// through the Plan API) degrade to the scalar folded sweep — no panic.
pub fn step_range_3d_ring<V: SimdF64>(
    k: &FoldedKernel,
    ring: Ring3,
    src: &Grid3D,
    dst: &mut Grid3D,
    zs: Range<usize>,
    ys: Range<usize>,
    xs: Range<usize>,
) {
    let vl = V::LANES;
    let rr = k.radius();
    debug_assert!(
        (1..=MAX_R3).contains(&rr) && k.folded().dims() == 3,
        "validated by Solver::compile"
    );
    if rr == 0 || rr > MAX_R3 || vl < rr.max(2) || k.folded().dims() != 3 {
        crate::exec::scalar::step_range_3d(src, dst, k.folded(), zs, ys, xs);
        return;
    }
    // monomorphize on the folded radius: constant ring/window trip counts
    match rr {
        1 => step_ring_r::<V, 1>(k, ring, src, dst, zs, ys, xs),
        2 => step_ring_r::<V, 2>(k, ring, src, dst, zs, ys, xs),
        3 => step_ring_r::<V, 3>(k, ring, src, dst, zs, ys, xs),
        _ => step_ring_r::<V, 4>(k, ring, src, dst, zs, ys, xs),
    }
}

/// Per-worker scratch backing one [`step_ring_r`] call: the two column
/// panes and the cross-slab carry. Hoisted into a thread-local so the
/// tessellate path — many small trapezoid tile calls per worker per
/// sweep — stops paying two heap allocations per tile. Keyed by the
/// SIMD backend type, since the kernel is monomorphized over it.
struct Scratch<V: SimdF64> {
    cols: Vec<[V; 8]>,
    carry: Vec<[V; MAX_R3]>,
}

thread_local! {
    static SCRATCH: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Check out this thread's scratch for backend `V` (empty buffers on
/// first use); [`put_scratch`] returns it. Checkout semantics — rather
/// than a borrow held across the sweep — keep the `RefCell` borrow
/// scoped to the map access alone, so no reachable call graph can
/// observe it borrowed.
fn take_scratch<V: SimdF64>() -> Scratch<V> {
    SCRATCH.with(|cell| {
        cell.borrow_mut()
            .remove(&TypeId::of::<V>())
            .and_then(|b| b.downcast::<Scratch<V>>().ok())
            .map(|b| *b)
            .unwrap_or(Scratch {
                cols: Vec::new(),
                carry: Vec::new(),
            })
    })
}

fn put_scratch<V: SimdF64>(sc: Scratch<V>) {
    SCRATCH.with(|cell| {
        cell.borrow_mut().insert(TypeId::of::<V>(), Box::new(sc));
    });
}

fn step_ring_r<V: SimdF64, const R: usize>(
    k: &FoldedKernel,
    ring: Ring3,
    src: &Grid3D,
    dst: &mut Grid3D,
    zs: Range<usize>,
    ys: Range<usize>,
    xs: Range<usize>,
) {
    let vl = V::LANES;
    let (sy, sz) = (src.stride_y(), src.stride_z());
    let s = src.as_slice();
    let (xlo, xhi) = (xs.start, xs.end);
    let nfull = (xhi - xlo) / vl;
    let pv = PlanV::<V>::new(k);
    let nids = k.used_ids().len();
    let sep = SepV::<V, R>::detect(k);
    // clamp the pane to the region actually covered: tessellate hands
    // this kernel small trapezoid tiles, whose per-call pane allocation
    // must stay proportional to the tile, not to the configured maxima
    let depth = ring
        .depth
        .clamp(1, MAX_RING_DEPTH)
        .min((zs.end - zs.start).max(1));
    let slab = ring.slab.clamp(1, MAX_RING_SLAB).min(nfull.max(1));
    // Two panes of transposed counterpart columns, software-pipelined
    // across x-slabs: while slab `s`'s horizontal fold (phase B) runs
    // off one pane, slab `s+1`'s ring march (phase A) has already
    // filled the other — so interior slab boundaries read block-computed
    // columns on both sides. cols[pane][(b * depth + zi) * nids + u]
    // holds block `b`'s columns of dense counterpart `u` at strip
    // index `zi`. Checked out of the per-worker scratch, reused by
    // every strip — and across calls: no zeroing, because every pane
    // entry is written by a phase-A march before phase B reads it, and
    // the carry is read only behind `b0 != 0`, after the previous
    // slab's phase B rewrote it, so stale values from an earlier tile
    // can never reach an output (the resize fill only seeds growth).
    let pane_len = slab * depth * nids;
    let mut scratch = take_scratch::<V>();
    scratch.cols.resize(2 * pane_len, [V::zero(); 8]);
    // Shifts reuse across x-slabs: the last R columns of each slab's
    // last block, kept per strip z so the next slab's left edge is
    // register data too. Only the sweep's own edges (x = xlo and the
    // last block's right halo) are ever assembled from scalar loads —
    // the same two per (z, y-block) the legacy pipeline pays.
    scratch.carry.resize(depth * nids, [V::zero(); MAX_R3]);
    let Scratch { cols, carry } = &mut scratch;

    let mut y = ys.start;
    while y + vl <= ys.end {
        if nfull == 0 {
            crate::exec::scalar::step_range_3d(
                src,
                dst,
                k.folded(),
                zs.clone(),
                y..y + vl,
                xs.clone(),
            );
            y += vl;
            continue;
        }
        let mut z0 = zs.start;
        while z0 < zs.end {
            let nz = depth.min(zs.end - z0);
            // march one slab's blocks into the given pane
            let march = |cols: &mut [[V; 8]], pane: usize, b0: usize, nb: usize| {
                for b in 0..nb {
                    let base = pane * pane_len + b * depth * nids;
                    let bx = xlo + (b0 + b) * vl;
                    let dest = &mut cols[base..base + nz * nids];
                    if let Some(sv) = &sep {
                        march_sep::<V, R>(sv, s, sy, sz, z0, nz, y, bx, dest);
                    } else {
                        march_gen::<V, R>(k, &pv, s, sy, sz, z0, nz, y, bx, nids, dest);
                    }
                }
            };
            let mut cur = 0usize;
            march(cols, cur, 0, slab.min(nfull));
            let mut b0 = 0usize;
            while b0 < nfull {
                let nb = slab.min(nfull - b0);
                let sxlo = xlo + b0 * vl;
                let next_b0 = b0 + nb;
                let next_nb = slab.min(nfull.saturating_sub(next_b0));
                if next_nb > 0 {
                    // phase A of the next slab, ahead of this phase B
                    march(cols, 1 - cur, next_b0, next_nb);
                }
                // phase B: per z, horizontal fold + weighted transpose
                let pane = cur * pane_len;
                let next_pane = (1 - cur) * pane_len;
                for zi in 0..nz {
                    let z = z0 + zi;
                    // sweep-edge columns, once per z and shared by all
                    // nb blocks (the fused assemble step); interior
                    // slab boundaries use carry / the pipelined pane
                    let mut ltail = [[V::zero(); MAX_R3]; MAX_F];
                    let mut rhead = [[V::zero(); MAX_R3]; MAX_F];
                    for kk in 0..R {
                        for (u, &id) in k.used_ids().iter().enumerate() {
                            ltail[u][kk] = if b0 == 0 {
                                scalar_col_3d::<V>(k, s, sy, sz, z, y, sxlo - R + kk, id)
                            } else {
                                carry[zi * nids + u][kk]
                            };
                            rhead[u][kk] = if next_nb > 0 {
                                cols[next_pane + zi * nids + u][kk]
                            } else {
                                scalar_col_3d::<V>(k, s, sy, sz, z, y, sxlo + nb * vl + kk, id)
                            };
                        }
                    }
                    let d = dst.as_mut_slice();
                    for b in 0..nb {
                        let bx = sxlo + b * vl;
                        let mut out = [V::zero(); 8];
                        for (kk, o) in out[..vl].iter_mut().enumerate() {
                            let mut acc = V::zero();
                            for dxi in 0..2 * R + 1 {
                                let pos = kk as isize + dxi as isize - R as isize;
                                for &(u, cv) in &pv.hcols[dxi] {
                                    let col = if pos < 0 {
                                        if b == 0 {
                                            ltail[u][(pos + R as isize) as usize]
                                        } else {
                                            cols[pane + ((b - 1) * depth + zi) * nids + u]
                                                [(pos + vl as isize) as usize]
                                        }
                                    } else if (pos as usize) < vl {
                                        cols[pane + (b * depth + zi) * nids + u][pos as usize]
                                    } else if b + 1 < nb {
                                        cols[pane + ((b + 1) * depth + zi) * nids + u]
                                            [pos as usize - vl]
                                    } else {
                                        rhead[u][pos as usize - vl]
                                    };
                                    acc = col.mul_add(cv, acc);
                                }
                            }
                            *o = acc;
                        }
                        V::transpose(&mut out[..vl]);
                        for (j, o) in out[..vl].iter().enumerate() {
                            // SAFETY: in-bounds by the range contract.
                            unsafe { o.store(d.as_mut_ptr().add(z * sz + (y + j) * sy + bx)) };
                        }
                    }
                    // refresh the carry for the next slab (read above,
                    // so same-strip ordering is safe)
                    for u in 0..nids {
                        let last = &cols[pane + ((nb - 1) * depth + zi) * nids + u];
                        for kk in 0..R {
                            carry[zi * nids + u][kk] = last[vl - R + kk];
                        }
                    }
                }
                cur = 1 - cur;
                b0 = next_b0;
            }
            z0 += nz;
        }
        if xlo + nfull * vl < xhi {
            crate::exec::scalar::step_range_3d(
                src,
                dst,
                k.folded(),
                zs.clone(),
                y..y + vl,
                xlo + nfull * vl..xhi,
            );
        }
        y += vl;
    }
    if y < ys.end {
        crate::exec::scalar::step_range_3d(src, dst, k.folded(), zs.clone(), y..ys.end, xs);
    }
    put_scratch(scratch);
}

/// Load the `(vl + 2R)` row vectors of plane `zp` at `(y0, bx)`.
#[inline(always)]
fn load_plane<V: SimdF64, const R: usize>(
    plane: &mut [V; 8 + 2 * MAX_R3],
    s: &[f64],
    sy: usize,
    sz: usize,
    zp: usize,
    y0: usize,
    bx: usize,
) {
    let vl = V::LANES;
    for (t, rv) in plane[..vl + 2 * R].iter_mut().enumerate() {
        // SAFETY: caller keeps the block R away from grid edges.
        *rv = unsafe { V::load(s.as_ptr().add(zp * sz + (y0 - R + t) * sy + bx)) };
    }
}

/// Generic z-march: ring of raw plane rows, full `(dz, dy)` vertical
/// fold per output z. Tap order matches the legacy pipeline, so the
/// per-output arithmetic is identical — only the redundant plane loads
/// disappear.
#[inline(always)]
fn march_gen<V: SimdF64, const R: usize>(
    k: &FoldedKernel,
    pv: &PlanV<V>,
    s: &[f64],
    sy: usize,
    sz: usize,
    z0: usize,
    nz: usize,
    y0: usize,
    bx: usize,
    nids: usize,
    out: &mut [[V; 8]],
) {
    let vl = V::LANES;
    let side = 2 * R + 1;
    let mut ring = [[V::zero(); 8 + 2 * MAX_R3]; 2 * MAX_R3 + 1];
    // prime the 2R planes behind the first output; the march loads the
    // one entering plane per step
    for zp in z0 - R..z0 + R {
        load_plane::<V, R>(&mut ring[zp % side], s, sy, sz, zp, y0, bx);
    }
    for zi in 0..nz {
        let z = z0 + zi;
        load_plane::<V, R>(&mut ring[(z + R) % side], s, sy, sz, z + R, y0, bx);
        for (u, &id) in k.used_ids().iter().enumerate() {
            let mut rows = [V::zero(); 8];
            if id == 0 {
                rows[..vl].copy_from_slice(&ring[z % side][R..R + vl]);
            } else {
                for (j, row) in rows[..vl].iter_mut().enumerate() {
                    let mut acc = V::zero();
                    for &(slab, wv) in &pv.taps[id] {
                        let (pz, py) = (slab / side, slab % side);
                        acc = ring[(z - R + pz) % side][j + py].mul_add(wv, acc);
                    }
                    *row = acc;
                }
            }
            V::transpose(&mut rows[..vl]);
            out[zi * nids + u] = rows;
        }
    }
}

/// Splatted rank-1 factorization `taps[dz][dy] = wz[dz] * wy[dy]` of a
/// separable single-counterpart schedule.
struct SepV<V, const R: usize> {
    wy: [V; 2 * MAX_R3 + 1],
    wz: [V; 2 * MAX_R3 + 1],
}

impl<V: SimdF64, const R: usize> SepV<V, R> {
    /// Detect a rank-1 `(dz, dy)` tap matrix (uniform boxes and their
    /// folds). Requires the plan to be separable in the Fig.-5 sense
    /// (single dense counterpart) *and* the tap matrix to factor exactly
    /// to rounding; anything else runs the generic march.
    fn detect(k: &FoldedKernel) -> Option<Self> {
        if k.folded().dims() != 3 || !k.is_separable() {
            return None;
        }
        let side = 2 * R + 1;
        let taps = &k.taps_by_id()[1];
        debug_assert_eq!(taps.len(), side * side);
        let m = |dz: usize, dy: usize| taps[dz * side + dy].1;
        let (mut pz, mut py, mut piv) = (0usize, 0usize, 0.0f64);
        for dz in 0..side {
            for dy in 0..side {
                if m(dz, dy).abs() > piv.abs() {
                    (pz, py, piv) = (dz, dy, m(dz, dy));
                }
            }
        }
        if piv == 0.0 {
            return None;
        }
        let mut wy = [0.0f64; 2 * MAX_R3 + 1];
        let mut wz = [0.0f64; 2 * MAX_R3 + 1];
        for dy in 0..side {
            wy[dy] = m(pz, dy);
        }
        for dz in 0..side {
            wz[dz] = m(dz, py) / piv;
        }
        let tol = 1e-12 * piv.abs().max(1.0);
        for dz in 0..side {
            for dy in 0..side {
                if (wz[dz] * wy[dy] - m(dz, dy)).abs() > tol {
                    return None;
                }
            }
        }
        let mut out = SepV {
            wy: [V::zero(); 2 * MAX_R3 + 1],
            wz: [V::zero(); 2 * MAX_R3 + 1],
        };
        for i in 0..side {
            out.wy[i] = V::splat(wy[i]);
            out.wz[i] = V::splat(wz[i]);
        }
        Some(out)
    }
}

/// Dy-fold plane `zp`'s rows with `wy` into `g[j] = Σ_dy wy[dy] ·
/// row(zp, y0 + j + dy)` — done once per plane entry, reused by the
/// `2R+1` outputs the plane participates in.
#[inline(always)]
fn fold_plane_y<V: SimdF64, const R: usize>(
    g: &mut [V; 8],
    sv: &SepV<V, R>,
    s: &[f64],
    sy: usize,
    sz: usize,
    zp: usize,
    y0: usize,
    bx: usize,
) {
    let vl = V::LANES;
    let mut rowvec = [V::zero(); 8 + 2 * MAX_R3];
    load_plane::<V, R>(&mut rowvec, s, sy, sz, zp, y0, bx);
    for (j, gj) in g[..vl].iter_mut().enumerate() {
        let mut acc = rowvec[j].mul(sv.wy[0]);
        for t in 1..2 * R + 1 {
            acc = rowvec[j + t].mul_add(sv.wy[t], acc);
        }
        *gj = acc;
    }
}

/// Separable z-march: ring of y-prefolded plane rows, dz-fold per output
/// z — `2(2R+1)` vertical mul-adds per row instead of `(2R+1)²`.
#[inline(always)]
fn march_sep<V: SimdF64, const R: usize>(
    sv: &SepV<V, R>,
    s: &[f64],
    sy: usize,
    sz: usize,
    z0: usize,
    nz: usize,
    y0: usize,
    bx: usize,
    out: &mut [[V; 8]],
) {
    let vl = V::LANES;
    let side = 2 * R + 1;
    let mut ring = [[V::zero(); 8]; 2 * MAX_R3 + 1];
    for zp in z0 - R..z0 + R {
        fold_plane_y::<V, R>(&mut ring[zp % side], sv, s, sy, sz, zp, y0, bx);
    }
    for zi in 0..nz {
        let z = z0 + zi;
        fold_plane_y::<V, R>(&mut ring[(z + R) % side], sv, s, sy, sz, z + R, y0, bx);
        let mut rows = [V::zero(); 8];
        for (j, row) in rows[..vl].iter_mut().enumerate() {
            let mut acc = ring[(z - R) % side][j].mul(sv.wz[0]);
            for dz in 1..side {
                acc = ring[(z - R + dz) % side][j].mul_add(sv.wz[dz], acc);
            }
            *row = acc;
        }
        V::transpose(&mut rows[..vl]);
        // single dense counterpart: nids == 1
        out[zi] = rows;
    }
}

/// Full folded 3D step through the z-ring pipeline (Dirichlet band of
/// width `R`). Grids too small to hold an interior degenerate to a copy.
pub fn step_3d_ring<V: SimdF64>(k: &FoldedKernel, ring: Ring3, src: &Grid3D, dst: &mut Grid3D) {
    let (nz, ny, nx) = (src.nz(), src.ny(), src.nx());
    let rr = k.radius();
    if nz <= 2 * rr || ny <= 2 * rr || nx <= 2 * rr {
        for z in 0..nz {
            for y in 0..ny {
                dst.row_mut(z, y).copy_from_slice(src.row(z, y));
            }
        }
        return;
    }
    for z in 0..nz {
        for y in 0..ny {
            let interior = z >= rr && z < nz - rr && y >= rr && y < ny - rr;
            if !interior {
                dst.row_mut(z, y).copy_from_slice(src.row(z, y));
            } else {
                let srow = src.row(z, y);
                let drow = dst.row_mut(z, y);
                drow[..rr].copy_from_slice(&srow[..rr]);
                drow[nx - rr..].copy_from_slice(&srow[nx - rr..]);
            }
        }
    }
    step_range_3d_ring::<V>(k, ring, src, dst, rr..nz - rr, rr..ny - rr, rr..nx - rr);
}

/// Block-free "Our (m steps)" 3D sweep through the z-ring pipeline, with
/// the planned kernel supplied by the caller (the compile-once/run-many
/// entry point, cf. [`crate::exec::folded::sweep_3d_with`]). Leftover
/// `t % m` steps run unfolded through the multiple-loads kernel.
pub fn sweep_3d_ring_with<V: SimdF64>(
    k: &FoldedKernel,
    ring: Ring3,
    grid: &Grid3D,
    p: &Pattern,
    t: usize,
) -> Grid3D {
    let m = k.m();
    let mut pp = PingPong::new(grid.clone());
    for _ in 0..t / m {
        let (src, dst) = pp.src_dst();
        step_3d_ring::<V>(k, ring, src, dst);
        pp.swap_folded(m);
    }
    for _ in 0..t % m {
        let (src, dst) = pp.src_dst();
        crate::exec::multiload::step_3d::<V>(src, dst, p);
        pp.swap();
    }
    pp.into_current()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{folded, scalar};
    use crate::folding::fold;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn scalar_folded_3d(g: &Grid3D, p: &Pattern, m: usize, steps: usize) -> Grid3D {
        let f = fold(p, m);
        let mut pp = PingPong::new(g.clone());
        scalar::sweep_3d(&mut pp, &f, steps);
        pp.into_current()
    }

    #[test]
    fn ring_matches_scalar_folded() {
        for p in [kernels::heat3d(), kernels::box3d27p()] {
            for m in [1usize, 2] {
                let k = FoldedKernel::new(&p, m);
                let g = Grid3D::from_fn(18, 15, 22, |z, y, x| ((z * 3 + y * 7 + x) % 13) as f64);
                let want = scalar_folded_3d(&g, &p, m, 2);
                let got = sweep_3d_ring_with::<NativeF64x4>(&k, Ring3::default(), &g, &p, 2 * m);
                assert!(
                    max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10,
                    "m={m} pts={}",
                    p.points()
                );
            }
        }
    }

    #[test]
    fn ring_matches_legacy_pipeline_bitwise_generic() {
        // the generic march issues the same mul_add sequence as the
        // legacy reload-per-block path; for a single-slab geometry the
        // block-boundary columns come from the same block computations,
        // so the interiors agree bit for bit
        let p = kernels::heat3d();
        let k = FoldedKernel::new(&p, 2);
        let g = Grid3D::from_fn(16, 14, 11, |z, y, x| ((z * 5 + y * 11 + x * 3) % 17) as f64);
        let mut legacy = g.clone();
        folded::step_3d::<NativeF64x4>(&k, &g, &mut legacy);
        let mut ring = g.clone();
        step_3d_ring::<NativeF64x4>(&k, Ring3 { depth: 3, slab: 1 }, &g, &mut ring);
        assert!(max_abs_diff(&legacy.to_dense(), &ring.to_dense()) < 1e-12);
    }

    #[test]
    fn ring_geometry_does_not_change_results() {
        // strip/slab phase must never leak into the arithmetic: every
        // geometry produces the same field (to rounding at slab edges)
        let p = kernels::box3d27p();
        let k = FoldedKernel::new(&p, 2);
        let g = Grid3D::from_fn(20, 17, 25, |z, y, x| {
            ((z + 2 * y + 3 * x) % 23) as f64 * 0.4
        });
        let want = scalar_folded_3d(&g, &p, 2, 3);
        for ring in [
            Ring3 { depth: 1, slab: 1 },
            Ring3 { depth: 2, slab: 3 },
            Ring3 { depth: 8, slab: 4 },
            Ring3 {
                depth: 64,
                slab: 32,
            },
        ] {
            let got = sweep_3d_ring_with::<NativeF64x4>(&k, ring, &g, &p, 6);
            assert!(
                max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10,
                "{ring:?}"
            );
        }
    }

    #[test]
    fn ring_radius2_pattern_folds_to_radius_4() {
        // a radius-2 uniform box folded twice: R = 4 — the deeper window
        // MAX_R3 = 4 exists for
        let p = Pattern::new_3d(2, &[1.0 / 125.0; 125]);
        for (m, w8) in [(1usize, false), (2, false), (2, true)] {
            let k = FoldedKernel::new(&p, m);
            assert!(k.radius() <= MAX_R3);
            let g = Grid3D::from_fn(26, 24, 28, |z, y, x| ((z * 7 + y + x * 5) % 19) as f64);
            let want = scalar_folded_3d(&g, &p, m, 2);
            let got = if w8 {
                sweep_3d_ring_with::<NativeF64x8>(&k, Ring3::auto(8, k.radius()), &g, &p, 2 * m)
            } else {
                sweep_3d_ring_with::<NativeF64x4>(&k, Ring3::auto(4, k.radius()), &g, &p, 2 * m)
            };
            assert!(
                max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10,
                "m={m} w8={w8}"
            );
        }
    }

    #[test]
    fn separable_factorization_detected_for_boxes_only() {
        let box3 = FoldedKernel::new(&kernels::box3d27p(), 2);
        assert!(SepV::<NativeF64x4, 2>::detect(&box3).is_some());
        let star = FoldedKernel::new(&kernels::heat3d(), 2);
        assert!(SepV::<NativeF64x4, 2>::detect(&star).is_none());
    }

    #[test]
    fn narrow_ranges_and_widths_fall_back_without_panic() {
        let p = kernels::box3d27p();
        let k = FoldedKernel::new(&p, 2);
        let g = Grid3D::from_fn(12, 12, 12, |z, y, x| (z * 144 + y * 12 + x) as f64);
        let mut dst = g.clone();
        // ranges narrower than a vector exercise the scalar paths
        step_range_3d_ring::<NativeF64x4>(&k, Ring3::default(), &g, &mut dst, 3..5, 2..5, 2..5);
        let mut want = g.clone();
        scalar::step_range_3d(&g, &mut want, k.folded(), 3..5, 2..5, 2..5);
        assert!(max_abs_diff(&want.to_dense(), &dst.to_dense()) < 1e-12);
        // scalar lanes: whole call degrades to the scalar sweep
        let mut dst1 = g.clone();
        step_range_3d_ring::<f64>(&k, Ring3::default(), &g, &mut dst1, 3..9, 2..10, 2..10);
        let mut want1 = g.clone();
        scalar::step_range_3d(&g, &mut want1, k.folded(), 3..9, 2..10, 2..10);
        assert!(max_abs_diff(&want1.to_dense(), &dst1.to_dense()) < 1e-12);
    }

    #[test]
    fn tiny_grids_degenerate_to_copy() {
        let p = Pattern::new_3d(2, &[1.0 / 125.0; 125]);
        let k = FoldedKernel::new(&p, 2); // R = 4
        let g = Grid3D::from_fn(6, 6, 6, |z, y, x| (z + y + x) as f64);
        let mut dst = Grid3D::zeros(6, 6, 6);
        step_3d_ring::<NativeF64x4>(&k, Ring3::default(), &g, &mut dst);
        assert!(max_abs_diff(&g.to_dense(), &dst.to_dense()) < 1e-15);
    }
}
