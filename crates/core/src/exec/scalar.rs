//! Scalar reference executors (1D/2D/3D, arbitrary linear pattern).
//!
//! Every other executor in this crate is validated against these sweeps;
//! they favour obviousness over speed.

use crate::pattern::Pattern;
use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};

/// One Jacobi step on `dst[lo..hi]` of a 1D grid (taps = `2r+1` weights).
/// The caller guarantees `lo >= r` and `hi <= n - r`.
pub fn step_range_1d(src: &[f64], dst: &mut [f64], taps: &[f64], lo: usize, hi: usize) {
    let r = taps.len() / 2;
    debug_assert!(lo >= r && hi + r <= src.len());
    for i in lo..hi {
        let mut acc = 0.0;
        for (k, &w) in taps.iter().enumerate() {
            acc += w * src[i + k - r];
        }
        dst[i] = acc;
    }
}

/// One full Jacobi step with Dirichlet boundary copy.
pub fn step_1d(src: &[f64], dst: &mut [f64], taps: &[f64]) {
    let n = src.len();
    let r = taps.len() / 2;
    assert!(n >= 2 * r, "grid smaller than stencil support");
    dst[..r].copy_from_slice(&src[..r]);
    dst[n - r..].copy_from_slice(&src[n - r..]);
    step_range_1d(src, dst, taps, r, n - r);
}

/// Run `t` Jacobi steps on a ping-pong pair.
pub fn sweep_1d(pp: &mut PingPong<Grid1D>, p: &Pattern, t: usize) {
    assert_eq!(p.dims(), 1);
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_1d(src.as_slice(), dst.as_mut_slice(), p.weights());
        pp.swap();
    }
}

/// One Jacobi step on the rectangle `ys x xs` of a 2D grid.
/// Caller guarantees the rectangle stays `r` away from the boundary.
pub fn step_range_2d(
    src: &Grid2D,
    dst: &mut Grid2D,
    p: &Pattern,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    debug_assert_eq!(p.dims(), 2);
    let r = p.radius();
    let side = p.side();
    let w = p.weights();
    let stride = src.stride();
    let s = src.as_slice();
    for y in ys {
        debug_assert!(y >= r && y + r < src.ny());
        let drow = dst.row_mut(y);
        for x in xs.clone() {
            debug_assert!(x >= r && x + r < stride);
            let mut acc = 0.0;
            for dy in 0..side {
                let base = (y + dy - r) * stride + x - r;
                let wrow = &w[dy * side..(dy + 1) * side];
                for (dx, &wv) in wrow.iter().enumerate() {
                    acc += wv * s[base + dx];
                }
            }
            drow[x] = acc;
        }
    }
}

/// One full 2D Jacobi step with Dirichlet boundary copy.
pub fn step_2d(src: &Grid2D, dst: &mut Grid2D, p: &Pattern) {
    let (ny, nx, r) = (src.ny(), src.nx(), p.radius());
    assert!(ny >= 2 * r && nx >= 2 * r);
    // boundary rows/cols keep previous values
    for y in 0..ny {
        if y < r || y >= ny - r {
            dst.row_mut(y).copy_from_slice(src.row(y));
        } else {
            let srow = src.row(y);
            let drow = dst.row_mut(y);
            drow[..r].copy_from_slice(&srow[..r]);
            drow[nx - r..].copy_from_slice(&srow[nx - r..]);
        }
    }
    step_range_2d(src, dst, p, r..ny - r, r..nx - r);
}

/// Run `t` Jacobi steps on a 2D ping-pong pair.
pub fn sweep_2d(pp: &mut PingPong<Grid2D>, p: &Pattern, t: usize) {
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_2d(src, dst, p);
        pp.swap();
    }
}

/// One Jacobi step on the cuboid `zs x ys x xs` of a 3D grid.
pub fn step_range_3d(
    src: &Grid3D,
    dst: &mut Grid3D,
    p: &Pattern,
    zs: core::ops::Range<usize>,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    debug_assert_eq!(p.dims(), 3);
    let r = p.radius();
    let side = p.side();
    let w = p.weights();
    let (sy, sz) = (src.stride_y(), src.stride_z());
    let s = src.as_slice();
    for z in zs {
        for y in ys.clone() {
            let drow = dst.row_mut(z, y);
            for x in xs.clone() {
                let mut acc = 0.0;
                for dz in 0..side {
                    for dy in 0..side {
                        let base = (z + dz - r) * sz + (y + dy - r) * sy + x - r;
                        let wrow = &w[(dz * side + dy) * side..(dz * side + dy + 1) * side];
                        for (dx, &wv) in wrow.iter().enumerate() {
                            acc += wv * s[base + dx];
                        }
                    }
                }
                drow[x] = acc;
            }
        }
    }
}

/// One full 3D Jacobi step with Dirichlet boundary copy.
pub fn step_3d(src: &Grid3D, dst: &mut Grid3D, p: &Pattern) {
    let (nz, ny, nx, r) = (src.nz(), src.ny(), src.nx(), p.radius());
    assert!(nz >= 2 * r && ny >= 2 * r && nx >= 2 * r);
    for z in 0..nz {
        for y in 0..ny {
            let interior_zy = z >= r && z < nz - r && y >= r && y < ny - r;
            if !interior_zy {
                dst.row_mut(z, y).copy_from_slice(src.row(z, y));
            } else {
                let srow = src.row(z, y);
                let drow = dst.row_mut(z, y);
                drow[..r].copy_from_slice(&srow[..r]);
                drow[nx - r..].copy_from_slice(&srow[nx - r..]);
            }
        }
    }
    step_range_3d(src, dst, p, r..nz - r, r..ny - r, r..nx - r);
}

/// Run `t` Jacobi steps on a 3D ping-pong pair.
pub fn sweep_3d(pp: &mut PingPong<Grid3D>, p: &Pattern, t: usize) {
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_3d(src, dst, p);
        pp.swap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::fold;
    use crate::kernels;

    #[test]
    fn heat1d_conserves_mass_interior() {
        let p = kernels::heat1d();
        let n = 65; // odd: cell n/2 is the exact mirror center
        let g = Grid1D::from_fn(n, |i| if i == n / 2 { 1.0 } else { 0.0 });
        let mut pp = PingPong::new(g);
        sweep_1d(&mut pp, &p, 10);
        let total: f64 = pp.current().as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "diffusion conserves mass");
        // symmetric initial condition stays symmetric
        let s = pp.current().as_slice();
        for i in 0..n {
            assert!((s[i] - s[n - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn folded_pattern_equals_two_steps_1d() {
        let p = kernels::heat1d();
        let f = fold(&p, 2);
        let n = 50;
        let g = Grid1D::from_fn(n, |i| (i as f64 * 0.3).sin());
        let mut a = PingPong::new(g.clone());
        sweep_1d(&mut a, &p, 2);
        let mut b = PingPong::new(g);
        sweep_1d(&mut b, &f, 1);
        // interiors match except within R of the boundary where the
        // folded stencil's wider Dirichlet band differs
        let (sa, sb) = (a.current().as_slice(), b.current().as_slice());
        for i in 2..n - 2 {
            assert!((sa[i] - sb[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn boundary_is_dirichlet_2d() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(8, 8, |y, x| (y * 8 + x) as f64);
        let mut pp = PingPong::new(g.clone());
        sweep_2d(&mut pp, &p, 3);
        let cur = pp.current();
        for x in 0..8 {
            assert_eq!(cur[(0, x)], g[(0, x)]);
            assert_eq!(cur[(7, x)], g[(7, x)]);
            assert_eq!(cur[(x, 0)], g[(x, 0)]);
            assert_eq!(cur[(x, 7)], g[(x, 7)]);
        }
    }

    #[test]
    fn folded_pattern_equals_two_steps_2d() {
        let p = kernels::heat2d();
        let f = fold(&p, 2);
        let g = Grid2D::from_fn(16, 16, |y, x| ((y * 31 + x * 17) % 13) as f64);
        let mut a = PingPong::new(g.clone());
        sweep_2d(&mut a, &p, 2);
        let mut b = PingPong::new(g);
        sweep_2d(&mut b, &f, 1);
        for y in 2..14 {
            for x in 2..14 {
                assert!(
                    (a.current()[(y, x)] - b.current()[(y, x)]).abs() < 1e-12,
                    "({y},{x})"
                );
            }
        }
    }

    #[test]
    fn folded_pattern_equals_two_steps_3d() {
        let p = kernels::heat3d();
        let f = fold(&p, 2);
        let g = Grid3D::from_fn(10, 10, 10, |z, y, x| ((z * 7 + y * 5 + x * 3) % 11) as f64);
        let mut a = PingPong::new(g.clone());
        sweep_3d(&mut a, &p, 2);
        let mut b = PingPong::new(g);
        sweep_3d(&mut b, &f, 1);
        for z in 2..8 {
            for y in 2..8 {
                for x in 2..8 {
                    assert!(
                        (a.current()[(z, y, x)] - b.current()[(z, y, x)]).abs() < 1e-12,
                        "({z},{y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn gb_asymmetric_3x3_hand_check() {
        let p = kernels::gb();
        let g = Grid2D::from_fn(3, 3, |y, x| (1 + y * 3 + x) as f64);
        let mut pp = PingPong::new(g);
        sweep_2d(&mut pp, &p, 1);
        // hand-computed weighted sum at the center
        let w = p.weights();
        let expect: f64 = w.iter().zip(1..=9).map(|(wv, v)| wv * v as f64).sum();
        assert!((pp.current()[(1, 1)] - expect).abs() < 1e-12);
    }
}
