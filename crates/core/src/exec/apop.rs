//! APOP: American put stock option pricing — a 1D 3-point stencil over
//! *two* input arrays (paper Table 1: 6 points, two arrays).
//!
//! Binomial-lattice backward induction with an early-exercise check:
//!
//! ```text
//! v'[i] = max(payoff[i], wd*v[i-1] + wm*v[i] + wu*v[i+1])
//! ```
//!
//! The `max` makes the kernel nonlinear, so temporal folding cannot be
//! exact: the folded variant applies the linear two-step composition and
//! then the exercise check once per folded step — a *Bermudan*
//! approximation (exercise allowed every m-th step), which is the same
//! semantic trade any m-step fusion of this kernel must make. Correctness
//! tests therefore compare each vector executor against the scalar
//! executor *of the same m*.

use crate::pattern::Pattern;
use stencil_grid::{Grid1D, PingPong};
use stencil_simd::SimdF64;

/// APOP kernel parameters: linear taps plus the payoff array.
#[derive(Debug, Clone)]
pub struct Apop {
    /// Linear taps `[wd, wm, wu]` (includes the discount factor).
    pub taps: [f64; 3],
    /// Intrinsic (early-exercise) values, same length as the value grid.
    pub payoff: Grid1D,
}

impl Apop {
    /// Standard test instance: strike `k`, spot grid `s_i = i * ds`,
    /// risk-neutral taps summing to `1/(1+r_step)`.
    pub fn new(n: usize, strike: f64, ds: f64) -> Self {
        let discount = 1.0 / 1.0005;
        let taps = [0.5 * discount, 0.0, 0.5 * discount];
        let payoff = Grid1D::from_fn(n, |i| (strike - i as f64 * ds).max(0.0));
        Self { taps, payoff }
    }

    /// Initial value grid = payoff at expiry.
    pub fn initial_values(&self) -> Grid1D {
        self.payoff.clone()
    }

    /// Linear part as a [`Pattern`] (for folding and cost analysis).
    pub fn linear_pattern(&self) -> Pattern {
        Pattern::new_1d(&self.taps)
    }

    /// The paper counts APOP as 6 points: 3 taps + 3 accesses of the
    /// second array (payoff compare). Flops per point per step.
    pub fn flops_per_point(&self) -> usize {
        2 * 3 + 1 // 3 madds + 1 max
    }
}

/// One scalar step with exercise check on `[lo, hi)`.
pub fn step_range_scalar(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    payoff: &[f64],
    lo: usize,
    hi: usize,
) {
    let r = taps.len() / 2;
    for i in lo..hi {
        let mut acc = 0.0;
        for (k, &w) in taps.iter().enumerate() {
            acc += w * src[i + k - r];
        }
        dst[i] = acc.max(payoff[i]);
    }
}

/// One vectorized step with exercise check on `[lo, hi)`.
pub fn step_range<V: SimdF64>(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    payoff: &[f64],
    lo: usize,
    hi: usize,
) {
    let r = taps.len() / 2;
    let vl = V::LANES;
    let mut i = lo;
    while i + vl <= hi {
        let mut acc = V::zero();
        for (k, &w) in taps.iter().enumerate() {
            // SAFETY: i+k-r+vl <= hi+r <= src.len()
            let v = unsafe { V::load(src.as_ptr().add(i + k - r)) };
            acc = v.mul_add(V::splat(w), acc);
        }
        // SAFETY: same bounds.
        let pay = unsafe { V::load(payoff.as_ptr().add(i)) };
        // SAFETY: i+vl <= hi
        unsafe { acc.max(pay).store(dst.as_mut_ptr().add(i)) };
        i += vl;
    }
    step_range_scalar(src, dst, taps, payoff, i, hi);
}

/// Full step with Dirichlet boundary (deep-in/out-of-the-money ends are
/// pinned to their intrinsic values).
fn full_step<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64], payoff: &[f64]) {
    let n = src.len();
    let r = taps.len() / 2;
    dst[..r].copy_from_slice(&src[..r]);
    dst[n - r..].copy_from_slice(&src[n - r..]);
    step_range::<V>(src, dst, taps, payoff, r, n - r);
}

/// Backward induction for `t` steps, exercise check every step (m = 1).
pub fn sweep<V: SimdF64>(apop: &Apop, t: usize) -> Grid1D {
    let mut pp = PingPong::new(apop.initial_values());
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        full_step::<V>(
            src.as_slice(),
            dst.as_mut_slice(),
            &apop.taps,
            apop.payoff.as_slice(),
        );
        pp.swap();
    }
    pp.into_current()
}

/// Folded backward induction: the linear 2-step composition through the
/// register-transpose square kernel, then one exercise check (Bermudan
/// approximation). Leftover odd steps run unfolded.
pub fn sweep_folded<V: SimdF64>(apop: &Apop, m: usize, t: usize) -> Grid1D {
    let folded = crate::folding::fold(&apop.linear_pattern(), m);
    let taps = folded.weights();
    let rr = folded.radius();
    let mut pp = PingPong::new(apop.initial_values());
    let pay = apop.payoff.as_slice().to_vec();
    for _ in 0..t / m {
        let (src, dst) = pp.src_dst();
        let (s, d) = (src.as_slice(), dst.as_mut_slice());
        let n = s.len();
        d[..rr].copy_from_slice(&s[..rr]);
        d[n - rr..].copy_from_slice(&s[n - rr..]);
        // linear m-step through the register-folded square kernel
        crate::exec::folded::step_squares_range_1d::<V>(s, d, taps, rr, n - rr);
        // exercise check once per folded step
        let mut i = rr;
        let vl = V::LANES;
        while i + vl <= n - rr {
            // SAFETY: bounds checked by the loop condition.
            unsafe {
                let v = V::load(d.as_ptr().add(i));
                let pv = V::load(pay.as_ptr().add(i));
                v.max(pv).store(d.as_mut_ptr().add(i));
            }
            i += vl;
        }
        for j in i..n - rr {
            d[j] = d[j].max(pay[j]);
        }
        pp.swap_folded(m);
    }
    for _ in 0..t % m {
        let (src, dst) = pp.src_dst();
        full_step::<V>(
            src.as_slice(),
            dst.as_mut_slice(),
            &apop.taps,
            apop.payoff.as_slice(),
        );
        pp.swap();
    }
    pp.into_current()
}

/// Range-based folded APOP step for tiled execution: the linear m-step
/// composition through the register-transpose square kernel, then one
/// vectorized exercise check over the range. Reads stay within the
/// folded radius of `[lo, hi)`.
pub fn step_folded_range<V: SimdF64>(
    src: &[f64],
    dst: &mut [f64],
    folded_taps: &[f64],
    payoff: &[f64],
    lo: usize,
    hi: usize,
) {
    crate::exec::folded::step_squares_range_1d::<V>(src, dst, folded_taps, lo, hi);
    let vl = V::LANES;
    let mut i = lo;
    while i + vl <= hi {
        // SAFETY: bounds checked by the loop condition.
        unsafe {
            let v = V::load(dst.as_ptr().add(i));
            let pv = V::load(payoff.as_ptr().add(i));
            v.max(pv).store(dst.as_mut_ptr().add(i));
        }
        i += vl;
    }
    for j in i..hi {
        dst[j] = dst[j].max(payoff[j]);
    }
}

/// Scalar reference for the folded (Bermudan) semantics.
pub fn sweep_folded_scalar(apop: &Apop, m: usize, t: usize) -> Grid1D {
    let folded = crate::folding::fold(&apop.linear_pattern(), m);
    let taps = folded.weights();
    let rr = folded.radius();
    let pay = apop.payoff.as_slice().to_vec();
    let mut pp = PingPong::new(apop.initial_values());
    for _ in 0..t / m {
        let (src, dst) = pp.src_dst();
        let (s, d) = (src.as_slice(), dst.as_mut_slice());
        let n = s.len();
        d[..rr].copy_from_slice(&s[..rr]);
        d[n - rr..].copy_from_slice(&s[n - rr..]);
        for i in rr..n - rr {
            let mut acc = 0.0;
            for (k, &w) in taps.iter().enumerate() {
                acc += w * s[i + k - rr];
            }
            d[i] = acc.max(pay[i]);
        }
        pp.swap_folded(m);
    }
    for _ in 0..t % m {
        let (src, dst) = pp.src_dst();
        let (s, d) = (src.as_slice(), dst.as_mut_slice());
        let n = s.len();
        d[..1].copy_from_slice(&s[..1]);
        d[n - 1..].copy_from_slice(&s[n - 1..]);
        step_range_scalar(s, d, &apop.taps, &pay, 1, n - 1);
        pp.swap();
    }
    pp.into_current()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn scalar_sweep(apop: &Apop, t: usize) -> Grid1D {
        let mut pp = PingPong::new(apop.initial_values());
        for _ in 0..t {
            let (src, dst) = pp.src_dst();
            let (s, d) = (src.as_slice(), dst.as_mut_slice());
            let n = s.len();
            d[..1].copy_from_slice(&s[..1]);
            d[n - 1..].copy_from_slice(&s[n - 1..]);
            step_range_scalar(s, d, &apop.taps, apop.payoff.as_slice(), 1, n - 1);
            pp.swap();
        }
        pp.into_current()
    }

    #[test]
    fn vectorized_matches_scalar() {
        let apop = Apop::new(203, 50.0, 0.5);
        let want = scalar_sweep(&apop, 10);
        let got4 = sweep::<NativeF64x4>(&apop, 10);
        let got8 = sweep::<NativeF64x8>(&apop, 10);
        assert!(max_abs_diff(want.as_slice(), got4.as_slice()) < 1e-12);
        assert!(max_abs_diff(want.as_slice(), got8.as_slice()) < 1e-12);
    }

    #[test]
    fn folded_matches_folded_scalar() {
        let apop = Apop::new(160, 40.0, 0.5);
        for t in [6usize, 7] {
            let want = sweep_folded_scalar(&apop, 2, t);
            let got = sweep_folded::<NativeF64x4>(&apop, 2, t);
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12,
                "t={t}"
            );
        }
    }

    #[test]
    fn value_dominates_payoff() {
        // American option value can never fall below intrinsic value.
        let apop = Apop::new(120, 30.0, 0.5);
        let v = sweep::<NativeF64x4>(&apop, 50);
        for i in 1..119 {
            assert!(v[i] >= apop.payoff[i] - 1e-12, "i={i}");
        }
    }

    #[test]
    fn bermudan_bounds_american() {
        // Fewer exercise opportunities -> value no higher than American.
        let apop = Apop::new(120, 30.0, 0.5);
        let american = scalar_sweep(&apop, 20);
        let bermudan = sweep_folded_scalar(&apop, 2, 20);
        for i in 4..116 {
            assert!(bermudan[i] <= american[i] + 1e-12, "i={i}");
        }
    }
}
