//! Sweep executors.
//!
//! Each submodule implements one of the vectorization schemes the paper
//! evaluates (Fig. 8):
//!
//! | module        | paper name            | data organization |
//! |---------------|----------------------|-------------------|
//! | [`scalar`]    | (reference)          | none |
//! | [`multiload`] | Multiple Loads       | one unaligned load per tap |
//! | [`reorg`]     | Data Reorganization  | aligned loads + per-tap shuffles |
//! | [`dlt`]       | DLT                  | global dimension-lifted transpose |
//! | [`xlayout`]   | Our                  | local transpose layout (§2.2) |
//! | [`folded`]    | Our (m steps)        | register transpose + computation folding (§3.3) |
//! | [`folded3d`]  | Our (m steps, 3D)    | z-ring plane rotation + folding (dedicated 3D pipeline) |
//! | [`apop`]      | APOP benchmark       | two-array 1D3P with early-exercise max |
//! | [`life`]      | Game of Life         | 8-neighbour count + branchless rule |
//!
//! All step functions take explicit index ranges so the tiling layer can
//! drive them over arbitrary tile regions; full-sweep helpers handle the
//! Dirichlet boundary copy.

pub mod apop;
pub mod dlt;
pub mod folded;
pub mod folded3d;
pub mod life;
pub mod multiload;
pub mod reorg;
pub mod scalar;
pub mod xlayout;

use std::cell::UnsafeCell;

/// Dispatch a kernel implementation on the tap count, monomorphizing the
/// common stencil sizes so LLVM sees constant trip counts — full
/// unrolling plus register allocation of the tap window, worth 3-7x on
/// the hot loops. `T = 0` selects the dynamic-length fallback path
/// inside the implementation (`tap_count::<T>(taps)`).
macro_rules! dispatch_taps {
    ($impl_fn:ident, $V:ty, $taps:expr, ($($arg:expr),*)) => {{
        let taps: &[f64] = $taps;
        match taps.len() {
            3 => $impl_fn::<$V, 3>($($arg),*),
            5 => $impl_fn::<$V, 5>($($arg),*),
            7 => $impl_fn::<$V, 7>($($arg),*),
            9 => $impl_fn::<$V, 9>($($arg),*),
            11 => $impl_fn::<$V, 11>($($arg),*),
            13 => $impl_fn::<$V, 13>($($arg),*),
            17 => $impl_fn::<$V, 17>($($arg),*),
            _ => $impl_fn::<$V, 0>($($arg),*),
        }
    }};
}
pub(crate) use dispatch_taps;

/// Effective tap count for a `dispatch_taps` monomorphization.
#[inline(always)]
pub(crate) fn tap_count<const T: usize>(taps: &[f64]) -> usize {
    if T == 0 {
        taps.len()
    } else {
        debug_assert_eq!(taps.len(), T);
        T
    }
}

/// A `Sync` wrapper handing out raw mutable access to a slice for
/// *disjoint* parallel writes (each tile writes only its own region).
///
/// # Safety contract
/// Callers must guarantee that concurrent `slice_mut` regions never
/// overlap; the tiling layer's region disjointness provides this.
pub struct SharedMut<'a> {
    data: &'a UnsafeCell<[f64]>,
}

// SAFETY: see the struct-level contract; all synchronization is
// structural (disjoint regions + pool barriers).
unsafe impl Sync for SharedMut<'_> {}
unsafe impl Send for SharedMut<'_> {}

impl<'a> SharedMut<'a> {
    /// Wrap an exclusive slice.
    pub fn new(slice: &'a mut [f64]) -> Self {
        // SAFETY: &mut [f64] -> &UnsafeCell<[f64]> is the blessed cast.
        let data = unsafe { &*(slice as *mut [f64] as *const UnsafeCell<[f64]>) };
        Self { data }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        // Reading the length off the fat pointer needs no dereference.
        let ptr: *mut [f64] = self.data.get();
        ptr.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw mutable view of the whole slice.
    ///
    /// # Safety
    /// The caller must only touch a region no other thread touches
    /// concurrently.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [f64] {
        &mut *self.data.get()
    }

    /// Shared view of the whole slice.
    ///
    /// # Safety
    /// The caller must not read a region another thread writes
    /// concurrently.
    pub unsafe fn slice(&self) -> &[f64] {
        &*self.data.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_mut_disjoint_writes() {
        let mut v = vec![0.0f64; 100];
        {
            let sm = SharedMut::new(&mut v);
            std::thread::scope(|s| {
                for part in 0..4 {
                    let sm = &sm;
                    s.spawn(move || {
                        // SAFETY: parts are disjoint 25-element regions.
                        let sl = unsafe { sm.slice_mut() };
                        for x in &mut sl[part * 25..(part + 1) * 25] {
                            *x = part as f64;
                        }
                    });
                }
            });
            assert_eq!(sm.len(), 100);
        }
        assert_eq!(v[0], 0.0);
        assert_eq!(v[99], 3.0);
        assert_eq!(v[50], 2.0);
    }
}
