//! Register-folded executor — the paper's §3.3 pipeline ("Our (m steps)").
//!
//! Memory stays in the original layout; each `vl x vl` square of grid
//! points is processed entirely in registers:
//!
//! 1. **Vertical folding** — fold the `vl + 2R` surrounding rows with
//!    each fresh counterpart's λ column (one row-vector load per row,
//!    *shared* by every counterpart).
//! 2. **Register transpose** — the §2.3 two/three-stage transpose turns
//!    counterpart rows into per-x columns.
//! 3. **Horizontal folding** — combine counterpart columns across
//!    x-offsets with the planned coefficients (the separable case touches
//!    a single counterpart, cf. Eq. 6).
//! 4. **Weighted transpose** — transpose the output square back and store
//!    rows (the paper's optional final transpose; we always restore the
//!    original layout so tiling layers see one consistent layout).
//!
//! **Shifts reusing** (§3.4): the transposed counterpart columns of the
//! current square are carried over as the left-halo of the next square —
//! each column is computed exactly once per sweep.
//!
//! The 1D variant ([`step_squares_range_1d`]) degenerates to: transpose
//! square, horizontal fold with assembled block-edge vectors, transpose
//! back — matching the paper's "view 4N points as a 4 x N grid".

#![allow(clippy::needless_range_loop)]
// indexed loops here are offset
// windows (ext[j + k]) where iterator rewrites obscure the paper's
// notation and codegen alike
// Kernel entry points mirror the (plan, grid, strides, block) parameter
// sets of the paper's pseudocode.
#![allow(clippy::too_many_arguments)]

use crate::folding::fold;
use crate::pattern::Pattern;
use crate::plan::FoldPlan;
use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};
use stencil_simd::SimdF64;

/// Upper bound on folded radius supported by the fixed-size register
/// windows (1D/2D). 3D is bounded by [`MAX_R3`].
pub const MAX_R: usize = 8;
/// Folded-radius bound for the 3D kernels (both the legacy
/// reload-per-block pipeline here and the z-ring pipeline in
/// [`crate::exec::folded3d`]). Deep enough that `Folded { m: 2 }` stays
/// available for radius-2 3D stencils; the per-width register budget is
/// enforced at compile time by `fold_radius_cap`, not here.
pub const MAX_R3: usize = 4;
/// Upper bound on fresh counterparts (incl. the raw square basis).
pub const MAX_F: usize = 10;

/// Precomputed, executor-friendly form of a [`FoldPlan`].
pub struct FoldedKernel {
    plan: FoldPlan,
    /// `(slab_index, weight)` vertical taps per fresh id (empty for id 0).
    taps_by_id: Vec<Vec<(usize, f64)>>,
    /// Flattened horizontal terms `(dx, fresh_id, coeff)`.
    hterms: Vec<(isize, usize, f64)>,
    /// Fresh ids that must actually be computed per square.
    used_ids: Vec<usize>,
}

impl FoldedKernel {
    /// Plan an `m`-step folded kernel for `p`.
    pub fn new(p: &Pattern, m: usize) -> Self {
        Self::from_plan(FoldPlan::new(p, m))
    }

    /// Build the executor form of an already-computed [`FoldPlan`]
    /// (lets a compile step validate the plan first and reuse it).
    pub fn from_plan(plan: FoldPlan) -> Self {
        assert!(plan.fresh.len() <= MAX_F, "too many counterparts");
        let taps_by_id: Vec<_> = (0..plan.fresh.len()).map(|id| plan.fold_taps(id)).collect();
        let mut hterms = Vec::new();
        let rr = plan.radius as isize;
        for (ci, terms) in plan.h.iter().enumerate() {
            for t in terms {
                hterms.push((ci as isize - rr, t.id, t.coeff));
            }
        }
        let mut used_ids: Vec<usize> = hterms.iter().map(|&(_, id, _)| id).collect();
        used_ids.sort_unstable();
        used_ids.dedup();
        Self {
            plan,
            taps_by_id,
            hterms,
            used_ids,
        }
    }

    /// Folded radius `R = m * r`.
    pub fn radius(&self) -> usize {
        self.plan.radius
    }

    /// Unrolling factor m.
    pub fn m(&self) -> usize {
        self.plan.m
    }

    /// The folded pattern Λ (for scalar fallbacks and tests).
    pub fn folded(&self) -> &Pattern {
        &self.plan.folded
    }

    /// Fresh ids referenced by at least one horizontal term, in dense
    /// window order (shared with the z-ring pipeline).
    pub(crate) fn used_ids(&self) -> &[usize] {
        &self.used_ids
    }

    /// `(slab_index, weight)` vertical taps per fresh id.
    pub(crate) fn taps_by_id(&self) -> &[Vec<(usize, f64)>] {
        &self.taps_by_id
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FoldPlan {
        &self.plan
    }

    /// True when the folded matrix is rank-1 (separable): exactly one
    /// fresh counterpart, dense over the full column, and every
    /// horizontal offset contributes a single scaled term of it — the
    /// paper's Fig. 5 case (uniform boxes). Enables the fully-unrolled
    /// fast path.
    pub fn is_separable(&self) -> bool {
        let side = 2 * self.plan.radius + 1;
        self.used_ids == [1]
            && self.taps_by_id.len() > 1
            && self.taps_by_id[1].len() == side.pow(self.plan.dims as u32 - 1)
            && self.taps_by_id[1]
                .iter()
                .enumerate()
                .all(|(i, &(slab, _))| slab == i)
            && self.plan.h.iter().all(|t| t.len() == 1 && t[0].id == 1)
    }
}

/// Per-call splatted form of the plan: broadcasts hoisted out of the
/// block loops (they would otherwise re-issue per square). Shared with
/// the z-ring 3D pipeline ([`crate::exec::folded3d`]).
pub(crate) struct PlanV<V> {
    /// `(slab_index, splat(w))` vertical taps per fresh id.
    pub(crate) taps: Vec<Vec<(usize, V)>>,
    /// Horizontal terms grouped by x-offset: `hcols[dx + R]` lists
    /// `(fresh_id, splat(coeff))` — usually a single term per offset.
    pub(crate) hcols: Vec<Vec<(usize, V)>>,
}

impl<V: SimdF64> PlanV<V> {
    pub(crate) fn new(k: &FoldedKernel) -> Self {
        let rr = k.plan.radius as isize;
        let mut hcols = vec![Vec::new(); 2 * k.plan.radius + 1];
        for &(dx, id, c) in &k.hterms {
            let u = k.used_ids.iter().position(|&i| i == id).expect("used id");
            hcols[(dx + rr) as usize].push((u, V::splat(c)));
        }
        Self {
            taps: k
                .taps_by_id
                .iter()
                .map(|t| t.iter().map(|&(s, w)| (s, V::splat(w))).collect())
                .collect(),
            hcols,
        }
    }
}

// ---------------------------------------------------------------------
// 1D squares kernel
// ---------------------------------------------------------------------

/// One (possibly folded) step on `dst[lo..hi]` of a 1D grid in original
/// layout: on-the-fly register transpose per `vl*vl` square, horizontal
/// fold, transpose back. Block-edge dependents are built from scalar edge
/// loads, so all reads stay within `[lo - R, hi + R)` — the contract the
/// tessellation tiles rely on. Requires `R = taps.len()/2 <= V::LANES`
/// and `lo >= R`, `hi + R <= src.len()`.
pub fn step_squares_range_1d<V: SimdF64>(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    lo: usize,
    hi: usize,
) {
    crate::exec::dispatch_taps!(step_squares_range_1d_t, V, taps, (src, dst, taps, lo, hi));
}

fn step_squares_range_1d_t<V: SimdF64, const T: usize>(
    src: &[f64],
    dst: &mut [f64],
    taps: &[f64],
    lo: usize,
    hi: usize,
) {
    let nt = crate::exec::tap_count::<T>(taps);
    let vl = V::LANES;
    let rr = nt / 2;
    debug_assert!(
        rr <= vl,
        "validated by Solver::compile (1D fold cap = lanes)"
    );
    if rr > vl {
        // unreachable through the Plan API (compile rejects the fold);
        // degrade instead of panicking for direct kernel callers
        return crate::exec::scalar::step_range_1d(src, dst, taps, lo, hi);
    }
    debug_assert!(lo >= rr && hi + rr <= src.len());
    let square = vl * vl;
    let nsq = (hi.saturating_sub(lo)) / square;

    // hoist tap broadcasts out of the sweep
    let mut tapv = [V::zero(); 17];
    for k in 0..nt {
        tapv[k] = V::splat(taps[k]);
    }

    for q in 0..nsq {
        let s = lo + q * square;
        // load + transpose the square; the transposed vectors land in the
        // middle of an extended window whose edges are the assembled
        // dependents (built once per square from scalar edge loads).
        let mut ext = [V::zero(); 8 + 2 * 8];
        for (j, v) in ext[rr..rr + vl].iter_mut().enumerate() {
            // SAFETY: s + (j+1)*vl <= hi <= src.len()
            *v = unsafe { V::load(src.as_ptr().add(s + j * vl)) };
        }
        V::transpose(&mut ext[rr..rr + vl]);
        for k in 1..=rr {
            ext[rr - k] = ext[rr + vl - k].shift_in_left(V::splat(src[s - k]));
            ext[rr + vl - 1 + k] =
                ext[rr + k - 1].shift_in_right(V::splat(src[s + square + k - 1]));
        }
        // horizontal fold
        let mut out = [V::zero(); 8];
        for (j, o) in out[..vl].iter_mut().enumerate() {
            let mut acc = ext[j].mul(tapv[0]);
            for k in 1..nt {
                acc = ext[j + k].mul_add(tapv[k], acc);
            }
            *o = acc;
        }
        // weighted transpose back + store
        V::transpose(&mut out[..vl]);
        for (j, o) in out[..vl].iter().enumerate() {
            // SAFETY: same bounds as the load above.
            unsafe { o.store(dst.as_mut_ptr().add(s + j * vl)) };
        }
    }
    // scalar tail
    for i in lo + nsq * square..hi {
        let mut acc = 0.0;
        for (k, &w) in taps.iter().enumerate() {
            acc += w * src[i + k - rr];
        }
        dst[i] = acc;
    }
}

/// Full 1D folded step (Dirichlet band of width `R`).
pub fn step_1d<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64]) {
    let n = src.len();
    let rr = taps.len() / 2;
    dst[..rr].copy_from_slice(&src[..rr]);
    dst[n - rr..].copy_from_slice(&src[n - rr..]);
    step_squares_range_1d::<V>(src, dst, taps, rr, n - rr);
}

/// Block-free "Our (m steps)" sweep in original layout (register
/// transpose on the fly). Leftover `t % m` steps run unfolded.
pub fn sweep_1d<V: SimdF64>(grid: &Grid1D, p: &Pattern, m: usize, t: usize) -> Grid1D {
    let folded = fold(p, m);
    let mut pp = PingPong::new(grid.clone());
    for _ in 0..t / m {
        let (src, dst) = pp.src_dst();
        step_1d::<V>(src.as_slice(), dst.as_mut_slice(), folded.weights());
        pp.swap_folded(m);
    }
    for _ in 0..t % m {
        let (src, dst) = pp.src_dst();
        step_1d::<V>(src.as_slice(), dst.as_mut_slice(), p.weights());
        pp.swap();
    }
    pp.into_current()
}

// ---------------------------------------------------------------------
// 2D plan-driven kernel
// ---------------------------------------------------------------------

/// Scalar construction of one transposed counterpart column: lane `j` =
/// vertical fold of counterpart `id` at `(y0 + j, x)`.
#[inline]
fn scalar_col_2d<V: SimdF64>(
    k: &FoldedKernel,
    s: &[f64],
    stride: usize,
    y0: usize,
    x: usize,
    id: usize,
) -> V {
    let vl = V::LANES;
    let rr = k.plan.radius;
    let mut lanes = [0.0f64; 8];
    for (j, lane) in lanes[..vl].iter_mut().enumerate() {
        if id == 0 {
            *lane = s[(y0 + j) * stride + x];
        } else {
            let mut acc = 0.0;
            for &(slab, w) in &k.taps_by_id[id] {
                let dy = slab as isize - rr as isize;
                let yy = (y0 + j) as isize + dy;
                acc += w * s[yy as usize * stride + x];
            }
            *lane = acc;
        }
    }
    V::from_slice(&lanes[..vl])
}

/// Compute the transposed counterpart columns of the `vl`-wide block at
/// `(y0, bx)`: `cols[id][kk]` = column `bx + kk`. Row vectors are loaded
/// once and shared by all counterparts (the flops/byte gain of §3.3).
/// One folded step on the rectangle `ys x xs` of a 2D grid (original
/// layout). All reads stay within `R` of the rectangle. Caller keeps the
/// rectangle at least `R` away from the grid boundary.
pub fn step_range_2d<V: SimdF64>(
    k: &FoldedKernel,
    src: &Grid2D,
    dst: &mut Grid2D,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let vl = V::LANES;
    let rr = k.plan.radius;
    debug_assert!(
        rr <= MAX_R && k.plan.dims == 2,
        "validated by Solver::compile"
    );
    if vl < rr.max(2) || rr > MAX_R || k.plan.dims != 2 {
        // Degenerate widths (scalar lanes, or R wider than the vector) and
        // out-of-bound radii (unreachable through the Plan API, which
        // rejects them as PlanError::InvalidFold at compile time): the
        // register pipeline has nothing to fold — plain folded sweep, no
        // panic path.
        crate::exec::scalar::step_range_2d(src, dst, &k.plan.folded, ys, xs);
        return;
    }
    // monomorphize on the folded radius: the window loops then have
    // constant trip counts and the position branches resolve statically
    if k.is_separable() {
        return match rr {
            1 => step_range_2d_sep::<V, 1>(k, src, dst, ys, xs),
            2 => step_range_2d_sep::<V, 2>(k, src, dst, ys, xs),
            3 => step_range_2d_sep::<V, 3>(k, src, dst, ys, xs),
            4 => step_range_2d_sep::<V, 4>(k, src, dst, ys, xs),
            _ => step_range_2d_r::<V, 0>(k, src, dst, ys, xs),
        };
    }
    match rr {
        1 => step_range_2d_r::<V, 1>(k, src, dst, ys, xs),
        2 => step_range_2d_r::<V, 2>(k, src, dst, ys, xs),
        3 => step_range_2d_r::<V, 3>(k, src, dst, ys, xs),
        4 => step_range_2d_r::<V, 4>(k, src, dst, ys, xs),
        _ => step_range_2d_r::<V, 0>(k, src, dst, ys, xs),
    }
}

/// Separable (rank-1) fast path: single counterpart `c1`, fully
/// const-trip loops. This is exactly Fig. 5's pipeline: vertical fold
/// with λ(1), transpose, horizontal fold with the same scaled weights,
/// weighted transpose back — with the previous square's last `R`
/// transposed columns reused as shifts.
fn step_range_2d_sep<V: SimdF64, const R: usize>(
    k: &FoldedKernel,
    src: &Grid2D,
    dst: &mut Grid2D,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let vl = V::LANES;
    let stride = src.stride();
    let s = src.as_slice();
    let (xlo, xhi) = (xs.start, xs.end);
    let nfull = (xhi - xlo) / vl;

    // broadcast the single counterpart's vertical taps and the
    // horizontal scale coefficients once
    let mut vtap = [V::zero(); 16];
    for (t, &(_, w)) in k.taps_by_id[1].iter().enumerate() {
        vtap[t] = V::splat(w);
    }
    let mut htap = [V::zero(); 16];
    for (dxi, terms) in k.plan.h.iter().enumerate() {
        htap[dxi] = V::splat(terms[0].coeff);
    }

    let mut y = ys.start;
    while y + vl <= ys.end {
        if nfull == 0 {
            crate::exec::scalar::step_range_2d(src, dst, &k.plan.folded, y..y + vl, xs.clone());
            y += vl;
            continue;
        }
        // window of transposed counterpart columns [bx - R, bx + vl + R)
        let mut win = [V::zero(); 8 + 2 * 8];
        // left tail: scalar vertical folds
        for kk in 0..R {
            win[kk] = scalar_col_2d::<V>(k, s, stride, y, xlo - R + kk, 1);
        }
        // first block
        compute_sep_block_2d::<V, R>(s, stride, y, xlo, &vtap, &mut win, R);

        for b in 0..nfull {
            let bx = xlo + b * vl;
            // lookahead: columns [bx + vl, bx + vl + R)
            if b + 1 < nfull {
                compute_sep_block_2d::<V, R>(s, stride, y, bx + vl, &vtap, &mut win, R + vl);
            } else {
                for kk in 0..R {
                    win[R + vl + kk] = scalar_col_2d::<V>(k, s, stride, y, bx + vl + kk, 1);
                }
            }
            // horizontal fold: out[kk] = sum_dx htap[dx] * win[kk + dx]
            let mut out = [V::zero(); 8];
            for (kk, o) in out[..vl].iter_mut().enumerate() {
                let mut acc = win[kk].mul(htap[0]);
                for dxi in 1..2 * R + 1 {
                    acc = win[kk + dxi].mul_add(htap[dxi], acc);
                }
                *o = acc;
            }
            V::transpose(&mut out[..vl]);
            let d = dst.as_mut_slice();
            for (j, o) in out[..vl].iter().enumerate() {
                // SAFETY: bx + vl <= xhi <= nx, rows y..y+vl inside grid.
                unsafe { o.store(d.as_mut_ptr().add((y + j) * stride + bx)) };
            }
            // shifts reuse: slide the window left by vl (tail plus the
            // freshly computed block become the next iteration's prefix)
            for kk in 0..R + vl {
                win[kk] = win[kk + vl];
            }
        }
        if xlo + nfull * vl < xhi {
            crate::exec::scalar::step_range_2d(
                src,
                dst,
                &k.plan.folded,
                y..y + vl,
                xlo + nfull * vl..xhi,
            );
        }
        y += vl;
    }
    if y < ys.end {
        crate::exec::scalar::step_range_2d(src, dst, &k.plan.folded, y..ys.end, xs);
    }
}

/// Compute the transposed single-counterpart columns of the block at
/// `(y0, bx)` into `win[at..at + vl]`.
#[inline(always)]
fn compute_sep_block_2d<V: SimdF64, const R: usize>(
    s: &[f64],
    stride: usize,
    y0: usize,
    bx: usize,
    vtap: &[V; 16],
    win: &mut [V; 8 + 2 * 8],
    at: usize,
) {
    let vl = V::LANES;
    let mut rowvec = [V::zero(); 8 + 2 * 8];
    for (t, rv) in rowvec[..vl + 2 * R].iter_mut().enumerate() {
        // SAFETY: caller keeps the block R away from grid edges.
        *rv = unsafe { V::load(s.as_ptr().add((y0 - R + t) * stride + bx)) };
    }
    let mut rows = [V::zero(); 8];
    for (j, row) in rows[..vl].iter_mut().enumerate() {
        let mut acc = rowvec[j].mul(vtap[0]);
        for t in 1..2 * R + 1 {
            acc = rowvec[j + t].mul_add(vtap[t], acc);
        }
        *row = acc;
    }
    V::transpose(&mut rows[..vl]);
    win[at..at + vl].copy_from_slice(&rows[..vl]);
}

fn step_range_2d_r<V: SimdF64, const R: usize>(
    k: &FoldedKernel,
    src: &Grid2D,
    dst: &mut Grid2D,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let vl = V::LANES;
    let rr = if R == 0 { k.plan.radius } else { R };
    let stride = src.stride();
    let s = src.as_slice();
    let (xlo, xhi) = (xs.start, xs.end);
    let nfull = (xhi - xlo) / vl;
    let pv = PlanV::<V>::new(k);
    let nids = k.used_ids.len();

    let mut y = ys.start;
    while y + vl <= ys.end {
        if nfull == 0 {
            crate::exec::scalar::step_range_2d(src, dst, &k.plan.folded, y..y + vl, xs.clone());
            y += vl;
            continue;
        }
        // sliding windows of transposed counterpart columns, one per used
        // id, indexed densely 0..nids (not by raw id) to keep them hot
        let mut win = [[V::zero(); 8 + 2 * 8]; MAX_F];
        for kk in 0..rr {
            for (u, &id) in k.used_ids.iter().enumerate() {
                win[u][kk] = scalar_col_2d::<V>(k, s, stride, y, xlo - rr + kk, id);
            }
        }
        compute_block_2d_win::<V, R>(k, &pv, s, stride, y, xlo, &mut win, rr);

        for b in 0..nfull {
            let bx = xlo + b * vl;
            if b + 1 < nfull {
                compute_block_2d_win::<V, R>(k, &pv, s, stride, y, bx + vl, &mut win, rr + vl);
            } else {
                for kk in 0..rr {
                    for (u, &id) in k.used_ids.iter().enumerate() {
                        win[u][rr + vl + kk] =
                            scalar_col_2d::<V>(k, s, stride, y, bx + vl + kk, id);
                    }
                }
            }
            // horizontal folding over the windows (ids remapped dense)
            let mut out = [V::zero(); 8];
            for (kk, o) in out[..vl].iter_mut().enumerate() {
                let mut acc = V::zero();
                for dxi in 0..2 * rr + 1 {
                    for &(u, cv) in &pv.hcols[dxi] {
                        acc = win[u][kk + dxi].mul_add(cv, acc);
                    }
                }
                *o = acc;
            }
            V::transpose(&mut out[..vl]);
            let d = dst.as_mut_slice();
            for (j, o) in out[..vl].iter().enumerate() {
                // SAFETY: bx + vl <= xhi <= nx, rows y..y+vl inside grid.
                unsafe { o.store(d.as_mut_ptr().add((y + j) * stride + bx)) };
            }
            // shifts reuse: slide each window left by vl
            for w in win[..nids].iter_mut() {
                for kk in 0..rr + vl {
                    w[kk] = w[kk + vl];
                }
            }
        }
        if xlo + nfull * vl < xhi {
            crate::exec::scalar::step_range_2d(
                src,
                dst,
                &k.plan.folded,
                y..y + vl,
                xlo + nfull * vl..xhi,
            );
        }
        y += vl;
    }
    if y < ys.end {
        crate::exec::scalar::step_range_2d(src, dst, &k.plan.folded, y..ys.end, xs);
    }
}

/// Compute all used counterparts' transposed columns of the block at
/// `(y0, bx)` into `win[u][at..at + vl]` (dense id index `u`). Row
/// vectors are loaded once and shared by every counterpart.
#[inline(always)]
fn compute_block_2d_win<V: SimdF64, const R: usize>(
    k: &FoldedKernel,
    pv: &PlanV<V>,
    s: &[f64],
    stride: usize,
    y0: usize,
    bx: usize,
    win: &mut [[V; 8 + 2 * 8]; MAX_F],
    at: usize,
) {
    let vl = V::LANES;
    let rr = if R == 0 { k.plan.radius } else { R };
    let mut rowvec = [V::zero(); 8 + 2 * MAX_R];
    for (t, rv) in rowvec[..vl + 2 * rr].iter_mut().enumerate() {
        // SAFETY: caller keeps the block R away from grid edges.
        *rv = unsafe { V::load(s.as_ptr().add((y0 - rr + t) * stride + bx)) };
    }
    for (u, &id) in k.used_ids.iter().enumerate() {
        let mut rows = [V::zero(); 8];
        if id == 0 {
            rows[..vl].copy_from_slice(&rowvec[rr..rr + vl]);
        } else {
            for (j, row) in rows[..vl].iter_mut().enumerate() {
                let mut acc = V::zero();
                for &(slab, wv) in &pv.taps[id] {
                    acc = rowvec[j + slab].mul_add(wv, acc);
                }
                *row = acc;
            }
        }
        V::transpose(&mut rows[..vl]);
        win[u][at..at + vl].copy_from_slice(&rows[..vl]);
    }
}

/// Full folded 2D step (Dirichlet band of width `R`).
pub fn step_2d<V: SimdF64>(k: &FoldedKernel, src: &Grid2D, dst: &mut Grid2D) {
    let (ny, nx) = (src.ny(), src.nx());
    let rr = k.plan.radius;
    for y in 0..ny {
        if y < rr || y >= ny - rr {
            dst.row_mut(y).copy_from_slice(src.row(y));
        } else {
            let srow = src.row(y);
            let drow = dst.row_mut(y);
            drow[..rr].copy_from_slice(&srow[..rr]);
            drow[nx - rr..].copy_from_slice(&srow[nx - rr..]);
        }
    }
    step_range_2d::<V>(k, src, dst, rr..ny - rr, rr..nx - rr);
}

/// Block-free "Our (m steps)" 2D sweep; `t % m` leftovers run unfolded
/// through the multiple-loads kernel.
pub fn sweep_2d<V: SimdF64>(grid: &Grid2D, p: &Pattern, m: usize, t: usize) -> Grid2D {
    let k = FoldedKernel::new(p, m);
    sweep_2d_with::<V>(&k, grid, p, t)
}

/// [`sweep_2d`] with the planned kernel supplied by the caller — the
/// compile-once/run-many entry point: a plan builds the [`FoldedKernel`]
/// once and reuses it across every run.
pub fn sweep_2d_with<V: SimdF64>(k: &FoldedKernel, grid: &Grid2D, p: &Pattern, t: usize) -> Grid2D {
    let m = k.m();
    let mut pp = PingPong::new(grid.clone());
    for _ in 0..t / m {
        let (src, dst) = pp.src_dst();
        step_2d::<V>(k, src, dst);
        pp.swap_folded(m);
    }
    for _ in 0..t % m {
        let (src, dst) = pp.src_dst();
        crate::exec::multiload::step_2d::<V>(src, dst, p);
        pp.swap();
    }
    pp.into_current()
}

// ---------------------------------------------------------------------
// 3D plan-driven kernel (z-major stack of 2D slices, §3.3)
// ---------------------------------------------------------------------

#[inline]
pub(crate) fn scalar_col_3d<V: SimdF64>(
    k: &FoldedKernel,
    s: &[f64],
    sy: usize,
    sz: usize,
    z0: usize,
    y0: usize,
    x: usize,
    id: usize,
) -> V {
    let vl = V::LANES;
    let rr = k.plan.radius;
    let side = 2 * rr + 1;
    let mut lanes = [0.0f64; 8];
    for (j, lane) in lanes[..vl].iter_mut().enumerate() {
        if id == 0 {
            *lane = s[z0 * sz + (y0 + j) * sy + x];
        } else {
            let mut acc = 0.0;
            for &(slab, w) in &k.taps_by_id[id] {
                let dz = (slab / side) as isize - rr as isize;
                let dy = (slab % side) as isize - rr as isize;
                let zz = (z0 as isize + dz) as usize;
                let yy = ((y0 + j) as isize + dy) as usize;
                acc += w * s[zz * sz + yy * sy + x];
            }
            *lane = acc;
        }
    }
    V::from_slice(&lanes[..vl])
}

#[inline]
fn compute_block_3d<V: SimdF64>(
    k: &FoldedKernel,
    pv: &PlanV<V>,
    s: &[f64],
    sy: usize,
    sz: usize,
    z0: usize,
    y0: usize,
    bx: usize,
    cols: &mut [[V; 8]; MAX_F],
) {
    let vl = V::LANES;
    let rr = k.plan.radius;
    let side = 2 * rr + 1;
    // shared row loads: (2R+1) planes x (vl+2R) rows
    let mut rowvec = [[V::zero(); 8 + 2 * MAX_R3]; 2 * MAX_R3 + 1];
    for (u, plane) in rowvec[..side].iter_mut().enumerate() {
        for (t, rv) in plane[..vl + 2 * rr].iter_mut().enumerate() {
            // SAFETY: caller keeps the block R away from grid edges.
            *rv = unsafe { V::load(s.as_ptr().add((z0 - rr + u) * sz + (y0 - rr + t) * sy + bx)) };
        }
    }
    for (u, &id) in k.used_ids.iter().enumerate() {
        let mut rows = [V::zero(); 8];
        if id == 0 {
            for (j, row) in rows[..vl].iter_mut().enumerate() {
                *row = rowvec[rr][rr + j];
            }
        } else {
            for (j, row) in rows[..vl].iter_mut().enumerate() {
                let mut acc = V::zero();
                for &(slab, wv) in &pv.taps[id] {
                    let (pz, py) = (slab / side, slab % side);
                    acc = rowvec[pz][j + py].mul_add(wv, acc);
                }
                *row = acc;
            }
        }
        V::transpose(&mut rows[..vl]);
        cols[u][..vl].copy_from_slice(&rows[..vl]);
    }
}

/// One folded step on the cuboid `zs x ys x xs` of a 3D grid.
pub fn step_range_3d<V: SimdF64>(
    k: &FoldedKernel,
    src: &Grid3D,
    dst: &mut Grid3D,
    zs: core::ops::Range<usize>,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let vl = V::LANES;
    let rr = k.plan.radius;
    debug_assert!(
        rr <= MAX_R3 && k.plan.dims == 3,
        "validated by Solver::compile"
    );
    if vl < rr.max(2) || rr > MAX_R3 || k.plan.dims != 3 {
        // Same no-panic degradation contract as step_range_2d: widths and
        // radii the register window cannot hold fall back to the scalar
        // folded sweep (Solver::compile rejects them before a Plan exists).
        crate::exec::scalar::step_range_3d(src, dst, &k.plan.folded, zs, ys, xs);
        return;
    }
    let (sy, sz) = (src.stride_y(), src.stride_z());
    let s = src.as_slice();
    let (xlo, xhi) = (xs.start, xs.end);
    let nfull = (xhi - xlo) / vl;
    let pv = PlanV::<V>::new(k);

    for z in zs {
        let mut y = ys.start;
        while y + vl <= ys.end {
            if nfull == 0 {
                crate::exec::scalar::step_range_3d(
                    src,
                    dst,
                    &k.plan.folded,
                    z..z + 1,
                    y..y + vl,
                    xs.clone(),
                );
                y += vl;
                continue;
            }
            let mut tail = [[V::zero(); MAX_R]; MAX_F];
            for kk in 0..rr {
                let x = xlo - rr + kk;
                for (u, &id) in k.used_ids.iter().enumerate() {
                    tail[u][kk] = scalar_col_3d::<V>(k, s, sy, sz, z, y, x, id);
                }
            }
            let mut bufs = [[[V::zero(); 8]; MAX_F]; 2];
            let mut cb = 0usize;
            compute_block_3d::<V>(k, &pv, s, sy, sz, z, y, xlo, &mut bufs[0]);

            for b in 0..nfull {
                let bx = xlo + b * vl;
                if b + 1 < nfull {
                    let (a0, a1) = bufs.split_at_mut(1);
                    let head = if cb == 0 { &mut a1[0] } else { &mut a0[0] };
                    compute_block_3d::<V>(k, &pv, s, sy, sz, z, y, bx + vl, head);
                } else {
                    let head = &mut bufs[1 - cb];
                    for kk in 0..rr {
                        let x = bx + vl + kk;
                        for (u, &id) in k.used_ids.iter().enumerate() {
                            head[u][kk] = scalar_col_3d::<V>(k, s, sy, sz, z, y, x, id);
                        }
                    }
                }
                let cur = &bufs[cb];
                let head = &bufs[1 - cb];
                let mut out = [V::zero(); 8];
                for (kk, o) in out[..vl].iter_mut().enumerate() {
                    let mut acc = V::zero();
                    for dxi in 0..2 * rr + 1 {
                        let pos = kk as isize + dxi as isize - rr as isize;
                        for &(u, cv) in &pv.hcols[dxi] {
                            let col = if pos < 0 {
                                tail[u][(pos + rr as isize) as usize]
                            } else if (pos as usize) < vl {
                                cur[u][pos as usize]
                            } else {
                                head[u][pos as usize - vl]
                            };
                            acc = col.mul_add(cv, acc);
                        }
                    }
                    *o = acc;
                }
                V::transpose(&mut out[..vl]);
                let d = dst.as_mut_slice();
                for (j, o) in out[..vl].iter().enumerate() {
                    // SAFETY: in-bounds by the range contract.
                    unsafe { o.store(d.as_mut_ptr().add(z * sz + (y + j) * sy + bx)) };
                }
                for u in 0..k.used_ids.len() {
                    for kk in 0..rr {
                        tail[u][kk] = cur[u][vl - rr + kk];
                    }
                }
                cb = 1 - cb;
            }
            if xlo + nfull * vl < xhi {
                crate::exec::scalar::step_range_3d(
                    src,
                    dst,
                    &k.plan.folded,
                    z..z + 1,
                    y..y + vl,
                    xlo + nfull * vl..xhi,
                );
            }
            y += vl;
        }
        if y < ys.end {
            crate::exec::scalar::step_range_3d(
                src,
                dst,
                &k.plan.folded,
                z..z + 1,
                y..ys.end,
                xs.clone(),
            );
        }
    }
}

/// Full folded 3D step (Dirichlet band of width `R`).
pub fn step_3d<V: SimdF64>(k: &FoldedKernel, src: &Grid3D, dst: &mut Grid3D) {
    let (nz, ny, nx) = (src.nz(), src.ny(), src.nx());
    let rr = k.plan.radius;
    for z in 0..nz {
        for y in 0..ny {
            let interior = z >= rr && z < nz - rr && y >= rr && y < ny - rr;
            if !interior {
                dst.row_mut(z, y).copy_from_slice(src.row(z, y));
            } else {
                let srow = src.row(z, y);
                let drow = dst.row_mut(z, y);
                drow[..rr].copy_from_slice(&srow[..rr]);
                drow[nx - rr..].copy_from_slice(&srow[nx - rr..]);
            }
        }
    }
    step_range_3d::<V>(k, src, dst, rr..nz - rr, rr..ny - rr, rr..nx - rr);
}

/// Block-free "Our (m steps)" 3D sweep.
pub fn sweep_3d<V: SimdF64>(grid: &Grid3D, p: &Pattern, m: usize, t: usize) -> Grid3D {
    let k = FoldedKernel::new(p, m);
    sweep_3d_with::<V>(&k, grid, p, t)
}

/// [`sweep_3d`] with the planned kernel supplied by the caller (see
/// [`sweep_2d_with`]).
pub fn sweep_3d_with<V: SimdF64>(k: &FoldedKernel, grid: &Grid3D, p: &Pattern, t: usize) -> Grid3D {
    let m = k.m();
    let mut pp = PingPong::new(grid.clone());
    for _ in 0..t / m {
        let (src, dst) = pp.src_dst();
        step_3d::<V>(k, src, dst);
        pp.swap_folded(m);
    }
    for _ in 0..t % m {
        let (src, dst) = pp.src_dst();
        crate::exec::multiload::step_3d::<V>(src, dst, p);
        pp.swap();
    }
    pp.into_current()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn scalar_folded_2d(g: &Grid2D, p: &Pattern, m: usize, steps: usize) -> Grid2D {
        let f = fold(p, m);
        let mut pp = PingPong::new(g.clone());
        scalar::sweep_2d(&mut pp, &f, steps);
        pp.into_current()
    }

    #[test]
    fn squares_1d_matches_scalar() {
        for p in [kernels::heat1d(), kernels::d1p5()] {
            for n in [64usize, 100, 203] {
                let g = Grid1D::from_fn(n, |i| ((i * 53) % 17) as f64 * 0.7);
                let mut a = PingPong::new(g.clone());
                scalar::sweep_1d(&mut a, &p, 4);
                let out = sweep_1d::<NativeF64x4>(&g, &p, 1, 4);
                assert!(
                    max_abs_diff(a.current().as_slice(), out.as_slice()) < 1e-12,
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn squares_1d_folded_matches_scalar_folded() {
        let p = kernels::heat1d();
        let f = fold(&p, 2);
        let n = 131;
        let g = Grid1D::from_fn(n, |i| (i as f64 * 0.21).cos());
        let mut a = PingPong::new(g.clone());
        scalar::sweep_1d(&mut a, &f, 3);
        let out = sweep_1d::<NativeF64x8>(&g, &p, 2, 6);
        assert!(max_abs_diff(a.current().as_slice(), out.as_slice()) < 1e-12);
    }

    #[test]
    fn folded_2d_m1_matches_plain_scalar() {
        for p in [kernels::heat2d(), kernels::box2d9p(), kernels::gb()] {
            let g = Grid2D::from_fn(23, 29, |y, x| ((y * 13 + x * 7) % 19) as f64);
            let mut a = PingPong::new(g.clone());
            scalar::sweep_2d(&mut a, &p, 3);
            let out = sweep_2d::<NativeF64x4>(&g, &p, 1, 3);
            assert!(
                max_abs_diff(&a.current().to_dense(), &out.to_dense()) < 1e-12,
                "pts={}",
                p.points()
            );
        }
    }

    #[test]
    fn folded_2d_m2_matches_scalar_folded() {
        for p in [kernels::heat2d(), kernels::box2d9p(), kernels::gb()] {
            let g = Grid2D::from_fn(26, 33, |y, x| ((y * 31 + x * 3) % 23) as f64 * 0.5);
            let want = scalar_folded_2d(&g, &p, 2, 3);
            let out = sweep_2d::<NativeF64x4>(&g, &p, 2, 6);
            assert!(
                max_abs_diff(&want.to_dense(), &out.to_dense()) < 1e-10,
                "pts={}",
                p.points()
            );
        }
    }

    #[test]
    fn folded_2d_narrow_ranges_fall_back() {
        // ranges narrower than a vector exercise the scalar paths
        let p = kernels::box2d9p();
        let k = FoldedKernel::new(&p, 2);
        let g = Grid2D::from_fn(16, 16, |y, x| (y * 16 + x) as f64);
        let mut dst = g.clone();
        step_range_2d::<NativeF64x4>(&k, &g, &mut dst, 3..6, 2..5);
        let mut want = g.clone();
        scalar::step_range_2d(&g, &mut want, k.folded(), 3..6, 2..5);
        assert!(max_abs_diff(&want.to_dense(), &dst.to_dense()) < 1e-12);
    }

    #[test]
    fn folded_2d_avx512_width() {
        let p = kernels::heat2d();
        let g = Grid2D::from_fn(33, 41, |y, x| ((y * 5 + x * 11) % 29) as f64);
        let want = scalar_folded_2d(&g, &p, 2, 2);
        let out = sweep_2d::<NativeF64x8>(&g, &p, 2, 4);
        assert!(max_abs_diff(&want.to_dense(), &out.to_dense()) < 1e-10);
    }

    #[test]
    fn folded_3d_matches_scalar() {
        for p in [kernels::heat3d(), kernels::box3d27p()] {
            let g = Grid3D::from_fn(10, 14, 18, |z, y, x| ((z * 3 + y * 7 + x) % 13) as f64);
            // m = 1
            let mut a = PingPong::new(g.clone());
            scalar::sweep_3d(&mut a, &p, 2);
            let out = sweep_3d::<NativeF64x4>(&g, &p, 1, 2);
            assert!(
                max_abs_diff(&a.current().to_dense(), &out.to_dense()) < 1e-12,
                "m=1 pts={}",
                p.points()
            );
            // m = 2
            let f = fold(&p, 2);
            let mut b = PingPong::new(g.clone());
            scalar::sweep_3d(&mut b, &f, 2);
            let out = sweep_3d::<NativeF64x4>(&g, &p, 2, 4);
            assert!(
                max_abs_diff(&b.current().to_dense(), &out.to_dense()) < 1e-10,
                "m=2 pts={}",
                p.points()
            );
        }
    }

    #[test]
    fn leftover_steps_complete_odd_totals() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(20, 20, |y, x| ((y + x) % 4) as f64);
        // t=5 with m=2: 2 folded + 1 plain; compare interior to 5 scalar
        let mut a = PingPong::new(g.clone());
        scalar::sweep_2d(&mut a, &p, 5);
        let out = sweep_2d::<NativeF64x4>(&g, &p, 2, 5);
        let ad = a.current().to_dense();
        let od = out.to_dense();
        let nx = 20;
        for y in 6..14 {
            for x in 6..14 {
                assert!((ad[y * nx + x] - od[y * nx + x]).abs() < 1e-10, "({y},{x})");
            }
        }
    }
}
