//! Conway's Game of Life as a stencil benchmark (paper Table 1: an
//! 8-point 2D kernel whose update depends on all 8 neighbours).
//!
//! States are 0.0/1.0 doubles. The rule is evaluated branchlessly from
//! the neighbour count `c`:
//!
//! ```text
//! next = [c == 3] + alive * [c == 2]
//! ```
//!
//! Temporal *folding* does not apply (the rule is nonlinear), which is
//! exactly why the paper's Life gains are modest; the "2-step" variant
//! here fuses two rule applications in one pass over memory with a
//! rolling 3-row intermediate buffer — halving the store/reload traffic,
//! which is the part of the folding benefit that survives nonlinearity.
//! Boundary cells are frozen (Dirichlet), consistent with the other
//! executors.

// Indexed tap/window loops keep the offset arithmetic explicit and unrolled.
#![allow(clippy::needless_range_loop)]

use stencil_grid::{Grid2D, PingPong};
use stencil_simd::SimdF64;

/// Scalar rule application for one cell.
#[inline(always)]
fn rule(alive: f64, count: f64) -> f64 {
    let three = (count == 3.0) as u8 as f64;
    let two = (count == 2.0) as u8 as f64;
    three + alive * two - three * alive * two * 0.0
}

/// One scalar Life step on rectangle `ys x xs` (interior).
pub fn step_range_scalar(
    src: &Grid2D,
    dst: &mut Grid2D,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let stride = src.stride();
    let s = src.as_slice();
    for y in ys {
        let drow = dst.row_mut(y);
        for x in xs.clone() {
            let mut c = 0.0;
            for dy in 0..3usize {
                for dx in 0..3usize {
                    if dy == 1 && dx == 1 {
                        continue;
                    }
                    c += s[(y + dy - 1) * stride + x + dx - 1];
                }
            }
            drow[x] = rule(s[y * stride + x], c);
        }
    }
}

/// One vectorized Life step on rectangle `ys x xs`.
pub fn step_range<V: SimdF64>(
    src: &Grid2D,
    dst: &mut Grid2D,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let stride = src.stride();
    let s = src.as_slice();
    let vl = V::LANES;
    let (xlo, xhi) = (xs.start, xs.end);
    let two = V::splat(2.0);
    let three = V::splat(3.0);
    for y in ys {
        let dbase = y * stride;
        let d = dst.as_mut_slice();
        let mut x = xlo;
        while x + vl <= xhi {
            let mut c = V::zero();
            for dy in 0..3usize {
                for dx in 0..3usize {
                    if dy == 1 && dx == 1 {
                        continue;
                    }
                    // SAFETY: rectangle is interior (caller contract).
                    let v = unsafe { V::load(s.as_ptr().add((y + dy - 1) * stride + x + dx - 1)) };
                    c = c.add(v);
                }
            }
            // SAFETY: in-bounds.
            let alive = unsafe { V::load(s.as_ptr().add(y * stride + x)) };
            let next = c.eq01(three).add(alive.mul(c.eq01(two)));
            // SAFETY: x+vl <= xhi.
            unsafe { next.store(d.as_mut_ptr().add(dbase + x)) };
            x += vl;
        }
        // scalar tail
        for xx in x..xhi {
            let mut c = 0.0;
            for dy in 0..3usize {
                for dx in 0..3usize {
                    if dy == 1 && dx == 1 {
                        continue;
                    }
                    c += s[(y + dy - 1) * stride + xx + dx - 1];
                }
            }
            d[dbase + xx] = rule(s[y * stride + xx], c);
        }
    }
}

/// Fused two-step Life on rectangle `ys x xs`: computes generation `t+2`
/// from generation `t` without storing generation `t+1` to the grid.
/// Reads stay within 2 cells of the rectangle (folded-radius contract).
pub fn step2_range<V: SimdF64>(
    src: &Grid2D,
    dst: &mut Grid2D,
    ys: core::ops::Range<usize>,
    xs: core::ops::Range<usize>,
) {
    let stride = src.stride();
    let s = src.as_slice();
    let (xlo, xhi) = (xs.start, xs.end);
    let (ylo, yhi) = (ys.start, ys.end);
    if ylo >= yhi || xlo >= xhi {
        return;
    }
    // Intermediate rows cover x in [xlo-1, xhi+1); row i of the ring
    // holds generation t+1 at y = current y + (i - 1).
    let width = xhi - xlo + 2;
    let mut ring: [Vec<f64>; 3] = [vec![0.0; width], vec![0.0; width], vec![0.0; width]];
    // Fill intermediate rows ylo-1 and ylo.
    let mid_row = |y: usize, out: &mut Vec<f64>| {
        for (k, o) in out.iter_mut().enumerate() {
            let x = xlo - 1 + k;
            let mut c = 0.0;
            for dy in 0..3usize {
                for dx in 0..3usize {
                    if dy == 1 && dx == 1 {
                        continue;
                    }
                    c += s[(y + dy - 1) * stride + x + dx - 1];
                }
            }
            *o = rule(s[y * stride + x], c);
        }
    };
    mid_row(ylo - 1, &mut ring[0]);
    mid_row(ylo, &mut ring[1]);
    for y in ylo..yhi {
        mid_row(y + 1, &mut ring[2]);
        // second step from the ring
        let drow = dst.row_mut(y);
        for x in xlo..xhi {
            let k = x - xlo + 1;
            let c = ring[0][k - 1]
                + ring[0][k]
                + ring[0][k + 1]
                + ring[1][k - 1]
                + ring[1][k + 1]
                + ring[2][k - 1]
                + ring[2][k]
                + ring[2][k + 1];
            drow[x] = rule(ring[1][k], c);
        }
        ring.rotate_left(1);
    }
}

/// Random initial soup with density ~0.35 (deterministic hash-based).
pub fn random_soup(ny: usize, nx: usize, seed: u64) -> Grid2D {
    Grid2D::from_fn(ny, nx, |y, x| {
        let mut h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y * nx + x) as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        if h % 100 < 35 {
            1.0
        } else {
            0.0
        }
    })
}

/// Full step with frozen boundary.
pub fn step<V: SimdF64>(src: &Grid2D, dst: &mut Grid2D) {
    let (ny, nx) = (src.ny(), src.nx());
    for y in 0..ny {
        if y == 0 || y == ny - 1 {
            dst.row_mut(y).copy_from_slice(src.row(y));
        } else {
            let srow = src.row(y);
            let drow = dst.row_mut(y);
            drow[0] = srow[0];
            drow[nx - 1] = srow[nx - 1];
        }
    }
    step_range::<V>(src, dst, 1..ny - 1, 1..nx - 1);
}

/// Run `t` generations.
pub fn sweep<V: SimdF64>(grid: &Grid2D, t: usize) -> Grid2D {
    let mut pp = PingPong::new(grid.clone());
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step::<V>(src, dst);
        pp.swap();
    }
    pp.into_current()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn scalar_sweep(grid: &Grid2D, t: usize) -> Grid2D {
        let mut pp = PingPong::new(grid.clone());
        for _ in 0..t {
            let (src, dst) = pp.src_dst();
            let (ny, nx) = (src.ny(), src.nx());
            for y in 0..ny {
                dst.row_mut(y).copy_from_slice(src.row(y));
            }
            step_range_scalar(src, dst, 1..ny - 1, 1..nx - 1);
            pp.swap();
        }
        pp.into_current()
    }

    #[test]
    fn blinker_oscillates() {
        // vertical blinker at the center of a dead field
        let mut g = Grid2D::zeros(9, 9);
        g[(3, 4)] = 1.0;
        g[(4, 4)] = 1.0;
        g[(5, 4)] = 1.0;
        let one = sweep::<NativeF64x4>(&g, 1);
        assert_eq!(one[(4, 3)], 1.0);
        assert_eq!(one[(4, 4)], 1.0);
        assert_eq!(one[(4, 5)], 1.0);
        assert_eq!(one[(3, 4)], 0.0);
        let two = sweep::<NativeF64x4>(&g, 2);
        assert!(max_abs_diff(&two.to_dense(), &g.to_dense()) < 1e-15);
    }

    #[test]
    fn block_is_still_life() {
        let mut g = Grid2D::zeros(8, 8);
        for (y, x) in [(3, 3), (3, 4), (4, 3), (4, 4)] {
            g[(y, x)] = 1.0;
        }
        let out = sweep::<NativeF64x8>(&g, 5);
        assert!(max_abs_diff(&out.to_dense(), &g.to_dense()) < 1e-15);
    }

    #[test]
    fn vectorized_matches_scalar_on_soup() {
        let g = random_soup(40, 52, 7);
        let want = scalar_sweep(&g, 8);
        let got = sweep::<NativeF64x4>(&g, 8);
        assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-15);
    }

    #[test]
    fn fused_two_step_matches_two_single_steps() {
        let g = random_soup(30, 41, 13);
        let want = scalar_sweep(&g, 2);
        let mut dst = g.clone();
        step2_range::<NativeF64x4>(&g, &mut dst, 2..28, 2..39);
        let (wd, dd) = (want.to_dense(), dst.to_dense());
        for y in 2..28 {
            for x in 2..39 {
                assert_eq!(wd[y * 41 + x], dd[y * 41 + x], "({y},{x})");
            }
        }
    }
}
