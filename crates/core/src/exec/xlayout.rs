//! Transpose-layout executor — the paper's §2 contribution ("Our").
//!
//! Memory holds the 1D grid in the *local transpose layout*: every
//! aligned `vl*vl` block transposed in place (done once before the sweep,
//! undone once after). Inside a block, the `x +- k` neighbours of vector
//! `j` are simply vectors `j +- k` of the same set; only the `2r` vectors
//! crossing block boundaries need assembly — one blend + one circular
//! shift each ([`stencil_simd::assemble`]), versus per-tap shuffles for
//! data-reorganization and redundant loads for multiple-loads. Unlike
//! DLT, elements within a block stay contiguous (one or two cache lines),
//! so cache blocking still works.

// Indexed tap/window loops keep the offset arithmetic explicit and unrolled.
#![allow(clippy::needless_range_loop)]

use crate::folding::fold;
use crate::pattern::Pattern;
use stencil_grid::layout::TransposeLayout;
use stencil_grid::{Grid1D, PingPong};
use stencil_simd::assemble::neighbor_vector;
use stencil_simd::SimdF64;

/// One Jacobi step over a buffer already in transpose layout.
///
/// Full interior blocks are processed as vector sets; the first and last
/// blocks and the non-covered tail fall back to scalar accesses through
/// the layout's index map. Requires `r <= V::LANES`.
pub fn step_x<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64]) {
    crate::exec::dispatch_taps!(step_x_t, V, taps, (src, dst, taps));
}

fn step_x_t<V: SimdF64, const T: usize>(src: &[f64], dst: &mut [f64], taps: &[f64]) {
    let nt = crate::exec::tap_count::<T>(taps);
    let n = src.len();
    let vl = V::LANES;
    let r = nt / 2;
    assert!(r <= vl, "transpose layout requires r <= vl");
    let lay = TransposeLayout::new(vl);
    let block = lay.block();
    let nblocks = n / block;

    // hoist tap broadcasts out of the sweep
    let mut tapv = [V::zero(); 17];
    for k in 0..nt {
        tapv[k] = V::splat(taps[k]);
    }

    // Vectorized middle: blocks 1 .. nblocks-1 (each has both neighbours
    // fully inside the covered region).
    if nblocks >= 3 {
        let mut prev = load_set::<V>(src, 0);
        let mut cur = load_set::<V>(src, block);
        for b in 1..nblocks - 1 {
            let next = load_set::<V>(src, (b + 1) * block);
            let base = b * block;
            // Extended window: ext[i] holds the vector whose elements sit
            // at offset (i - r) from those of vector 0 — the 2r assembled
            // dependents are built once per set (paper §2.2), interior
            // entries are the set's own vectors.
            let mut ext = [V::zero(); 8 + 2 * 8];
            for k in 1..=r {
                ext[r - k] =
                    neighbor_vector(&cur[..vl], &prev[..vl], &next[..vl], 0, -(k as isize));
                ext[r + vl - 1 + k] =
                    neighbor_vector(&cur[..vl], &prev[..vl], &next[..vl], vl - 1, k as isize);
            }
            ext[r..r + vl].copy_from_slice(&cur[..vl]);
            for j in 0..vl {
                let mut acc = ext[j].mul(tapv[0]);
                for k in 1..nt {
                    acc = ext[j + k].mul_add(tapv[k], acc);
                }
                // SAFETY: base + (j+1)*vl <= (b+1)*block <= n
                unsafe { acc.store(dst.as_mut_ptr().add(base + j * vl)) };
            }
            prev = cur;
            cur = next;
        }
    }

    // Scalar edges: block 0, last block, tail, via the index map.
    let scalar_cell = |i: usize, dst: &mut [f64]| {
        if i < r || i >= n - r {
            dst[lay.index(i, n)] = src[lay.index(i, n)];
        } else {
            let mut acc = 0.0;
            for (k, &w) in taps.iter().enumerate() {
                acc += w * src[lay.index(i + k - r, n)];
            }
            dst[lay.index(i, n)] = acc;
        }
    };
    let first_edge_end = block.min(n);
    for i in 0..first_edge_end {
        scalar_cell(i, dst);
    }
    if nblocks >= 2 {
        for i in (nblocks - 1) * block..n {
            scalar_cell(i, dst);
        }
    }
}

#[inline(always)]
fn load_set<V: SimdF64>(src: &[f64], base: usize) -> [V; 8] {
    let vl = V::LANES;
    let mut set = [V::zero(); 8];
    for (j, v) in set[..vl].iter_mut().enumerate() {
        // SAFETY: caller passes base of a full block.
        *v = unsafe { V::load(src.as_ptr().add(base + j * vl)) };
    }
    set
}

/// Driver owning transpose-layout ping-pong buffers.
pub struct XLayoutSweep1D<V: SimdF64> {
    bufs: PingPong<Grid1D>,
    vl: usize,
    _marker: core::marker::PhantomData<V>,
}

impl<V: SimdF64> XLayoutSweep1D<V> {
    /// Transform `grid` into the transpose layout (performed "twice
    /// before and after the stencil computation" — paper §2.2).
    pub fn new(grid: &Grid1D) -> Self {
        let lay = TransposeLayout::new(V::LANES);
        let mut a = grid.clone();
        lay.apply::<V>(a.as_mut_slice());
        let b = a.clone();
        Self {
            bufs: PingPong::from_pair(a, b),
            vl: V::LANES,
            _marker: core::marker::PhantomData,
        }
    }

    /// Advance `t` single steps with taps.
    pub fn steps(&mut self, taps: &[f64], t: usize) {
        for _ in 0..t {
            let (src, dst) = self.bufs.src_dst();
            step_x::<V>(src.as_slice(), dst.as_mut_slice(), taps);
            self.bufs.swap();
        }
    }

    /// Advance `t` folded steps (each advancing `m` time levels).
    pub fn steps_folded(&mut self, taps: &[f64], t: usize, m: usize) {
        for _ in 0..t {
            let (src, dst) = self.bufs.src_dst();
            step_x::<V>(src.as_slice(), dst.as_mut_slice(), taps);
            self.bufs.swap_folded(m);
        }
    }

    /// Undo the layout and return the latest grid.
    pub fn into_grid(self) -> Grid1D {
        let lay = TransposeLayout::new(self.vl);
        let mut g = self.bufs.into_current();
        lay.apply::<V>(g.as_mut_slice());
        g
    }
}

/// "Our" block-free sweep: transform, `t` steps, transform back.
pub fn sweep_1d<V: SimdF64>(grid: &Grid1D, p: &Pattern, t: usize) -> Grid1D {
    assert_eq!(p.dims(), 1);
    let mut s = XLayoutSweep1D::<V>::new(grid);
    s.steps(p.weights(), t);
    s.into_grid()
}

/// "Our (m steps)" block-free sweep: temporal computation folding with
/// unrolling factor `m` on the transpose layout. `t % m` leftover steps
/// run unfolded.
pub fn sweep_folded_1d<V: SimdF64>(grid: &Grid1D, p: &Pattern, m: usize, t: usize) -> Grid1D {
    assert_eq!(p.dims(), 1);
    assert!(m >= 1);
    let folded = fold(p, m);
    sweep_folded_1d_with::<V>(grid, p.weights(), &folded, m, t)
}

/// [`sweep_folded_1d`] with the folded pattern Λ supplied by the caller —
/// the compile-once/run-many entry point: a plan computes Λ once and
/// reuses it across every run.
pub fn sweep_folded_1d_with<V: SimdF64>(
    grid: &Grid1D,
    base_taps: &[f64],
    folded: &Pattern,
    m: usize,
    t: usize,
) -> Grid1D {
    assert!(m >= 1);
    assert_eq!(folded.dims(), 1);
    assert!(folded.radius() <= V::LANES, "folded radius exceeds vl");
    let mut s = XLayoutSweep1D::<V>::new(grid);
    s.steps_folded(folded.weights(), t / m, m);
    s.steps(base_taps, t % m);
    s.into_grid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn scalar_ref(g: &Grid1D, p: &Pattern, t: usize) -> Grid1D {
        let mut a = PingPong::new(g.clone());
        scalar::sweep_1d(&mut a, p, t);
        a.into_current()
    }

    #[test]
    fn matches_scalar_1d() {
        for p in [kernels::heat1d(), kernels::d1p5()] {
            for n in [48usize, 64, 160, 203] {
                let g = Grid1D::from_fn(n, |i| ((i * 67) % 29) as f64 * 0.3);
                let want = scalar_ref(&g, &p, 5);
                let out4 = sweep_1d::<NativeF64x4>(&g, &p, 5);
                assert!(
                    max_abs_diff(want.as_slice(), out4.as_slice()) < 1e-12,
                    "x4 n={n} pts={}",
                    p.points()
                );
                let out8 = sweep_1d::<NativeF64x8>(&g, &p, 5);
                assert!(
                    max_abs_diff(want.as_slice(), out8.as_slice()) < 1e-12,
                    "x8 n={n}"
                );
            }
        }
    }

    #[test]
    fn folded_matches_interior_of_scalar() {
        // Folding widens the Dirichlet band from r to m*r, so compare the
        // interior beyond that band.
        let p = kernels::heat1d();
        let m = 2;
        let t = 8;
        let n = 128;
        let g = Grid1D::from_fn(n, |i| (i as f64 * 0.11).sin());
        let want = scalar_ref(&g, &p, t);
        let out = sweep_folded_1d::<NativeF64x4>(&g, &p, m, t);
        let band = p.radius() * m * t; // generous: discrepancy zone growth
        for i in band..n - band {
            assert!((want[i] - out[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn folded_equals_folded_scalar_everywhere() {
        // Exact equality (including boundary band) against a scalar sweep
        // of the folded pattern — same semantics, so identical results.
        let p = kernels::heat1d();
        let (m, t, n) = (2usize, 6usize, 96usize);
        let folded = fold(&p, m);
        let g = Grid1D::from_fn(n, |i| ((i * 13) % 7) as f64);
        let want = scalar_ref(&g, &folded, t / m);
        let out = sweep_folded_1d::<NativeF64x4>(&g, &p, m, t);
        assert!(max_abs_diff(want.as_slice(), out.as_slice()) < 1e-12);
    }

    #[test]
    fn odd_leftover_steps_run_unfolded() {
        let p = kernels::heat1d();
        let n = 64;
        let g = Grid1D::from_fn(n, |i| (i % 5) as f64);
        // t=5, m=2: two folded + one plain. Interior equals 5 scalar steps.
        let want = scalar_ref(&g, &p, 5);
        let out = sweep_folded_1d::<NativeF64x4>(&g, &p, 2, 5);
        for i in 12..n - 12 {
            assert!((want[i] - out[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn r_equals_vl_is_supported() {
        // folded 1D5P with m=2 has radius 4 = AVX2 vl: the extreme case
        // where the assembled vector is an entire neighbouring-block
        // column.
        let p = kernels::d1p5();
        let folded = fold(&p, 2);
        assert_eq!(folded.radius(), 4);
        let n = 160;
        let g = Grid1D::from_fn(n, |i| ((i * 31) % 11) as f64);
        let want = scalar_ref(&g, &folded, 3);
        let out = sweep_folded_1d::<NativeF64x4>(&g, &p, 2, 6);
        assert!(max_abs_diff(want.as_slice(), out.as_slice()) < 1e-12);
    }
}
