//! Data-reorganization executor: aligned loads + per-tap shuffles.
//!
//! The paper's second auto-vectorization-class baseline: each output
//! vector is produced from *aligned* loads of the three surrounding
//! vectors, with every off-center tap assembled by concat-shift shuffles
//! (`vpalignr`-style; on AVX2 each single-lane shift costs a blend +
//! permute, so a radius-r stencil pays `2 * 2r` shuffle ops per vector —
//! the "frequent inter-vector permutations" the paper's scheme avoids).

use crate::pattern::Pattern;
use stencil_grid::{Grid1D, PingPong};
use stencil_simd::SimdF64;

/// Build the vector holding `src[i + off .. i + off + vl]` from the
/// aligned vectors `prev`/`cur`/`next` at aligned base `i`
/// (`-vl <= off <= vl`), by repeated single-lane shifts.
#[inline(always)]
fn offset_vec<V: SimdF64>(prev: V, cur: V, next: V, off: isize) -> V {
    let mut out = cur;
    match off.cmp(&0) {
        core::cmp::Ordering::Equal => out,
        core::cmp::Ordering::Greater => {
            let mut carry = next;
            for _ in 0..off {
                // shift left by one lane, pulling lane 0 of carry in
                out = out.shift_in_right(carry);
                carry = carry.rotate_lanes_left();
            }
            out
        }
        core::cmp::Ordering::Less => {
            let mut carry = prev;
            for _ in 0..(-off) {
                out = out.shift_in_left(carry);
                carry = carry.rotate_lanes_right();
            }
            out
        }
    }
}

/// One Jacobi step on `dst[lo..hi]` using aligned loads + shuffles.
/// Requires `r <= V::LANES`.
pub fn step_range_1d<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64], lo: usize, hi: usize) {
    let r = taps.len() / 2;
    let vl = V::LANES;
    assert!(r <= vl, "reorg executor requires r <= vector length");
    debug_assert!(lo >= r && hi + r <= src.len());
    // First aligned vector index >= lo, with room for an aligned prev.
    let astart = lo.next_multiple_of(vl).max(vl);
    let mut i = astart;
    let mut tapv = [V::zero(); 17];
    for (k, &w) in taps.iter().enumerate() {
        tapv[k] = V::splat(w);
    }
    // scalar head
    head_tail_scalar(src, dst, taps, lo, astart.min(hi));
    while i + vl <= hi && i + 2 * vl <= src.len() {
        // SAFETY: aligned full-vector loads within bounds (prev at i-vl
        // exists because i >= vl; next at i+vl checked above).
        let (prev, cur, next) = unsafe {
            (
                V::load(src.as_ptr().add(i - vl)),
                V::load(src.as_ptr().add(i)),
                V::load(src.as_ptr().add(i + vl)),
            )
        };
        let mut acc = cur.mul(tapv[r]);
        for k in 1..=r {
            let left = offset_vec(prev, cur, next, -(k as isize));
            let right = offset_vec(prev, cur, next, k as isize);
            acc = left.mul_add(tapv[r - k], acc);
            acc = right.mul_add(tapv[r + k], acc);
        }
        // SAFETY: i+vl <= hi
        unsafe { acc.store(dst.as_mut_ptr().add(i)) };
        i += vl;
    }
    // scalar tail
    head_tail_scalar(src, dst, taps, i.max(lo), hi);
}

fn head_tail_scalar(src: &[f64], dst: &mut [f64], taps: &[f64], lo: usize, hi: usize) {
    let r = taps.len() / 2;
    for j in lo..hi {
        let mut acc = 0.0;
        for (k, &w) in taps.iter().enumerate() {
            acc += w * src[j + k - r];
        }
        dst[j] = acc;
    }
}

/// Full 1D step with Dirichlet boundaries.
pub fn step_1d<V: SimdF64>(src: &[f64], dst: &mut [f64], taps: &[f64]) {
    let n = src.len();
    let r = taps.len() / 2;
    dst[..r].copy_from_slice(&src[..r]);
    dst[n - r..].copy_from_slice(&src[n - r..]);
    step_range_1d::<V>(src, dst, taps, r, n - r);
}

/// Run `t` steps on a 1D ping-pong pair.
pub fn sweep_1d<V: SimdF64>(pp: &mut PingPong<Grid1D>, p: &Pattern, t: usize) {
    for _ in 0..t {
        let (src, dst) = pp.src_dst();
        step_1d::<V>(src.as_slice(), dst.as_mut_slice(), p.weights());
        pp.swap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::portable::PF64x4;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    #[test]
    fn offset_vec_all_offsets() {
        let mk = |b: usize| {
            let mut v = PF64x4::zero();
            for k in 0..4 {
                v = v.insert(k, (b + k) as f64);
            }
            v
        };
        let (prev, cur, next) = (mk(0), mk(4), mk(8));
        for off in -4isize..=4 {
            let v = offset_vec(prev, cur, next, off);
            for k in 0..4 {
                assert_eq!(v.extract(k), (4 + k) as f64 + off as f64, "off={off}");
            }
        }
    }

    #[test]
    fn matches_scalar_1d() {
        for p in [kernels::heat1d(), kernels::d1p5()] {
            for n in [33usize, 64, 100, 257] {
                let g = Grid1D::from_fn(n, |i| ((i * 97) % 31) as f64 * 0.25);
                let mut a = PingPong::new(g.clone());
                scalar::sweep_1d(&mut a, &p, 5);
                let mut b = PingPong::new(g.clone());
                sweep_1d::<NativeF64x4>(&mut b, &p, 5);
                assert!(
                    max_abs_diff(a.current().as_slice(), b.current().as_slice()) < 1e-12,
                    "x4 n={n}"
                );
                let mut c = PingPong::new(g);
                sweep_1d::<NativeF64x8>(&mut c, &p, 5);
                assert!(
                    max_abs_diff(a.current().as_slice(), c.current().as_slice()) < 1e-12,
                    "x8 n={n}"
                );
            }
        }
    }

    #[test]
    fn small_grid_falls_back_to_scalar() {
        // hi - lo smaller than a vector: everything goes the scalar path
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(6, |i| i as f64);
        let mut a = PingPong::new(g.clone());
        scalar::sweep_1d(&mut a, &p, 2);
        let mut b = PingPong::new(g);
        sweep_1d::<NativeF64x4>(&mut b, &p, 2);
        assert_eq!(a.current().as_slice(), b.current().as_slice());
    }
}
