//! Op-collect cost model and profitability index (paper §3.2, §3.4).
//!
//! The paper counts arithmetic instructions (add / multiply /
//! multiply-add, each one unit) in the *collect* `C(E)` of an update
//! expression, and calls a folding profitable when
//! `P(E, E_Λ) = |C(E)| / |C(E_Λ)| >= θ >= 1` (Eq. 3). The worked 2D9P
//! m=2 example gives `|C(E)| = 90`, `|C(E_Λ)| = 25`, `P = 3.6`, improving
//! to `|C(E_Λ)| = 9`, `P = 10` with counterpart reuse; shifts reusing
//! turns a 9-op 9-point update into 4 ops (`P = 2.25`). All of those are
//! unit tests below.

use crate::folding::fold;
use crate::pattern::Pattern;
use crate::plan::FoldPlan;

/// `|C(E)|` of the naive m-step update: the recursive expansion needs
/// `S(m)` single-step subexpressions (`S(1) = 1`, `S(m) = 1 + P·S(m-1)`
/// for a P-point stencil), each costing `P` instructions.
pub fn collect_naive(p: &Pattern, m: usize) -> usize {
    assert!(m >= 1);
    let pts = p.points();
    let mut s = 1usize;
    for _ in 1..m {
        s = 1 + pts * s;
    }
    s * pts
}

/// `|C(E_Λ)|` of evaluating the folded matrix directly, one weighted
/// reference per nonzero λ (Eq. 2): the folded pattern's point count.
pub fn collect_folded(p: &Pattern, m: usize) -> usize {
    fold(p, m).points()
}

/// `|C(E_Λ)|` after counterpart reuse (§3.3): vertical-fold taps of every
/// *used* fresh counterpart plus the horizontal combination
/// (`terms - 1` additions plus one instruction per scaled term... the
/// paper's accounting: `taps + (h_terms - 1)`), evaluated from a
/// [`FoldPlan`].
pub fn collect_planned(plan: &FoldPlan) -> usize {
    let vertical: usize = (1..plan.fresh.len())
        .filter(|&id| plan.is_used(id))
        .map(|id| plan.fold_taps(id).len())
        .sum();
    let h_terms: usize = plan.h.iter().map(|t| t.len()).sum();
    vertical + h_terms.saturating_sub(1)
}

/// Profitability index `P(E, E_Λ)` (Eq. 3) for a planned folding.
pub fn profitability(p: &Pattern, m: usize) -> f64 {
    let plan = FoldPlan::new(p, m);
    collect_naive(p, m) as f64 / collect_planned(&plan) as f64
}

/// Per-point collect of a single-step update with shifts reusing
/// (Fig. 6): only the newly-entering column must be folded
/// (`(2r+1)^(d-1)` taps for a box; fewer for sparse columns) and one add
/// appends it to the reused partial horizontal sum.
pub fn collect_shift_reuse(p: &Pattern) -> usize {
    let cols = p.x_columns();
    let new_col = cols
        .last()
        .map(|c| c.iter().filter(|&&w| w != 0.0).count())
        .unwrap_or(0);
    new_col + 1
}

/// Profitability of shifts reusing alone (Fig. 6's 9/4 = 2.25 for 2D9P).
pub fn shift_reuse_profitability(p: &Pattern) -> f64 {
    collect_naive(p, 1) as f64 / collect_shift_reuse(p) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn paper_naive_collect_is_90() {
        // 10 subexpressions x 9 instructions (Fig. 4a)
        assert_eq!(collect_naive(&kernels::box2d9p(), 2), 90);
    }

    #[test]
    fn paper_folded_collect_is_25() {
        // Fig. 4b / Eq. 2
        assert_eq!(collect_folded(&kernels::box2d9p(), 2), 25);
    }

    #[test]
    fn paper_profitable_index_before_reuse() {
        let p = collect_naive(&kernels::box2d9p(), 2) as f64
            / collect_folded(&kernels::box2d9p(), 2) as f64;
        assert!((p - 3.6).abs() < 1e-12);
    }

    #[test]
    fn paper_planned_collect_is_9_and_p_is_10() {
        // §3.3: using only counterpart c1, |C(E_Λ)| drops to 9 and the
        // profitability index becomes 10.
        let plan = FoldPlan::new(&kernels::box2d9p(), 2);
        assert_eq!(collect_planned(&plan), 9);
        assert!((profitability(&kernels::box2d9p(), 2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn paper_shift_reuse_is_2_25() {
        // Fig. 6: |C(E_F)| = 9 -> |C(E_G)| = 4, ratio 2.25
        assert_eq!(collect_shift_reuse(&kernels::box2d9p()), 4);
        assert!((shift_reuse_profitability(&kernels::box2d9p()) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn folding_is_profitable_for_all_linear_benchmarks() {
        for (name, p) in [
            ("1D-Heat", kernels::heat1d()),
            ("1D5P", kernels::d1p5()),
            ("2D-Heat", kernels::heat2d()),
            ("2D9P", kernels::box2d9p()),
            ("GB", kernels::gb()),
            ("3D-Heat", kernels::heat3d()),
            ("3D27P", kernels::box3d27p()),
        ] {
            let prof = profitability(&p, 2);
            assert!(prof > 1.0, "{name}: P = {prof}");
        }
    }

    #[test]
    fn gb_gains_are_least_prominent_among_2d_boxes() {
        // The paper observes GB (asymmetric weights) is the stress test:
        // its profitability must trail the symmetric 2D9P.
        let gb = profitability(&kernels::gb(), 2);
        let sym = profitability(&kernels::box2d9p(), 2);
        assert!(gb < sym, "GB {gb} should be < 2D9P {sym}");
    }

    #[test]
    fn deeper_folding_grows_naive_collect_fast() {
        let p = kernels::heat1d();
        assert_eq!(collect_naive(&p, 1), 3);
        assert_eq!(collect_naive(&p, 2), 12); // (1 + 3) * 3
        assert_eq!(collect_naive(&p, 3), 39); // (1 + 3*4) * 3
    }

    #[test]
    fn one_d_folding_profit() {
        // 1D heat m=2: naive 12 vs folded 5-point horizontal = 4 + ... :
        // planned = 0 vertical + (5 - 1) = 4 -> P = 3
        let plan = FoldPlan::new(&kernels::heat1d(), 2);
        assert_eq!(collect_planned(&plan), 4);
        assert!((profitability(&kernels::heat1d(), 2) - 3.0).abs() < 1e-12);
    }
}
